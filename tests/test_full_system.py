"""End-to-end tests: full DARCO runs with validation against the
authoritative x86 component.

Every run here exercises the complete pipeline — interpretation, BBM
translation, superblock formation with asserts/speculation, chaining, IBTC
— and the controller validates emulated state against the reference at
every syscall and at program end.  Programs are sized so code gets promoted
through all three modes.
"""

import pytest

from repro.guest.assembler import (
    EAX, EBX, ECX, EDX, EBP, ESI, EDI, F0, F1, F2, V0, V1, Assembler, M,
)
from repro.guest.program import pack_f64s, pack_u32s, unpack_u32s
from repro.guest.syscalls import SYS_WRITE
from repro.tol.config import TolConfig
from repro.system.controller import run_codesigned

FAST = TolConfig(bbm_threshold=3, sbm_threshold=8)


def build(fn):
    asm = Assembler()
    fn(asm)
    return asm.program()


def run(fn_or_program, config=FAST, **kw):
    program = fn_or_program if not callable(fn_or_program) \
        else build(fn_or_program)
    return run_codesigned(program, config=config, **kw)


def test_hot_loop_promotes_to_superblock():
    def body(asm):
        asm.mov(EAX, 0)
        asm.mov(EBX, 0)
        with asm.counted_loop(ECX, 500):
            asm.inc(EBX)
            asm.add(EAX, EBX)
        asm.mov(EDX, EAX)
        asm.exit(0)
    result, controller = run(body)
    assert result.exit_code == 0
    tol = controller.codesigned.tol
    # The hot loop must reach superblock mode and dominate execution.
    dist = tol.mode_distribution()
    assert dist["SBM"] > 0, f"no SBM execution: {dist}"
    assert dist["SBM"] > dist["IM"]
    # Correct final state (validated by controller, but double check).
    assert controller.x86.state.get("EDX") == 500 * 501 // 2


def test_loop_is_unrolled_with_runtime_guard():
    def body(asm):
        asm.mov(EAX, 0)
        with asm.counted_loop(ECX, 1000):
            asm.add(EAX, 7)
        asm.mov(EDI, EAX)
        asm.exit(0)
    result, controller = run(body)
    tol = controller.codesigned.tol
    assert tol.translator.loops_unrolled >= 1
    # Both variants live in the cache.
    pcs = [u.entry_pc for u in tol.cache.units() if u.unrolled]
    assert pcs, "unrolled variant missing from code cache"
    assert controller.x86.state.get("EDI") == 7000


def test_unrolled_loop_trip_count_not_multiple_of_factor():
    # 1003 iterations with unroll factor 4: the guard must hand the tail
    # iterations to the plain variant.
    def body(asm):
        asm.mov(EAX, 0)
        with asm.counted_loop(ECX, 1003):
            asm.inc(EAX)
        asm.mov(EDI, EAX)
        asm.exit(0)
    result, controller = run(body)
    assert controller.x86.state.get("EDI") == 1003


def test_function_calls_returns_and_ibtc():
    def body(asm):
        asm.mov(ESI, 0)
        asm.mov(EDI, 0)
        with asm.counted_loop(ECX, 200):
            asm.mov(EAX, ECX)
            asm.call("work")
            asm.add(EDI, EAX)
        asm.exit(0)
        asm.label("work")
        asm.imul(EAX, 3)
        asm.add(EAX, 1)
        asm.ret()
    result, controller = run(body)
    assert result.exit_code == 0
    tol = controller.codesigned.tol
    # Returns are indirect: the IBTC must be exercised.
    assert tol.host.ibtc.hits > 0


def test_biased_branch_becomes_assert_and_fails_occasionally():
    # Branch taken 15/16 times: biased, so SBM converts it to an assert
    # that fails on the 16th iteration -> rollback + interpretation.
    def body(asm):
        asm.mov(EAX, 0)
        asm.mov(EBX, 0)
        with asm.counted_loop(ECX, 1024):
            asm.mov(EDX, ECX)
            asm.emit("AND", EDX, 15)
            asm.je("rare")
            asm.inc(EAX)
            asm.jmp("cont")
            asm.label("rare")
            asm.add(EBX, 2)
            asm.label("cont")
        asm.mov(ESI, EAX)
        asm.mov(EDI, EBX)
        asm.exit(0)
    result, controller = run(body)
    tol = controller.codesigned.tol
    assert controller.x86.state.get("ESI") == 1024 - 64
    assert controller.x86.state.get("EDI") == 128
    assert tol.stats.assert_failures > 0


def test_repeated_assert_failures_demote_to_multi_exit():
    # A 50/50 branch that looks biased early: once the superblock is
    # built, asserts fail every other iteration until demotion to SBX.
    def body(asm):
        asm.mov(EAX, 0)
        asm.mov(EBX, 0)
        # Phase 1: biased warm-up (branch always taken).
        with asm.counted_loop(ECX, 120):
            asm.mov(EDX, 0)
            asm.test(EDX, 1)
            asm.je("t1")
            asm.inc(EBX)
            asm.label("t1")
            asm.inc(EAX)
        # Phase 2: alternating.
        with asm.counted_loop(ECX, 400):
            asm.mov(EDX, ECX)
            asm.emit("AND", EDX, 1)
            asm.test(EDX, EDX)
            asm.je("t2")
            asm.inc(EBX)
            asm.label("t2")
            asm.inc(EAX)
        asm.mov(ESI, EAX)
        asm.exit(0)
    result, controller = run(body)
    tol = controller.codesigned.tol
    assert controller.x86.state.get("ESI") == 520
    assert tol.stats.assert_failures > 0


def test_memory_workload_with_pointer_writes():
    def body(asm):
        table = asm.data(0x4000, pack_u32s(range(64)))
        asm.mov(EBP, table)
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, 300):
            asm.mov(EAX, ESI)
            asm.emit("AND", EAX, 63)
            asm.mov(EBX, M(EBP, EAX, 4))
            asm.add(EBX, ECX)
            asm.mov(M(EBP, EAX, 4), EBX)
            asm.inc(ESI)
        asm.exit(0)
    result, controller = run(body)
    assert result.exit_code == 0
    # Memory was validated against the reference at end of run.
    assert result.validations >= 1


def test_fp_trig_loop_matches_reference_bitexact():
    def body(asm):
        data = asm.data(0x5000, pack_f64s([0.01 * i for i in range(32)]))
        asm.mov(EBP, data)
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, 150):
            asm.mov(EAX, ESI)
            asm.emit("AND", EAX, 31)
            asm.fld(F0, M(EBP, EAX, 8))
            asm.fsin(F0)
            asm.fld(F1, M(EBP, EAX, 8))
            asm.fcos(F1)
            asm.fmul(F0, F1)
            asm.fst(M(EBP, EAX, 8, disp=0x400), F0)
            asm.inc(ESI)
        asm.exit(0)
    result, controller = run(body)
    assert result.exit_code == 0  # validation would raise on any FP diff


def test_vector_loop():
    def body(asm):
        data = asm.data(0x6000, pack_u32s(range(32)))
        asm.mov(EBP, 0x6000)
        with asm.counted_loop(ECX, 100):
            asm.vld(V0, M(EBP))
            asm.vld(V1, M(EBP, disp=16))
            asm.vadd(V0, V1)
            asm.vmul(V0, V1)
            asm.vst(M(EBP, disp=64), V0)
        asm.exit(0)
    result, controller = run(body)
    assert result.exit_code == 0


def test_syscalls_inside_hot_code():
    def body(asm):
        msg = asm.data(0x7000, b"x" * 8)
        asm.mov(ESI, 0)
        with asm.counted_loop(EDI, 40):
            asm.mov(EAX, SYS_WRITE)
            asm.mov(EBX, 1)
            asm.mov(ECX, msg)
            asm.mov(EDX, 2)
            asm.syscall()
            asm.add(ESI, EAX)
        asm.exit(5)
    result, controller = run(body)
    assert result.exit_code == 5
    assert result.stdout == b"xx" * 40
    assert result.syscalls == 41  # 40 writes + exit
    assert controller.x86.state.get("ESI") == 80


def test_string_ops_stay_in_interpreter():
    def body(asm):
        asm.data(0x8000, pack_u32s(range(128)))
        with asm.counted_loop(EDX, 30):
            asm.mov(ESI, 0x8000)
            asm.mov(EDI, 0x9000)
            asm.mov(ECX, 128)
            asm.rep_movsd()
        asm.exit(0)
    result, controller = run(body)
    assert result.exit_code == 0
    x86mem = controller.x86.memory
    assert unpack_u32s(x86mem.read_bytes(0x9000, 512)) == tuple(range(128))


def test_data_requests_serve_pages_lazily():
    def body(asm):
        asm.data(0x10000, pack_u32s([7] * 1024))       # 4KB page
        asm.data(0x20000, pack_u32s([9] * 1024))       # another page
        asm.mov(EAX, M(None, disp=0x10000)) if False else None
        asm.mov(EBP, 0x10000)
        asm.mov(EAX, M(EBP))
        asm.mov(EBP, 0x20000)
        asm.mov(EBX, M(EBP))
        asm.add(EAX, EBX)
        asm.mov(EDI, EAX)
        asm.exit(0)
    result, controller = run(body)
    assert controller.x86.state.get("EDI") == 16
    # code page + stack + two data pages at minimum
    assert result.data_requests >= 3


def test_deep_call_chain_with_recursion():
    def body(asm):
        asm.mov(EAX, 12)
        asm.call("fib")
        asm.mov(EDI, EAX)
        asm.exit(0)
        asm.label("fib")            # fib(n) iterative-ish recursion
        asm.cmp(EAX, 2)
        asm.jb("base")
        asm.push(EAX)
        asm.sub(EAX, 1)
        asm.call("fib")
        asm.pop(EBX)                # n
        asm.push(EAX)               # fib(n-1)
        asm.mov(EAX, EBX)
        asm.sub(EAX, 2)
        asm.call("fib")
        asm.pop(EBX)
        asm.add(EAX, EBX)
        asm.ret()
        asm.label("base")
        asm.ret()
    result, controller = run(body)
    assert controller.x86.state.get("EDI") == 144


def test_store_load_aliasing_patterns_survive_speculation():
    # Loads and stores through different registers that sometimes alias:
    # exercises sld32/st32chk and the alias table.
    def body(asm):
        asm.data(0xA000, pack_u32s(range(16)))
        asm.mov(EBP, 0xA000)
        asm.mov(ESI, 0xA000)
        asm.mov(EAX, 0)
        with asm.counted_loop(ECX, 200):
            asm.mov(EBX, M(ESI, disp=4))     # load, may-alias next store
            asm.mov(M(EBP, disp=4), ECX)     # store to same address!
            asm.mov(EDX, M(ESI, disp=4))     # reload
            asm.add(EAX, EDX)
        asm.mov(EDI, EAX)
        asm.exit(0)
    result, controller = run(body)
    # Validation proves correctness regardless of speculation failures.
    expected = sum(range(1, 201))
    assert controller.x86.state.get("EDI") == expected


def test_chaining_links_units():
    def body(asm):
        asm.mov(EAX, 0)
        with asm.counted_loop(ECX, 300):
            asm.inc(EAX)
            asm.cmp(EAX, 0)          # never zero -> biased
            asm.je("never")
            asm.add(EAX, 0)
            asm.label("never")
        asm.exit(0)
    result, controller = run(body)
    tol = controller.codesigned.tol
    assert tol.stats.chains_made > 0


def test_validation_counts_and_exit_codes():
    def body(asm):
        asm.mov(EAX, 1)
        asm.exit(42)
    result, controller = run(body)
    assert result.exit_code == 42
    assert result.validations >= 1
