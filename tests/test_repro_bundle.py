"""Repro bundles, deterministic replay, the ``darco repro`` command and
the delta-debugging minimizer — plus the shared artifact I/O helpers
they are built on.
"""

import json
import pickle

import pytest

from repro.ioutil import (
    SchemaError, atomic_write_bytes, canonical_json, content_hash,
    load_artifact, write_artifact,
)
from repro.resilience.campaign import (
    build_campaign_program, campaign_config,
)
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.snapshot.bundle import load_bundle, replay_bundle, write_bundle
from repro.system.controller import Controller

#: A campaign fault case known to produce a state divergence (found by
#: scanning ``plan_campaign(7, 30)``; pinned so the tests are
#: deterministic).
DIVERGING_FAULT = FaultSpec(site="host_bitflip", ordinal=2,
                            salt=0xF2A74DE4)


def _faulted_controller(mode="recover"):
    controller = Controller(build_campaign_program(),
                            config=campaign_config(mode))
    FaultInjector(DIVERGING_FAULT).attach(controller.codesigned.tol)
    return controller


# ---------------------------------------------------------------------------
# Shared artifact I/O (satellite: one atomic-write helper, versioned
# schemas everywhere).
# ---------------------------------------------------------------------------


def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = tmp_path / "sub" / "blob.bin"
    atomic_write_bytes(path, b"payload")
    assert path.read_bytes() == b"payload"
    assert [p.name for p in path.parent.iterdir()] == ["blob.bin"]


def test_canonical_json_is_key_order_independent():
    assert (canonical_json({"b": 1, "a": [2, 3]})
            == canonical_json({"a": [2, 3], "b": 1}))
    assert (content_hash({"x": 1, "y": 2})
            == content_hash({"y": 2, "x": 1}))


def test_artifact_roundtrip_and_corruption_as_miss(tmp_path):
    path = tmp_path / "thing.json"
    write_artifact(path, "thing", 3, {"n": 42})
    assert load_artifact(path, "thing", 3) == {"n": 42}

    path.write_text(path.read_text()[:-40])  # truncate
    assert load_artifact(path, "thing", 3, missing_ok=True) is None
    with pytest.raises(SchemaError):
        load_artifact(path, "thing", 3)
    assert load_artifact(tmp_path / "absent.json", "thing", 3,
                         missing_ok=True) is None


def test_result_cache_uses_corruption_as_miss(tmp_path):
    from repro.harness.parallel import _MISS, ResultCache
    cache = ResultCache(tmp_path)
    cache.put("deadbeef", {"v": 1})
    assert cache.get("deadbeef") == {"v": 1}
    # Corrupt the entry in place: reads as a miss and is dropped.
    path = cache._path("deadbeef")
    path.write_bytes(path.read_bytes()[:5])
    assert cache.get("deadbeef") is _MISS
    assert not path.exists()


def test_incident_log_save_load_roundtrip(tmp_path):
    controller = _faulted_controller("recover")
    controller.run()
    log = controller.codesigned.tol.incidents
    assert len(log) >= 1
    path = tmp_path / "incidents.json"
    log.save(path)
    loaded = type(log).load(path)
    assert loaded.signature() == log.signature()
    assert loaded.kinds() == log.kinds()


# ---------------------------------------------------------------------------
# Bundle emission and deterministic replay.
# ---------------------------------------------------------------------------


def test_incident_run_emits_replayable_bundle(tmp_path):
    controller = _faulted_controller("recover")
    result = controller.run(repro_dir=tmp_path,
                            checkpoint_dir=tmp_path / "ck")
    assert result.incidents >= 1
    assert controller.last_bundle_path is not None

    bundle = load_bundle(controller.last_bundle_path)
    assert bundle.reason == "incidents"
    assert bundle.fault["site"] == DIVERGING_FAULT.site
    assert bundle.checkpoint is not None
    signature = controller.codesigned.tol.incidents.signature()
    assert bundle.incident_signature == signature

    outcome, replayed = replay_bundle(bundle)
    assert outcome.reproduced
    assert outcome.incident_signature == signature


def test_strict_exception_emits_bundle_and_reraises(tmp_path):
    controller = _faulted_controller("strict")
    with pytest.raises(Exception):
        controller.run(repro_dir=tmp_path)
    bundle = load_bundle(controller.last_bundle_path)
    assert bundle.reason == "exception"
    assert bundle.error
    outcome, _ = replay_bundle(bundle)
    assert outcome.reproduced
    assert outcome.error


def test_bundle_emission_never_masks_the_run(tmp_path, monkeypatch):
    """A failing bundle writer must not change the run's outcome."""
    import repro.snapshot.bundle as bundle_mod
    def boom(*args, **kwargs):
        raise OSError("disk full")
    monkeypatch.setattr(bundle_mod, "write_bundle", boom)
    controller = _faulted_controller("recover")
    result = controller.run(repro_dir=tmp_path)
    assert result.exit_code == 0
    assert controller.last_bundle_path is None


def test_manual_bundle_of_clean_run_does_not_reproduce(tmp_path):
    controller = Controller(build_campaign_program(),
                            config=campaign_config("recover"))
    controller.run()
    path = write_bundle(tmp_path, controller, "manual")
    outcome, _ = replay_bundle(load_bundle(path))
    assert not outcome.reproduced


# ---------------------------------------------------------------------------
# The darco repro subcommand (exit codes are the contract).
# ---------------------------------------------------------------------------


def test_cli_repro_exit_codes(tmp_path, capsys):
    from repro.cli import main

    controller = _faulted_controller("recover")
    controller.run(repro_dir=tmp_path)
    bundle_path = str(controller.last_bundle_path)
    assert main(["repro", bundle_path]) == 0
    assert "REPRODUCED" in capsys.readouterr().out

    clean = Controller(build_campaign_program(),
                       config=campaign_config("recover"))
    clean.run()
    clean_path = str(write_bundle(tmp_path, clean, "manual"))
    assert main(["repro", clean_path]) == 2

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["repro", str(bad)]) == 1


# ---------------------------------------------------------------------------
# Delta-debugging minimizer (acceptance: a campaign divergence shrinks
# to <= 10 instructions and still diverges under darco repro).
# ---------------------------------------------------------------------------


def test_minimizer_shrinks_campaign_divergence(tmp_path):
    from repro.cli import main
    from repro.snapshot.minimize import (
        decode_program_instrs, minimize_program,
    )

    program = build_campaign_program()
    config = campaign_config("recover")
    fault = {"site": DIVERGING_FAULT.site,
             "ordinal": DIVERGING_FAULT.ordinal,
             "salt": DIVERGING_FAULT.salt}
    result = minimize_program(program, config, fault=fault)
    assert result.instructions <= 10
    assert result.instructions < result.original_instructions

    # The minimized program still diverges — confirmed end to end by
    # running it and replaying the bundle through darco repro.
    controller = Controller(result.program, config=config)
    FaultInjector(DIVERGING_FAULT).attach(controller.codesigned.tol)
    run = controller.run(repro_dir=tmp_path)
    assert run.incidents >= 1
    assert main(["repro", str(controller.last_bundle_path)]) == 0
    if result.compacted:
        assert (len(result.program.code)
                < len(decode_program_instrs(program))
                * max(i.length for i in decode_program_instrs(program)))


def test_minimizer_rejects_clean_input():
    from repro.snapshot.minimize import minimize_program
    with pytest.raises(ValueError, match="does not diverge"):
        minimize_program(build_campaign_program(),
                         campaign_config("recover"))
