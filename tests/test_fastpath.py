"""Fast-path correctness: closure-compiled execution must be
indistinguishable from the interpretive paths it replaces.

Three layers are covered:

- :func:`repro.tol.ir_eval.compile_ops` closures vs :func:`eval_ops`,
  instruction by instruction on cloned state/memory;
- the IM interpreter with ``fastpath`` on vs off, in lockstep and in
  aggregate accounting (``ir_ops_evaluated`` == sum of per-step ``ir_ops``);
- the host emulator's threaded segments, via full-system counter identity.

Plus the satellite fixes: REP string-op chunking and the
``validate_min_icount_gap`` epoch knob.
"""

import pytest

from repro.guest.assembler import Assembler, EAX, EBX, ECX, EDI, EDX, ESI
from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.guest.syscalls import GuestOS, SYS_WRITE
from repro.system.controller import run_codesigned
from repro.tol.config import TolConfig
from repro.tol.decoder import GisaFrontend
from repro.tol.interp import END, OK, SYSCALL, Interpreter
from repro.tol.ir import ZF, Const, GReg, IRInstr
from repro.tol.ir_eval import (
    EXIT, FALLTHROUGH, IRAssertFailure, compile_ops, eval_ops,
)
from repro.workloads import SyntheticSpec, generate

#: Specs covering every operand class the compiler specializes on:
#: integer ALU + branches, memory, scalar FP, trig, vectors, string ops
#: (string ops stay interpreter-native but exercise the cache-kind split).
SPECS = [
    SyntheticSpec(seed=11, hot_loops=2, trip_count=60, bb_size=8,
                  branchy=True, mem_ops=2),
    SyntheticSpec(seed=23, hot_loops=1, trip_count=50, bb_size=4,
                  fp_ops=2, trig_ops=1, mem_ops=1),
    SyntheticSpec(seed=37, hot_loops=1, trip_count=40, bb_size=3,
                  vec_ops=2, mem_ops=1, branchy=False),
]


def _fresh(program):
    memory = PagedMemory()
    program.load_into(memory)
    state = GuestState()
    state.eip = program.entry
    state.set("ESP", program.stack_top)
    return state, memory


def _clone_memory(memory):
    clone = PagedMemory()
    for page in memory.present_pages():
        clone.install_page(page, memory.export_page(page))
    return clone


def _run(interp, os, on_step=None, max_steps=200_000):
    per_step_ops = 0
    while True:
        result = interp.step()
        per_step_ops += result.ir_ops
        if on_step is not None:
            on_step(result)
        if result.status == SYSCALL:
            os.execute(interp.state, interp.memory)
            per_step_ops += interp.advance_past_syscall()
            if os.exited:
                return per_step_ops
        elif result.status == END:
            return per_step_ops
        max_steps -= 1
        assert max_steps > 0, "interpreter did not finish"


# -- compile_ops vs eval_ops, instruction for instruction ---------------------


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: f"seed{s.seed}")
def test_compiled_closure_matches_eval_ops_per_instruction(spec):
    """At every decode address reached by a real run, the compiled closure
    and eval_ops must produce identical (outcome, pc) and identical
    architectural + memory effects from identical inputs."""
    program = generate(spec)
    state, memory = _fresh(program)
    frontend = GisaFrontend()
    interp = Interpreter(frontend, state, memory, fastpath=False)
    os = GuestOS()
    compiled = 0
    checked_pcs = set()

    def check(_result):
        pc = state.eip
        if pc in checked_pcs:
            return
        checked_pcs.add(pc)
        decoded, fn = frontend.decode_compiled(memory, pc)
        if fn is None or not decoded.ops or decoded.interpreter_only:
            return
        if decoded.guest.mnemonic in ("SYSCALL", "HLT"):
            return
        nonlocal compiled
        compiled += 1
        s_ref, s_fast = state.copy(), state.copy()
        m_ref, m_fast = _clone_memory(memory), _clone_memory(memory)
        ref = eval_ops(decoded.ops, s_ref, m_ref)
        fast = fn(s_fast, m_fast)
        assert fast == ref, f"outcome mismatch at {pc:#x}: {decoded.ops}"
        assert not s_fast.diff(s_ref), (
            f"state mismatch at {pc:#x}: {s_fast.diff(s_ref)}")
        mismatch = m_fast.first_difference(m_ref,
                                           list(m_ref.present_pages()))
        assert mismatch is None, f"memory mismatch at {pc:#x}: {mismatch}"

    _run(interp, os, on_step=check)
    assert os.exited and os.exit_code == 0
    # The compiler must cover the bulk of real decode addresses, not just
    # a token few.
    assert compiled > 20


def test_compile_ops_covers_superblock_control_ops():
    """assert/side-exit/guard ops (superblock-only IR, never produced by
    the decoder) compile to the same behaviour as eval_ops."""
    a, b = GReg(0), GReg(1)

    passing = [
        IRInstr("mov", dst=a, srcs=(Const(5),)),
        IRInstr("cmpeq", dst=ZF, srcs=(a, Const(5))),
        IRInstr("assert_true", srcs=(ZF,)),
        IRInstr("side_exit_true", srcs=(b,), attrs={"target_pc": 0x900}),
        IRInstr("guard_exit_false", srcs=(ZF,), attrs={"target_pc": 0x800}),
        IRInstr("exit", attrs={"next_pc": 0x1234}),
    ]
    fn = compile_ops(passing)
    assert fn is not None
    state = GuestState()
    ref_state = state.copy()
    memory = PagedMemory()
    assert fn(state, memory) == (EXIT, 0x1234)
    assert eval_ops(passing, ref_state, memory) == (EXIT, 0x1234)
    assert not state.diff(ref_state)

    # A failing assert raises IRAssertFailure on both paths, leaving the
    # same partial state behind.
    failing = [
        IRInstr("mov", dst=a, srcs=(Const(1),)),
        IRInstr("assert_false", srcs=(a,)),
        IRInstr("mov", dst=b, srcs=(Const(99),)),
    ]
    fn = compile_ops(failing)
    state, ref_state = GuestState(), GuestState()
    with pytest.raises(IRAssertFailure):
        fn(state, memory)
    with pytest.raises(IRAssertFailure):
        eval_ops(failing, ref_state, memory)
    assert not state.diff(ref_state)
    assert state.gpr[1] != 99          # ops after the assert never ran

    # A triggering side exit leaves the region at its target.
    exiting = [
        IRInstr("mov", dst=a, srcs=(Const(0),)),
        IRInstr("side_exit_false", srcs=(a,), attrs={"target_pc": 0x700}),
        IRInstr("mov", dst=b, srcs=(Const(99),)),
    ]
    fn = compile_ops(exiting)
    state = GuestState()
    assert fn(state, memory) == (EXIT, 0x700)
    assert state.gpr[1] != 99


# -- interpreter: fastpath on vs off ------------------------------------------


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: f"seed{s.seed}")
def test_interpreter_fastpath_lockstep_with_slow_path(spec):
    program = generate(spec)
    fast_state, fast_memory = _fresh(program)
    slow_state, slow_memory = _fresh(program)
    fast = Interpreter(GisaFrontend(), fast_state, fast_memory,
                       fastpath=True)
    slow = Interpreter(GisaFrontend(), slow_state, slow_memory,
                       fastpath=False)
    fast_os, slow_os = GuestOS(), GuestOS()
    for step in range(200_000):
        rf, rs = fast.step(), slow.step()
        assert (rf.status, rf.ir_ops, rf.ended_bb, rf.completed) == \
            (rs.status, rs.ir_ops, rs.ended_bb, rs.completed), \
            f"step result diverged at step {step}"
        diff = fast_state.diff(slow_state)
        assert not diff, f"state diverged at step {step}: {diff}"
        if rf.status == SYSCALL:
            fast_os.execute(fast_state, fast_memory)
            slow_os.execute(slow_state, slow_memory)
            fast.advance_past_syscall()
            slow.advance_past_syscall()
            if fast_os.exited:
                break
        elif rf.status == END:
            break
    else:
        raise AssertionError("did not finish")
    assert fast.icount == slow.icount
    assert fast.ir_ops_evaluated == slow.ir_ops_evaluated
    assert fast_os.stdout == slow_os.stdout


@pytest.mark.parametrize("fastpath", [True, False],
                         ids=["fast", "slow"])
def test_ir_ops_evaluated_equals_per_step_sum(fastpath):
    """Satellite fix: ir_ops_evaluated must equal the sum of per-step
    ir_ops plus the advance_past_syscall contributions — on both paths,
    string ops and syscalls included."""
    def body(asm):
        data = asm.data(0x7000, bytes(512))
        asm.mov(ESI, data)
        asm.mov(EDI, 0x7200)
        asm.mov(ECX, 64)
        asm.rep_movsd()
        msg = asm.data(0x7400, b"hi")
        asm.mov(EAX, SYS_WRITE)
        asm.mov(EBX, 1)
        asm.mov(ECX, msg)
        asm.mov(EDX, 2)
        asm.syscall()
        asm.exit(0)
    asm = Assembler()
    body(asm)
    program = asm.program()
    state, memory = _fresh(program)
    interp = Interpreter(GisaFrontend(), state, memory, fastpath=fastpath)
    per_step = _run(interp, GuestOS())
    assert per_step == interp.ir_ops_evaluated
    assert interp.ir_ops_evaluated > 0


def test_rep_string_op_chunked_and_restartable():
    """Satellite fix: a REP with a large count yields in bounded chunks
    (completed=False), decrementing ECX as it goes; EIP and icount only
    advance when the count reaches zero."""
    def body(asm):
        asm.data(0x7000, bytes(4 * 64))
        asm.mov(ESI, 0x7000)
        asm.mov(EDI, 0x7400)
        asm.mov(ECX, 10)
        asm.rep_movsd()
        asm.exit(0)
    asm = Assembler()
    body(asm)
    program = asm.program()
    state, memory = _fresh(program)
    interp = Interpreter(GisaFrontend(), state, memory)
    interp.string_chunk_elements = 4          # force chunking
    for _ in range(3):                        # the leading movs
        assert interp.step().status == OK
    rep_eip = state.eip
    icount_before = interp.icount

    r1 = interp.step()
    assert (r1.completed, r1.ir_ops) == (False, 4 * 3)
    assert state.get("ECX") == 6
    assert state.eip == rep_eip               # still on the REP
    assert interp.icount == icount_before     # not retired yet

    r2 = interp.step()
    assert (r2.completed, state.get("ECX")) == (False, 2)

    r3 = interp.step()
    assert (r3.completed, r3.ir_ops) == (True, 2 * 3)
    assert state.get("ECX") == 0
    assert state.eip != rep_eip
    assert interp.icount == icount_before + 1
    # Accounting covered all 10 elements exactly once.
    assert r1.ir_ops + r2.ir_ops + r3.ir_ops == 10 * 3


# -- host emulator fast path: full-system identity -----------------------------


def test_host_fastpath_full_system_identity():
    """With fast paths on vs off, every simulated quantity must be
    byte-identical: only wall-clock is allowed to change."""
    spec = SyntheticSpec(seed=5, hot_loops=2, trip_count=400, bb_size=6,
                        branchy=True, mem_ops=1, fp_ops=1)
    base = dict(bbm_threshold=3, sbm_threshold=8)

    def run(fast):
        result, controller = run_codesigned(
            generate(spec),
            config=TolConfig(interp_fastpath=fast, host_fastpath=fast,
                             **base))
        tol = controller.codesigned.tol
        return result, tol

    result_fast, tol_fast = run(True)
    result_slow, tol_slow = run(False)
    assert result_fast.exit_code == result_slow.exit_code == 0
    assert result_fast.guest_icount == result_slow.guest_icount
    assert result_fast.stdout == result_slow.stdout
    assert result_fast.validations == result_slow.validations
    assert tol_fast.host.host_insns_total == tol_slow.host.host_insns_total
    assert tol_fast.host.host_insns_wasted == tol_slow.host.host_insns_wasted
    assert tol_fast.mode_distribution() == tol_slow.mode_distribution()
    assert tol_fast.interp.ir_ops_evaluated == \
        tol_slow.interp.ir_ops_evaluated
    assert tol_fast.overhead.counters == tol_slow.overhead.counters
    # The fast run must actually have exercised translated units.
    assert tol_fast.mode_distribution()["BBM"] > 0


# -- direct (IR-less) tier: full-system identity --------------------------------

#: Counters that legitimately differ with the direct tier on: they
#: describe *how* the simulator executed (wall-clock bookkeeping), not
#: any simulated quantity.
DIRECT_WALLCLOCK_COUNTERS = (
    "host.fastpath.", "host.slowpath.", "host.direct.", "tol.direct",
    # Fuzzer coverage edges for the direct tier count promotions and
    # strips — which-path instrumentation, not simulated quantities.
    # (cov.exit/cov.shape/cov.quarantine stay under the identity
    # contract: direct programs must mirror exit accounting exactly.)
    "cov.direct.",
)


def _simulated_counters(snapshot):
    return {name: value for name, value in snapshot.counters.items()
            if not name.startswith(DIRECT_WALLCLOCK_COUNTERS)}


def test_direct_tier_full_system_identity():
    """With the direct tier on vs off, every simulated quantity —
    retired-per-mode counts, overhead breakdown, host accounting,
    telemetry counters, guest-visible output — must be bit-identical;
    only the wall-clock path counters may differ."""
    from repro.workloads import get_workload
    base = dict(bbm_threshold=3, sbm_threshold=8,
                direct_promote_threshold=20, telemetry="counters")

    def run(direct):
        program = get_workload("429.mcf").program(scale=0.1)
        result, controller = run_codesigned(
            program, config=TolConfig(direct_enable=direct, **base))
        return result, controller.codesigned.tol

    result_on, tol_on = run(True)
    result_off, tol_off = run(False)
    assert result_on.exit_code == result_off.exit_code == 0
    assert result_on.guest_icount == result_off.guest_icount
    assert result_on.stdout == result_off.stdout
    assert result_on.validations == result_off.validations
    assert tol_on.mode_distribution() == tol_off.mode_distribution()
    assert tol_on.overhead.counters == tol_off.overhead.counters
    host_on, host_off = tol_on.host, tol_off.host
    assert host_on.host_insns_total == host_off.host_insns_total
    assert host_on.host_insns_committed == host_off.host_insns_committed
    assert host_on.host_insns_wasted == host_off.host_insns_wasted
    assert host_on.guest_retired_total == host_off.guest_retired_total
    assert host_on.ibtc.hits == host_off.ibtc.hits
    assert host_on.ibtc.misses == host_off.ibtc.misses
    assert _simulated_counters(result_on.telemetry) == \
        _simulated_counters(result_off.telemetry)
    # The comparison is only meaningful if the tier actually ran.
    assert tol_on.stats.direct_promotions > 0
    assert host_on.direct_entries > 0
    assert host_on.direct_insns > 0
    assert host_off.direct_entries == 0


def test_direct_tier_traced_timing_identity():
    """Under a timing trace the direct tier compiles its traced variant
    (per-instruction records delivered segment-batched); the cycle-level
    report must be identical to the tier-off run."""
    from repro.timing.run import run_with_timing

    # An unrolled self-contained loop never re-enters its unit (internal
    # back-jump), so use a branchy multi-unit loop; speculation stays off
    # so quarantine churn cannot block promotion on this short run.
    spec = SyntheticSpec(seed=5, hot_loops=2, trip_count=400, bb_size=6,
                         branchy=True, mem_ops=1, fp_ops=1)
    base = dict(bbm_threshold=3, sbm_threshold=8,
                direct_promote_threshold=20, mem_speculation=False)

    def run(direct):
        result, controller, core = run_with_timing(
            generate(spec),
            tol_config=TolConfig(direct_enable=direct, **base),
            include_tol_overhead=True, validate=False)
        assert result.exit_code == 0
        return result, controller.codesigned.tol, core

    result_on, tol_on, core_on = run(True)
    result_off, tol_off, core_off = run(False)
    assert result_on.guest_icount == result_off.guest_icount
    assert tol_on.host.host_insns_total == tol_off.host.host_insns_total
    assert core_on.report() == core_off.report()
    # The traced run really executed through traced direct programs.
    assert tol_on.host.direct_entries > 0
    assert any(getattr(u, "_directprog_traced", None) is not None
               for u in tol_on.cache.units())
    assert all(getattr(u, "_directprog_traced", None) is None
               for u in tol_off.cache.units())


# -- validation epoch ----------------------------------------------------------


def test_validate_min_icount_gap_amortizes_validation():
    def body(asm):
        msg = asm.data(0xB000, b"x")
        with asm.counted_loop(EDI, 8):
            asm.mov(EAX, SYS_WRITE)
            asm.mov(EBX, 1)
            asm.mov(ECX, msg)
            asm.mov(EDX, 1)
            asm.syscall()
        asm.exit(0)
    asm = Assembler()
    body(asm)
    program = asm.program()

    seed_cfg = TolConfig(bbm_threshold=3, sbm_threshold=8)
    result, _ = run_codesigned(program, config=seed_cfg)
    assert result.validations == result.syscalls + 1   # seed behaviour

    asm2 = Assembler()
    body(asm2)
    huge = TolConfig(bbm_threshold=3, sbm_threshold=8,
                     validate_min_icount_gap=10**9)
    result2, _ = run_codesigned(asm2.program(), config=huge)
    assert result2.syscalls == result.syscalls
    assert result2.validations == 1                    # final comparison only

    asm3 = Assembler()
    body(asm3)
    modest = TolConfig(bbm_threshold=3, sbm_threshold=8,
                       validate_min_icount_gap=20)
    result3, _ = run_codesigned(asm3.program(), config=modest)
    assert 1 <= result3.validations <= result.validations


# -- host fast path under a timing trace ---------------------------------------


def test_host_fastpath_traced_timing_identity():
    """Compiled segments now stay active while a trace sink is attached,
    delivering each segment's records after it executes.  The timing
    simulation must be cycle-identical to the slow traced path, and the
    fast run must actually compile segments."""
    from repro.timing.run import run_with_timing

    spec = SyntheticSpec(seed=5, hot_loops=2, trip_count=400, bb_size=6,
                        branchy=True, mem_ops=1, fp_ops=1)
    base = dict(bbm_threshold=3, sbm_threshold=8)

    def run(fast):
        result, controller, core = run_with_timing(
            generate(spec),
            tol_config=TolConfig(interp_fastpath=fast,
                                 host_fastpath=fast, **base),
            include_tol_overhead=True, validate=False)
        assert result.exit_code == 0
        tol = controller.codesigned.tol
        return result, tol, core

    result_fast, tol_fast, core_fast = run(True)
    result_slow, tol_slow, core_slow = run(False)
    assert result_fast.guest_icount == result_slow.guest_icount
    assert tol_fast.host.host_insns_total == tol_slow.host.host_insns_total
    # Cycle-level identity: the record stream the core saw is the same.
    assert core_fast.report() == core_slow.report()
    # The traced fast run really used compiled segments.
    assert any(getattr(u, "_fastprog", None) is not None
               for u in tol_fast.cache.units())
    assert all(getattr(u, "_fastprog", None) is None
               for u in tol_slow.cache.units())
