"""Tests for the §III design-choice mechanisms: dual decoder, serial
alias-table search, hardware-assisted profiling, background translation."""

import pytest

from repro.guest.assembler import Assembler, EAX, EBX, ECX, EDI, ESI, M
from repro.guest.program import pack_u32s
from repro.tol.config import TolConfig
from repro.system.controller import run_codesigned
from repro.workloads.generator import SyntheticSpec, generate


def startup_heavy_program():
    """Lots of once-executed code plus a moderate loop: startup-delay
    dominated, like an application launch."""
    spec = SyntheticSpec(seed=42, hot_loops=1, trip_count=150, bb_size=4,
                         branchy=True, mem_ops=1, cold_stanzas=40)
    return generate(spec)


def spec_heavy_program():
    """Load/store pairs through different registers: exercises the alias
    table intensely."""
    asm = Assembler()
    asm.data(0xA000, pack_u32s(range(32)))
    asm.mov(EBX, 0xA000)
    asm.mov(ESI, 0xA000)
    asm.mov(EAX, 0)
    with asm.counted_loop(ECX, 600):
        asm.mov(EDI, M(ESI, disp=4))
        asm.mov(M(EBX, disp=8), ECX)
        asm.mov(EDI, M(ESI, disp=12))
        asm.mov(M(EBX, disp=16), EDI)
        asm.add(EAX, EDI)
    asm.mov(EDI, EAX)
    asm.exit(0)
    return asm.program()


BASE = TolConfig(bbm_threshold=5, sbm_threshold=20)


def run(program, **overrides):
    from dataclasses import replace
    config = replace(BASE, **overrides)
    return run_codesigned(program, config=config)


# -- dual decoder (startup delay, Denver vs Crusoe) ---------------------------


def test_dual_decoder_correct_and_removes_interpretation_overhead():
    program = startup_heavy_program()
    soft_result, soft = run(program)
    hw_result, hw = run(startup_heavy_program(), dual_decoder=True)
    assert soft_result.exit_code == hw_result.exit_code == 0
    soft_tol = soft.codesigned.tol
    hw_tol = hw.codesigned.tol
    # Same dynamic guest stream either way.
    assert soft_result.guest_icount == hw_result.guest_icount
    # The hardware decoder eliminates software interpretation overhead...
    assert hw_tol.overhead.counters["interpreter"] < \
        soft_tol.overhead.counters["interpreter"] / 3
    # ... moving cold-code execution into the application stream.
    assert hw_tol.app_host_insns > hw_tol.host.host_insns_total
    assert hw_tol.overhead_fraction() < soft_tol.overhead_fraction()


def test_dual_decoder_still_promotes_hot_code():
    _, controller = run(startup_heavy_program(), dual_decoder=True)
    dist = controller.codesigned.tol.mode_distribution()
    assert dist["SBM"] > 0


# -- alias table search policy (speculation detection cost) --------------------


def test_serial_alias_search_charges_per_entry():
    program = spec_heavy_program()
    _, parallel = run(program)
    _, serial = run(spec_heavy_program(), alias_serial_search=True)
    assert parallel.codesigned.tol.host.alias_search_insns == 0
    host = serial.codesigned.tol.host
    if host.alias_search_insns == 0:
        pytest.skip("no speculative pairs were reordered in this build")
    assert serial.codesigned.tol.app_host_insns > \
        parallel.codesigned.tol.app_host_insns


def test_serial_alias_search_preserves_correctness():
    result, controller = run(spec_heavy_program(),
                             alias_serial_search=True)
    assert result.exit_code == 0  # validated against the reference


# -- hardware-assisted profiling -----------------------------------------------


def test_profiling_hw_assist_removes_inline_cost():
    program = startup_heavy_program()
    _, soft = run(program)
    _, hw = run(startup_heavy_program(), profiling_hw_assist=True)
    assert hw.codesigned.tol.host.profile_inline_cost == 0
    # Fewer application host instructions (counters were inline before);
    # edge profiling still works, so superblocks still form.
    assert hw.codesigned.tol.app_host_insns < \
        soft.codesigned.tol.app_host_insns
    assert hw.codesigned.tol.translator.sb_translations >= 1


# -- background translation (when/where to translate) ----------------------------


def test_background_translation_moves_cost_off_the_main_stream():
    program = startup_heavy_program()
    _, fg = run(program)
    _, bg = run(startup_heavy_program(), background_translation=True)
    fg_tol, bg_tol = fg.codesigned.tol, bg.codesigned.tol
    assert bg_tol.background_translation_insns > 0
    assert bg_tol.overhead.counters["bb_translator"] == 0
    assert bg_tol.overhead.counters["sb_translator"] == 0
    # Main-stream overhead shrinks by what moved to the translation core.
    assert bg_tol.tol_overhead_insns < fg_tol.tol_overhead_insns
    moved = bg_tol.background_translation_insns
    charged = (fg_tol.overhead.counters["bb_translator"]
               + fg_tol.overhead.counters["sb_translator"])
    assert abs(moved - charged) <= 0.1 * charged  # same work, new place


def test_combined_design_choices_validate():
    result, controller = run(
        startup_heavy_program(), dual_decoder=True,
        alias_serial_search=True, profiling_hw_assist=True,
        background_translation=True)
    assert result.exit_code == 0
