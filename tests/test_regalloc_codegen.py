"""Unit tests for linear-scan register allocation and code generation."""

import pytest

from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.host.emulator import HostEmulator, TOL_AREA_BASE
from repro.host.isa import GUEST_GPR_HOME
from repro.tol.codegen import CodeGenerator, CodegenError
from repro.tol.ir import (
    Const, GFReg, GReg, IRInstr, Tmp, TmpAllocator,
)
from repro.tol.regalloc import (
    FIRST_SCRATCH_IREG, allocate, home_of,
)

EAX, EBX = GReg(0), GReg(3)


def t(i):
    return Tmp(i)


def _exit(pc=0x2000, gi=1):
    return IRInstr("exit", attrs={"next_pc": pc, "guest_insns": gi})


def gen_unit(ops, uid=1, entry=0x1000, gi=1, mode="BBM"):
    allocation = allocate(ops)
    return CodeGenerator().generate(
        uid=uid, mode=mode, entry_pc=entry, ops=allocation.ops,
        allocation=allocation, guest_insn_count=gi)


def run_unit(unit, state=None, memory=None):
    memory = memory if memory is not None else PagedMemory()
    state = state if state is not None else GuestState()
    emu = HostEmulator(memory)
    event = emu.execute(unit, state)
    return event, state, memory, emu


# -- register allocation -------------------------------------------------------


def test_distinct_live_temps_get_distinct_registers():
    ops = [
        IRInstr("add", t(1), (EAX, Const(1))),
        IRInstr("add", t(2), (EAX, Const(2))),
        IRInstr("add", t(3), (t(1), t(2))),
        IRInstr("mov", EAX, (t(3),)),
        _exit(),
    ]
    result = allocate(ops)
    assert result.assignment[t(1)] != result.assignment[t(2)]
    assert result.spilled == 0


def test_home_coalescing_assigns_home_register():
    ops = [
        IRInstr("add", t(1), (EAX, Const(1))),
        IRInstr("mov", EAX, (t(1),)),
        _exit(),
    ]
    result = allocate(ops)
    assert result.assignment[t(1)] == home_of(EAX)


def test_home_coalescing_blocked_by_later_entry_read():
    ops = [
        IRInstr("add", t(1), (EAX, Const(1))),
        IRInstr("add", t(2), (EAX, Const(2))),   # entry read AFTER t1 def
        IRInstr("mov", EAX, (t(1),)),
        IRInstr("mov", EBX, (t(2),)),
        _exit(),
    ]
    result = allocate(ops)
    assert result.assignment[t(1)] != home_of(EAX)


def test_spilling_under_extreme_pressure_still_correct():
    # More simultaneously-live temps than scratch registers.
    n = 70
    ops = [IRInstr("add", t(i), (EAX, Const(i))) for i in range(1, n)]
    total = Tmp(1000)
    ops.append(IRInstr("mov", total, (t(1),)))
    for i in range(2, n):
        nxt = Tmp(1000 + i)
        ops.append(IRInstr("add", nxt, (total, t(i))))
        total = nxt
    ops.append(IRInstr("mov", EAX, (total,)))
    ops.append(_exit())
    allocation = allocate(ops)
    assert allocation.spilled > 0
    unit = CodeGenerator().generate(
        uid=1, mode="BBM", entry_pc=0x1000, ops=allocation.ops,
        allocation=allocation, guest_insn_count=1)
    event, state, memory, emu = run_unit(unit)
    # sum of (EAX + i) for i in 1..69 with EAX=0 -> sum(1..69)
    assert state.get("EAX") == sum(range(1, n))
    # Spill slots live in the TOL-private area, not guest memory.
    assert not list(memory.present_pages())
    assert list(emu.tol_memory.present_pages())


def test_spill_roundtrip_preserves_every_value():
    n = 60
    ops = [IRInstr("add", t(i), (EAX, Const(i * 7))) for i in range(1, n)]
    for i in range(1, n):
        ops.append(IRInstr("st32", None,
                           (Const(0x8000), t(i)), imm=4 * i))
    ops.append(_exit())
    allocation = allocate(ops)
    unit = CodeGenerator().generate(
        uid=1, mode="BBM", entry_pc=0x1000, ops=allocation.ops,
        allocation=allocation, guest_insn_count=1)
    event, state, memory, emu = run_unit(unit)
    for i in range(1, n):
        assert memory.read_u32(0x8000 + 4 * i) == (i * 7) & 0xFFFFFFFF


# -- code generation -----------------------------------------------------------


def test_codegen_immediate_forms():
    ops = [
        IRInstr("add", t(1), (EAX, Const(5))),
        IRInstr("sub", t(2), (t(1), Const(3))),
        IRInstr("and", t(3), (t(2), Const(0xFF))),
        IRInstr("mov", EAX, (t(3),)),
        _exit(),
    ]
    unit = gen_unit(ops)
    host_ops = [h.op for h in unit.instrs]
    assert "addi32" in host_ops
    assert "andi32" in host_ops
    assert "li" not in host_ops  # everything used an immediate form


def test_codegen_commutative_swap():
    ops = [
        IRInstr("add", t(1), (Const(9), EAX)),
        IRInstr("mov", EBX, (t(1),)),
        _exit(),
    ]
    unit = gen_unit(ops)
    addi = next(h for h in unit.instrs if h.op == "addi32")
    assert addi.imm == 9


def test_codegen_trig_expansion_matches_reference():
    from repro.guest.semantics import gisa_cos, gisa_sin
    for ir_op, ref in (("fsin", gisa_sin), ("fcos", gisa_cos)):
        ops = [
            IRInstr(ir_op, GFReg(0), (GFReg(1),)),
            _exit(),
        ]
        unit = gen_unit(ops)
        assert sum(1 for h in unit.instrs if h.op in
                   ("fmul", "fadd", "fsub", "ffloor", "lif")) > 20
        state = GuestState()
        state.fpr[1] = 1.2345
        event, state, _, _ = run_unit(unit, state=state)
        assert state.fpr[0] == ref(1.2345)


def test_codegen_branch_exit_stubs():
    ops = [
        IRInstr("cmpeq", t(1), (EAX, Const(0))),
        IRInstr("br_true", None, (t(1),),
                attrs={"taken_pc": 0x3000, "fall_pc": 0x1010,
                       "guest_insns": 2}),
    ]
    unit = gen_unit(ops, gi=2)
    exits = [h for h in unit.instrs if h.op == "exit"]
    assert len(exits) == 2
    targets = {h.meta["next_pc"] for h in exits}
    assert targets == {0x3000, 0x1010}
    assert unit.exit_indices and len(unit.exit_indices) == 2

    state = GuestState()
    state.set("EAX", 0)
    event, state, _, _ = run_unit(unit, state=state)
    assert event.next_pc == 0x3000
    state2 = GuestState()
    state2.set("EAX", 7)
    event2, _, _, _ = run_unit(unit, state=state2)
    assert event2.next_pc == 0x1010


def test_codegen_ibtc_vs_plain_indirect():
    ops = [IRInstr("exit_ind", None, (EAX,), attrs={"guest_insns": 1})]
    with_ibtc = CodeGenerator(ibtc_enabled=True)
    without = CodeGenerator(ibtc_enabled=False)
    allocation = allocate(list(ops))
    u1 = with_ibtc.generate(1, "BBM", 0x1000, allocation.ops, allocation, 1)
    u2 = without.generate(2, "BBM", 0x1000, allocation.ops, allocation, 1)
    assert any(h.op == "ibtc" for h in u1.instrs)
    assert any(h.op == "exit_ind" for h in u2.instrs)


def test_codegen_rejects_unallocated_temp():
    from repro.tol.regalloc import AllocationResult
    bogus = AllocationResult(ops=[IRInstr("mov", EAX, (t(999),)), _exit()],
                             assignment={})
    with pytest.raises(CodegenError):
        CodeGenerator().generate(1, "BBM", 0x1000, bogus.ops, bogus, 1)


def test_codegen_unit_starts_with_checkpoint():
    unit = gen_unit([_exit()])
    assert unit.instrs[0].op == "chkpt"
    assert unit.instrs[0].meta["guest_pc"] == 0x1000
