"""Tests for the controller's synchronization protocol (paper §V-A):
initialization, data requests, syscall routing, dirty-page propagation,
validation cadence, and pause/resume."""

import pytest

from repro.guest.assembler import (
    Assembler, EAX, EBX, ECX, EDX, EDI, ESI, M,
)
from repro.guest.program import pack_u32s
from repro.guest.syscalls import SYS_RAND, SYS_READ, SYS_WRITE, GuestOS
from repro.tol.config import TolConfig
from repro.system.controller import (
    Controller, SystemError_, ValidationError, run_codesigned,
)
from repro.system.x86comp import ProcessTracker, X86Component

FAST = TolConfig(bbm_threshold=3, sbm_threshold=8)


def build(fn):
    asm = Assembler()
    fn(asm)
    return asm.program()


def test_process_tracker_initialized_on_launch():
    program = build(lambda asm: asm.exit(0))
    component = X86Component(program)
    assert not component.tracker.launched
    component.launch()
    assert component.tracker.launched
    assert component.tracker.asid != 0
    assert component.tracker.entry_pc == program.entry


def test_codesigned_memory_is_lazy():
    def body(asm):
        asm.data(0x9000, pack_u32s([5]))
        asm.mov(EBX, M(None, disp=0x9000))
        asm.mov(EDI, EBX)
        asm.exit(0)
    controller = Controller(build(body), config=FAST)
    controller.initialize()
    # Before running, the co-designed component holds no pages at all.
    assert not list(controller.codesigned.memory.present_pages())
    controller.run()
    pages = set(controller.codesigned.memory.present_pages())
    assert 0x9 in pages        # data page arrived on demand
    assert 0x1 in pages        # code page arrived on demand
    # Untouched pages were never transferred.
    assert 0x8 not in pages


def test_syscall_read_propagates_dirty_pages():
    def body(asm):
        asm.mov(EAX, SYS_READ)
        asm.mov(EBX, 0)
        asm.mov(ECX, 0xA000)         # buffer
        asm.mov(EDX, 8)
        asm.syscall()
        # The co-designed component must see the bytes the x86 component's
        # syscall wrote.
        asm.mov(ESI, M(None, disp=0xA000))
        asm.mov(EDI, M(None, disp=0xA004))
        asm.exit(0)
    # Touch the buffer first so the co-designed component has the page
    # *before* the syscall (forcing the dirty-page propagation path).
    def body2(asm):
        asm.mov(ESI, M(None, disp=0xA000))  # fault the page in early
        body(asm)
    result, controller = run_codesigned(
        build(body2), config=FAST, os=GuestOS(stdin=b"ABCDEFGH"))
    assert result.exit_code == 0
    assert controller.x86.state.get("ESI") == 0x44434241  # 'ABCD'
    assert controller.x86.state.get("EDI") == 0x48474645  # 'EFGH'


def test_syscall_results_visible_to_codesigned():
    def body(asm):
        asm.mov(EAX, SYS_RAND)
        asm.syscall()
        asm.mov(EDI, EAX)       # syscall result must flow back
        asm.exit(0)
    result, controller = run_codesigned(build(body), config=FAST)
    assert controller.x86.state.get("EDI") != 0
    assert controller.codesigned.state.get("EDI") == \
        controller.x86.state.get("EDI")


def test_stdout_interleaving_across_hot_code():
    def body(asm):
        msg = asm.data(0xB000, b"ab")
        with asm.counted_loop(EDI, 25):
            asm.mov(EAX, SYS_WRITE)
            asm.mov(EBX, 1)
            asm.mov(ECX, msg)
            asm.mov(EDX, 2)
            asm.syscall()
        asm.exit(0)
    result, _ = run_codesigned(build(body), config=FAST)
    assert result.stdout == b"ab" * 25


def test_validation_cadence_config():
    def body(asm):
        msg = asm.data(0xB000, b"x")
        with asm.counted_loop(EDI, 10):
            asm.mov(EAX, SYS_WRITE)
            asm.mov(EBX, 1)
            asm.mov(ECX, msg)
            asm.mov(EDX, 1)
            asm.syscall()
        asm.exit(0)
    every = TolConfig(bbm_threshold=3, sbm_threshold=8, validate_every=1)
    result, _ = run_codesigned(build(body), config=every)
    assert result.validations == result.syscalls + 1  # + final

    sparse = TolConfig(bbm_threshold=3, sbm_threshold=8, validate_every=5)
    result2, _ = run_codesigned(build(body), config=sparse)
    assert result2.validations < result.validations
    assert result2.validations >= 2


def test_validate_disabled_still_runs():
    def body(asm):
        asm.mov(EAX, 1)
        asm.exit(3)
    result, _ = run_codesigned(build(body), config=FAST, validate=False)
    assert result.exit_code == 3
    assert result.validations == 0


def test_pause_and_resume_mid_run():
    def body(asm):
        asm.mov(EAX, 0)
        with asm.counted_loop(ECX, 2000):
            asm.inc(EAX)
        asm.mov(EDI, EAX)
        asm.exit(0)
    controller = Controller(build(body), config=FAST)
    paused = controller.run(until_icount=1500)
    assert paused.exit_code is None
    assert paused.guest_icount >= 1500
    # Resume to completion.
    final = controller.run()
    assert final.exit_code == 0
    assert controller.x86.state.get("EDI") == 2000


def _write_loop(iterations=6):
    def body(asm):
        msg = asm.data(0xB000, b"x")
        with asm.counted_loop(EDI, iterations):
            asm.mov(EAX, SYS_WRITE)
            asm.mov(EBX, 1)
            asm.mov(ECX, msg)
            asm.mov(EDX, 1)
            asm.syscall()
        asm.exit(0)
    return build(body)


def test_strict_mode_raises_on_divergence():
    """``recovery_mode="strict"`` (the default) still turns the first
    emulated/authoritative mismatch into a hard ValidationError."""
    controller = Controller(_write_loop(), config=FAST)
    controller.run(until_icount=20)
    controller.codesigned.state.set("ESI", 0xDEAD)   # inject divergence
    with pytest.raises(ValidationError) as excinfo:
        controller.run()
    assert "ESI" in str(excinfo.value.state_diff)


def test_recover_mode_resyncs_and_completes():
    """The same injected divergence in ``recover`` mode becomes an
    incident: state resynced from the x86 component, run completes with
    the authoritative result."""
    config = TolConfig(bbm_threshold=3, sbm_threshold=8,
                       recovery_mode="recover")
    controller = Controller(_write_loop(), config=config)
    controller.run(until_icount=20)
    controller.codesigned.state.set("ESI", 0xDEAD)
    result = controller.run()
    assert result.exit_code == 0
    assert result.recoveries >= 1
    assert result.incidents >= 1
    assert result.stdout == b"x" * 6
    assert controller.codesigned.state.get("ESI") == \
        controller.x86.state.get("ESI")
    assert controller.codesigned.tol.incidents.count("state_divergence") >= 1


def test_event_budget_exhaustion_diagnostic():
    """A blown event budget raises SystemError_ with a debuggable
    snapshot instead of a bare counter."""
    controller = Controller(_write_loop(iterations=10), config=FAST)
    with pytest.raises(SystemError_) as excinfo:
        controller.run(max_events=2)
    message = str(excinfo.value)
    assert "event budget exhausted" in message
    assert "mode_distribution" in message
    assert "recent_dispatches" in message
    assert "guest_icount" in message


def test_event_budget_config_field():
    config = TolConfig(bbm_threshold=3, sbm_threshold=8, event_budget=2)
    with pytest.raises(SystemError_):
        Controller(_write_loop(iterations=10), config=config).run()
    # A generous budget (the default) lets the same program finish.
    result, _ = run_codesigned(_write_loop(iterations=10), config=FAST)
    assert result.exit_code == 0


def test_guest_icounts_stay_synchronized():
    def body(asm):
        asm.mov(EAX, 0)
        with asm.counted_loop(ECX, 500):
            asm.add(EAX, 2)
        asm.exit(0)
    controller = Controller(build(body), config=FAST)
    result = controller.run()
    assert controller.x86.icount == controller.codesigned.guest_icount
