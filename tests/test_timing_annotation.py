"""Differential identity suite for the cycle-annotated timing path
(ISSUE 7): with annotation on, off, or tiered up to generated per-unit
appliers, ``InOrderCore.report()`` must be cycle-for-cycle identical —
the annotation layer only changes simulator wall-clock, never results.
"""

import pytest

import repro.timing.annotate as annotate
from repro.timing.annotate import (
    build_static_profile, compile_applier, resolve_annotation,
)
from repro.timing.core import InOrderCore
from repro.timing.run import run_with_timing
from repro.timing.trace import (
    FALLBACK_SAMPLING, FALLBACK_UNANNOTATABLE, TimingSession,
)
from repro.tol.config import TolConfig
from repro.workloads import SyntheticSpec, generate, get_workload

FAST = dict(bbm_threshold=3, sbm_threshold=8)
DIRECT = dict(bbm_threshold=3, sbm_threshold=8,
              direct_promote_threshold=20, mem_speculation=False)

#: the identity matrix: integer, FP, string/dispatch and syscall-heavy
#: behaviour (name -> (workload, program scale)).
WORKLOADS = {
    "int": ("401.bzip2", 0.1),
    "fp": ("450.soplex", 0.1),
    "string": ("400.perlbench", 0.05),
    "syscall": ("ticker", 0.5),
}


def _run(name, tol_kwargs, annotate_on, recovery_mode="strict"):
    workload, scale = WORKLOADS[name]
    program = get_workload(workload).program(scale=scale)
    result, controller, core = run_with_timing(
        program,
        tol_config=TolConfig(recovery_mode=recovery_mode, **tol_kwargs),
        validate=False, annotate=annotate_on)
    assert result.exit_code == 0
    host = controller.codesigned.tol.host
    session = host.trace_sink.__self__
    return core.report(), dict(core.stats.by_class), session


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("tier,tol_kwargs",
                         [("fastpath", FAST), ("direct", DIRECT)])
def test_annotation_identity(name, tier, tol_kwargs):
    on_report, on_classes, on_session = _run(name, tol_kwargs, True)
    off_report, off_classes, off_session = _run(name, tol_kwargs, False)
    assert on_report == off_report
    assert on_classes == off_classes
    # The comparison is only meaningful if the fast path actually ran.
    assert on_session.fastpath_insns > 0
    assert on_session.fastpath_batches > 0
    assert off_session.fastpath_insns == 0


@pytest.mark.parametrize("tier,tol_kwargs",
                         [("fastpath", FAST), ("direct", DIRECT)])
def test_annotation_identity_recover_mode(tier, tol_kwargs):
    on_report, _, _ = _run("syscall", tol_kwargs, True,
                           recovery_mode="recover")
    off_report, _, _ = _run("syscall", tol_kwargs, False,
                            recovery_mode="recover")
    assert on_report == off_report


@pytest.mark.parametrize("tier,tol_kwargs",
                         [("fastpath", FAST), ("direct", DIRECT)])
def test_annotation_identity_with_compiled_appliers(
        tier, tol_kwargs, monkeypatch):
    """Force the generated-applier tier on from the first batch; the
    report must still match the per-instruction path exactly."""
    monkeypatch.setattr(annotate, "COMPILE_AT_PER_INSN", 0)
    monkeypatch.setattr(annotate, "COMPILE_AT_BASE", 0)
    on_report, on_classes, on_session = _run("int", tol_kwargs, True)
    off_report, off_classes, _ = _run("int", tol_kwargs, False)
    assert on_report == off_report
    assert on_classes == off_classes
    assert on_session.compiled_units > 0


def test_annotated_run_is_deterministic():
    spec = SyntheticSpec(seed=9, hot_loops=2, trip_count=300, bb_size=6,
                         branchy=True, mem_ops=1, fp_ops=1)
    reports = []
    for _ in range(2):
        _, _, core = run_with_timing(
            generate(spec), tol_config=TolConfig(**FAST),
            validate=False, annotate=True)
        reports.append(core.report())
    assert reports[0] == reports[1]


# -- unit-level differential: one unit, three delivery paths ------------------


def _translate_units(spec):
    """Run once and harvest translated units with their record shape."""
    result, controller, _ = run_with_timing(
        generate(spec), tol_config=TolConfig(**FAST), validate=False)
    assert result.exit_code == 0
    return list(controller.codesigned.tol.cache.units())


def _synth_records(profile):
    """A plausible execution stream: straight-line, branches not taken,
    rolling load/store addresses."""
    records = []
    for k, (_pc, _line, kind, _klass, _dst, _srcs, _tpc) in \
            enumerate(profile):
        if kind == annotate.KIND_BRANCH:
            records.append((k, {"taken": False}))
        elif kind in (annotate.KIND_LOAD, annotate.KIND_STORE):
            records.append((k, {"mem_addr": 0xE000_0000 + (k * 8) % 4096}))
        else:
            records.append((k, None))
    return records


def test_compiled_applier_matches_generic_and_per_record():
    spec = SyntheticSpec(seed=5, hot_loops=2, trip_count=400, bb_size=8,
                         branchy=True, mem_ops=1, fp_ops=1)
    units = [u for u in _translate_units(spec) if len(u.instrs) >= 8]
    assert units
    unit = max(units, key=lambda u: len(u.instrs))
    profile = build_static_profile(unit)
    batch = _synth_records(profile) * 7

    core_per = InOrderCore()
    session = TimingSession(core_per, annotate=False)
    session.sink_batch(unit, list(batch))

    core_gen = InOrderCore()
    ann_gen = resolve_annotation(unit, core_gen)
    core_gen.feed_unit(ann_gen, list(batch))

    core_cmp = InOrderCore()
    fn = compile_applier(unit, core_cmp)
    assert fn is not None
    assert fn(list(batch)) is None

    assert core_per.report() == core_gen.report() == core_cmp.report()
    assert dict(core_per.stats.by_class) == dict(core_gen.stats.by_class) \
        == dict(core_cmp.stats.by_class)


def test_compiled_applier_bails_on_non_leader_entry():
    """A batch entering mid-run (pause flush) makes the dispatcher
    return the unconsumed position instead of guessing."""
    spec = SyntheticSpec(seed=5, hot_loops=1, trip_count=200, bb_size=8,
                         branchy=False, mem_ops=1, fp_ops=0)
    units = [u for u in _translate_units(spec) if len(u.instrs) >= 6]
    unit = max(units, key=lambda u: len(u.instrs))
    profile = build_static_profile(unit)
    records = _synth_records(profile)
    # Find a non-leader index: an instruction whose predecessor is not
    # branch-class (and that is not a branch target).
    leaders = {0}
    for k, entry in enumerate(profile):
        if entry[2] == annotate.KIND_BRANCH:
            leaders.add(k + 1)
    for ins in unit.instrs:
        if ins.target is not None:
            leaders.add(ins.target)
    non_leader = next(k for k in range(1, len(profile))
                      if k not in leaders)

    core = InOrderCore()
    fn = compile_applier(unit, core)
    assert fn is not None
    assert fn(records[non_leader:]) == 0

    # The session-level wrapper finishes such a batch on the generic
    # loop; the result must match a pure generic-loop core.
    core_a = InOrderCore()
    session = TimingSession(core_a, annotate=True)
    ann = session._build_annotation(unit)
    ann.compiled = compile_applier(unit, core_a)
    session.sink_batch(unit, records[non_leader:])

    core_b = InOrderCore()
    ann_b = resolve_annotation(unit, core_b)
    core_b.feed_unit(ann_b, records[non_leader:])
    assert core_a.report() == core_b.report()


# -- TOL overhead batches (satellite 2) ---------------------------------------


def _feed_tol_per_instruction(session, host_insns):
    """The retired per-instruction TOL overhead loop, kept verbatim as
    the specification ``feed_tol_overhead`` must match."""
    mix = session.TOL_MIX
    n_mix = len(mix)
    for i in range(host_insns):
        klass, has_mem = mix[i % n_mix]
        pc = session._tol_pc + (i % 4096) * 4
        mem = None
        if has_mem:
            session._tol_addr = 0xE000_0000 + ((session._tol_addr + 64)
                                               & 0x1FFF)
            mem = session._tol_addr
        branch = (True, pc + 64) if klass == "branch" else None
        dst = 20 if i % 3 == 0 else 21
        srcs = (dst, 22, None)
        session.core.feed(pc, klass, dst, srcs, mem_addr=mem,
                          branch=branch)
    session.fed += host_insns


@pytest.mark.parametrize("charges", [[7], [1000], [64, 128, 5, 977]])
def test_tol_overhead_batch_matches_per_instruction(charges):
    batched = TimingSession(InOrderCore(), annotate=True)
    naive = TimingSession(InOrderCore(), annotate=True)
    for charge in charges:
        batched.feed_tol_overhead(charge)
        _feed_tol_per_instruction(naive, charge)
    assert batched.core.report() == naive.core.report()
    assert dict(batched.core.stats.by_class) \
        == dict(naive.core.stats.by_class)
    assert batched._tol_addr == naive._tol_addr
    assert batched.fed == naive.fed


# -- annotation cache / fallback accounting -----------------------------------


def test_annotation_cache_dropped_on_unit_invalidation():
    spec = SyntheticSpec(seed=3, hot_loops=1, trip_count=200, bb_size=6,
                         branchy=True, mem_ops=1)
    result, controller, core = run_with_timing(
        generate(spec), tol_config=TolConfig(**FAST), validate=False)
    tol = controller.codesigned.tol
    session = tol.host.trace_sink.__self__
    assert session._annotations
    uid, ann = next((uid, a) for uid, a in session._annotations.items()
                    if a)
    unit = next(u for u in tol.cache.units() if u.uid == uid)
    tol.cache.invalidate(unit)
    assert uid not in session._annotations


def test_sampling_falls_back_and_counts_reason():
    spec = SyntheticSpec(seed=3, hot_loops=1, trip_count=200, bb_size=6,
                         branchy=True, mem_ops=1)
    _, controller, core = run_with_timing(
        generate(spec), tol_config=TolConfig(**FAST), validate=False,
        sample_filter=lambda n: n % 2 == 0)
    session = controller.codesigned.tol.host.trace_sink.__self__
    assert not session.annotate
    assert session.fastpath_insns == 0
    assert session.skipped > 0


def test_unannotatable_unit_counts_fallback_reason():
    spec = SyntheticSpec(seed=3, hot_loops=1, trip_count=150, bb_size=6,
                         branchy=True, mem_ops=1)
    units = _translate_units(spec)
    unit = max(units, key=lambda u: len(u.instrs))
    core = InOrderCore()
    session = TimingSession(core, annotate=True)
    session._annotations[unit.uid] = False  # pre-marked unannotatable
    records = _synth_records(build_static_profile(unit))
    session.sink_batch(unit, records)
    assert session.fallback_reasons[FALLBACK_UNANNOTATABLE] \
        == len(records)
    assert session.fed == len(records)
