"""Tests for the text-format assembler."""

import pytest

from repro.guest.asmtext import AsmSyntaxError, assemble_text
from repro.guest.emulator import GuestEmulator
from repro.guest.program import unpack_u32s
from repro.system.controller import run_codesigned
from repro.tol.config import TolConfig


def run_text(source, max_steps=500_000):
    emu = GuestEmulator(assemble_text(source))
    emu.run(max_steps=max_steps)
    assert emu.halted
    return emu


def test_sum_loop():
    emu = run_text("""
    ; sum 1..100
        mov  eax, 0
        mov  ecx, 100
    top:
        add  eax, ecx
        dec  ecx
        jne  top
        mov  edi, eax
        mov  eax, 1
        mov  ebx, 0
        syscall
    """)
    assert emu.state.get("EDI") == 5050
    assert emu.os.exit_code == 0


def test_memory_operand_forms():
    emu = run_text("""
    .data 0x4000 u32 10 20 30 40
        mov  ebp, 0x4000
        mov  esi, 2
        mov  eax, [ebp + esi*4]        ; 30
        add  eax, [0x4000]             ; +10
        mov  [ebp + 12], eax
        mov  edi, [ebp + esi*4 - 4]    ; 20
        mov  eax, 1
        mov  ebx, 0
        syscall
    """)
    assert emu.state.get("EDI") == 20
    assert emu.memory.read_u32(0x400C) == 40


def test_fp_and_data_f64():
    emu = run_text("""
    .data 0x5000 f64 1.5 2.5
        mov  ebp, 0x5000
        fld  f0, [ebp]
        fld  f1, [ebp + 8]
        fadd f0, f1
        fst  [ebp + 16], f0
        mov  eax, 1
        mov  ebx, 0
        syscall
    """)
    assert emu.memory.read_f64(0x5010) == 4.0


def test_entry_directive_and_labels():
    emu = run_text("""
        mov  edi, 111        ; skipped: entry is below
        mov  eax, 1
        mov  ebx, 1
        syscall
    start:
        mov  edi, 222
        mov  eax, 1
        mov  ebx, 0
        syscall
    .entry start
    """)
    assert emu.state.get("EDI") == 222
    assert emu.os.exit_code == 0


def test_ascii_and_write_syscall():
    emu = run_text("""
    .ascii 0x6000 "hi!"
        mov  eax, 2          ; SYS_WRITE
        mov  ebx, 1
        mov  ecx, 0x6000
        mov  edx, 3
        syscall
        mov  eax, 1
        mov  ebx, 0
        syscall
    """)
    assert bytes(emu.os.stdout) == b"hi!"


def test_char_immediates_and_case_insensitivity():
    emu = run_text("""
        MOV  EAX, 'A'
        Add  eAx, 1
        mov  edi, eax
        mov  eax, 1
        mov  ebx, 0
        SYSCALL
    """)
    assert emu.state.get("EDI") == ord("A") + 1


def test_vector_text():
    emu = run_text("""
    .data 0x7000 u32 1 2 3 4
        mov  ebp, 0x7000
        vld  v0, [ebp]
        vadd v0, v0
        vst  [ebp + 16], v0
        mov  eax, 1
        mov  ebx, 0
        syscall
    """)
    assert unpack_u32s(emu.memory.read_bytes(0x7010, 16)) == (2, 4, 6, 8)


def test_error_reports_line_number():
    with pytest.raises(AsmSyntaxError) as excinfo:
        assemble_text("    mov eax, 1\n    frobnicate eax\n")
    assert excinfo.value.line_no == 2
    assert "frobnicate" in str(excinfo.value).lower()


def test_error_on_bad_operand():
    with pytest.raises(AsmSyntaxError):
        assemble_text("    mov eax, [ebp + ecx + esi + edi]\n")


def test_text_program_runs_on_full_darco():
    program = assemble_text("""
        mov  eax, 0
        mov  ecx, 400
    top:
        add  eax, 7
        dec  ecx
        jne  top
        mov  edi, eax
        mov  eax, 1
        mov  ebx, 0
        syscall
    """)
    result, controller = run_codesigned(
        program, config=TolConfig(bbm_threshold=3, sbm_threshold=8))
    assert result.exit_code == 0
    assert controller.x86.state.get("EDI") == 2800
    assert controller.codesigned.tol.mode_distribution()["SBM"] > 0
