"""Workload suite tests: every kernel must build, run to completion on the
reference emulator, and (sampled) run correctly through the full co-designed
stack with validation."""

import pytest

from repro.guest.emulator import GuestEmulator
from repro.tol.config import TolConfig
from repro.system.controller import run_codesigned
from repro.workloads import (
    PHYSICS, SPECFP, SPECINT, all_workloads, generate_quick, get_workload,
    suite_workloads, SyntheticSpec, generate,
)

ALL = all_workloads()
SMALL = 0.12  # scale factor keeping reference runs quick


def test_suite_is_complete():
    from repro.workloads import LONGRUN
    assert len(suite_workloads(SPECINT)) == 11
    assert len(suite_workloads(SPECFP)) == 13
    assert len(suite_workloads(PHYSICS)) == 7
    assert len(suite_workloads(LONGRUN)) == 2
    assert len(ALL) == 33


@pytest.mark.parametrize("workload", ALL, ids=lambda w: w.name)
def test_workload_builds_and_terminates(workload):
    program = workload.program(scale=SMALL)
    emu = GuestEmulator(program)
    emu.run(max_steps=3_000_000)
    assert emu.halted, f"{workload.name} did not exit"
    assert emu.os.exit_code == 0
    assert emu.icount > 500


@pytest.mark.parametrize("name", [
    "429.mcf", "462.libquantum", "453.povray", "ragdoll", "continuous",
])
def test_selected_workloads_validate_on_darco(name):
    program = get_workload(name).program(scale=SMALL)
    result, controller = run_codesigned(
        program, config=TolConfig(bbm_threshold=5, sbm_threshold=20))
    assert result.exit_code == 0  # controller validated state + memory


def test_scaling_changes_dynamic_size():
    w = get_workload("401.bzip2")
    small = GuestEmulator(w.program(scale=0.1))
    small.run(max_steps=3_000_000)
    big = GuestEmulator(w.program(scale=0.3))
    big.run(max_steps=3_000_000)
    assert big.icount > small.icount * 2


def test_workloads_are_deterministic():
    w = get_workload("458.sjeng")
    a = GuestEmulator(w.program(scale=0.1))
    a.run(max_steps=3_000_000)
    b = GuestEmulator(w.program(scale=0.1))
    b.run(max_steps=3_000_000)
    assert a.state.diff(b.state) == {}


def test_physics_static_code_is_larger_than_specfp():
    rag = get_workload("ragdoll").program(scale=1.0)
    fp = get_workload("410.bwaves").program(scale=1.0)
    assert rag.static_code_bytes > fp.static_code_bytes


def test_generator_respects_size_target():
    program = generate_quick(seed=3, guest_insns=30_000)
    emu = GuestEmulator(program)
    emu.run(max_steps=3_000_000)
    assert emu.halted
    assert 10_000 < emu.icount < 90_000


def test_generator_feature_knobs():
    spec = SyntheticSpec(seed=5, hot_loops=1, trip_count=50, fp_ops=2,
                         trig_ops=1, vec_ops=1, mem_ops=2)
    program = generate(spec)
    emu = GuestEmulator(program)
    emu.run(max_steps=1_000_000)
    assert emu.halted
    from repro.guest.isa import InsnClass
    assert emu.class_counts[InsnClass.FP_TRIG] >= 50
    assert emu.class_counts[InsnClass.VEC] >= 50


def test_generator_program_validates_on_darco():
    program = generate_quick(seed=11, guest_insns=20_000, trig_ops=1)
    result, controller = run_codesigned(
        program, config=TolConfig(bbm_threshold=5, sbm_threshold=20))
    assert result.exit_code == 0
