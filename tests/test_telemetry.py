"""Unified telemetry layer: metrics registry, span tracer, snapshots,
determinism across parallelism, probe registry, and the CLI surface."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.debug.tracing import ModeTracer
from repro.guest.assembler import Assembler, EAX, ECX, EDI
from repro.harness.parallel import (
    SweepJob, merged_telemetry, sweep, telemetry_digest,
)
from repro.snapshot.bundle import load_bundle, write_bundle
from repro.system.controller import Controller, run_codesigned
from repro.telemetry import (
    MetricsRegistry, SpanTracer, Telemetry, TelemetrySnapshot,
    merge_snapshots, overhead_breakdown_from_snapshot,
)
from repro.tol.config import TolConfig
from repro.workloads import get_workload

FAST = TolConfig(bbm_threshold=3, sbm_threshold=8)


def _load_validate_trace():
    path = Path(__file__).resolve().parent.parent / "tools" / "validate_trace.py"
    spec = importlib.util.spec_from_file_location("validate_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def hot_loop_program(n=400):
    asm = Assembler()
    asm.mov(EAX, 0)
    with asm.counted_loop(ECX, n):
        asm.add(EAX, 3)
    asm.mov(EDI, EAX)
    asm.exit(0)
    return asm.program()


def run_mcf(telemetry="counters", scale=0.05):
    program = get_workload("429.mcf").program(scale=scale)
    config = TolConfig(telemetry=telemetry)
    return run_codesigned(program, config=config)


# ---------------------------------------------------------------------------
# Registry primitives
# ---------------------------------------------------------------------------


def test_registry_instruments_and_snapshot():
    reg = MetricsRegistry()
    reg.counter("a.hits").inc()
    reg.counter("a.hits").inc(4)
    reg.gauge("a.depth").set(7.5)
    hist = reg.histogram("a.cost", bounds=(10, 100))
    for v in (3, 30, 300):
        hist.observe(v)
    snap = reg.snapshot()
    assert snap.counters["a.hits"] == 5
    assert snap.gauges["a.depth"] == 7.5
    h = snap.histograms["a.cost"]
    assert h["count"] == 3
    assert h["total"] == 333
    assert h["counts"] == [1, 1, 1]  # <=10, <=100, overflow


def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")


def test_collectors_scrape_only_at_snapshot():
    reg = MetricsRegistry()
    source = {"value": 0}
    reg.register_collector(
        lambda r: r.set_counter("scraped", source["value"]))
    source["value"] = 41
    source["value"] = 42
    snap = reg.snapshot()
    assert snap.counters["scraped"] == 42  # one scrape, latest value


def test_snapshot_merge_and_diff():
    a = TelemetrySnapshot(
        counters={"n": 3, "only_a": 1}, gauges={"g": 2.0},
        histograms={"h": {"bounds": [10], "counts": [1, 0],
                          "count": 1, "total": 4}})
    b = TelemetrySnapshot(
        counters={"n": 5}, gauges={"g": 9.0},
        histograms={"h": {"bounds": [10], "counts": [0, 2],
                          "count": 2, "total": 60}})
    merged = a.merge(b)
    assert merged.counters == {"n": 8, "only_a": 1}
    assert merged.gauges["g"] == 9.0  # gauges keep the peak
    assert merged.histograms["h"]["counts"] == [1, 2]
    assert merged.histograms["h"]["count"] == 3

    delta = a.diff(b)
    assert delta["counters"]["n"] == 2
    assert delta["gauges"]["g"] == (2.0, 9.0)
    assert delta["histograms"]["h"] == 1

    assert merge_snapshots([]) is None
    assert merge_snapshots([a.as_dict(), b]).counters["n"] == 8


def test_snapshot_artifact_round_trip(tmp_path):
    _, controller = run_mcf()
    snap = controller.telemetry.snapshot()
    path = tmp_path / "snap.json"
    snap.save(path)
    loaded = TelemetrySnapshot.load(path)
    assert loaded.counters == snap.counters
    assert loaded.gauges == snap.gauges
    assert loaded.histograms == snap.histograms


# ---------------------------------------------------------------------------
# Telemetry modes and the run surface
# ---------------------------------------------------------------------------


def test_run_result_carries_snapshot():
    result, controller = run_mcf()
    snap = result.telemetry
    assert snap is not None
    assert snap.counters["tol.guest_icount"] == result.guest_icount
    assert snap.counters["controller.validations"] > 0
    assert snap.counters["cache.hits"] > 0
    assert snap.gauges["cache.units"] > 0
    assert snap.histograms["tol.translation.cost"]["count"] > 0


def test_off_mode_produces_no_snapshot_but_forced_works():
    result, controller = run_mcf(telemetry="off")
    assert result.telemetry is None
    forced = controller.codesigned.tol.telemetry.snapshot(force=True)
    assert forced.counters["tol.guest_icount"] == result.guest_icount


def test_rejects_unknown_mode():
    with pytest.raises(ValueError):
        Telemetry("loud")


def test_fig7_breakdown_matches_legacy_accounting():
    result, controller = run_mcf()
    tol = controller.codesigned.tol
    legacy = tol.overhead.breakdown()
    from_registry = overhead_breakdown_from_snapshot(result.telemetry)
    assert from_registry == legacy
    assert sum(from_registry.values()) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Tracer and Chrome export
# ---------------------------------------------------------------------------


def test_trace_export_is_schema_valid(tmp_path):
    result, controller = run_mcf(telemetry="full")
    tracer = controller.telemetry.tracer
    assert tracer is not None and tracer.events
    names = {e["name"] for e in tracer.events}
    assert {"dispatch", "translate_bb", "validate"} <= names

    path = tmp_path / "trace.json"
    tracer.write_chrome(path)
    validate_trace = _load_validate_trace()
    assert validate_trace.validate(path) == []

    trace = json.loads(path.read_text())
    thread_names = {e["args"]["name"] for e in trace["traceEvents"]
                    if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"tol", "translate", "controller"} <= thread_names


def test_tracer_cap_keeps_spans_balanced(tmp_path):
    tracer = SpanTracer(max_events=6)
    for i in range(10):
        tracer.begin(f"s{i}", "cat")
        tracer.end(f"s{i}", "cat")
    assert len(tracer.events) <= 6
    assert tracer.dropped > 0
    path = tmp_path / "capped.json"
    tracer.write_chrome(path)
    validate_trace = _load_validate_trace()
    assert validate_trace.validate(path) == []


def test_counters_mode_has_no_tracer():
    result, controller = run_mcf(telemetry="counters")
    assert controller.telemetry.tracer is None
    assert result.telemetry is not None


# ---------------------------------------------------------------------------
# Probe registry (satellite: ModeTracer stacking leak)
# ---------------------------------------------------------------------------


def test_two_tracers_stack_and_detach_independently():
    controller = Controller(hot_loop_program(), config=FAST)
    tol = controller.codesigned.tol
    first = ModeTracer(tol)
    second = ModeTracer(tol)
    controller.run()
    assert first.mode_sequence() == second.mode_sequence()
    assert "SBM" in first.mode_sequence()

    first.detach()
    assert tol.probe == second._probe  # single probe: no fanout shim
    second.detach()
    assert tol.probe is None
    assert tol._probes == []


def test_detached_tracer_stops_recording():
    controller = Controller(hot_loop_program(), config=FAST)
    tol = controller.codesigned.tol
    tracer = ModeTracer(tol)
    tracer.detach()
    controller.run()
    assert tracer.transitions == []


# ---------------------------------------------------------------------------
# Sweep integration: determinism and digests
# ---------------------------------------------------------------------------


def _sweep_jobs():
    return [SweepJob("workload_metrics",
                     {"workload": w, "scale": 0.05, "validate": False})
            for w in ("429.mcf", "401.bzip2")]


def test_sweep_counters_identical_across_parallelism():
    serial = sweep(_sweep_jobs(), n_jobs=1, use_cache=False)
    fanned = sweep(_sweep_jobs(), n_jobs=4, use_cache=False)
    merged_serial = merged_telemetry(serial)
    merged_fanned = merged_telemetry(fanned)
    assert merged_serial is not None
    assert merged_serial.counters == merged_fanned.counters
    assert merged_serial.histograms == merged_fanned.histograms


def test_telemetry_digest_from_run_and_without():
    result, _ = run_mcf()
    digest = telemetry_digest(result)
    assert digest["tol.guest_icount"] == result.guest_icount
    assert "cache.hits" in digest
    assert telemetry_digest(object()) == {}


# ---------------------------------------------------------------------------
# Bundles embed the snapshot
# ---------------------------------------------------------------------------


def test_bundle_embeds_telemetry(tmp_path):
    controller = Controller(hot_loop_program(), config=FAST)
    controller.run()
    path = write_bundle(tmp_path, controller, reason="test")
    bundle = load_bundle(path)
    assert bundle.telemetry is not None
    snap = TelemetrySnapshot.from_dict(bundle.telemetry)
    assert snap.counters["tol.guest_icount"] > 0


# ---------------------------------------------------------------------------
# CLI: darco metrics / darco trace
# ---------------------------------------------------------------------------


def test_cli_metrics_dump(capsys):
    assert main(["metrics", "429.mcf", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "tol.guest_icount" in out
    assert "cache.hits" in out


def test_cli_metrics_diff(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(["metrics", "429.mcf", "--scale", "0.05",
                 "--out", str(a)]) == 0
    assert main(["metrics", "429.mcf", "--scale", "0.1",
                 "--out", str(b)]) == 0
    capsys.readouterr()
    assert main(["metrics", "--diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "tol.guest_icount" in out
    assert "+" in out


def test_cli_trace_writes_valid_trace(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(["trace", "429.mcf", "--scale", "0.05",
                 "--out", str(out_path)]) == 0
    assert "Perfetto" in capsys.readouterr().out or out_path.exists()
    validate_trace = _load_validate_trace()
    assert validate_trace.validate(out_path) == []
