"""Smoke tests for the experiment harness (figures, speed, ablations,
case study) on reduced scales."""

import pytest

from repro.harness.ablations import (
    ablate_speculation, format_rows, sweep_thresholds,
)
from repro.harness.figures import (
    fig4_table, fig5_table, fig6_table, fig7_table, run_workload_metrics,
    suite_average,
)
from repro.harness.speed import measure_speed
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def two_metrics():
    return [
        run_workload_metrics(get_workload("429.mcf"), scale=0.1,
                             validate=False),
        run_workload_metrics(get_workload("ragdoll"), scale=0.5,
                             validate=False),
    ]


def test_metrics_fields(two_metrics):
    m = two_metrics[0]
    assert m.name == "429.mcf"
    assert m.guest_icount > 1000
    assert abs(sum(m.mode_fraction.values()) - 1.0) < 1e-9
    assert 0 < m.tol_overhead_fraction < 1
    assert abs(sum(m.overhead_breakdown.values()) - 1.0) < 1e-9
    assert m.app_host_insns > 0 and m.tol_host_insns > 0
    assert m.static_code_bytes > 100


def test_all_tables_render(two_metrics):
    for table_fn in (fig4_table, fig5_table, fig6_table, fig7_table):
        text = table_fn(two_metrics)
        assert "429.mcf" in text
        assert "ragdoll" in text
        assert "AVG" in text


def test_suite_average_empty_is_zero(two_metrics):
    assert suite_average(two_metrics, "NoSuchSuite", lambda m: 1.0) == 0.0


def test_speed_report_renders():
    report = measure_speed("401.bzip2", scale=0.1)
    text = report.table()
    assert "guest functional" in text
    assert report.guest_emulation_ips > 0
    assert report.host_emulation_ips > report.guest_emulation_ips


def test_ablation_rows_format():
    rows = ablate_speculation("471.omnetpp", scale=0.1)
    text = format_rows(rows)
    assert "speculation on" in text and "speculation off" in text
    assert format_rows([]) == "(no rows)"


def test_threshold_sweep_monotone_im_share():
    rows = sweep_thresholds("ragdoll", scale=0.4)
    im_shares = [r.metrics["im_share"] for r in rows]
    assert im_shares == sorted(im_shares)
