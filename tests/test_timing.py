"""Timing simulator tests: predictors, caches, prefetcher, pipeline model,
and full-system integration."""

import pytest

from repro.timing.branch import BTB, Gshare
from repro.timing.cache import Cache, MemoryHierarchy, StridePrefetcher, TLB
from repro.timing.config import CacheConfig, TimingConfig, TLBConfig
from repro.timing.core import InOrderCore


# -- branch predictors ---------------------------------------------------------


def test_gshare_learns_static_bias():
    predictor = Gshare(entries=256, history_bits=4)
    for _ in range(100):
        predictor.update(0x1000, True)
    assert predictor.predict(0x1000)
    correct = predictor.update(0x1000, True)
    assert correct


def test_gshare_learns_alternating_pattern_via_history():
    predictor = Gshare(entries=1024, history_bits=8)
    outcomes = [True, False] * 200
    mispredicts_late = 0
    for i, taken in enumerate(outcomes):
        correct = predictor.update(0x2000, taken)
        if i > 300 and not correct:
            mispredicts_late += 1
    assert mispredicts_late <= 2  # history disambiguates the pattern


def test_btb_hit_after_update():
    btb = BTB(entries=64)
    assert btb.lookup(0x1000) is None
    btb.update(0x1000, 0x2000)
    assert btb.lookup(0x1000) == 0x2000


def test_btb_conflict_eviction():
    btb = BTB(entries=64)
    btb.update(0x1000, 0xAAAA)
    btb.update(0x1000 + 64 * 4, 0xBBBB)  # same index, different tag
    assert btb.lookup(0x1000) is None


# -- caches ----------------------------------------------------------------------


def test_cache_hit_after_fill():
    cache = Cache(CacheConfig(size_bytes=1024, assoc=2, line_bytes=64))
    assert not cache.access(0x100)
    assert cache.access(0x100)
    assert cache.access(0x13F)  # same line
    assert not cache.access(0x140)  # next line


def test_cache_lru_eviction():
    cache = Cache(CacheConfig(size_bytes=256, assoc=2, line_bytes=64))
    # 2 sets, 2 ways. Set 0 gets lines 0, 2, 4 (addr 0, 128, 256).
    cache.access(0)
    cache.access(128)
    cache.access(0)      # line 0 now MRU
    cache.access(256)    # evicts line 2 (LRU)
    assert cache.access(0)
    assert not cache.access(128)


def test_cache_prefetch_counted_separately():
    cache = Cache(CacheConfig(size_bytes=1024, assoc=2, line_bytes=64))
    cache.prefetch(0x400)
    assert cache.accesses == 0
    assert cache.prefetch_fills == 1
    assert cache.access(0x400)
    assert cache.prefetch_hits == 1


def test_tlb_behaviour():
    tlb = TLB(TLBConfig(entries=8, assoc=2))
    assert not tlb.access(0x1000)
    assert tlb.access(0x1FFF)      # same page
    assert not tlb.access(0x5000)


def test_stride_prefetcher_detects_stream():
    config = TimingConfig()
    mem = MemoryHierarchy(config)
    pc = 0x100
    # A regular stride-64 stream: after training, lines should be
    # prefetched ahead.
    for i in range(50):
        mem.data_latency(pc, 0x10000 + i * 64)
    assert mem.prefetcher.issued > 0
    assert mem.l1d.prefetch_hits > 0


# -- pipeline model -----------------------------------------------------------------


def feed_simple(core, n, klass="simple", dep_chain=False):
    """Feed a loop-like stream (PCs wrap over a small hot region)."""
    done = 0
    for i in range(n):
        srcs = (1,) if dep_chain else (2,)
        dst = 1 if dep_chain else 3
        done = core.feed(0x1000 + (i % 64) * 4, klass, dst, srcs)
    return done


def test_superscalar_ilp_vs_dependency_chain():
    # Independent instructions should sustain close to issue_width IPC;
    # a serial chain is limited to 1 per cycle.
    core_ilp = InOrderCore(TimingConfig(issue_width=2))
    feed_simple(core_ilp, 12000, dep_chain=False)
    ilp_stats = core_ilp.finalize()

    core_dep = InOrderCore(TimingConfig(issue_width=2))
    feed_simple(core_dep, 12000, dep_chain=True)
    dep_stats = core_dep.finalize()

    assert ilp_stats.ipc > 1.5
    assert dep_stats.ipc <= 1.05
    assert ilp_stats.cycles < dep_stats.cycles


def test_issue_width_scales_throughput():
    results = {}
    for width in (1, 2, 4):
        cfg = TimingConfig(issue_width=width, fetch_width=8)
        cfg.units = dict(cfg.units)
        cfg.units["simple"] = (width, 1, True)  # scale ALUs with width
        core = InOrderCore(cfg)
        feed_simple(core, 12000)
        results[width] = core.finalize().ipc
    assert results[1] <= 1.05
    assert results[2] > results[1]
    assert results[4] > results[2]


def test_load_latency_and_cache_misses_slow_execution():
    cfg = TimingConfig()
    core_hits = InOrderCore(cfg)
    for i in range(1000):
        core_hits.feed(0x100, "load", 1, (1,), mem_addr=0x8000)  # same line
    hit_stats = core_hits.finalize()

    core_miss = InOrderCore(TimingConfig(prefetch_enable=False))
    for i in range(1000):
        # Pointer-chase over 4MB: misses everywhere, serialized on reg 1.
        addr = 0x8000 + (i * 7919 % 65536) * 64
        core_miss.feed(0x100, "load", 1, (1,), mem_addr=addr)
    miss_stats = core_miss.finalize()
    assert miss_stats.cycles > hit_stats.cycles * 3


def test_mispredicted_branches_add_bubbles():
    import random
    rng = random.Random(7)
    core = InOrderCore(TimingConfig())
    for i in range(2000):
        taken = rng.random() < 0.5
        core.feed(0x1000, "branch", None, (3,), branch=(taken, 0x2000))
        core.feed(0x1004 + i % 16 * 4, "simple", 4, (5,))
    stats = core.finalize()
    assert stats.mispredicts > 100
    # Bubbles force CPI well above the ideal.
    assert stats.cpi > 1.5


def test_biased_branches_predict_well():
    core = InOrderCore(TimingConfig())
    for i in range(2000):
        core.feed(0x1000, "branch", None, (3,), branch=(True, 0x2000))
        core.feed(0x1004, "simple", 4, (5,))
    stats = core.finalize()
    assert stats.mispredicts < 20


def test_nonpipelined_divider_serializes():
    cfg = TimingConfig()
    core = InOrderCore(cfg)
    for i in range(500):
        core.feed(0x100 + i * 4, "complex", 3, (2,))
    serial = core.finalize()
    # ~occupancy-limited: at least `latency` cycles per op.
    assert serial.cpi >= cfg.units["complex"][1] * 0.9


def test_report_shape():
    core = InOrderCore()
    feed_simple(core, 100)
    report = core.report()
    for key in ("instructions", "cycles", "ipc", "l1d_miss_rate",
                "stalls", "mispredict_rate"):
        assert key in report


# -- full-system integration -----------------------------------------------------


def test_timing_attached_to_full_run():
    from repro.guest.assembler import Assembler, EAX, EBX, ECX
    from repro.timing.run import run_with_timing
    from repro.tol.config import TolConfig

    asm = Assembler()
    asm.mov(EAX, 0)
    with asm.counted_loop(ECX, 400):
        asm.add(EAX, ECX)
    asm.mov(EBX, EAX)
    asm.exit(0)
    program = asm.program()

    result, controller, core = run_with_timing(
        program, tol_config=TolConfig(bbm_threshold=3, sbm_threshold=8))
    assert result.exit_code == 0
    stats = core.finalize()
    assert stats.instructions > 1000
    assert stats.cycles > 0
    assert 0.0 < stats.ipc <= 4.0  # sane range for a cold, tiny program


def test_timing_without_tol_overhead_is_smaller():
    from repro.guest.assembler import Assembler, EAX, ECX
    from repro.timing.run import run_with_timing
    from repro.tol.config import TolConfig

    asm = Assembler()
    asm.mov(EAX, 0)
    with asm.counted_loop(ECX, 300):
        asm.add(EAX, 3)
    asm.exit(0)
    program = asm.program()
    cfg = TolConfig(bbm_threshold=3, sbm_threshold=8)

    _, _, core_all = run_with_timing(program, tol_config=cfg,
                                     include_tol_overhead=True)
    _, _, core_app = run_with_timing(program, tol_config=cfg,
                                     include_tol_overhead=False)
    assert core_all.finalize().instructions > \
        core_app.finalize().instructions


# -- timing sweeps: schema and determinism (ISSUE 7 satellites) -----------------

#: the stable shape of a ``timing_report`` sweep value (and of
#: ``InOrderCore.report()`` plus the run identity fields the task adds).
TIMING_REPORT_SCHEMA = {
    "instructions": int,
    "cycles": int,
    "ipc": float,
    "branches": int,
    "mispredict_rate": float,
    "l1d_miss_rate": float,
    "l2_miss_rate": float,
    "l1i_miss_rate": float,
    "dtlb_misses": int,
    "prefetches_issued": int,
    "prefetch_hits": int,
    "stalls": dict,
    "exit_code": int,
    "guest_icount": int,
}


def _timing_jobs():
    from repro.harness.parallel import suite_sweep_jobs
    return suite_sweep_jobs(scale=0.05, validate=False,
                            workloads=["429.mcf", "continuous"],
                            task="timing_report")


def test_timing_report_schema():
    from repro.harness.parallel import sweep
    (result,) = sweep(_timing_jobs()[:1], n_jobs=1, use_cache=False)
    assert result.ok
    report = result.value
    assert set(report) >= set(TIMING_REPORT_SCHEMA)
    for key, expected_type in TIMING_REPORT_SCHEMA.items():
        assert isinstance(report[key], expected_type), key
    assert set(report["stalls"]) == {"raw", "unit", "memport", "iq",
                                     "frontend"}


def test_timing_sweep_jobs4_identical_to_jobs1():
    """Fan-out may only change wall-clock: the cycle reports from a
    parallel timing sweep must equal the sequential ones exactly."""
    from repro.harness.parallel import sweep
    seq = sweep(_timing_jobs(), n_jobs=1, use_cache=False)
    par = sweep(_timing_jobs(), n_jobs=4, use_cache=False)
    assert all(r.ok for r in seq + par)
    assert [r.value for r in seq] == [r.value for r in par]


def test_timing_report_repeat_run_identical():
    from repro.harness.parallel import sweep
    first = sweep(_timing_jobs(), n_jobs=1, use_cache=False)
    second = sweep(_timing_jobs(), n_jobs=1, use_cache=False)
    assert [r.value for r in first] == [r.value for r in second]
