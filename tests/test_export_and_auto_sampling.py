"""Tests for statistics export and per-sample auto warm-up selection."""

import csv
import io
import json

import pytest

from repro.guest.assembler import Assembler, EAX, ECX, EDI
from repro.debug.export import metrics_csv, run_record, to_json, units_csv
from repro.harness.figures import run_workload_metrics
from repro.power.model import PowerModel
from repro.sampling.warmup import WarmupSimulator
from repro.timing.run import run_with_timing
from repro.tol.config import TolConfig
from repro.system.controller import run_codesigned
from repro.workloads import get_workload

FAST = TolConfig(bbm_threshold=3, sbm_threshold=8)


def small_program(n=600):
    asm = Assembler()
    asm.mov(EAX, 0)
    with asm.counted_loop(ECX, n):
        asm.add(EAX, 3)
    asm.mov(EDI, EAX)
    asm.exit(0)
    return asm.program()


def test_run_record_json_roundtrip(tmp_path):
    result, controller, core = run_with_timing(
        small_program(), tol_config=FAST)
    report = PowerModel(core.config).report(core)
    record = run_record(controller.codesigned.tol, result=result,
                        timing_core=core, power_report=report)
    path = tmp_path / "run.json"
    text = to_json(record, str(path))
    parsed = json.loads(path.read_text())
    assert parsed == json.loads(text)
    assert parsed["run"]["exit_code"] == 0
    assert parsed["tol"]["guest_icount"] > 0
    assert parsed["timing"]["instructions"] > 0
    assert parsed["power"]["average_power_w"] > 0


def test_units_csv_lists_code_cache(tmp_path):
    result, controller = run_codesigned(small_program(), config=FAST)
    path = tmp_path / "units.csv"
    text = units_csv(controller.codesigned.tol, str(path))
    rows = list(csv.DictReader(io.StringIO(text)))
    assert rows, "code cache should not be empty"
    modes = {row["mode"] for row in rows}
    assert "SBM" in modes
    hot = max(rows, key=lambda r: int(r["guest_retired"]))
    assert int(hot["guest_retired"]) > 500
    assert path.read_text() == text


def test_metrics_csv(tmp_path):
    metrics = [run_workload_metrics(get_workload("401.bzip2"), scale=0.05,
                                    validate=False)]
    text = metrics_csv(metrics, str(tmp_path / "m.csv"))
    rows = list(csv.DictReader(io.StringIO(text)))
    assert rows[0]["name"] == "401.bzip2"
    assert float(rows[0]["sbm"]) > 0


def test_run_sampled_auto_picks_per_sample():
    program = get_workload("473.astar").program(scale=0.4)
    sim = WarmupSimulator(program, tol_config=TolConfig())
    candidates = [(1.0, 300), (8.0, 300)]
    result = sim.run_sampled_auto(
        sample_starts=[20_000, 60_000], sample_length=2_000,
        candidates=candidates)
    assert len(result.samples) == 2
    assert result.cpi > 0
    for sample in result.samples:
        assert (sample.scale_factor, sample.warmup_length) in candidates
    # Short warm-ups need downscaling to reach steady state.
    assert any(s.scale_factor > 1 for s in result.samples)
