"""Differential tests: the TOL's decode-to-IR interpreter must match the
authoritative guest emulator instruction by instruction.

This is the correctness backbone of the whole TOL: every guest mnemonic's IR
expansion is checked against the independent reference implementation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.guest.assembler import (
    EAX, EBX, ECX, EDX, EBP, ESI, EDI, F0, F1, F2, V0, V1, Assembler, M,
)
from repro.guest.emulator import GuestEmulator
from repro.guest.memory import PagedMemory
from repro.guest.program import pack_f64s, pack_u32s
from repro.guest.state import GuestState
from repro.guest.syscalls import GuestOS
from repro.tol.decoder import GisaFrontend
from repro.tol.interp import END, OK, SYSCALL, Interpreter


def interp_run(program, max_steps=100_000, os=None):
    """Run a program to completion on the IM interpreter (executing
    syscalls locally for this standalone test)."""
    memory = PagedMemory()
    program.load_into(memory)
    state = GuestState()
    state.eip = program.entry
    state.set("ESP", program.stack_top)
    os = os if os is not None else GuestOS()
    interp = Interpreter(GisaFrontend(), state, memory)
    for _ in range(max_steps):
        result = interp.step()
        if result.status == SYSCALL:
            os.execute(state, memory)
            interp.advance_past_syscall()
            if os.exited:
                break
        elif result.status == END:
            break
    else:
        raise AssertionError("interpreter did not finish")
    return state, memory, os, interp


def lockstep_compare(program, max_steps=50_000):
    """Run reference emulator and interpreter in lockstep, comparing the
    full architectural state after every instruction."""
    ref = GuestEmulator(program)
    memory = PagedMemory()
    program.load_into(memory)
    state = GuestState()
    state.eip = program.entry
    state.set("ESP", program.stack_top)
    interp = Interpreter(GisaFrontend(), state, memory)
    os = GuestOS()
    steps = 0
    while not ref.halted and steps < max_steps:
        result = interp.step()
        if result.status == SYSCALL:
            os.execute(state, memory)
            interp.advance_past_syscall()
        elif result.status == END:
            break
        ref.step()
        diff = state.diff(ref.state)
        assert not diff, (
            f"state diverged after {steps} steps at "
            f"eip={ref.state.eip:#x}: {diff}")
        steps += 1
        if os.exited:
            break
    assert os.exited or steps == max_steps or ref.halted
    return steps


def build_program(build):
    asm = Assembler()
    build(asm)
    return asm.program()


def test_lockstep_alu_flags_branches():
    def build(asm):
        asm.mov(EAX, 0)
        asm.mov(EBX, 1)
        with asm.counted_loop(ECX, 20):
            asm.add(EAX, EBX)
            asm.imul(EBX, 3)
            asm.cmp(EAX, 1000)
            asm.jg("skip")
            asm.sub(EAX, 1)
            asm.label("skip")
            asm.emit("AND", EBX, 0xFFFF)
        asm.exit(0)
    steps = lockstep_compare(build_program(build))
    assert steps > 100


def test_lockstep_memory_stack_calls():
    def build(asm):
        asm.data(0x3000, pack_u32s(range(50)))
        asm.mov(EBP, 0x3000)
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, 10):
            asm.mov(EAX, M(EBP, ESI, 4))
            asm.call("process")
            asm.mov(M(EBP, ESI, 4, disp=0x100), EAX)
            asm.inc(ESI)
        asm.exit(0)
        asm.label("process")
        asm.push(EBX)
        asm.mov(EBX, EAX)
        asm.shl(EBX, 1)
        asm.add(EAX, EBX)
        asm.pop(EBX)
        asm.ret()
    steps = lockstep_compare(build_program(build))
    assert steps > 50


def test_lockstep_fp_trig_vector():
    def build(asm):
        asm.data(0x5000, pack_f64s([0.1 * i for i in range(16)]))
        asm.data(0x6000, pack_u32s(range(16)))
        asm.mov(EBP, 0x5000)
        asm.mov(EDX, 0x6000)
        asm.mov(ESI, 0)
        with asm.counted_loop(ECX, 8):
            asm.fld(F0, M(EBP, ESI, 8))
            asm.fsin(F0)
            asm.fld(F1, M(EBP, ESI, 8, disp=8))
            asm.fmul(F0, F1)
            asm.fsqrt(F1)
            asm.fst(M(EBP, ESI, 8, disp=0x200), F0)
            asm.vld(V0, M(EDX))
            asm.vadd(V0, V0)
            asm.vst(M(EDX, disp=0x40), V0)
            asm.inc(ESI)
        asm.exit(0)
    lockstep_compare(build_program(build))


def test_lockstep_division_and_shifts():
    def build(asm):
        asm.mov(EDI, 1000)
        with asm.counted_loop(ECX, 30):
            asm.mov(EAX, EDI)
            asm.mov(EBX, ECX)
            asm.idiv(EBX)
            asm.add(EDI, EDX)
            asm.mov(EDX, EDI)
            asm.sar(EDX, 3)
            asm.emit("XOR", EDI, EDX)
            asm.emit("OR", EDI, 1)
        asm.exit(0)
    lockstep_compare(build_program(build))


def test_lockstep_string_ops():
    def build(asm):
        asm.data(0x7000, pack_u32s(range(64)))
        asm.mov(ESI, 0x7000)
        asm.mov(EDI, 0x7200)
        asm.mov(ECX, 64)
        asm.rep_movsd()
        asm.mov(EAX, 0xAB)
        asm.mov(EDI, 0x7400)
        asm.mov(ECX, 32)
        asm.rep_stosd()
        asm.exit(0)
    lockstep_compare(build_program(build))


def test_lockstep_neg_not_xchg_lea():
    def build(asm):
        asm.mov(EAX, 7)
        asm.mov(EBX, 0)
        asm.neg(EAX)
        asm.js("negative")
        asm.mov(EBX, 1)
        asm.label("negative")
        asm.emit("NOT", EAX)
        asm.xchg(EAX, EBX)
        asm.lea(ECX, M(EAX, EBX, 4, disp=0x10))
        asm.test(ECX, 0xFF)
        asm.jne("done")
        asm.inc(ECX)
        asm.label("done")
        asm.exit(0)
    lockstep_compare(build_program(build))


def test_lockstep_inc_dec_preserve_cf():
    def build(asm):
        # Set CF via a borrow, then INC/DEC must preserve it.
        asm.mov(EAX, 0)
        asm.sub(EAX, 1)    # CF=1
        asm.inc(EBX)
        asm.jb("cf_kept")  # must still see CF=1
        asm.mov(EDI, 99)
        asm.label("cf_kept")
        asm.dec(EBX)
        asm.jb("cf_kept2")
        asm.mov(EDI, 98)
        asm.label("cf_kept2")
        asm.exit(0)
    lockstep_compare(build_program(build))


# -- property-based differential test over random ALU/branch programs --------

_ALU_OPS = ("ADD", "SUB", "AND", "OR", "XOR", "IMUL")
_CC = ("E", "NE", "L", "LE", "G", "GE", "B", "BE", "A", "AE", "S", "NS")
_REGS = (EAX, EBX, ECX, EDX, ESI, EDI)


@st.composite
def _random_program(draw):
    asm = Assembler()
    # Random initial register values.
    for reg in _REGS:
        asm.mov(reg, draw(st.integers(0, 0xFFFFFFFF)))
    n_blocks = draw(st.integers(2, 5))
    for block in range(n_blocks):
        asm.label(f"blk{block}")
        for _ in range(draw(st.integers(1, 6))):
            op = draw(st.sampled_from(_ALU_OPS))
            dst = draw(st.sampled_from(_REGS))
            if draw(st.booleans()):
                asm.emit(op, dst, draw(st.sampled_from(_REGS)))
            else:
                asm.emit(op, dst, draw(st.integers(0, 0xFFFFFFFF)))
        # Conditional forward skip keeps control flow acyclic.
        cc = draw(st.sampled_from(_CC))
        asm.emit(f"J{cc}", f"blk{block}_end")
        dst = draw(st.sampled_from(_REGS))
        asm.emit("INC", dst)
        asm.label(f"blk{block}_end")
    asm.exit(0)
    return asm.program()


@settings(max_examples=60, deadline=None)
@given(_random_program())
def test_random_alu_programs_match_reference(program):
    lockstep_compare(program, max_steps=2_000)


def test_interp_counts_costs():
    def build(asm):
        asm.mov(EAX, 1)
        asm.add(EAX, 2)
        asm.exit(0)
    state, memory, os, interp = interp_run(build_program(build))
    assert interp.icount == 5  # mov, add, then the 3-instruction exit seq
    assert interp.ir_ops_evaluated > 4  # flag expansions included
    assert os.exit_code == 0
