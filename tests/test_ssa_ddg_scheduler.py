"""Unit tests for SSA conversion, DDG construction and list scheduling."""

import pytest

from repro.tol.ddg import alias_relation, build_ddg, op_latency
from repro.tol.ir import (
    Const, Flag, GReg, IRInstr, Tmp, TmpAllocator, ZF,
)
from repro.tol.scheduler import list_schedule
from repro.tol.ssa import to_ssa

EAX, EBX = GReg(0), GReg(3)


def t(i):
    return Tmp(i)


# -- SSA ----------------------------------------------------------------------


def test_ssa_renames_arch_defs_and_builds_writebacks():
    ops = [
        IRInstr("add", t(1), (EAX, Const(1))),
        IRInstr("mov", EAX, (t(1),)),
        IRInstr("add", t(2), (EAX, Const(2))),   # reads NEW version
        IRInstr("mov", EAX, (t(2),)),
    ]
    alloc = TmpAllocator()
    alloc._next = 100
    result = to_ssa(ops, alloc)
    # No architectural destinations remain in the body.
    assert all(not isinstance(op.dst, (GReg, Flag)) for op in result.ops)
    # Exactly one writeback for EAX, carrying the final version.
    assert len(result.writebacks) == 1
    assert result.writebacks[0].dst == EAX
    # The second add reads the renamed first version, not entry EAX.
    assert result.ops[2].srcs[0] != EAX


def test_ssa_entry_reads_stay_architectural():
    ops = [IRInstr("add", t(1), (EAX, EBX))]
    result = to_ssa(ops, TmpAllocator())
    assert result.ops[0].srcs == (EAX, EBX)
    assert result.writebacks == []


def test_ssa_renames_duplicate_temp_defs_from_unrolling():
    body = [
        IRInstr("add", t(1), (EAX, Const(1))),
        IRInstr("mov", EAX, (t(1),)),
    ]
    alloc = TmpAllocator()
    alloc._next = 50
    result = to_ssa(body + body, alloc)  # two copies: t1 defined twice
    defs = [op.dst for op in result.ops if op.dst is not None]
    assert len(defs) == len(set(defs)), "SSA must leave single defs"


def test_ssa_flag_versions_become_temps():
    ops = [
        IRInstr("mov", ZF, (Const(1),)),
        IRInstr("add", t(1), (ZF, Const(0))),
        IRInstr("mov", ZF, (Const(0),)),
    ]
    result = to_ssa(ops, TmpAllocator())
    assert isinstance(result.ops[1].srcs[0], Tmp)
    assert result.exit_values[ZF] == result.writebacks[-1].srcs[0] or \
        any(wb.dst == ZF for wb in result.writebacks)


# -- alias analysis --------------------------------------------------------------


def _ld(base, disp):
    return IRInstr("ld32", t(90), (base,), imm=disp)


def _st(base, disp):
    return IRInstr("st32", None, (base, t(91)), imm=disp)


def test_alias_same_base_disjoint():
    assert alias_relation(_st(EAX, 0), _ld(EAX, 4)) == "no"
    assert alias_relation(_st(EAX, 0), _ld(EAX, 0)) == "must"
    assert alias_relation(_st(EAX, 0), _ld(EAX, 2)) == "must"  # overlap


def test_alias_const_bases():
    assert alias_relation(_st(Const(0x1000), 0),
                          _ld(Const(0x2000), 0)) == "no"
    assert alias_relation(_st(Const(0x1000), 4),
                          _ld(Const(0x1004), 0)) == "must"


def test_alias_unknown_bases_may():
    assert alias_relation(_st(EAX, 0), _ld(EBX, 0)) == "may"


# -- DDG -------------------------------------------------------------------------


def test_ddg_true_dependences():
    ops = [
        IRInstr("add", t(1), (EAX, Const(1))),
        IRInstr("add", t(2), (t(1), Const(2))),
        IRInstr("add", t(3), (EBX, Const(3))),   # independent
    ]
    ddg = build_ddg(ops)
    assert any(j == 1 for (j, _lat) in ddg.succs[0])
    assert ddg.preds_count[2] == 0


def test_ddg_memory_edges_and_soft_edges():
    ops = [
        IRInstr("st32", None, (EAX, t(1)), imm=0),
        IRInstr("ld32", t(2), (EBX,), imm=0),        # may alias: soft
        IRInstr("ld32", t(3), (EAX,), imm=0),        # must alias: hard
    ]
    ddg = build_ddg(ops)
    assert (0, 1) in ddg.soft_edges
    assert any(j == 2 for (j, _lat) in ddg.succs[0])


def test_ddg_critical_path_priorities():
    ops = [
        IRInstr("ld32", t(1), (EAX,), imm=0),    # latency 3, feeds chain
        IRInstr("add", t(2), (t(1), Const(1))),
        IRInstr("add", t(3), (EBX, Const(1))),   # independent leaf
    ]
    ddg = build_ddg(ops)
    assert ddg.priority[0] > ddg.priority[2]
    assert op_latency(ops[0]) == 3


# -- scheduler --------------------------------------------------------------------


def test_schedule_respects_hard_dependences():
    ops = [
        IRInstr("add", t(1), (EAX, Const(1))),
        IRInstr("add", t(2), (t(1), Const(2))),
        IRInstr("add", t(3), (t(2), Const(3))),
    ]
    result = list_schedule(ops)
    positions = {op.dst: i for i, op in enumerate(result.ops)}
    assert positions[t(1)] < positions[t(2)] < positions[t(3)]


def test_schedule_hoists_load_and_marks_speculation():
    ops = [
        IRInstr("st32", None, (EAX, t(1)), imm=0),
        IRInstr("ld32", t(2), (EBX,), imm=0),     # may-alias, long chain
        IRInstr("add", t(3), (t(2), Const(1))),
        IRInstr("add", t(4), (t(3), Const(1))),
    ]
    result = list_schedule(ops, allow_mem_speculation=True)
    ops_by_pos = {op.op: i for i, op in enumerate(result.ops)}
    if result.speculated_pairs:
        assert "sld32" in ops_by_pos and "st32chk" in ops_by_pos
        assert ops_by_pos["sld32"] < ops_by_pos["st32chk"]
        spec_load = next(o for o in result.ops if o.op == "sld32")
        assert spec_load.attrs["seq"] == 1   # original program position


def test_schedule_without_speculation_keeps_order():
    ops = [
        IRInstr("st32", None, (EAX, t(1)), imm=0),
        IRInstr("ld32", t(2), (EBX,), imm=0),
    ]
    result = list_schedule(ops, allow_mem_speculation=False)
    assert [op.op for op in result.ops] == ["st32", "ld32"]
    assert result.speculated_pairs == 0


def test_schedule_guard_blocks_stores():
    ops = [
        IRInstr("cmpltu", t(1), (Const(4), GReg(1))),
        IRInstr("guard_exit_false", None, (t(1),),
                attrs={"target_pc": 0x100, "guest_insns": 0}),
        IRInstr("st32", None, (EAX, t(2)), imm=0),
    ]
    result = list_schedule(ops)
    kinds = [op.op for op in result.ops]
    assert kinds.index("guard_exit_false") < kinds.index("st32")


def test_vector_memory_never_speculated():
    from repro.tol.ir import VTmp
    ops = [
        IRInstr("st32", None, (EAX, t(1)), imm=0),
        IRInstr("ldv", VTmp(5), (EBX,), imm=0),
    ]
    result = list_schedule(ops, allow_mem_speculation=True)
    assert [op.op for op in result.ops] == ["st32", "ldv"]
