"""CLI tests (in-process via repro.cli.main)."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "SPECINT2006" in out
    assert "429.mcf" in out
    assert "ragdoll" in out


def test_run_workload_with_stats(capsys):
    code = main(["run", "401.bzip2", "--scale", "0.05", "--stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "exit=0" in out
    assert "mode_distribution" in out


def test_run_assembly_file(tmp_path, capsys):
    source = """
        mov  eax, 0
        mov  ecx, 50
    top:
        add  eax, 2
        dec  ecx
        jne  top
        mov  edi, eax
        mov  eax, 1
        mov  ebx, 0
        syscall
    """
    path = tmp_path / "prog.s"
    path.write_text(source)
    assert main(["run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "exit=0" in out


def test_run_with_timing_and_power(capsys):
    code = main(["run", "458.sjeng", "--scale", "0.05",
                 "--timing", "--power", "--no-validate"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ipc" in out
    assert "average power" in out


def test_run_with_config_override(capsys):
    code = main(["run", "401.bzip2", "--scale", "0.05", "--stats",
                 "--set", "sbm_threshold=10000000",
                 "--set", "dual_decoder=true"])
    assert code == 0
    out = capsys.readouterr().out
    assert "'SBM': 0" in out or "'SBM': 0.0" in out


def test_run_rejects_bad_override():
    with pytest.raises(SystemExit):
        main(["run", "401.bzip2", "--set", "not_a_field=1"])
    with pytest.raises(SystemExit):
        main(["run", "401.bzip2", "--set", "malformed"])


def test_run_nonzero_exit_code_propagates(tmp_path):
    path = tmp_path / "fail.s"
    path.write_text("""
        mov  eax, 1
        mov  ebx, 7
        syscall
    """)
    assert main(["run", str(path)]) == 7


def test_speed_command(capsys):
    assert main(["speed", "--workload", "401.bzip2",
                 "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "guest functional" in out


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        main(["run", "not.a.workload"])


def test_inject_small_campaign_passes(capsys):
    code = main(["inject", "--seed", "7", "-n", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "RESULT: PASS" in out
    assert "campaign seed=7" in out


def test_inject_json_report(capsys):
    import json
    code = main(["inject", "--seed", "7", "-n", "3", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["seed"] == 7
    assert payload["all_triggered_caught"] is True
    assert len(payload["records"]) == 3


def test_inject_rejects_unknown_site():
    with pytest.raises(SystemExit):
        main(["inject", "--site", "cosmic_ray"])
