"""Power model tests."""

import pytest

from repro.power.model import PowerModel, PowerReport
from repro.timing.config import TimingConfig
from repro.timing.core import InOrderCore


def _loaded_core(n=5000, config=None):
    core = InOrderCore(config)
    for i in range(n):
        if i % 5 == 0:
            core.feed(0x1000 + (i % 64) * 4, "load", 1, (2,),
                      mem_addr=0x8000 + (i % 128) * 64)
        elif i % 7 == 0:
            core.feed(0x1000 + (i % 64) * 4, "branch", None, (1,),
                      branch=(True, 0x1000))
        else:
            core.feed(0x1000 + (i % 64) * 4, "simple", 3, (1,))
    return core


def test_report_basic_quantities():
    config = TimingConfig()
    core = _loaded_core(config=config)
    report = PowerModel(config).report(core)
    assert report.instructions == 5000
    assert report.total_dynamic_pj > 0
    assert report.leakage_power_mw > 0
    assert report.runtime_s > 0
    assert report.average_power_w > 0
    assert report.energy_per_instruction_pj > 0


def test_breakdown_sums_to_one():
    core = _loaded_core()
    report = PowerModel().report(core)
    breakdown = report.breakdown()
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9
    assert breakdown["frontend"] > 0
    assert breakdown["l1d"] > 0


def test_wider_core_leaks_more():
    narrow = PowerModel(TimingConfig(issue_width=1)).report(
        _loaded_core(config=TimingConfig(issue_width=1)))
    wide = PowerModel(TimingConfig(issue_width=4)).report(
        _loaded_core(config=TimingConfig(issue_width=4)))
    assert wide.leakage_power_mw > narrow.leakage_power_mw


def test_bigger_caches_cost_more_per_access():
    from repro.timing.config import CacheConfig
    small_cfg = TimingConfig()
    big_cfg = TimingConfig(
        l1d=CacheConfig(size_bytes=128 * 1024, assoc=4, hit_latency=3))
    small = PowerModel(small_cfg).report(_loaded_core(config=small_cfg))
    big = PowerModel(big_cfg).report(_loaded_core(config=big_cfg))
    # Same-ish access counts, higher per-access energy for the big cache.
    assert big.dynamic_energy_pj["l1d"] > small.dynamic_energy_pj["l1d"]


def test_dram_energy_on_misses():
    config = TimingConfig(prefetch_enable=False)
    core = InOrderCore(config)
    for i in range(2000):
        core.feed(0x100, "load", 1, (1,),
                  mem_addr=0x10000 + i * 4096)  # page-new misses
    report = PowerModel(config).report(core)
    assert report.dynamic_energy_pj["dram"] > 0


def test_empty_report_is_safe():
    report = PowerReport()
    assert report.average_power_w == 0.0
    assert report.energy_per_instruction_pj == 0.0
    assert report.breakdown() == {}
