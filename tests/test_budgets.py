"""Runaway-application budgets through the CLI: ``darco sweep`` and
``darco inject`` accept ``--watchdog-stall-limit`` / ``--event-budget``
and thread them into every run, so a livelocked job is killed and
reported instead of hanging a worker."""

import json

import pytest

from repro.cli import build_parser, main
from repro.resilience.campaign import campaign_config
from repro.tol.config import TolConfig


def test_parser_accepts_budget_flags():
    args = build_parser().parse_args(
        ["sweep", "--event-budget", "123",
         "--watchdog-stall-limit", "45"])
    assert args.event_budget == 123
    assert args.watchdog_stall_limit == 45
    args = build_parser().parse_args(
        ["inject", "--event-budget", "9", "--watchdog-stall-limit", "8",
         "--set", "telemetry=off"])
    assert args.event_budget == 9
    assert args.watchdog_stall_limit == 8
    assert args.set == ["telemetry=off"]


def test_with_overrides_coerces_and_rejects():
    config = TolConfig().with_overrides(
        {"event_budget": "64", "watchdog_stall_limit": 7})
    assert config.event_budget == 64
    assert config.watchdog_stall_limit == 7
    with pytest.raises(ValueError):
        TolConfig().with_overrides({"no_such_field": 1})


def test_campaign_config_applies_overrides():
    config = campaign_config("recover",
                             {"event_budget": 321,
                              "watchdog_stall_limit": 11})
    assert config.event_budget == 321
    assert config.watchdog_stall_limit == 11
    assert config.recovery_mode == "recover"
    # No overrides: unchanged defaults.
    assert campaign_config("recover").event_budget != 321


def test_sweep_kills_and_reports_livelocked_job(capsys):
    """A blown event budget must surface as a task failure record in
    the sweep report — the worker is never left hanging."""
    code = main(["sweep", "--workload", "429.mcf", "--scale", "0.05",
                 "--no-cache", "-j", "1", "--event-budget", "2",
                 "--timeout", "120"])
    out = capsys.readouterr().out
    assert code == 1
    assert "event budget exhausted" in out
    assert "FAILED" in out
    assert "runaway application?" in out


def test_inject_threads_budgets_without_changing_results(capsys):
    """A generous budget leaves the campaign identical (the flags only
    bound runaways, never alter simulated behavior)."""
    assert main(["inject", "-n", "4", "--json", "--site",
                 "ir_drop"]) == 0
    baseline = json.loads(capsys.readouterr().out)
    assert main(["inject", "-n", "4", "--json", "--site",
                 "ir_drop", "--event-budget", "8000000",
                 "--watchdog-stall-limit", "100"]) == 0
    bounded = json.loads(capsys.readouterr().out)
    assert bounded["signature"] == baseline["signature"]
    assert bounded["by_status"] == baseline["by_status"]


def test_inject_tiny_event_budget_reports_not_hangs(capsys):
    """With an absurdly small budget every campaign run dies fast with
    the budget diagnostic — reported per-record, exit nonzero, no hang."""
    code = main(["inject", "-n", "2", "--json", "--site",
                 "ir_drop", "--event-budget", "1"])
    report = json.loads(capsys.readouterr().out)
    assert code == 1
    assert all(r["error"] for r in report["records"])
    assert any("event budget exhausted" in (r["error"] or "")
               for r in report["records"])
