"""Stage-blame tests: the debug toolchain's second step (paper §V-D) —
after pinpointing the culpable region, replay its captured per-stage IR to
find the TOL pipeline stage where the bug first appeared."""

import pytest

from repro.guest.assembler import Assembler, EAX, ECX, EDI
from repro.guest.emulator import GuestEmulator
from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.debug.divergence import STAGE_ORDER, blame_stage
from repro.tol.config import TolConfig
from repro.tol.ir import Const, IRInstr
from repro.tol.opt.passes import PassStats, register_pass
from repro.system.controller import Controller, ValidationError


def hot_loop_program():
    asm = Assembler()
    asm.mov(EAX, 0)
    with asm.counted_loop(ECX, 300):
        asm.add(EAX, 3)
    asm.mov(EDI, EAX)
    asm.exit(0)
    return asm.program()


def _capture_stages(config):
    """Run to completion (or divergence), returning captured stages for
    the hottest region plus a reference-execution harness for it."""
    program = hot_loop_program()
    controller = Controller(program, config=config, validate=False)
    translator = controller.codesigned.tol.translator
    translator.capture = {}
    controller.run()
    entry_pc, stages = max(translator.capture.items(),
                           key=lambda kv: len(kv[1].get("decoded", [])))

    # Reference: step the guest emulator from region entry through one
    # region iteration (guest_insn_count instructions).
    unit = controller.codesigned.tol.cache.lookup(entry_pc)
    n_guest = unit.guest_insn_count if unit is not None else 4

    def make_reference(entry_state):
        def reference_stepper(state, memory):
            ref = GuestEmulator(program)
            ref.state.restore(entry_state.snapshot())
            ref.state.eip = entry_pc
            for _ in range(n_guest):
                ref.step()
            return ref.state, ref.state.eip
        return reference_stepper

    # Entry state: run the reference up to the first visit of entry_pc.
    ref = GuestEmulator(program)
    while ref.state.eip != entry_pc:
        ref.step()
    entry_state = ref.state.copy()

    def memory_factory():
        memory = PagedMemory()
        program.load_into(memory)
        return memory

    return stages, entry_state, memory_factory, make_reference(entry_state)


def test_blame_clean_translation_has_no_bad_stage():
    stages, entry_state, memory_factory, reference = _capture_stages(
        TolConfig(bbm_threshold=3, sbm_threshold=8, unroll_enable=False))
    blame = blame_stage(stages, entry_state, memory_factory, reference)
    assert blame.first_bad_stage is None
    assert all(blame.per_stage_ok.values())
    assert set(blame.per_stage_ok) <= set(STAGE_ORDER)


@register_pass("_blame_inject_mul")
def _blame_inject_mul(ops):
    """Broken pass: turns the first add-constant-3 into times-3."""
    stats = PassStats("_blame_inject_mul", ops_in=len(ops))
    out = []
    done = False
    for instr in ops:
        if (not done and instr.op == "add" and len(instr.srcs) == 2
                and isinstance(instr.srcs[1], Const)
                and instr.srcs[1].value == 3):
            instr = instr.with_changes(op="mul")
            done = True
        out.append(instr)
    stats.ops_out = len(out)
    return out, stats


def test_blame_pinpoints_optimizer_stage():
    config = TolConfig(
        bbm_threshold=3, sbm_threshold=8, unroll_enable=False,
        sbm_passes=("constfold", "constprop", "_blame_inject_mul", "dce"))
    stages, entry_state, memory_factory, reference = _capture_stages(config)
    blame = blame_stage(stages, entry_state, memory_factory, reference)
    # decoded and ssa stages are pre-bug; 'optimized' is the first bad one.
    assert blame.per_stage_ok.get("decoded") is True
    assert blame.per_stage_ok.get("ssa") is True
    assert blame.first_bad_stage == "optimized"
    assert "optimized" in str(blame)
