"""darco serve: supervised workers, deadlines/retries, admission
control, coalescing, degradation tiers, and chaos (SIGKILL) recovery.

The service under test runs in-process on a background thread with its
own event loop; clients talk to it over a real unix socket, exactly as
the CLI does.
"""

import asyncio
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.harness import parallel
from repro.harness.retry import RetryPolicy
from repro.serve import ServeClient, ServeConfig, ServeService
from repro.serve import protocol
from repro.serve.client import ServeError

WORKLOAD = {"workload": "429.mcf", "scale": 0.05}


@parallel.register_task("_serve_sleep")
def _serve_sleep_task(seconds=1.0, tag=""):
    time.sleep(seconds)
    return {"slept": seconds, "tag": tag}


class ServeHost:
    """In-process serve instance on a background event-loop thread."""

    def __init__(self, tmp_path, **kw):
        self.sock = str(tmp_path / "serve.sock")
        kw.setdefault("cache_dir", str(tmp_path / "cache"))
        self.config = ServeConfig(socket_path=self.sock, **kw)
        self.service = ServeService(self.config)
        self._ready = threading.Event()
        self._thread = None

    def __enter__(self):
        async def _run():
            await self.service.start()
            self._ready.set()
            await self.service.serve_until_shutdown()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_run()), daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "service did not come up"
        return self

    def __exit__(self, *exc):
        try:
            with self.client() as client:
                client.shutdown()
        except ServeError:
            pass
        self._thread.join(20)

    def client(self):
        return ServeClient(socket_path=self.sock)


# -- the happy path ------------------------------------------------------------


def test_submit_runs_and_fetch_returns_value(tmp_path):
    with ServeHost(tmp_path, workers=2) as host:
        with host.client() as client:
            reply = client.submit("workload_metrics", WORKLOAD)
            assert reply["code"] == protocol.ACCEPTED
            assert reply["state"] == "queued"
            final = client.wait(reply["job"], timeout=120)
            assert final["code"] == protocol.OK
            assert final["state"] == "done"
            assert final["attempts"] == 1
            assert isinstance(final["value"], dict)
            assert final["telemetry_digest"]     # fed from the registry
            assert final["duration_s"] > 0


def test_identical_submission_coalesces_when_done(tmp_path):
    with ServeHost(tmp_path, workers=1) as host:
        with host.client() as client:
            first = client.submit("workload_metrics", WORKLOAD)
            client.wait(first["job"], timeout=120)
            again = client.submit("workload_metrics", WORKLOAD)
            assert again["code"] == protocol.OK
            assert again["coalesced"] is True
            assert again["job"] == first["job"]
            health = client.healthz()
            assert health["counters"]["serve.coalesced"] >= 1


def test_inflight_submissions_share_one_run(tmp_path):
    with ServeHost(tmp_path, workers=1, use_cache=False) as host:
        with host.client() as c1, host.client() as c2:
            params = {"seconds": 1.0, "tag": "shared"}
            a = c1.submit("_serve_sleep", params)
            b = c2.submit("_serve_sleep", params)
            assert b["job"] == a["job"]
            assert b["coalesced"] is True
            ra = c1.wait(a["job"], timeout=60)
            rb = c2.fetch(b["job"])
            assert ra["state"] == rb["state"] == "done"
            assert ra["value"] == rb["value"]
            assert rb["submits"] >= 2
            # One run served both tenants: a single attempt total.
            assert ra["attempts"] == 1


def test_cache_survives_service_restart(tmp_path):
    """A second service instance over the same cache dir replays the
    first instance's results without running anything."""
    with ServeHost(tmp_path, workers=1) as host:
        with host.client() as client:
            first = client.submit("workload_metrics", WORKLOAD)
            value = client.wait(first["job"], timeout=120)["value"]
    with ServeHost(tmp_path, workers=1) as host:
        with host.client() as client:
            replay = client.submit("workload_metrics", WORKLOAD)
            assert replay["code"] == protocol.OK
            assert replay["cached"] is True
            assert client.fetch(replay["job"])["value"] == value
            assert client.healthz()["counters"]["serve.cache_hits"] == 1


# -- supervision: crashes, deadlines, chaos ------------------------------------


def _busy_worker_pid(client, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        workers = client.healthz()["workers"]
        busy = [w for w in workers if w["state"] == "busy" and w["pid"]]
        if busy:
            return busy[0]["pid"]
        time.sleep(0.01)
    raise AssertionError("no worker went busy")


def test_sigkilled_worker_respawns_and_job_resumes_bit_identical(
        tmp_path):
    """Chaos acceptance at test scale: SIGKILL the worker mid-job; the
    job must still complete — resumed from its checkpoint — and its
    result must be bit-identical to a clean, uninterrupted run."""
    from repro.harness.parallel import _execute
    from repro.ioutil import canonical_json
    from repro.serve.service import wire_value

    params = {"workload": "429.mcf", "scale": 0.3}
    clean = canonical_json(wire_value(_execute("arch_run", dict(params))))

    with ServeHost(tmp_path, workers=1, use_cache=False,
                   checkpoint_dir=str(tmp_path / "ckpt")) as host:
        with host.client() as client:
            reply = client.submit("arch_run", params, max_attempts=5)
            pid = _busy_worker_pid(client)
            os.kill(pid, signal.SIGKILL)
            final = client.wait(reply["job"], timeout=180)
            assert final["state"] == "done"
            assert final["attempts"] >= 2
            assert canonical_json(final["value"]) == clean
            health = client.healthz()
            assert health["counters"]["serve.worker_deaths"] >= 1
            assert health["counters"]["serve.worker_restarts"] >= 1
            # The pool healed: a live worker with a fresh pid.
            alive = [w for w in health["workers"] if w["alive"]]
            assert alive and alive[0]["pid"] != pid


def test_deadline_exceeded_kills_worker_and_fails_job(tmp_path):
    with ServeHost(tmp_path, workers=1, use_cache=False) as host:
        with host.client() as client:
            reply = client.submit("_serve_sleep", {"seconds": 60.0},
                                  deadline_s=0.4, max_attempts=1)
            final = client.wait(reply["job"], timeout=60)
            assert final["code"] == protocol.FAILED
            assert final["state"] == "failed"
            assert "deadline exceeded" in final["last_error"]
            assert client.healthz()["counters"][
                "serve.deadline_kills"] >= 1


def test_retry_budget_bounds_attempts_for_failing_task(tmp_path):
    with ServeHost(tmp_path, workers=1, use_cache=False,
                   retry=RetryPolicy(max_attempts=3, base_delay_s=0.0,
                                     jitter=0.0)) as host:
        with host.client() as client:
            reply = client.submit(
                "workload_metrics", {"workload": "no.such.workload"})
            final = client.wait(reply["job"], timeout=60)
            assert final["state"] == "failed"
            assert final["attempts"] == 3
            assert "no.such.workload" in final["last_error"]


def test_livelocked_job_is_killed_and_reported_not_hung(tmp_path):
    """Satellite regression: an event-budget-exhausting job submitted
    through serve is killed and reported (the budget raises inside the
    worker), never left hanging a shard."""
    with ServeHost(tmp_path, workers=1, use_cache=False) as host:
        with host.client() as client:
            reply = client.submit(
                "workload_metrics",
                {"workload": "429.mcf", "scale": 0.05,
                 "config": {"event_budget": 2}},
                max_attempts=1)
            final = client.wait(reply["job"], timeout=60)
            assert final["state"] == "failed"
            assert "event budget exhausted" in final["full_error"]
            # The shard survived and still serves other work.
            ok = client.submit("workload_metrics", WORKLOAD)
            assert client.wait(ok["job"], timeout=120)["state"] == "done"


# -- admission control and degradation -----------------------------------------


def test_full_queue_sheds_with_retry_after(tmp_path):
    service = ServeService(ServeConfig(workers=1, max_pending=2,
                                       use_cache=False))
    service._pending = 2  # saturated
    reply = service.submit({"op": "submit", "task": "workload_metrics",
                            "params": WORKLOAD})
    assert reply["code"] == protocol.SHED
    assert reply["retry_after_s"] >= 1.0
    assert "queue full" in reply["error"]


def test_overload_serves_stale_result_with_marker(tmp_path):
    service = ServeService(ServeConfig(workers=1, max_pending=2,
                                       use_cache=False))
    spec = {"op": "submit", "task": "workload_metrics",
            "params": WORKLOAD}
    accepted = service.submit(spec)
    assert accepted["code"] == protocol.ACCEPTED
    # Simulate an earlier completion of this logical job, then drop the
    # table entry (as if it aged out) and saturate the queue.
    entry = service.table[accepted["key"]]
    entry.value_payload = {"stale": "payload"}
    service._note_known_result(entry)
    del service.table[accepted["key"]]
    service._pending = 2
    degraded = service.submit(spec)
    assert degraded["code"] == protocol.DEGRADED_STALE
    assert degraded["stale"] is True
    assert degraded["stale_fingerprint"] == service.fingerprint
    fetched = service._handle_fetch({"job": degraded["job"]})
    assert fetched["code"] == protocol.DEGRADED_STALE
    assert fetched["value"] == {"stale": "payload"}
    # With stale serving disabled the same submit sheds instead.
    service.config.stale_serve = False
    assert service.submit(spec)["code"] == protocol.SHED


def test_accepted_jobs_bypass_admission_on_retry(tmp_path):
    service = ServeService(ServeConfig(workers=1, max_pending=1,
                                       use_cache=False))
    accepted = service.submit({"op": "submit",
                               "task": "workload_metrics",
                               "params": WORKLOAD})
    assert accepted["code"] == protocol.ACCEPTED
    entry = service.table[accepted["key"]]
    # Queue is saturated, yet the in-flight job's requeue still lands.
    assert service._pending == service.config.max_pending
    service._requeue(entry)
    assert service.queue.qsize() == 2


# -- protocol and error paths --------------------------------------------------


def test_unknown_task_and_unknown_job(tmp_path):
    with ServeHost(tmp_path, workers=1) as host:
        with host.client() as client:
            bad = client.submit("no_such_task", {})
            assert bad["code"] == protocol.NOT_FOUND
            assert "workload_metrics" in bad["error"]
            missing = client.status("feedfacecafebeef")
            assert missing["code"] == protocol.NOT_FOUND
            assert client.fetch("feedfacecafebeef")["code"] == \
                protocol.NOT_FOUND


def test_malformed_frames_get_400_not_disconnect(tmp_path):
    with ServeHost(tmp_path, workers=1) as host:
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(10)
        raw.connect(host.sock)
        raw.sendall(b"this is not json\n")
        first = json.loads(raw.makefile().readline())
        assert first["code"] == protocol.BAD_REQUEST
        # The connection survives a bad frame.
        raw.sendall(protocol.encode({"op": "healthz"}))
        second = json.loads(raw.makefile().readline())
        assert second["live"] is True
        raw.close()


def test_bad_budget_values_rejected_400_and_pool_survives(tmp_path):
    """Garbage ``deadline_s``/``max_attempts`` must be the submitter's
    400 at admission — never a TypeError inside a supervision task
    (which would kill the shard and wedge every later submission)."""
    with ServeHost(tmp_path, workers=1, use_cache=False) as host:
        with host.client() as client:
            for extra in ({"deadline_s": "soon"}, {"deadline_s": -1},
                          {"deadline_s": 0}, {"max_attempts": "lots"},
                          {"max_attempts": [3]}):
                bad = client.submit("_serve_sleep", {"seconds": 0.01},
                                    **extra)
                assert bad["code"] == protocol.BAD_REQUEST, extra
                assert "must be" in bad["error"]
            # The pool is untouched: a well-formed job still completes.
            ok = client.submit("_serve_sleep", {"seconds": 0.01},
                               deadline_s=30, max_attempts=2)
            assert ok["code"] == protocol.ACCEPTED
            assert client.wait(ok["job"], timeout=60)["state"] == "done"
            health = client.healthz()
            assert any(w["alive"] for w in health["workers"])


def test_dispatch_error_fails_job_not_supervision(tmp_path):
    """An unexpected exception while handing a job to a worker fails
    that job through the retry budget; the shard's supervision task and
    worker survive to run the next job."""
    with ServeHost(tmp_path, workers=1, use_cache=False) as host:
        def boom(entry):
            raise RuntimeError("boom")
        host.service._exec_params = boom
        with host.client() as client:
            reply = client.submit("_serve_sleep", {"seconds": 0.01},
                                  max_attempts=1)
            final = client.wait(reply["job"], timeout=60)
            assert final["state"] == "failed"
            assert "dispatch error" in final["full_error"]
        del host.service._exec_params
        with host.client() as client:
            ok = client.submit("_serve_sleep", {"seconds": 0.01,
                                                "tag": "after"})
            assert client.wait(ok["job"], timeout=60)["state"] == "done"
            health = client.healthz()
            assert health["counters"]["serve.dispatch_errors"] >= 1
            assert any(w["alive"] for w in health["workers"])


def test_oversized_request_lines_answered_400(tmp_path):
    """A line above the protocol bound gets a 400, both under the
    stream-reader limit (connection survives) and over it (answered,
    then hung up) — never a silent disconnect."""
    with ServeHost(tmp_path, workers=1) as host:
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(30)
        raw.connect(host.sock)
        stream = raw.makefile("rb")
        raw.sendall(b"x" * (protocol.MAX_LINE_BYTES + 10) + b"\n")
        first = json.loads(stream.readline())
        assert first["code"] == protocol.BAD_REQUEST
        assert "exceeds" in first["error"]
        raw.sendall(protocol.encode({"op": "healthz"}))
        assert json.loads(stream.readline())["live"] is True
        raw.close()

        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(30)
        raw.connect(host.sock)
        stream = raw.makefile("rb")
        raw.sendall(b"y" * (protocol.MAX_LINE_BYTES + 4096 + 1000)
                    + b"\n")
        over = json.loads(stream.readline())
        assert over["code"] == protocol.BAD_REQUEST
        assert "exceeds" in over["error"]
        raw.close()


def test_terminal_entries_evicted_and_fetchable_from_cache(tmp_path):
    """The job table is bounded: past ``max_terminal_entries`` the
    oldest-finished entries are dropped from memory, and their values
    remain fetchable by full key from the on-disk result cache."""
    with ServeHost(tmp_path, workers=1, max_terminal_entries=2) as host:
        with host.client() as client:
            keys = []
            for tag in "abcd":
                reply = client.submit("_serve_sleep",
                                      {"seconds": 0.01, "tag": tag})
                client.wait(reply["job"], timeout=60)
                keys.append(reply["key"])
            table = host.service.table
            assert sum(1 for e in table.values() if e.terminal) <= 2
            assert keys[0] not in table
            evicted = client.fetch(keys[0])
            assert evicted["code"] == protocol.OK
            assert evicted["evicted"] is True
            assert evicted["value"]["tag"] == "a"
            assert client.healthz()["counters"]["serve.evicted"] >= 2


def test_stale_index_bounded_lru():
    from repro.harness.parallel import SweepJob
    from repro.serve.service import JobEntry

    service = ServeService(ServeConfig(workers=1, use_cache=False,
                                       max_stale_entries=2))
    jobs = [SweepJob(task="workload_metrics",
                     params={"workload": "429.mcf", "scale": 0.01 * (i + 1)})
            for i in range(4)]

    def note(i):
        entry = JobEntry(key=f"k{i}", job=jobs[i])
        entry.value_payload = {"i": i}
        service._note_known_result(entry)

    note(0), note(1), note(2)
    assert len(service._stale_index) == 2
    assert service._logical_key(jobs[0]) not in service._stale_index
    note(1)  # LRU touch: 1 is now the most recent of {1, 2}
    note(3)  # evicts 2, not 1
    assert service._logical_key(jobs[2]) not in service._stale_index
    assert service._logical_key(jobs[1]) in service._stale_index
    assert service._logical_key(jobs[3]) in service._stale_index


def test_unknown_op_rejected(tmp_path):
    with ServeHost(tmp_path, workers=1) as host:
        with host.client() as client:
            reply = client.request("frobnicate")
            assert reply["code"] == protocol.BAD_REQUEST
            assert "submit" in reply["error"]


def test_protocol_decode_limits():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"[1, 2, 3]\n")          # not an object
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"{broken\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode(b"x" * (protocol.MAX_LINE_BYTES + 1))


def test_config_params_inflate_to_tolconfig():
    params = protocol.inflate_job_params(
        {"workload": "429.mcf",
         "config": {"event_budget": 1234, "watchdog_stall_limit": 9}})
    from repro.tol.config import TolConfig
    assert isinstance(params["config"], TolConfig)
    assert params["config"].event_budget == 1234
    assert params["config"].watchdog_stall_limit == 9


# -- observability -------------------------------------------------------------


def test_healthz_reports_host_saturation_and_workers(tmp_path):
    with ServeHost(tmp_path, workers=2) as host:
        with host.client() as client:
            health = client.healthz()
            assert health["live"] is True
            assert health["host"]["cpu_count"] >= 1
            assert "available_cpus" in health["host"]
            assert health["queue"]["capacity"] == 64
            assert 0.0 <= health["saturation"] <= 1.0
            assert len(health["workers"]) == 2
            metrics = client.metrics()["snapshot"]
            assert "serve.workers_alive" in metrics["gauges"]


def test_watch_streams_states_until_terminal(tmp_path):
    with ServeHost(tmp_path, workers=1, use_cache=False) as host:
        with host.client() as client:
            reply = client.submit("_serve_sleep", {"seconds": 0.3})
        with host.client() as watcher:
            states = [u["state"] for u in watcher.watch(reply["job"])]
            assert states[-1] == "done"
            assert len(states) >= 2


def test_status_accepts_job_id_prefix(tmp_path):
    with ServeHost(tmp_path, workers=1) as host:
        with host.client() as client:
            reply = client.submit("workload_metrics", WORKLOAD)
            client.wait(reply["job"], timeout=120)
            assert client.status(reply["job"][:12])["state"] == "done"
