"""Observability layer: distributed trace context, span-file merge,
time-series metrics, latency percentiles, flight recorder, dashboard.

The integration tests run a real serve instance (background event loop,
unix socket, forked workers) exactly like test_serve.py, then assemble
the job's cross-process timeline with the same merge path ``darco
trace --job`` uses and assert the ISSUE's acceptance properties: one
trace id on every span, B/E balance per lane, retry/resume instants on
a killed job, and run-to-run determinism modulo wall-clock fields.
"""

import asyncio
import json
import os
import signal
import threading
import time
from collections import defaultdict

import pytest

from repro.harness import parallel
from repro.serve import ServeClient, ServeConfig, ServeService
from repro.serve import protocol
from repro.serve.client import ServeError
from repro.serve.flightrec import FlightRecorder
from repro.telemetry.registry import MetricsRegistry, histogram_percentiles
from repro.telemetry.timeseries import (
    TimeSeriesScraper, load_timeseries_jsonl, sparkline,
)
from repro.telemetry.tracectx import (
    SpanFileWriter, TraceContext, epoch_us, mint_trace_id,
)
from repro.telemetry.tracemerge import (
    merge_trace, read_span_file, strip_wallclock,
)

WORKLOAD = {"workload": "429.mcf", "scale": 0.05}


@parallel.register_task("_obs_sleep")
def _obs_sleep_task(seconds=0.05, tag=""):
    time.sleep(seconds)
    return {"slept": seconds, "tag": tag}


class ServeHost:
    """In-process serve instance on a background event-loop thread."""

    def __init__(self, tmp_path, **kw):
        self.sock = str(tmp_path / "serve.sock")
        kw.setdefault("cache_dir", str(tmp_path / "cache"))
        kw.setdefault("trace_dir", str(tmp_path / "traces"))
        self.config = ServeConfig(socket_path=self.sock, **kw)
        self.service = ServeService(self.config)
        self._ready = threading.Event()
        self._thread = None

    def __enter__(self):
        async def _run():
            await self.service.start()
            self._ready.set()
            await self.service.serve_until_shutdown()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_run()), daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "service did not come up"
        return self

    def __exit__(self, *exc):
        try:
            with self.client() as client:
                client.shutdown()
        except ServeError:
            pass
        self._thread.join(20)

    def client(self):
        return ServeClient(socket_path=self.sock)


def _events(doc):
    return [ev for ev in doc["traceEvents"] if ev.get("ph") != "M"]


def _assert_balanced(events):
    """Every (pid, tid) lane must close every span it opens, in order."""
    depth = defaultdict(int)
    for ev in events:
        lane = (ev.get("pid"), ev.get("tid"))
        if ev["ph"] == "B":
            depth[lane] += 1
        elif ev["ph"] == "E":
            depth[lane] -= 1
            assert depth[lane] >= 0, f"E without B on lane {lane}"
    assert all(d == 0 for d in depth.values()), f"unbalanced: {dict(depth)}"


# -- trace context and span files ----------------------------------------------


def test_mint_trace_id_is_deterministic_for_a_seed():
    assert mint_trace_id(seed="abc") == mint_trace_id(seed="abc")
    assert mint_trace_id(seed="abc") != mint_trace_id(seed="abd")
    assert len(mint_trace_id()) == 16
    assert mint_trace_id() != mint_trace_id()


def test_trace_context_wire_round_trip_and_validation():
    ctx = TraceContext(trace_id=mint_trace_id(seed="x"), job="j1",
                       mode="full")
    assert TraceContext.from_wire(ctx.as_wire()) == ctx
    assert TraceContext.from_wire(None) is None
    for bad in ("string", 7, {"trace_id": ""}, {"trace_id": 5},
                {"trace_id": "a" * 65},
                {"trace_id": "ok", "mode": "loud"},
                {"trace_id": "ok", "job": ["x"]}):
        with pytest.raises(ValueError):
            TraceContext.from_wire(bad)


def test_span_file_writer_spans_and_torn_tail(tmp_path):
    ctx = TraceContext(trace_id="t" * 16, job="jobjob")
    w = SpanFileWriter(tmp_path, "service", pid=7)
    t0 = epoch_us()
    sid = w.complete("queue_wait", "service", t0, t0 + 1500, ctx=ctx,
                     attempt=1)
    w.instant("retry_wait", "service", ctx=ctx, delay_s=0.1)
    assert sid == "service:7:1"
    # Simulate a killed writer: torn trailing line.
    with open(w.path, "a", encoding="utf-8") as fh:
        fh.write('{"name": "half')
    loaded = read_span_file(w.path)
    assert loaded["header"]["role"] == "service"
    assert loaded["header"]["pid"] == 7
    assert [ev["ph"] for ev in loaded["events"]] == ["X", "i"]
    ev = loaded["events"][0]
    assert ev["args"]["trace_id"] == "t" * 16
    assert ev["args"]["job"] == "jobjob"
    assert ev["dur"] == 1500


def test_merge_filters_by_trace_and_synthesizes_process_names(tmp_path):
    a = TraceContext(trace_id="a" * 16, job="job-a")
    b = TraceContext(trace_id="b" * 16, job="job-b")
    sw = SpanFileWriter(tmp_path, "service", pid=1)
    ww = SpanFileWriter(tmp_path, "worker", pid=2)
    t0 = epoch_us()
    sw.complete("queue_wait", "service", t0, t0 + 10, ctx=a)
    sw.complete("queue_wait", "service", t0, t0 + 10, ctx=b)
    ww.complete("attempt", "worker", t0 + 10, t0 + 50, ctx=a, resume=False)

    doc = merge_trace(tmp_path, trace_id="a" * 16)
    events = _events(doc)
    assert len(events) == 2
    assert all(ev["args"]["trace_id"] == "a" * 16 for ev in events)
    names = {ev["args"]["name"] for ev in doc["traceEvents"]
             if ev.get("ph") == "M" and ev["name"] == "process_name"}
    assert names == {"service", "worker"}
    # Timeline is normalized to start at zero.
    assert min(ev["ts"] for ev in events) == 0
    # Job-prefix addressing matches the same events.
    assert len(_events(merge_trace(tmp_path, job="job-a"))) == 2
    assert len(_events(merge_trace(tmp_path, job="job-"))) == 3


# -- histograms, time series, flight recorder ----------------------------------


def test_histogram_percentiles_interpolate_and_clamp():
    reg = MetricsRegistry()
    hist = reg.histogram("lat", bounds=(10, 100, 1000))
    for _ in range(90):
        hist.observe(5)       # first bucket (0, 10]
    for _ in range(10):
        hist.observe(5000)    # overflow bucket
    pct = hist.percentiles()
    assert 0 < pct["p50"] <= 10
    assert pct["p99"] == 1000          # overflow clamps to top edge
    assert histogram_percentiles({"bounds": [], "counts": [],
                                  "count": 0}) == {
        "p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_timeseries_scraper_rates_ring_bound_and_jsonl(tmp_path):
    reg = MetricsRegistry()
    scraper = TimeSeriesScraper(reg, interval_s=1.0, capacity=4)
    scraper.sample(now=100.0)
    reg.inc("serve.completed", 10)
    reg.set_gauge("serve.queue_depth", 3)
    second = scraper.sample(now=102.0)
    assert second["rates"]["serve.completed"] == pytest.approx(5.0)
    assert second["gauges"]["serve.queue_depth"] == 3
    for i in range(10):
        scraper.sample(now=103.0 + i)
    assert len(scraper.window()) == 4          # ring is bounded
    assert scraper.samples_taken == 12
    assert scraper.series("serve.queue_depth")[-1][1] == 3

    path = tmp_path / "ts.jsonl"
    scraper.export_jsonl(path)
    loaded = load_timeseries_jsonl(path)
    assert loaded["header"]["kind"] == "timeseries"
    assert len(loaded["samples"]) == 4

    artifact = tmp_path / "ts.json"
    scraper.export_artifact(artifact)
    from repro.ioutil import load_artifact
    payload = load_artifact(artifact, "timeseries", 1)
    assert len(payload["samples"]) == 4


def test_sparkline_is_pure_and_bounded():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0]) == "▁▁"
    line = sparkline(list(range(100)), width=16)
    assert len(line) == 16
    assert line[0] == "▁" and line[-1] == "█"


def test_flight_recorder_ring_is_bounded():
    rec = FlightRecorder(capacity=8)
    for i in range(20):
        rec.mark("dispatch", attempt=i)
    rec.incident("worker_death", attempt=19)
    dump = rec.as_dict()
    assert len(dump["events"]) == 8
    assert dump["recorded"] == 21
    assert dump["dropped"] == 13
    assert dump["events"][-1]["kind"] == "incident"
    json.dumps(dump)  # must stay JSON-able


# -- integration: traced jobs through a real service ---------------------------


def test_traced_job_end_to_end_one_timeline(tmp_path):
    """A served job yields one merged timeline: service spans (queue
    wait, run) and worker spans (attempt + simulator-internal phases in
    full mode), every one stamped with the same trace id."""
    with ServeHost(tmp_path, workers=1, use_cache=False,
                   tracing="full") as host:
        with host.client() as client:
            reply = client.submit("workload_metrics", WORKLOAD)
            assert reply["code"] == protocol.ACCEPTED
            trace_id = reply["trace_id"]
            assert trace_id
            final = client.wait(reply["job"], timeout=120)
            assert final["state"] == "done"
            assert final["trace_id"] == trace_id
            health = client.healthz()
            assert health["latency"]["run_ms"]["p50"] > 0

    doc = merge_trace(host.config.trace_dir, job=reply["job"])
    events = _events(doc)
    assert doc["otherData"]["trace_ids"] == [trace_id]
    assert all(ev["args"]["trace_id"] == trace_id for ev in events)
    names = {ev["name"] for ev in events}
    assert {"queue_wait", "run", "attempt", "accepted"} <= names
    assert "dispatch" in names  # full mode: simulator-internal spans
    roles = {ev["args"]["name"] for ev in doc["traceEvents"]
             if ev.get("ph") == "M" and ev["name"] == "process_name"}
    assert {"service", "worker"} <= roles
    _assert_balanced(events)
    # The attempt span records this was a clean first attempt.
    attempt = [ev for ev in events if ev["name"] == "attempt"]
    assert len(attempt) == 1
    assert attempt[0]["args"]["resume"] is False
    assert attempt[0]["args"]["status"] == "ok"


def test_client_supplied_context_wins_and_bad_context_is_400(tmp_path):
    with ServeHost(tmp_path, workers=1, use_cache=False,
                   tracing="counters") as host:
        with host.client() as client:
            ctx = TraceContext(trace_id="c1de" * 4, mode="counters")
            reply = client.submit("_obs_sleep", {"seconds": 0.01},
                                  trace=ctx.as_wire())
            assert reply["trace_id"] == "c1de" * 4
            assert client.wait(reply["job"], 60)["state"] == "done"
            bad = client.submit("_obs_sleep", {"seconds": 0.01,
                                               "tag": "bad"},
                                trace={"trace_id": ""})
            assert bad["code"] == protocol.BAD_REQUEST
            assert "trace" in bad["error"]
            # Tracing off end to end: no context is minted.
            off = client.submit("_obs_sleep", {"seconds": 0.01,
                                               "tag": "off"},
                                trace=TraceContext(
                                    trace_id="off0" * 4,
                                    mode="off").as_wire())
            assert client.wait(off["job"], 60)["state"] == "done"
    doc = merge_trace(host.config.trace_dir, trace_id="off0" * 4)
    assert _events(doc) == []


def test_concurrent_jobs_keep_their_trace_ids_apart(tmp_path):
    """N distinct jobs through a 4-worker pool: each job's merged
    timeline carries exactly its own trace id on every span."""
    jobs = {}
    with ServeHost(tmp_path, workers=4, use_cache=False,
                   tracing="counters") as host:
        with host.client() as client:
            for i in range(6):
                reply = client.submit(
                    "_obs_sleep", {"seconds": 0.05, "tag": f"j{i}"})
                assert reply["code"] == protocol.ACCEPTED
                jobs[reply["job"]] = reply["trace_id"]
            for job in jobs:
                assert client.wait(job, timeout=60)["state"] == "done"
    assert len(set(jobs.values())) == len(jobs)
    for job, trace_id in jobs.items():
        events = _events(merge_trace(host.config.trace_dir, job=job))
        assert events, f"no spans for {job}"
        assert all(ev["args"]["trace_id"] == trace_id for ev in events)
        assert {"queue_wait", "run", "attempt"} <= {
            ev["name"] for ev in events}
        _assert_balanced(events)


def _busy_worker_pid(client, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        workers = client.healthz()["workers"]
        busy = [w for w in workers if w["state"] == "busy" and w["pid"]]
        if busy:
            return busy[0]["pid"]
        time.sleep(0.01)
    raise AssertionError("no worker went busy")


def test_killed_and_resumed_job_is_one_timeline_with_retry_instants(
        tmp_path):
    """ISSUE acceptance: SIGKILL a worker mid-job; the merged timeline
    still reads as one story — first attempt, worker_death and
    retry_wait instants, then a resumed attempt — all under one trace
    id, with spans from two different worker processes."""
    params = {"workload": "429.mcf", "scale": 0.3}
    with ServeHost(tmp_path, workers=1, use_cache=False,
                   tracing="counters",
                   checkpoint_dir=str(tmp_path / "ckpt")) as host:
        with host.client() as client:
            reply = client.submit("arch_run", params, max_attempts=5)
            trace_id = reply["trace_id"]
            pid = _busy_worker_pid(client)
            os.kill(pid, signal.SIGKILL)
            final = client.wait(reply["job"], timeout=180)
            assert final["state"] == "done"
            assert final["attempts"] >= 2

    doc = merge_trace(host.config.trace_dir, job=reply["job"])
    events = _events(doc)
    assert all(ev["args"]["trace_id"] == trace_id for ev in events)
    names = [ev["name"] for ev in events]
    assert "worker_death" in names
    assert "retry_wait" in names
    attempts = [ev for ev in events if ev["name"] == "attempt"]
    # The killed attempt wrote no attempt span (SIGKILL), but every
    # surviving attempt did, and the last one resumed from checkpoint.
    assert attempts
    assert attempts[-1]["args"]["resume"] is True
    # The service dispatched at least twice (a killed attempt leaves no
    # "run" span — no result frame ever arrived — but its queue_wait
    # dispatch span is already on disk).
    waits = [ev for ev in events if ev["name"] == "queue_wait"]
    assert len(waits) >= 2
    # The surviving attempt came from a different worker process than
    # the killed one: the trace spans more than one worker span file.
    worker_files = [p for p in doc["otherData"]["span_files"]
                    if "worker-" in p]
    assert len(worker_files) >= 2
    _assert_balanced(events)
    # Chronology: the death instant precedes the resumed attempt.
    t_death = min(ev["ts"] for ev in events
                  if ev["name"] == "worker_death")
    assert t_death <= attempts[-1]["ts"]


def test_merged_timeline_identical_across_runs_modulo_wallclock(
        tmp_path):
    """Two clean runs of the same job produce structurally identical
    merged timelines once wall-clock fields are stripped (deterministic
    span ids + deterministic simulator spans)."""
    docs = []
    for run in ("one", "two"):
        trace_dir = str(tmp_path / f"traces-{run}")
        with ServeHost(tmp_path, workers=1, use_cache=False,
                       tracing="full", trace_dir=trace_dir) as host:
            with host.client() as client:
                reply = client.submit("workload_metrics", WORKLOAD)
                assert client.wait(reply["job"], 120)["state"] == "done"
        docs.append(merge_trace(trace_dir, job=reply["job"]))
    assert strip_wallclock(docs[0]) == strip_wallclock(docs[1])
    assert _events(docs[0])  # and not vacuously


# -- flight recorder, percentiles, timeseries op, dashboard --------------------


def test_failed_job_record_carries_flight_recorder(tmp_path):
    with ServeHost(tmp_path, workers=1, use_cache=False,
                   flight_recorder_events=16) as host:
        with host.client() as client:
            reply = client.submit("_obs_sleep", {"seconds": 60.0},
                                  deadline_s=0.4, max_attempts=2)
            final = client.wait(reply["job"], timeout=60)
            assert final["state"] == "failed"
            flight = final["flight"]
            assert flight["capacity"] == 16
            kinds = [(ev["kind"], ev["name"]) for ev in flight["events"]]
            assert ("incident", "deadline_kill") in kinds
            assert ("incident", "failed") in kinds
            assert ("mark", "dispatch") in kinds
            assert ("mark", "retry_wait") in kinds
            # Two attempts, both recorded.
            dispatches = [ev for ev in flight["events"]
                          if ev["name"] == "dispatch"]
            assert len(dispatches) == 2
            # Done jobs don't ship the recorder on fetch.
            ok = client.submit("_obs_sleep", {"seconds": 0.01})
            done = client.wait(ok["job"], 60)
            assert done["state"] == "done"
            assert "flight" not in done


def test_healthz_percentiles_and_timeseries_op(tmp_path):
    with ServeHost(tmp_path, workers=2, use_cache=False,
                   metrics_interval_s=0.1) as host:
        with host.client() as client:
            for i in range(3):
                reply = client.submit("_obs_sleep",
                                      {"seconds": 0.03, "tag": f"t{i}"})
                assert client.wait(reply["job"], 60)["state"] == "done"
            health = client.healthz()
            latency = health["latency"]
            assert latency["run_ms"]["p50"] > 0
            assert (latency["run_ms"]["p50"]
                    <= latency["run_ms"]["p95"]
                    <= latency["run_ms"]["p99"])
            assert latency["queue_wait_ms"]["p99"] >= 0
            ts = client.timeseries(n=50)
            assert ts["code"] == protocol.OK
            samples = ts["timeseries"]["samples"]
            assert samples
            last = samples[-1]
            assert last["counters"]["serve.completed"] == 3
            assert "serve.queue_wait_ms" in last["percentiles"]
            assert "serve.workers_alive" in last["gauges"]
            bad = client.request("timeseries", n="many")
            assert bad["code"] == protocol.BAD_REQUEST


def test_dashboard_render_is_pure_and_complete(tmp_path):
    from repro.serve.dashboard import render
    with ServeHost(tmp_path, workers=2, use_cache=False,
                   metrics_interval_s=0.1) as host:
        with host.client() as client:
            reply = client.submit("workload_metrics", WORKLOAD)
            assert client.wait(reply["job"], 120)["state"] == "done"
            health = client.healthz()
            series = client.timeseries(n=30)["timeseries"]
    frame = render(health, series)
    assert frame == render(health, series)  # pure
    for needle in ("darco serve", "jobs/s", "latency", "queue_wait_ms",
                   "workers (2/2 alive)", "queue depth",
                   "hottest tiers", "BB translations"):
        assert needle in frame, f"missing {needle!r} in frame"
    # Renders healthz alone too (timeseries endpoint unreachable).
    assert "darco serve" in render(health, None)


def test_cli_trace_job_merge_and_top_once(tmp_path, capsys):
    """The operator path: darco top --once against a live service, then
    darco trace --job after it exited (offline merge)."""
    from repro import cli
    with ServeHost(tmp_path, workers=1, use_cache=False,
                   tracing="counters",
                   metrics_interval_s=0.1) as host:
        with host.client() as client:
            reply = client.submit("_obs_sleep", {"seconds": 0.02})
            assert client.wait(reply["job"], 60)["state"] == "done"
        assert cli.main(["top", "--once", "--socket", host.sock]) == 0
        frame = capsys.readouterr().out
        assert "darco serve" in frame and "workers" in frame
    out = str(tmp_path / "merged.json")
    rc = cli.main(["trace", "--job", reply["job"],
                   "--trace-dir", host.config.trace_dir, "--out", out])
    assert rc == 0
    doc = json.loads(open(out).read())
    assert _events(doc)
    # And the validator the CI smoke uses accepts it.
    import subprocess, sys as _sys
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    proc = subprocess.run(
        [_sys.executable, os.path.join(root, "tools",
                                       "validate_trace.py"), out],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # Unknown job: explicit failure, not an empty trace.
    assert cli.main(["trace", "--job", "nosuchjob",
                     "--trace-dir", host.config.trace_dir,
                     "--out", str(tmp_path / "none.json")]) == 1
