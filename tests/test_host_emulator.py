"""Unit tests for the host emulator: ALU semantics, checkpoints, asserts,
alias table, chaining and IBTC."""

import pytest

from repro.guest.memory import PagedMemory, PageFault
from repro.guest.state import GuestState
from repro.host.emulator import (
    EXIT_ASSERT, EXIT_PAGE_FAULT, EXIT_SPEC, EXIT_TOL, HostEmulator,
)
from repro.host.isa import CodeUnit, HostInstr as H, UNIT_MODE_BBM


def make_unit(instrs, uid=1, entry=0x1000, guest_insns=1, mode=UNIT_MODE_BBM):
    return CodeUnit(uid=uid, mode=mode, entry_pc=entry, instrs=instrs,
                    guest_insn_count=guest_insns)


def fresh(memory=None):
    memory = memory if memory is not None else PagedMemory()
    return HostEmulator(memory), GuestState()


def chk(pc=0x1000):
    return H("chkpt", meta={"guest_pc": pc})


def ext(next_pc, guest_insns=1):
    return H("exit", meta={"next_pc": next_pc, "guest_insns": guest_insns})


def test_simple_alu_and_exit():
    emu, state = fresh()
    state.set("EAX", 7)
    unit = make_unit([
        chk(),
        H("addi32", d=1, a=1, imm=5),       # EAX += 5
        ext(0x2000),
    ])
    event = emu.execute(unit, state)
    assert event.kind == EXIT_TOL
    assert event.next_pc == 0x2000
    assert state.get("EAX") == 12
    assert state.eip == 0x2000
    assert event.host_insns == 3


def test_wrapping_32bit_semantics():
    emu, state = fresh()
    unit = make_unit([
        chk(),
        H("li", d=16, imm=0xFFFFFFFF),
        H("addi32", d=16, a=16, imm=1),
        H("mov", d=1, a=16),
        ext(0),
    ])
    emu.execute(unit, state)
    assert state.get("EAX") == 0


def test_signed_unsigned_compares():
    emu, state = fresh()
    unit = make_unit([
        chk(),
        H("li", d=16, imm=0xFFFFFFFF),      # -1 signed
        H("li", d=17, imm=1),
        H("cmplt32s", d=1, a=16, b=17),     # -1 < 1 -> 1
        H("cmplt32u", d=2, a=16, b=17),     # huge < 1 -> 0
        ext(0),
    ])
    emu.execute(unit, state)
    assert state.get("EAX") == 1
    assert state.get("ECX") == 0


def test_flag_helper_ops():
    emu, state = fresh()
    unit = make_unit([
        chk(),
        H("li", d=16, imm=0x80000000),
        H("li", d=17, imm=0x80000000),
        H("addcf32", d=1, a=16, b=17),   # carry out -> 1
        H("addof32", d=2, a=16, b=17),   # signed overflow -> 1
        H("li", d=18, imm=3),
        H("li", d=19, imm=5),
        H("subcf32", d=4, a=18, b=19),   # borrow 3<5 -> 1
        H("subof32", d=6, a=18, b=19),   # no signed overflow -> 0
        ext(0),
    ])
    emu.execute(unit, state)
    assert state.get("EAX") == 1
    assert state.get("ECX") == 1
    assert state.get("EBX") == 1
    assert state.get("EBP") == 0


def test_memory_roundtrip_and_guest_state_sync():
    memory = PagedMemory()
    memory.write_u32(0x3000, 123)
    emu, state = fresh(memory)
    unit = make_unit([
        chk(),
        H("li", d=16, imm=0x3000),
        H("ld32", d=17, a=16, imm=0),
        H("addi32", d=17, a=17, imm=1),
        H("st32", a=16, b=17, imm=4),
        ext(0),
    ])
    emu.execute(unit, state)
    assert memory.read_u32(0x3004) == 124


def test_assert_failure_rolls_back_registers_and_memory():
    memory = PagedMemory()
    memory.write_u32(0x3000, 111)
    emu, state = fresh(memory)
    state.set("EAX", 10)
    unit = make_unit([
        chk(0x1000),
        H("addi32", d=1, a=1, imm=90),            # EAX = 100 (speculative)
        H("li", d=16, imm=0x3000),
        H("li", d=17, imm=222),
        H("st32", a=16, b=17, imm=0),             # speculative store
        H("li", d=18, imm=0),
        H("assert_nz", a=18),                     # fails
        ext(0x9999),
    ])
    event = emu.execute(unit, state)
    assert event.kind == EXIT_ASSERT
    assert event.next_pc == 0x1000                 # precise restart point
    assert state.get("EAX") == 10                  # register rolled back
    assert memory.read_u32(0x3000) == 111          # store undone
    assert unit.assert_failures == 1
    assert unit.host_insns_wasted == 7
    assert unit.guest_insns_retired == 0


def test_commit_then_fail_keeps_committed_region():
    memory = PagedMemory()
    emu, state = fresh(memory)
    unit = make_unit([
        chk(0x1000),
        H("li", d=16, imm=0x3000),
        H("li", d=17, imm=7),
        H("st32", a=16, b=17, imm=0),
        H("commit", meta={"guest_insns": 2}),
        chk(0x1020),
        H("li", d=18, imm=9),
        H("st32", a=16, b=18, imm=0),
        H("li", d=19, imm=0),
        H("assert_nz", a=19),
        ext(0x9999),
    ])
    event = emu.execute(unit, state)
    assert event.kind == EXIT_ASSERT
    assert event.next_pc == 0x1020                 # restart at second chkpt
    assert memory.read_u32(0x3000) == 7            # committed store kept
    assert unit.guest_insns_retired == 2


def test_spec_load_store_conflict_detected():
    memory = PagedMemory()
    memory.write_u32(0x4000, 5)
    emu, state = fresh(memory)
    # Translated order: load hoisted above a store to the same address.
    unit = make_unit([
        chk(0x1000),
        H("li", d=16, imm=0x4000),
        H("sld32", d=17, a=16, imm=0, meta={"seq": 5}),   # orig. after store
        H("li", d=18, imm=42),
        H("st32chk", a=16, b=18, imm=0, meta={"seq": 2}),  # conflict!
        ext(0x9999),
    ])
    event = emu.execute(unit, state)
    assert event.kind == EXIT_SPEC
    assert event.next_pc == 0x1000
    assert memory.read_u32(0x4000) == 5
    assert unit.spec_failures == 1


def test_spec_disjoint_addresses_no_conflict():
    memory = PagedMemory()
    memory.write_u32(0x4000, 5)
    emu, state = fresh(memory)
    unit = make_unit([
        chk(0x1000),
        H("li", d=16, imm=0x4000),
        H("sld32", d=17, a=16, imm=16, meta={"seq": 5}),
        H("li", d=18, imm=42),
        H("st32chk", a=16, b=18, imm=0, meta={"seq": 2}),
        H("mov", d=1, a=17),
        ext(0x9999),
    ])
    event = emu.execute(unit, state)
    assert event.kind == EXIT_TOL
    assert memory.read_u32(0x4000) == 42


def test_alias_table_overflow_fails_conservatively():
    memory = PagedMemory()
    emu, state = fresh(memory)
    emu.alias_table.capacity = 2
    instrs = [chk(0x1000), H("li", d=16, imm=0x4000)]
    for i in range(3):
        instrs.append(
            H("sld32", d=17 + i, a=16, imm=4 * i, meta={"seq": 10 + i}))
    instrs.append(ext(0x9999))
    unit = make_unit(instrs)
    event = emu.execute(unit, state)
    assert event.kind == EXIT_SPEC


def test_page_fault_rolls_back_and_reports_addr():
    memory = PagedMemory(demand_zero=False)
    emu, state = fresh(memory)
    state.set("EAX", 77)
    unit = make_unit([
        chk(0x1000),
        H("addi32", d=1, a=1, imm=1),
        H("li", d=16, imm=0x5008),
        H("ld32", d=17, a=16, imm=0),   # faults: page not present
        ext(0x9999),
    ])
    event = emu.execute(unit, state)
    assert event.kind == EXIT_PAGE_FAULT
    assert event.fault_addr == 0x5008
    assert event.next_pc == 0x1000
    assert state.get("EAX") == 77      # speculative add rolled back


def test_intra_unit_loop_with_branches():
    emu, state = fresh()
    # Sum 1..5 with a host-level loop: r16 counter, r17 acc.
    unit = make_unit([
        chk(0x1000),                              # 0
        H("li", d=16, imm=5),                     # 1
        H("li", d=17, imm=0),                     # 2
        H("add32", d=17, a=17, b=16),             # 3 loop body
        H("addi32", d=16, a=16, imm=-1),          # 4
        H("bnez", a=16, target=3),                # 5
        H("mov", d=1, a=17),                      # 6
        ext(0x2000, guest_insns=6),               # 7
    ])
    event = emu.execute(unit, state)
    assert event.kind == EXIT_TOL
    assert state.get("EAX") == 15


def test_chaining_executes_linked_unit_without_tol():
    emu, state = fresh()
    unit_b = make_unit([
        chk(0x2000),
        H("addi32", d=1, a=1, imm=100),
        ext(0x3000),
    ], uid=2, entry=0x2000)
    exit_a = ext(0x2000)
    exit_a.meta["link"] = unit_b
    unit_a = make_unit([
        chk(0x1000),
        H("addi32", d=1, a=1, imm=1),
        exit_a,
    ], uid=1, entry=0x1000)
    event = emu.execute(unit_a, state)
    assert event.kind == EXIT_TOL
    assert event.next_pc == 0x3000
    assert state.get("EAX") == 101
    assert unit_a.exec_count == 1 and unit_b.exec_count == 1


def test_ibtc_hit_jumps_directly_miss_exits():
    emu, state = fresh()
    unit_b = make_unit([
        chk(0x2000),
        H("addi32", d=1, a=1, imm=7),
        ext(0x3000),
    ], uid=2, entry=0x2000)
    unit_a = make_unit([
        chk(0x1000),
        H("li", d=16, imm=0x2000),
        H("ibtc", a=16, meta={"guest_insns": 1}),
    ], uid=1, entry=0x1000)
    # Miss first.
    event = emu.execute(unit_a, state)
    assert event.kind == EXIT_TOL
    assert event.ibtc_miss
    assert event.next_pc == 0x2000
    # Fill and retry: hit chains straight into unit_b.
    emu.ibtc.insert(0x2000, unit_b)
    state.set("EAX", 0)
    event = emu.execute(unit_a, state)
    assert event.kind == EXIT_TOL
    assert event.next_pc == 0x3000
    assert state.get("EAX") == 7
    assert emu.ibtc.hits == 1 and emu.ibtc.misses == 1


def test_fp_ops_match_guest_semantics():
    from repro.guest.semantics import fdiv64, gisa_sqrt
    memory = PagedMemory()
    memory.write_f64(0x6000, 9.0)
    emu, state = fresh(memory)
    unit = make_unit([
        chk(0x1000),
        H("li", d=16, imm=0x6000),
        H("ldf", d=17, a=16, imm=0),
        H("fsqrt", d=18, a=17),
        H("lif", d=19, imm=0.0),
        H("fdiv", d=20, a=17, b=19),
        H("stf", a=16, b=18, imm=8),
        H("stf", a=16, b=20, imm=16),
        ext(0),
    ])
    emu.execute(unit, state)
    assert memory.read_f64(0x6008) == gisa_sqrt(9.0) == 3.0
    assert memory.read_f64(0x6010) == fdiv64(9.0, 0.0)


def test_vector_ops():
    memory = PagedMemory()
    memory.write_vec(0x7000, [1, 2, 3, 4])
    emu, state = fresh(memory)
    unit = make_unit([
        chk(0x1000),
        H("li", d=16, imm=0x7000),
        H("vld", d=9, a=16, imm=0),
        H("li", d=17, imm=10),
        H("vsplat", d=10, a=17),
        H("vadd32", d=11, a=9, b=10),
        H("vst", a=16, b=11, imm=16),
        ext(0),
    ])
    emu.execute(unit, state)
    assert memory.read_vec(0x7010) == [11, 12, 13, 14]


def test_mode_attribution_counters():
    emu, state = fresh()
    unit = make_unit([
        chk(0x1000),
        H("addi32", d=1, a=1, imm=1),
        ext(0x2000, guest_insns=3),
    ], mode="SBM")
    emu.execute(unit, state)
    assert emu.guest_retired_by_mode["SBM"] == 3
    assert emu.host_committed_by_mode["SBM"] == 3
    assert emu.host_insns_committed == 3
    assert emu.host_insns_total == 3


def test_fuel_guard_catches_runaway_units():
    emu, state = fresh()
    emu.fuel_per_dispatch = 100
    unit = make_unit([
        chk(0x1000),
        H("j", target=1),
        ext(0),
    ])
    with pytest.raises(Exception):
        emu.execute(unit, state)
