"""Shared RetryPolicy: validation, backoff math, and its integration
with the sweep runner (bounded retries, retry surfacing, rescue)."""

import pytest

from repro.harness import parallel
from repro.harness.parallel import SweepJob, retry_summary, sweep
from repro.harness.retry import SWEEP_DEFAULT, RetryPolicy

# -- policy unit behavior ------------------------------------------------------


def test_validation_rejects_bad_budgets():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_allows_enforces_attempt_budget():
    policy = RetryPolicy(max_attempts=3)
    assert policy.allows(1)
    assert policy.allows(2)
    assert not policy.allows(3)
    assert not policy.allows(7)


def test_delay_grows_exponentially_and_caps():
    policy = RetryPolicy(max_attempts=8, base_delay_s=0.1, backoff=2.0,
                         max_delay_s=0.5, jitter=0.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)
    assert policy.delay(4) == pytest.approx(0.5)   # capped
    assert policy.delay(10) == pytest.approx(0.5)


def test_delay_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, backoff=1.0,
                         jitter=0.5)
    a = policy.delay(1, seed="job-a")
    b = policy.delay(1, seed="job-a")
    c = policy.delay(1, seed="job-b")
    assert a == b                      # same seed, same spread
    assert a != c                      # different jobs decorrelate
    for sample in (a, c):
        assert 0.5 <= sample <= 1.0    # jitter only ever shortens


def test_retry_after_hint_floor_and_cap():
    policy = RetryPolicy()
    assert policy.retry_after_hint(0, 0.0) == pytest.approx(1.0)
    assert policy.retry_after_hint(10, 10.0) == pytest.approx(1.0)
    assert policy.retry_after_hint(1000, 0.5) == pytest.approx(60.0)
    assert policy.retry_after_hint(30, 2.0) == pytest.approx(15.0)


def test_sweep_default_matches_historical_behavior():
    # One immediate retry, no sleeping: what sweep() always did.
    assert SWEEP_DEFAULT.max_attempts == 2
    assert SWEEP_DEFAULT.delay(1) == 0.0


# -- sweep integration ---------------------------------------------------------


@parallel.register_task("_test_flaky_once")
def _flaky_once(flag_path):
    from pathlib import Path
    flag = Path(flag_path)
    if not flag.exists():
        flag.write_text("tried")
        raise RuntimeError("transient first-attempt failure")
    return "recovered"


def test_retry_rescues_transient_failure(tmp_path):
    (result,) = sweep(
        [SweepJob(task="_test_flaky_once",
                  params={"flag_path": str(tmp_path / "flag")})],
        n_jobs=2, use_cache=False, retries=2)
    assert result.ok
    assert result.value == "recovered"
    assert result.attempts == 2
    summary = retry_summary([result])
    assert summary == {"tasks_retried": 1, "extra_attempts": 1,
                       "rescued": 1}


def test_retries_zero_disables_the_retry(tmp_path):
    (result,) = sweep(
        [SweepJob(task="_test_flaky_once",
                  params={"flag_path": str(tmp_path / "flag")})],
        n_jobs=2, use_cache=False, retries=0)
    assert not result.ok
    assert result.attempts == 1
    assert retry_summary([result])["extra_attempts"] == 0


def test_explicit_policy_bounds_attempts(tmp_path):
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.0, jitter=0.0)
    (result,) = sweep(
        [SweepJob(task="workload_metrics",
                  params={"workload": "no.such.workload"})],
        n_jobs=1, use_cache=False, retry=policy)
    assert not result.ok
    assert result.attempts == 4
    summary = retry_summary([result])
    assert summary["tasks_retried"] == 1
    assert summary["extra_attempts"] == 3
    assert summary["rescued"] == 0
