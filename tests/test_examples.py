"""The examples are part of the public API surface: they must run clean.

(Each is executed in-process with a guard on runtime; the heavier sweep
examples are exercised at reduced scope elsewhere in the suite.)"""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/multi_isa_frontend.py",
    "examples/optimization_explorer.py",
    "examples/debugging_a_miscompilation.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs_clean(path, capsys):
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path} produced no output"
    assert "Traceback" not in out


def test_quickstart_reports_superblocks(capsys):
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "exit code        : 0" in out
    assert "mode_distribution" in out


def test_multi_isa_reaches_sbm(capsys):
    runpy.run_path("examples/multi_isa_frontend.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "SBM" in out
