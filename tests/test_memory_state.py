"""Property and unit tests for paged memory and architectural state."""

import pytest
from hypothesis import given, strategies as st

from repro.guest.memory import PAGE_SIZE, PagedMemory, PageFault
from repro.guest.state import GuestState


# -- paged memory ---------------------------------------------------------------


def test_demand_zero_reads_zero():
    memory = PagedMemory()
    assert memory.read_u32(0x12345) == 0
    assert memory.read_f64(0x4000) == 0.0


def test_lazy_memory_faults_on_missing_page():
    memory = PagedMemory(demand_zero=False)
    with pytest.raises(PageFault) as excinfo:
        memory.read_u32(0x5004)
    assert excinfo.value.addr == 0x5004
    assert excinfo.value.page == 0x5


def test_install_page_resolves_faults():
    memory = PagedMemory(demand_zero=False)
    image = bytes(range(256)) * 16
    memory.install_page(0x5, image)
    assert memory.read_u8(0x5003) == 3
    # Neighbouring pages still fault.
    with pytest.raises(PageFault):
        memory.read_u8(0x6000)


def test_install_page_requires_full_page():
    memory = PagedMemory(demand_zero=False)
    with pytest.raises(ValueError):
        memory.install_page(1, b"short")


def test_dirty_tracking():
    memory = PagedMemory()
    memory.read_u32(0x1000)
    assert not memory.dirty
    memory.write_u32(0x1000, 5)
    memory.write_u8(0x3000, 7)
    assert memory.dirty == {0x1, 0x3}
    memory.clear_dirty()
    assert not memory.dirty


def test_cross_page_access():
    memory = PagedMemory()
    addr = PAGE_SIZE - 2   # straddles pages 0 and 1
    memory.write_u32(addr, 0xAABBCCDD)
    assert memory.read_u32(addr) == 0xAABBCCDD
    assert memory.read_u8(PAGE_SIZE) == 0xBB  # little endian: DD CC BB AA


def test_address_wraparound_masks_to_32bit():
    memory = PagedMemory()
    memory.write_u32(0x1_0000_0010, 42)   # masked to 0x10
    assert memory.read_u32(0x10) == 42


def test_first_difference():
    a, b = PagedMemory(), PagedMemory()
    a.write_u32(0x1000, 1)
    b.write_u32(0x1000, 1)
    assert a.first_difference(b, [1]) is None
    b.write_u8(0x1802, 9)
    assert a.first_difference(b, [1]) == (1, 0x802)


@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
def test_u32_roundtrip_property(addr, value):
    memory = PagedMemory()
    memory.write_u32(addr, value)
    assert memory.read_u32(addr) == value & 0xFFFFFFFF


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_f64_roundtrip_property(value):
    memory = PagedMemory()
    memory.write_f64(0x2000, value)
    assert memory.read_f64(0x2000) == value


@given(st.lists(st.integers(0, 0xFFFFFFFF), min_size=4, max_size=4))
def test_vec_roundtrip_property(lanes):
    memory = PagedMemory()
    memory.write_vec(0x3000, lanes)
    assert memory.read_vec(0x3000) == lanes


# -- architectural state -----------------------------------------------------------


def test_state_snapshot_restore_roundtrip():
    state = GuestState()
    state.set("EAX", 42)
    state.set("F3", 1.5)
    state.set("V2", [1, 2, 3, 4])
    state.set("ZF", 1)
    state.eip = 0x1234
    snap = state.snapshot()
    state.set("EAX", 0)
    state.set("ZF", 0)
    state.restore(snap)
    assert state.get("EAX") == 42
    assert state.get("F3") == 1.5
    assert state.get("V2") == [1, 2, 3, 4]
    assert state.get("ZF") == 1
    assert state.eip == 0x1234


def test_state_copy_is_independent():
    state = GuestState()
    state.set("EBX", 9)
    clone = state.copy()
    clone.set("EBX", 1)
    clone.vr[0][0] = 77
    assert state.get("EBX") == 9
    assert state.vr[0][0] == 0


def test_state_diff_reports_all_classes():
    a, b = GuestState(), GuestState()
    a.set("EAX", 1)
    a.set("F0", 2.0)
    a.set("V1", [9, 9, 9, 9])
    a.set("CF", 1)
    a.eip = 4
    diff = a.diff(b)
    assert set(diff) == {"EAX", "F0", "V1", "CF", "EIP"}
    assert a.diff(a) == {}


def test_state_diff_treats_nan_pairs_equal():
    a, b = GuestState(), GuestState()
    a.set("F1", float("nan"))
    b.set("F1", float("nan"))
    assert "F1" not in a.diff(b)


def test_state_matches_with_ignore():
    a, b = GuestState(), GuestState()
    a.set("EDX", 5)
    assert not a.matches(b)
    assert a.matches(b, ignore={"EDX"})


def test_state_set_masks_to_32bit():
    state = GuestState()
    state.set("ESI", 0x1_2345_6789)
    assert state.get("ESI") == 0x2345_6789


def test_state_unknown_register_raises():
    state = GuestState()
    with pytest.raises(KeyError):
        state.get("R15")
    with pytest.raises(KeyError):
        state.set("XMM0", 1)
