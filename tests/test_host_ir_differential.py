"""Differential property test: host-instruction semantics must agree with
the IR evaluator's semantics for every lowerable pure operation.

The code generator lowers IR op X to host op Y; if their semantic tables
ever drift (a masking bug, a signedness bug), translated code diverges from
interpretation.  This test closes that loop directly: random operand values
through (IR evaluator) vs (codegen + host emulator) must match exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.tol.codegen import CodeGenerator
from repro.tol.ir import Const, GFReg, GReg, IRInstr, Tmp
from repro.tol.ir_eval import eval_ops
from repro.tol.regalloc import allocate
from repro.host.emulator import HostEmulator

#: (IR op, arity, signedness-sensitive) — pure integer ops.
INT_OPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor",
           "shl", "shr", "sar", "not", "neg",
           "cmpeq", "cmpne", "cmplts", "cmpltu", "cmples", "cmpleu",
           "addcf", "addof", "subcf", "subof", "mulof")

UNARY = {"not", "neg"}

FP_OPS = ("fadd", "fsub", "fmul", "fdiv", "fneg", "fabs", "fsqrt",
          "ffloor", "fsin", "fcos")
FP_UNARY = {"fneg", "fabs", "fsqrt", "ffloor", "fsin", "fcos"}


def _run_both(ops, int_inputs=(), fp_inputs=()):
    """Evaluate ``ops`` with the IR evaluator and through codegen+host;
    return both final states."""
    # IR evaluation path.
    ir_state = GuestState()
    for i, value in enumerate(int_inputs):
        ir_state.gpr[i] = value
    for i, value in enumerate(fp_inputs):
        ir_state.fpr[i] = value
    eval_ops(list(ops), ir_state, PagedMemory())

    # Codegen + host emulator path.
    terminator = IRInstr("exit", attrs={"next_pc": 0, "guest_insns": 1})
    allocation = allocate(list(ops) + [terminator])
    unit = CodeGenerator().generate(
        uid=1, mode="BBM", entry_pc=0x1000, ops=allocation.ops,
        allocation=allocation, guest_insn_count=1)
    host_state = GuestState()
    for i, value in enumerate(int_inputs):
        host_state.gpr[i] = value
    for i, value in enumerate(fp_inputs):
        host_state.fpr[i] = value
    HostEmulator(PagedMemory()).execute(unit, host_state)
    return ir_state, host_state


@settings(max_examples=300, deadline=None)
@given(st.sampled_from(INT_OPS),
       st.integers(0, 0xFFFFFFFF),
       st.integers(0, 0xFFFFFFFF))
def test_integer_ops_agree(op, a, b):
    srcs = (GReg(0),) if op in UNARY else (GReg(0), GReg(1))
    ops = [
        IRInstr(op, Tmp(1), srcs),
        IRInstr("mov", GReg(2), (Tmp(1),)),
    ]
    ir_state, host_state = _run_both(ops, int_inputs=(a, b))
    assert ir_state.gpr[2] == host_state.gpr[2], (
        f"{op}({a:#x}, {b:#x}): IR {ir_state.gpr[2]:#x} vs "
        f"host {host_state.gpr[2]:#x}")


@settings(max_examples=200, deadline=None)
@given(st.sampled_from(INT_OPS),
       st.integers(0, 0xFFFFFFFF),
       st.integers(0, 0xFFFFFFFF))
def test_integer_ops_agree_with_const_operand(op, a, imm):
    """Constant second operands exercise the immediate host forms."""
    if op in UNARY:
        srcs = (GReg(0),)
    else:
        srcs = (GReg(0), Const(imm))
    ops = [
        IRInstr(op, Tmp(1), srcs),
        IRInstr("mov", GReg(2), (Tmp(1),)),
    ]
    ir_state, host_state = _run_both(ops, int_inputs=(a,))
    assert ir_state.gpr[2] == host_state.gpr[2], (
        f"{op}({a:#x}, #{imm:#x}) immediate-form mismatch")


_reasonable_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6)


@settings(max_examples=200, deadline=None)
@given(st.sampled_from(FP_OPS), _reasonable_floats, _reasonable_floats)
def test_fp_ops_agree(op, a, b):
    from repro.tol.ir import FTmp
    srcs = (GFReg(0),) if op in FP_UNARY else (GFReg(0), GFReg(1))
    ops = [
        IRInstr(op, FTmp(1), srcs),
        IRInstr("fmov", GFReg(2), (FTmp(1),)),
    ]
    ir_state, host_state = _run_both(ops, fp_inputs=(a, b))
    mine, theirs = ir_state.fpr[2], host_state.fpr[2]
    assert mine == theirs or (mine != mine and theirs != theirs), (
        f"{op}({a}, {b}): IR {mine} vs host {theirs}")


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 0xFFFFFFFF), _reasonable_floats)
def test_conversions_agree(a, x):
    from repro.tol.ir import FTmp
    ops = [
        IRInstr("i2f", FTmp(1), (GReg(0),)),
        IRInstr("fmov", GFReg(2), (FTmp(1),)),
        IRInstr("f2i", Tmp(2), (GFReg(1),)),
        IRInstr("mov", GReg(3), (Tmp(2),)),
    ]
    ir_state, host_state = _run_both(ops, int_inputs=(a,),
                                     fp_inputs=(0.0, x))
    assert ir_state.fpr[2] == host_state.fpr[2]
    assert ir_state.gpr[3] == host_state.gpr[3]
