"""Decoder corner cases: instructions with tricky semantics, verified
against the reference emulator through the interpreter harness."""

import pytest

from repro.guest.assembler import (
    Assembler, EAX, EBX, ECX, EDX, EBP, ESI, EDI, ESP, M,
)
from repro.guest.emulator import GuestEmulator
from repro.guest.memory import PagedMemory
from repro.guest.program import pack_u32s
from repro.guest.state import GuestState
from repro.tol.decoder import GisaFrontend
from repro.tol.interp import Interpreter, OK, SYSCALL


def lockstep(build, max_steps=20_000):
    asm = Assembler()
    build(asm)
    program = asm.program()
    ref = GuestEmulator(program)
    memory = PagedMemory()
    program.load_into(memory)
    state = GuestState()
    state.eip = program.entry
    state.set("ESP", program.stack_top)
    interp = Interpreter(GisaFrontend(), state, memory)
    steps = 0
    while steps < max_steps:
        result = interp.step()
        if result.status != OK:
            break
        ref.step()
        diff = state.diff(ref.state)
        assert not diff, f"diverged at step {steps}: {diff}"
        steps += 1
    return ref.state


def test_pop_esp_loads_value():
    def build(asm):
        asm.mov(EAX, 0xCAFE)
        asm.push(EAX)
        asm.pop(ESP)          # ESP = loaded value, no +4 visible
        asm.mov(EDI, ESP)
        asm.mov(ESP, 0x7FFF0000)
        asm.exit(0)
    state = lockstep(build)
    assert state.get("EDI") == 0xCAFE


def test_push_esp_pushes_old_value():
    def build(asm):
        asm.mov(ESP, 0x7FFE0000)
        asm.push(ESP)
        asm.pop(EDI)          # original ESP value
        asm.exit(0)
    state = lockstep(build)
    assert state.get("EDI") == 0x7FFE0000


def test_shift_by_zero_keeps_flags():
    def build(asm):
        asm.mov(EAX, 0)
        asm.sub(EAX, 1)       # CF=1 SF=1
        asm.mov(EBX, 5)
        asm.shl(EBX, 0)       # count 0: flags and value unchanged
        asm.mov(EDI, 0)
        asm.jb("cf_alive")
        asm.mov(EDI, 1)
        asm.label("cf_alive")
        asm.mov(ESI, EBX)
        asm.exit(0)
    state = lockstep(build)
    assert state.get("EDI") == 0
    assert state.get("ESI") == 5


def test_shift_count_masks_to_31():
    def build(asm):
        asm.mov(EAX, 1)
        asm.shl(EAX, 33)      # masked to 1
        asm.mov(EDI, EAX)
        asm.exit(0)
    state = lockstep(build)
    assert state.get("EDI") == 2


def test_idiv_by_zero_defined_semantics():
    def build(asm):
        asm.mov(EAX, 1234)
        asm.mov(EBX, 0)
        asm.idiv(EBX)         # ISA-defined: q=0, r=dividend
        asm.mov(ESI, EAX)
        asm.mov(EDI, EDX)
        asm.exit(0)
    state = lockstep(build)
    assert state.get("ESI") == 0
    assert state.get("EDI") == 1234


def test_idiv_intmin_by_minus_one_wraps():
    def build(asm):
        asm.mov(EAX, 0x80000000)
        asm.mov(EBX, 0xFFFFFFFF)
        asm.idiv(EBX)
        asm.mov(ESI, EAX)
        asm.exit(0)
    state = lockstep(build)
    assert state.get("ESI") == 0x80000000  # wraps like the reference


def test_jmpi_through_memory_operand():
    def build(asm):
        asm.mov(EAX, "target")
        asm.mov(M(None, disp=0x9000), EAX)
        asm.jmpi(M(None, disp=0x9000))
        asm.mov(EDI, 1)
        asm.exit(1)
        asm.label("target")
        asm.mov(EDI, 2)
        asm.exit(0)
    state = lockstep(build)
    assert state.get("EDI") == 2


def test_calli_through_register():
    def build(asm):
        asm.mov(EAX, "fn")
        asm.calli(EAX)
        asm.mov(EDI, EBX)
        asm.exit(0)
        asm.label("fn")
        asm.mov(EBX, 77)
        asm.ret()
    state = lockstep(build)
    assert state.get("EDI") == 77


def test_lea_does_not_touch_memory_or_flags():
    def build(asm):
        asm.mov(EAX, 0)
        asm.sub(EAX, 1)                     # CF=1
        asm.mov(EBX, 0x100)
        asm.mov(ECX, 3)
        asm.lea(EDX, M(EBX, ECX, 8, disp=0x20))
        asm.mov(EDI, 0)
        asm.jb("kept")
        asm.mov(EDI, 9)
        asm.label("kept")
        asm.exit(0)
    state = lockstep(build)
    assert state.get("EDX") == 0x100 + 3 * 8 + 0x20
    assert state.get("EDI") == 0


def test_neg_zero_clears_cf():
    def build(asm):
        asm.mov(EAX, 0)
        asm.neg(EAX)          # CF = (src != 0) = 0
        asm.mov(EDI, 1)
        asm.jae("no_carry")
        asm.mov(EDI, 0)
        asm.label("no_carry")
        asm.exit(0)
    state = lockstep(build)
    assert state.get("EDI") == 1


def test_test_and_cmp_do_not_write_operands():
    def build(asm):
        asm.mov(EAX, 0xF0)
        asm.mov(EBX, 0x0F)
        asm.test(EAX, EBX)
        asm.cmp(EAX, EBX)
        asm.mov(ESI, EAX)
        asm.mov(EDI, EBX)
        asm.exit(0)
    state = lockstep(build)
    assert state.get("ESI") == 0xF0
    assert state.get("EDI") == 0x0F


def test_xchg_swaps():
    def build(asm):
        asm.mov(EAX, 1)
        asm.mov(EBX, 2)
        asm.xchg(EAX, EBX)
        asm.mov(ESI, EAX)
        asm.mov(EDI, EBX)
        asm.exit(0)
    state = lockstep(build)
    assert state.get("ESI") == 2 and state.get("EDI") == 1


def test_fcmp_nan_sets_unordered_flags():
    import struct
    from repro.guest.assembler import F0, F1

    def build(asm):
        asm.data(0x5000, struct.pack("<dd", float("nan"), 1.0))
        asm.mov(EBP, 0x5000)
        asm.fld(F0, M(EBP))
        asm.fld(F1, M(EBP, disp=8))
        asm.fcmp(F0, F1)
        asm.mov(EDI, 0)
        asm.je("unordered")      # ZF=1 on NaN
        asm.mov(EDI, 1)
        asm.label("unordered")
        asm.exit(0)
    state = lockstep(build)
    assert state.get("EDI") == 0


def test_interpreter_decode_cache_reused():
    frontend = GisaFrontend()
    asm = Assembler()
    asm.mov(EAX, 1)
    asm.exit(0)
    program = asm.program()
    memory = PagedMemory()
    program.load_into(memory)
    first = frontend.decode(memory, program.entry)
    second = frontend.decode(memory, program.entry)
    assert first is second
