"""Tests for the resilience layer: seeded fault injection, divergence
recovery with translation quarantine, and the incident log.

The acceptance campaign (seed 7, 50 faults, five sites) is pinned here:
every triggered fault must be recovered or quarantined, every run's
final guest state must match the clean authoritative reference, and the
whole campaign must be replay-deterministic."""

import types

import pytest

from repro.guest.emulator import GuestEmulator
from repro.guest.syscalls import GuestOS
from repro.resilience.campaign import (
    DEFAULT_SITES, build_campaign_program, campaign_config,
    plan_campaign, run_campaign, run_fault_case,
)
from repro.resilience.faults import SITES, FaultInjector, FaultSpec
from repro.resilience.incidents import IncidentLog
from repro.resilience.quarantine import (
    LEVEL_BBM_ONLY, LEVEL_INTERPRET_ONLY, LEVEL_NO_ASSERTS,
    TranslationQuarantine,
)
from repro.system.controller import Controller, ValidationError


# -- quarantine ladder -----------------------------------------------------------


def test_quarantine_ladder_escalates_and_saturates():
    q = TranslationQuarantine()
    pc = 0x1000
    assert q.level(pc) == 0
    assert q.escalate(pc) == LEVEL_NO_ASSERTS
    assert q.escalate(pc) == LEVEL_BBM_ONLY
    assert q.escalate(pc) == LEVEL_INTERPRET_ONLY
    assert q.escalate(pc) == LEVEL_INTERPRET_ONLY   # saturates
    assert q.escalations == 4


def test_quarantine_floor_skips_rungs():
    q = TranslationQuarantine()
    assert q.escalate(0x2000, floor=LEVEL_NO_ASSERTS) == LEVEL_NO_ASSERTS
    # A clean PC escalated with a BBM-only floor jumps straight there.
    assert q.escalate(0x3000, floor=LEVEL_BBM_ONLY) == LEVEL_BBM_ONLY
    assert q.summary() == {"no_asserts": 1, "bbm_only": 1}
    assert q.entries() == [(0x2000, LEVEL_NO_ASSERTS),
                           (0x3000, LEVEL_BBM_ONLY)]


# -- incident log ----------------------------------------------------------------


def test_incident_log_signature_is_content_deterministic():
    def make():
        log = IncidentLog()
        log.record("state_divergence", 100, detail={"diff": {"EAX": [1, 2]}},
                   suspects=(0x1000,), actions=("pc=0x1000 level=no_asserts",))
        log.record("livelock", 250, detail={"pc": 0x2000})
        return log
    a, b = make(), make()
    assert a.signature() == b.signature()
    assert a.count("livelock") == 1
    assert a.kinds() == ["state_divergence", "livelock"]
    b.record("sync_lost", 300)
    assert a.signature() != b.signature()


# -- fault injector units --------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(site="nonsense")
    with pytest.raises(ValueError):
        FaultSpec(site="ir_drop", ordinal=0)
    assert set(DEFAULT_SITES) <= set(SITES)


def test_alias_false_negative_suppresses_one_conflict():
    """The alias-table wrap reports 'no conflict' exactly once for a
    genuine conflict, then becomes a transparent pass-through."""
    calls = []

    def store_conflicts(addr, size, seq):
        calls.append(addr)
        return True                       # every query is a real conflict

    table = types.SimpleNamespace(store_conflicts=store_conflicts)
    tol = types.SimpleNamespace(
        host=types.SimpleNamespace(alias_table=table))
    injector = FaultInjector(FaultSpec(site="alias_false_negative",
                                       ordinal=2, salt=1))
    injector.attach(tol)
    assert tol.host.alias_table.store_conflicts(0x100, 4, 1) is True
    assert not injector.fired
    assert tol.host.alias_table.store_conflicts(0x104, 4, 2) is False
    assert injector.fired
    assert injector.fired_detail["addr"] == 0x104
    # After firing: pass-through again.
    assert tol.host.alias_table.store_conflicts(0x108, 4, 3) is True


# -- campaign planning -----------------------------------------------------------


def test_campaign_plan_is_seed_deterministic():
    a = plan_campaign(7, 20)
    b = plan_campaign(7, 20)
    assert a == b
    assert plan_campaign(8, 20) != a
    # Round-robin coverage of every default site.
    assert {s.site for s in a} == set(DEFAULT_SITES)


# -- single-fault behavior -------------------------------------------------------


def _first_spec():
    return plan_campaign(7, 1)[0]


def test_recovery_end_state_bit_identical_to_reference():
    """After a recovered fault, registers, memory, exit code and stdout
    all match a clean authoritative (GuestEmulator) run — checked here
    independently of the campaign's own classification."""
    program = build_campaign_program()
    ref = GuestEmulator(program, os=GuestOS())
    ref.run()
    spec = _first_spec()
    controller = Controller(program, config=campaign_config("recover"))
    injector = FaultInjector(spec)
    injector.attach(controller.codesigned.tol)
    result = controller.run()
    assert injector.fired
    assert controller.recoveries >= 1
    assert result.incidents >= 1
    assert not controller.codesigned.state.diff(ref.state)
    assert not controller.x86.state.diff(ref.state)
    pages = list(controller.codesigned.memory.present_pages())
    assert controller.codesigned.memory.first_difference(
        controller.x86.memory, pages) is None
    assert result.exit_code == ref.os.exit_code
    assert result.stdout == bytes(ref.os.stdout)


def test_strict_mode_raises_on_first_divergence():
    spec = _first_spec()
    program = build_campaign_program()
    controller = Controller(program, config=campaign_config("strict"))
    injector = FaultInjector(spec)
    injector.attach(controller.codesigned.tol)
    with pytest.raises(ValidationError):
        controller.run()
    # The campaign runner classifies the same spec as "failed" in strict.
    record = run_fault_case(spec.site, spec.ordinal, spec.salt,
                            mode="strict")
    assert record.status == "failed"
    assert "ValidationError" in record.error


def test_direct_tier_fault_recovers_and_demotes_below_tier():
    """A fault firing inside a direct-tier program is caught like any
    translation fault: recover mode resyncs from the authoritative
    component, the quarantine ladder demotes the entry PC below the
    direct tier (no re-promotion), and the final state stays
    bit-identical to a clean reference run."""
    from dataclasses import replace

    program = build_campaign_program()
    ref = GuestEmulator(program, os=GuestOS())
    ref.run()

    config = replace(campaign_config("recover"), direct_promote_threshold=5)
    controller = Controller(program, config=config)
    tol = controller.codesigned.tol
    fired = {}
    hook = tol.host.direct_promote_hook

    def sabotaging_hook(unit):
        hook(unit)
        prog = unit.__dict__.get("_directprog")
        if prog is None or fired:
            return

        def faulty(emu, executed, fuel, _prog=prog, _unit=unit):
            result = _prog(emu, executed, fuel)
            if not fired:
                # One bad store "emitted by" the generated code: corrupt
                # the workload's source operand so the accumulator
                # diverges at the next validation epoch.
                fired["pc"] = _unit.entry_pc
                emu.memory.write_u32(0x9000, 0xDEAD)
            return result

        unit._directprog = faulty

    tol.host.direct_promote_hook = sabotaging_hook
    result = controller.run()

    assert fired, "direct tier never engaged"
    pc = fired["pc"]
    assert controller.recoveries >= 1
    assert result.incidents >= 1
    # The ladder demoted the faulting PC below the direct tier...
    assert tol.quarantine.level(pc) > 0
    # ...and no cached translation of it carries a direct program.
    for unit in tol.cache.units():
        if unit.entry_pc == pc:
            assert unit.__dict__.get("_directprog") is None
    # The campaign's bit-identical final-state contract still holds.
    assert not controller.codesigned.state.diff(ref.state)
    assert not controller.x86.state.diff(ref.state)
    pages = list(controller.codesigned.memory.present_pages())
    assert controller.codesigned.memory.first_difference(
        controller.x86.memory, pages) is None
    assert result.exit_code == ref.os.exit_code
    assert result.stdout == bytes(ref.os.stdout)


# -- the acceptance campaign -----------------------------------------------------


def test_seed7_campaign_all_faults_caught():
    """The pinned acceptance campaign: 50 seeded faults across five
    sites, every one recovered or quarantined, final state matching the
    clean reference in every run."""
    report = run_campaign(7, n=50)
    assert len(report.records) == 50
    assert report.all_triggered_caught
    assert set(report.by_status) <= {"recovered", "quarantined"}
    assert report.by_status.get("recovered", 0) > 0
    assert report.by_status.get("quarantined", 0) > 0
    assert all(r.final_match for r in report.records)
    assert all(r.incidents >= 1 for r in report.triggered)
    # >= 3 distinct sites actually fired.
    assert len({r.site for r in report.triggered}) >= 3


def test_campaign_is_replay_deterministic():
    a = run_campaign(7, n=6)
    b = run_campaign(7, n=6)
    assert a.signature() == b.signature()
    for ra, rb in zip(a.records, b.records):
        assert (ra.status, ra.log_signature) == (rb.status, rb.log_signature)
    assert run_campaign(11, n=6).signature() != a.signature()
