"""Debug toolchain tests, including fault injection: we deliberately break
an optimization pass / the code generator and check that the divergence
finder pinpoints the culpable unit and stage."""

import pytest

from repro.guest.assembler import Assembler, EAX, EBX, ECX, EDI
from repro.debug.divergence import find_divergence
from repro.debug.tracing import DispatchTracer, ModeTracer, tol_stats_dump
from repro.tol.config import TolConfig
from repro.tol.ir import Const, IRInstr
from repro.tol.opt.passes import PassStats, register_pass
from repro.system.controller import Controller, ValidationError

FAST = TolConfig(bbm_threshold=3, sbm_threshold=8)


def hot_loop_program(n=400):
    asm = Assembler()
    asm.mov(EAX, 0)
    with asm.counted_loop(ECX, n):
        asm.add(EAX, 3)
    asm.mov(EDI, EAX)
    asm.exit(0)
    return asm.program()


def test_clean_run_reports_no_divergence():
    assert find_divergence(hot_loop_program(), config=FAST) is None


# -- fault injection -----------------------------------------------------------


@register_pass("_inject_add_skew")
def _inject_add_skew(ops):
    """A deliberately broken 'optimization': rewrites the first add-with-
    constant into an off-by-one."""
    stats = PassStats("_inject_add_skew", ops_in=len(ops))
    out = []
    done = False
    for instr in ops:
        if (not done and instr.op == "add" and len(instr.srcs) == 2
                and isinstance(instr.srcs[1], Const)
                and instr.srcs[1].value == 3):
            instr = instr.with_changes(
                srcs=(instr.srcs[0], Const(4)))
            done = True
        out.append(instr)
    stats.ops_out = len(out)
    return out, stats


def test_validation_catches_injected_optimizer_bug():
    config = TolConfig(
        bbm_threshold=3, sbm_threshold=8,
        sbm_passes=("constfold", "constprop", "_inject_add_skew",
                    "cse", "constprop", "dce"))
    controller = Controller(hot_loop_program(), config=config)
    with pytest.raises(ValidationError):
        controller.run()


def test_divergence_finder_blames_superblock_unit():
    config = TolConfig(
        bbm_threshold=3, sbm_threshold=8,
        sbm_passes=("constfold", "constprop", "_inject_add_skew",
                    "cse", "constprop", "dce"))
    divergence = find_divergence(hot_loop_program(), config=config)
    assert divergence is not None
    assert divergence.unit is not None
    assert divergence.mode in ("SBM", "SBX")
    assert "EAX" in divergence.state_diff


def test_divergence_finder_blames_bbm_bug():
    # Break the BBM pipeline instead: divergence must appear in a BBM unit
    # (before any superblock forms, with a high SBM threshold).
    config = TolConfig(
        bbm_threshold=3, sbm_threshold=10_000_000,
        bbm_passes=("constfold", "constprop", "_inject_add_skew", "dce"))
    divergence = find_divergence(hot_loop_program(), config=config)
    assert divergence is not None
    assert divergence.mode == "BBM"


def test_stage_capture_records_pipeline_stages():
    from repro.debug.divergence import STAGE_ORDER
    controller = Controller(hot_loop_program(), config=FAST)
    translator = controller.codesigned.tol.translator
    translator.capture = {}
    controller.run()
    assert translator.capture, "no superblock captured"
    stages = next(iter(translator.capture.values()))
    for name in STAGE_ORDER:
        assert name in stages and stages[name]


def test_mode_tracer_sees_im_to_translated_transitions():
    controller = Controller(hot_loop_program(), config=FAST)
    tracer = ModeTracer(controller.codesigned.tol)
    controller.run()
    modes = tracer.mode_sequence()
    assert modes[0] == "IM"
    assert "BBM" in modes
    assert "SBM" in modes


def test_dispatch_tracer_and_stats_dump():
    controller = Controller(hot_loop_program(), config=FAST)
    tracer = DispatchTracer(controller.codesigned.tol)
    controller.run()
    assert len(tracer.records) > 5  # chaining keeps dispatch counts small
    text = tracer.format(20)
    assert "IM" in text
    dump = tol_stats_dump(controller.codesigned.tol)
    assert 0.99 < sum(dump["mode_distribution"].values()) <= 1.01
    assert dump["guest_icount"] > 0
    assert dump["sb_translations"] >= 1
