"""Pluggable minimizer oracles: one regression test per oracle kind.

The generic :class:`ProgramOracle` (divergence), the
:class:`SanitizerOracle` (TOL invariant violations) and the
:class:`TimingMismatchOracle` (cycle-report disagreement) each have to
(a) fire on their own failure kind, (b) reject every other kind —
shrinking must preserve what the finding *is* — and (c) drive ddmin to
a small reproducer.  ``oracle_for_reason`` is the dispatch the fuzzer
and ``darco repro --minimize`` rely on.
"""

import pytest

from repro.snapshot.minimize import (
    ProgramOracle, SanitizerOracle, TimingMismatchOracle,
    decode_program_instrs, minimize_program, oracle_for_reason,
)
from repro.tol.config import TolConfig
from repro.workloads.generator import SyntheticSpec, generate

#: Pinned faults known to fire on :func:`_small_program` (scanned once;
#: pinned so the tests are deterministic).
SANITIZER_FAULT = {"site": "stale_chain", "ordinal": 1, "salt": 11}
DIVERGENCE_FAULT = {"site": "host_bitflip", "ordinal": 1, "salt": 7}


def _small_program():
    """A ~36-instruction looping kernel: big enough to translate and
    chain (so ``stale_chain`` has something to corrupt), small enough
    that ddmin stays fast."""
    return generate(SyntheticSpec(seed=9, hot_loops=1, trip_count=60,
                                  bb_size=4, cold_stanzas=1))


def _strict_config():
    return TolConfig(recovery_mode="strict")


# ---------------------------------------------------------------------------
# Divergence oracle (the pre-existing default, exercised via dispatch).
# ---------------------------------------------------------------------------


def test_program_oracle_fires_on_divergence_fault():
    oracle = ProgramOracle(_strict_config(), fault=DIVERGENCE_FAULT)
    assert oracle.diverges(_small_program())


def test_program_oracle_clean_program_does_not_diverge():
    oracle = ProgramOracle(_strict_config())
    assert not oracle.diverges(_small_program())


# ---------------------------------------------------------------------------
# Sanitizer oracle.
# ---------------------------------------------------------------------------


def test_sanitizer_oracle_fires_on_invariant_violation():
    oracle = SanitizerOracle(_strict_config(), fault=SANITIZER_FAULT)
    assert oracle.config.sanitize  # forced on regardless of input
    assert oracle.diverges(_small_program())


def test_sanitizer_oracle_rejects_other_failure_kinds():
    """A plain divergence is NOT a sanitizer finding: the oracle must
    reject it so shrinking cannot trade one bug kind for another."""
    oracle = SanitizerOracle(_strict_config(), fault=DIVERGENCE_FAULT)
    assert not oracle.diverges(_small_program())


def test_sanitizer_oracle_minimizes_and_preserves_kind():
    program = _small_program()
    oracle = SanitizerOracle(_strict_config(), fault=SANITIZER_FAULT)
    result = minimize_program(program, oracle=oracle)
    assert result.instructions <= 10
    assert result.instructions < result.original_instructions
    # The minimized program still trips the *sanitizer*, not something
    # else — checked with a fresh oracle of the same kind.
    assert SanitizerOracle(_strict_config(),
                           fault=SANITIZER_FAULT).diverges(result.program)


# ---------------------------------------------------------------------------
# Timing-mismatch oracle.
# ---------------------------------------------------------------------------


def test_timing_oracle_identity_holds_on_one_config():
    """annotate=True vs annotate=False on the same TimingConfig is the
    cycle-annotation identity contract: no mismatch on a clean kernel."""
    from repro.timing.config import TimingConfig
    oracle = TimingMismatchOracle(_strict_config(),
                                  timing_config=TimingConfig())
    assert not oracle.diverges(_small_program())


def test_timing_oracle_fires_on_config_sensitive_kernel():
    from repro.timing.config import TimingConfig
    oracle = TimingMismatchOracle(
        _strict_config(), timing_config=TimingConfig(),
        timing_config_b=TimingConfig(mispredict_penalty=30,
                                     memory_latency=400))
    assert oracle.diverges(_small_program())


def test_timing_oracle_refuses_armed_faults():
    from repro.timing.config import TimingConfig
    with pytest.raises(ValueError, match="armed faults"):
        TimingMismatchOracle(_strict_config(),
                             timing_config=TimingConfig(),
                             fault=DIVERGENCE_FAULT)


# ---------------------------------------------------------------------------
# Reason -> oracle dispatch.
# ---------------------------------------------------------------------------


def test_oracle_for_reason_dispatch():
    cfg = _strict_config()
    assert isinstance(oracle_for_reason("fuzz_sanitizer", cfg),
                      SanitizerOracle)
    assert isinstance(oracle_for_reason("fuzz_timing", cfg,
                                        fault=DIVERGENCE_FAULT),
                      TimingMismatchOracle)  # fault dropped, not fatal
    generic = oracle_for_reason("fuzz_divergence", cfg,
                                fault=DIVERGENCE_FAULT)
    assert type(generic) is ProgramOracle
    assert generic.fault == DIVERGENCE_FAULT
    # Campaign-era reasons keep minimizing with the generic oracle.
    assert type(oracle_for_reason("state_divergence", cfg)) \
        is ProgramOracle


def test_minimize_rejects_clean_input_under_each_oracle():
    program = _small_program()
    cfg = _strict_config()
    for oracle in (ProgramOracle(cfg), SanitizerOracle(cfg)):
        with pytest.raises(ValueError, match="does not diverge"):
            minimize_program(program, oracle=oracle)
