"""Checkpoint/restore round-trip guarantee (the tentpole property).

A run checkpointed at every validation boundary, then resumed from ANY
of those checkpoints, must produce architectural results bit-identical
to an uncheckpointed run: same exit code, retirement count, stdout,
final register/memory state and incident-log hash.  The matrix covers
integer, floating-point, string-op and syscall-heavy workloads in both
strict and recover modes.
"""

import pytest

from repro.guest.asmtext import assemble_text
from repro.ioutil import SchemaError, load_artifact
from repro.snapshot.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION, KIND_CHECKPOINT, CheckpointStore,
)
from repro.snapshot.runner import arch_result, run_checkpointed
from repro.tol.config import TolConfig

# ---------------------------------------------------------------------------
# The workload matrix: each program loops through several syscalls (so
# checkpoints land mid-run) and is hot enough to promote code through
# BBM into SBM under the aggressive thresholds below.
# ---------------------------------------------------------------------------

INT_SRC = """
    mov esi, 0
    mov ebp, 5
outer:
    mov ecx, 25
inner:
    imul esi, 3
    add esi, ecx
    xor esi, 0x1f
    mov [0x9100], esi
    mov edx, [0x9100]
    add esi, edx
    dec ecx
    jne inner
    mov eax, 2
    mov ecx, 0x9000
    mov edx, 4
    syscall
    dec ebp
    jne outer
    mov eax, 1
    mov ebx, 0
    syscall
    .data 0x9000 u32 0x2e2e2e2e
"""

FP_SRC = """
    mov ebp, 6
    fldi f0, 1
    fldi f1, 3
floop:
    mov ecx, 12
fin:
    fadd f0, f1
    fmul f0, f1
    fsqrt f0
    fst [0x9200], f0
    fld f2, [0x9200]
    fadd f0, f2
    dec ecx
    jne fin
    mov eax, 2
    mov ecx, 0x9000
    mov edx, 2
    syscall
    dec ebp
    jne floop
    mov eax, 1
    mov ebx, 0
    syscall
    .data 0x9000 u32 0x2a2a2a2a
"""

STRING_SRC = """
    mov ebp, 5
sloop:
    mov esi, 0x9000
    mov edi, 0x9400
    mov ecx, 8
    rep_movsd
    mov eax, 0x41414141
    mov edi, 0x9500
    mov ecx, 6
    rep_stosd
    mov eax, 2
    mov ecx, 0x9400
    mov edx, 4
    syscall
    dec ebp
    jne sloop
    mov eax, 1
    mov ebx, 0
    syscall
    .data 0x9000 u32 0x2b2b2b2b 2 3 4 5 6 7 8
"""

SYSCALL_SRC = """
    mov ebp, 8
qloop:
    mov eax, 6
    syscall
    mov [0x9300], eax
    mov eax, 5
    syscall
    mov eax, 3
    mov ecx, 0x9340
    mov edx, 2
    syscall
    mov eax, 2
    mov ecx, 0x9300
    mov edx, 4
    syscall
    mov eax, 4
    mov ebx, 0
    syscall
    dec ebp
    jne qloop
    mov eax, 1
    mov ebx, 0
    syscall
"""

WORKLOADS = {
    "int": INT_SRC,
    "fp": FP_SRC,
    "string": STRING_SRC,
    "syscall": SYSCALL_SRC,
}
MODES = ("strict", "recover")


def _config(mode: str) -> TolConfig:
    return TolConfig(bbm_threshold=2, sbm_threshold=6,
                     recovery_mode=mode)


# ---------------------------------------------------------------------------
# The round-trip matrix.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_resume_from_every_boundary_is_bit_identical(name, mode, tmp_path):
    program = assemble_text(WORKLOADS[name])
    config = _config(mode)
    baseline, _ = run_checkpointed(program, config=config)

    checkpointed, _ = run_checkpointed(
        program, config=config, checkpoint_dir=tmp_path,
        checkpoint_every=1)
    # Checkpointing itself must not perturb the run.
    assert checkpointed == baseline

    store = CheckpointStore(tmp_path)
    paths = store.paths()
    assert len(paths) >= 2, "matrix workload must checkpoint mid-run"
    for path in paths:
        controller = store.restore(path)
        result = controller.run()
        assert arch_result(result, controller) == baseline, \
            f"resume from {path.name} diverged"


def test_workloads_cover_all_execution_modes():
    """Sanity: the matrix really exercises interpreter + translations."""
    program = assemble_text(INT_SRC)
    _, controller = run_checkpointed(program, config=_config("strict"))
    dist = controller.codesigned.tol.mode_distribution()
    assert dist["IM"] > 0 and dist["BBM"] > 0 and dist["SBM"] > 0


def test_checkpoint_cadence(tmp_path):
    program = assemble_text(SYSCALL_SRC)
    _, _ = run_checkpointed(program, config=_config("strict"),
                            checkpoint_dir=tmp_path, checkpoint_every=1)
    dense = len(CheckpointStore(tmp_path).paths())

    sparse_dir = tmp_path / "sparse"
    _, _ = run_checkpointed(program, config=_config("strict"),
                            checkpoint_dir=sparse_dir,
                            checkpoint_every=5)
    sparse = len(CheckpointStore(sparse_dir).paths())
    assert dense > sparse >= 1


def test_resume_logs_evidence_outside_the_value(tmp_path):
    program = assemble_text(INT_SRC)
    config = _config("strict")
    baseline, _ = run_checkpointed(program, config=config)
    run_checkpointed(program, config=config, checkpoint_dir=tmp_path)

    resumed, _ = run_checkpointed(program, config=config,
                                  checkpoint_dir=tmp_path, resume=True)
    assert resumed == baseline
    log = (tmp_path / "resume.log").read_text()
    assert "resumed from ckpt-" in log
    assert "guest_icount=" in log


def test_fresh_run_clears_stale_checkpoints(tmp_path):
    program = assemble_text(INT_SRC)
    config = _config("strict")
    run_checkpointed(program, config=config, checkpoint_dir=tmp_path)
    first = {p.name for p in CheckpointStore(tmp_path).paths()}
    assert first
    # resume=False must not inherit resume points from the previous run.
    run_checkpointed(program, config=config, checkpoint_dir=tmp_path,
                     checkpoint_every=5)
    second = {p.name for p in CheckpointStore(tmp_path).paths()}
    assert len(second) < len(first)


# ---------------------------------------------------------------------------
# Faulted runs: checkpoints taken after the fault fired and its
# incidents were recorded restore both the fault's inert state and the
# incident log, so the tail replays to the same signature.
# ---------------------------------------------------------------------------


def test_faulted_recover_run_resumes_after_incidents(tmp_path):
    from repro.resilience.campaign import (
        build_campaign_program, campaign_config,
    )
    from repro.resilience.faults import FaultInjector, FaultSpec
    from repro.system.controller import Controller

    program = build_campaign_program()
    config = campaign_config("recover")
    spec = FaultSpec(site="host_bitflip", ordinal=2, salt=0xF2A74DE4)

    controller = Controller(program, config=config)
    FaultInjector(spec).attach(controller.codesigned.tol)
    result = controller.run(checkpoint_dir=tmp_path)
    baseline = arch_result(result, controller)
    assert baseline.incidents >= 1, "fault case must record incidents"

    store = CheckpointStore(tmp_path)
    eligible = 0
    for path in store.paths():
        payload = store.load(path)
        fault = payload["fault"]
        post_fault = fault is not None and fault["fired"]
        all_incidents = (len(payload["tol"]["incidents"])
                         == baseline.incidents)
        if not (post_fault and all_incidents):
            # A checkpoint taken before the fault manifested holds
            # micro-architectural fault state the snapshot deliberately
            # does not carry (see DESIGN.md §7); only post-incident
            # checkpoints promise bit-identical tails.
            continue
        eligible += 1
        resumed = store.restore(path)
        r2 = resumed.run()
        assert arch_result(r2, resumed) == baseline
    assert eligible >= 1, "no post-incident checkpoint to resume from"


# ---------------------------------------------------------------------------
# Artifact integrity: versioned envelopes, corruption and mismatch
# detection (satellite: schema versioning).
# ---------------------------------------------------------------------------


def test_checkpoints_are_versioned_artifacts(tmp_path):
    program = assemble_text(INT_SRC)
    run_checkpointed(program, config=_config("strict"),
                     checkpoint_dir=tmp_path)
    path = CheckpointStore(tmp_path).latest()
    payload = load_artifact(path, KIND_CHECKPOINT,
                            CHECKPOINT_SCHEMA_VERSION)
    assert payload["program"]["code"]
    with pytest.raises(SchemaError, match="schema version"):
        load_artifact(path, KIND_CHECKPOINT,
                      CHECKPOINT_SCHEMA_VERSION + 1)
    with pytest.raises(SchemaError, match="artifact kind"):
        load_artifact(path, "repro_bundle", CHECKPOINT_SCHEMA_VERSION)


def test_tampered_checkpoint_is_rejected(tmp_path):
    program = assemble_text(INT_SRC)
    run_checkpointed(program, config=_config("strict"),
                     checkpoint_dir=tmp_path)
    store = CheckpointStore(tmp_path)
    path = store.latest()
    text = path.read_text().replace('"guest_icount"', '"guest_icovnt"')
    path.write_text(text)
    with pytest.raises(SchemaError):
        store.load(path)


def test_restore_from_empty_directory_raises(tmp_path):
    with pytest.raises(SchemaError, match="no checkpoints"):
        CheckpointStore(tmp_path).restore()
