"""Coverage for the smaller components: overhead accounting, IBTC
capacity, timing trace adapter, config helpers."""

import pytest

from repro import costs
from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.host.emulator import HostEmulator, IBTC
from repro.host.isa import CodeUnit, HostInstr
from repro.timing.core import InOrderCore
from repro.timing.trace import TimingSession, host_pc
from repro.tol.config import TolConfig
from repro.tol.overhead import CATEGORIES, OverheadAccount


# -- overhead accounting ---------------------------------------------------------


def test_overhead_categories_and_breakdown():
    account = OverheadAccount()
    account.charge("interpreter", 100)
    account.charge("chaining", 50)
    account.charge("others", 50)
    assert account.total == 200
    breakdown = account.breakdown()
    assert breakdown["interpreter"] == 0.5
    assert abs(sum(breakdown.values()) - 1.0) < 1e-12
    assert set(breakdown) == set(CATEGORIES)


def test_overhead_empty_breakdown():
    assert all(v == 0.0 for v in OverheadAccount().breakdown().values())


def test_overhead_merged():
    a, b = OverheadAccount(), OverheadAccount()
    a.charge("prologue", 5)
    b.charge("prologue", 7)
    b.charge("cc_lookup", 1)
    merged = a.merged(b)
    assert merged.counters["prologue"] == 12
    assert merged.counters["cc_lookup"] == 1
    assert a.counters["prologue"] == 5  # inputs untouched


def test_overhead_on_charge_hook():
    calls = []
    account = OverheadAccount()
    account.on_charge = lambda cat, n: calls.append((cat, n))
    account.charge("others", 9)
    assert calls == [("others", 9)]


def test_unknown_category_raises():
    with pytest.raises(KeyError):
        OverheadAccount().charge("nonsense", 1)


# -- IBTC ------------------------------------------------------------------------


def test_ibtc_fifo_eviction():
    unit = CodeUnit(uid=1, mode="BBM", entry_pc=0, instrs=[])
    ibtc = IBTC(capacity=2)
    ibtc.insert(0x100, unit)
    ibtc.insert(0x200, unit)
    ibtc.insert(0x300, unit)   # evicts 0x100
    assert ibtc.lookup(0x100) is None
    assert ibtc.lookup(0x200) is unit
    assert ibtc.lookup(0x300) is unit


def test_ibtc_update_existing_does_not_evict():
    a = CodeUnit(uid=1, mode="BBM", entry_pc=0, instrs=[])
    b = CodeUnit(uid=2, mode="SBM", entry_pc=0, instrs=[])
    ibtc = IBTC(capacity=2)
    ibtc.insert(0x100, a)
    ibtc.insert(0x200, a)
    ibtc.insert(0x100, b)      # replacement, not insertion
    assert ibtc.lookup(0x200) is a
    assert ibtc.lookup(0x100) is b


def test_ibtc_invalidate_unit():
    a = CodeUnit(uid=1, mode="BBM", entry_pc=0, instrs=[])
    b = CodeUnit(uid=2, mode="BBM", entry_pc=4, instrs=[])
    ibtc = IBTC()
    ibtc.insert(0x100, a)
    ibtc.insert(0x200, b)
    ibtc.invalidate_unit(a)
    assert ibtc.lookup(0x100) is None
    assert ibtc.lookup(0x200) is b


# -- timing trace adapter ----------------------------------------------------------


def test_host_pc_is_unique_per_unit_and_index():
    seen = set()
    for uid in (1, 2, 3):
        for index in range(100):
            pc = host_pc(uid, index)
            assert pc not in seen
            seen.add(pc)


def _make_unit():
    return CodeUnit(uid=5, mode="SBM", entry_pc=0x1000, instrs=[
        HostInstr("chkpt", meta={"guest_pc": 0x1000}),
        HostInstr("addi32", d=1, a=1, imm=1),
        HostInstr("ld32", d=16, a=1, imm=0),
        HostInstr("exit", meta={"next_pc": 0, "guest_insns": 1}),
    ])


def test_timing_session_counts_all_instructions():
    memory = PagedMemory()
    emu = HostEmulator(memory)
    session = TimingSession(InOrderCore())
    emu.trace_sink = session.sink
    emu.execute(_make_unit(), GuestState())
    assert session.fed == 4  # every executed instruction traced
    stats = session.core.finalize()
    assert stats.instructions == 4
    assert stats.loads == 1


def test_timing_session_sample_filter_skips():
    memory = PagedMemory()
    emu = HostEmulator(memory)
    session = TimingSession(InOrderCore(),
                            sample_filter=lambda n: n % 2 == 0)
    emu.trace_sink = session.sink
    emu.execute(_make_unit(), GuestState())
    assert session.fed == 2
    assert session.skipped == 2


def test_feed_tol_overhead_mix():
    session = TimingSession(InOrderCore())
    session.feed_tol_overhead(100)
    stats = session.core.finalize()
    assert stats.instructions == 100
    assert stats.loads > 0 and stats.stores > 0 and stats.branches > 0


# -- config helpers ------------------------------------------------------------------


def test_scaled_thresholds():
    config = TolConfig(bbm_threshold=10, sbm_threshold=60)
    scaled = config.scaled_thresholds(4.0)
    assert (scaled.bbm_threshold, scaled.sbm_threshold) == (2, 15)
    assert (config.bbm_threshold, config.sbm_threshold) == (10, 60)
    floor = config.scaled_thresholds(1e9)
    assert floor.bbm_threshold == 1 and floor.sbm_threshold == 1


def test_cost_constants_positive():
    for name in dir(costs):
        if name.isupper():
            assert getattr(costs, name) >= 0, name
