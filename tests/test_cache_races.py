"""Multi-process cache safety: concurrent writers never leave a torn
artifact, and stale temp files from killed writers are reclaimed."""

import multiprocessing
import os
import pickle
import time

import pytest

from repro.harness.parallel import _MISS, ResultCache
from repro.ioutil import (
    atomic_write_bytes, cleanup_stale_tmp, load_artifact, write_artifact,
)

# -- concurrent writers --------------------------------------------------------


def _hammer_artifact(path, writer_id, rounds):
    for i in range(rounds):
        write_artifact(path, "race_probe", 1,
                       {"writer": writer_id, "round": i,
                        "fill": "x" * 4096})


def test_concurrent_writers_never_tear_an_artifact(tmp_path):
    """Two processes rewriting the same key through write_artifact must
    never expose a torn file: every read mid-race is a complete, valid
    envelope from one writer or the other."""
    path = tmp_path / "artifact.json"
    procs = [multiprocessing.Process(
        target=_hammer_artifact, args=(str(path), wid, 200))
        for wid in (1, 2)]
    for p in procs:
        p.start()
    torn = 0
    reads = 0
    # Read continuously through (and past) the race window until the
    # writers are done and we have a meaningful sample.
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if path.exists():  # once a rename lands, it never vanishes
            try:
                payload = load_artifact(path, "race_probe", 1)
            except Exception:
                torn += 1  # SchemaError / JSON error = torn state
            else:
                reads += 1
                assert payload["writer"] in (1, 2)
                assert len(payload["fill"]) == 4096
        if reads >= 50 and not any(p.is_alive() for p in procs):
            break
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    assert torn == 0
    assert reads > 0
    final = load_artifact(path, "race_probe", 1)
    assert final["round"] == 199


def _hammer_cache(directory, key, writer_id, rounds):
    cache = ResultCache(directory)
    for i in range(rounds):
        cache.put(key, {"writer": writer_id, "round": i})


def test_concurrent_result_cache_writers_same_key(tmp_path):
    """Two sweep workers completing the identical job concurrently (the
    coalescing race) must leave exactly one valid cache entry."""
    key = "ab" + "0" * 62
    procs = [multiprocessing.Process(
        target=_hammer_cache, args=(str(tmp_path), key, wid, 40))
        for wid in (1, 2)]
    for p in procs:
        p.start()
    cache = ResultCache(tmp_path)
    while any(p.is_alive() for p in procs):
        value = cache.get(key)
        if value is not _MISS:
            assert value["writer"] in (1, 2)
    for p in procs:
        p.join(timeout=30)
        assert p.exitcode == 0
    assert cache.get(key) is not _MISS
    leftovers = [p for p in tmp_path.rglob("*.tmp*")]
    assert leftovers == []


def test_atomic_temp_names_are_unique_across_threads(tmp_path):
    """The temp-name scheme (pid + process-wide sequence) must not
    collide when many threads write the same target concurrently."""
    import threading
    path = tmp_path / "shared.bin"
    errors = []

    def writer(i):
        try:
            for j in range(25):
                atomic_write_bytes(path, f"{i}:{j}".encode())
        except Exception as exc:          # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert path.read_bytes().decode().count(":") == 1


# -- stale temp cleanup --------------------------------------------------------


def test_cleanup_reclaims_dead_writer_tmp(tmp_path):
    """A temp file whose writer pid is gone is removed regardless of
    age; a live writer's fresh temp file survives."""
    sub = tmp_path / "ab"
    sub.mkdir()
    dead_pid = 999_999_999  # way past pid_max: guaranteed dead
    dead = sub / f"entry.pkl.tmp{dead_pid}.0"
    dead.write_bytes(b"partial")
    mine = sub / f"entry.pkl.tmp{os.getpid()}.1"
    mine.write_bytes(b"in-progress")
    unrelated = sub / "entry.pkl"
    unrelated.write_bytes(pickle.dumps(("k", "v")))

    removed = cleanup_stale_tmp(tmp_path)
    assert removed == 1
    assert not dead.exists()
    assert mine.exists()          # live pid, fresh mtime
    assert unrelated.exists()     # real entries are never touched


def test_cleanup_reclaims_old_tmp_even_with_live_pid(tmp_path):
    """PID reuse defence: an ancient temp file is reclaimed even when
    some process wears its writer's pid today."""
    stale = tmp_path / f"entry.pkl.tmp{os.getpid()}.2"
    stale.write_bytes(b"orphaned long ago")
    old = time.time() - 7200
    os.utime(stale, (old, old))
    assert cleanup_stale_tmp(tmp_path, max_age_s=3600.0) == 1
    assert not stale.exists()


@pytest.mark.skipif(not os.path.exists("/proc/self/stat"),
                    reason="needs procfs process start times")
def test_cleanup_keeps_live_writer_that_predates_its_file(tmp_path):
    """A slow writer is not an orphan: however old its temp file gets,
    it survives cleanup while the writer process — demonstrably started
    *before* the file was staged — is still alive."""
    mine = tmp_path / f"entry.pkl.tmp{os.getpid()}.9"
    mine.write_bytes(b"slow in-progress write")
    time.sleep(0.05)
    assert cleanup_stale_tmp(tmp_path, max_age_s=0.01) == 0
    assert mine.exists()


def test_cleanup_ignores_non_tmp_and_missing_root(tmp_path):
    (tmp_path / "keep.json").write_text("{}")
    assert cleanup_stale_tmp(tmp_path) == 0
    assert cleanup_stale_tmp(tmp_path / "does-not-exist") == 0


def test_result_cache_cleanup_stale_wired(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("cd" + "0" * 62, {"keep": True})
    orphan = tmp_path / "cd" / "x.pkl.tmp999999999.7"
    orphan.write_bytes(b"torn")
    assert cache.cleanup_stale() == 1
    assert cache.get("cd" + "0" * 62) is not _MISS
