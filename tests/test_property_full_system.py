"""The strongest correctness property in the repository: random programs
from the synthetic generator run through the FULL co-designed stack
(interpretation, translation, superblocks, speculation, chaining) with the
controller validating emulated vs authoritative state at every
synchronization point and at program end.

Any divergence anywhere in the decoder, optimizer, scheduler, register
allocator, code generator, host emulator or synchronization protocol fails
these tests.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tol.config import TolConfig
from repro.system.controller import run_codesigned
from repro.workloads.generator import SyntheticSpec, generate

#: Aggressive thresholds so even short random programs reach SBM, with
#: unrolling and speculation active.
AGGRESSIVE = TolConfig(bbm_threshold=2, sbm_threshold=6,
                       unroll_factor=3)


@st.composite
def _specs(draw):
    return SyntheticSpec(
        seed=draw(st.integers(0, 10_000)),
        hot_loops=draw(st.integers(1, 3)),
        trip_count=draw(st.integers(20, 250)),
        bb_size=draw(st.integers(1, 10)),
        branch_bias=draw(st.sampled_from([0.5, 0.8, 0.95, 1.0])),
        branchy=draw(st.booleans()),
        mem_ops=draw(st.integers(0, 3)),
        fp_ops=draw(st.integers(0, 2)),
        trig_ops=draw(st.integers(0, 1)),
        vec_ops=draw(st.integers(0, 1)),
        cold_stanzas=draw(st.integers(0, 5)),
    )


@settings(max_examples=40, deadline=None)
@given(_specs())
def test_random_programs_validate_end_to_end(spec):
    program = generate(spec)
    result, controller = run_codesigned(program, config=AGGRESSIVE,
                                        validate=True)
    assert result.exit_code == 0
    # Both components agree on the final instruction count.
    assert controller.x86.icount == controller.codesigned.guest_icount


@settings(max_examples=12, deadline=None)
@given(_specs(), st.sampled_from([
    TolConfig(bbm_threshold=2, sbm_threshold=6, mem_speculation=False),
    TolConfig(bbm_threshold=2, sbm_threshold=6, unroll_enable=False),
    TolConfig(bbm_threshold=2, sbm_threshold=6, chaining_enable=False),
    TolConfig(bbm_threshold=2, sbm_threshold=6, ibtc_enable=False),
    TolConfig(bbm_threshold=2, sbm_threshold=6, sbm_passes=()),
    TolConfig(bbm_threshold=2, sbm_threshold=6, assert_fail_limit=0),
    TolConfig(bbm_threshold=10_000_000),          # interpreter only
]))
def test_random_programs_validate_across_feature_configs(spec, config):
    """Correctness must hold whichever mechanisms are enabled."""
    program = generate(spec)
    result, controller = run_codesigned(program, config=config,
                                        validate=True)
    assert result.exit_code == 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000))
def test_tiny_alias_table_still_correct(seed):
    """Alias-table overflow forces conservative failures, never wrong
    results."""
    spec = SyntheticSpec(seed=seed, hot_loops=1, trip_count=120,
                         bb_size=3, mem_ops=3, branchy=True)
    config = TolConfig(bbm_threshold=2, sbm_threshold=6,
                       alias_table_size=1)
    program = generate(spec)
    result, controller = run_codesigned(program, config=config,
                                        validate=True)
    assert result.exit_code == 0


def test_mode_coverage_of_property_runs():
    """Sanity: the aggressive config really exercises all three modes."""
    spec = SyntheticSpec(seed=7, hot_loops=2, trip_count=200, bb_size=4,
                         branchy=True, mem_ops=1, cold_stanzas=4)
    program = generate(spec)
    result, controller = run_codesigned(program, config=AGGRESSIVE)
    dist = controller.codesigned.tol.mode_distribution()
    assert dist["IM"] > 0 and dist["BBM"] > 0 and dist["SBM"] > 0
