"""The strongest correctness property in the repository: random programs
from the synthetic generator run through the FULL co-designed stack
(interpretation, translation, superblocks, speculation, chaining) with the
controller validating emulated vs authoritative state at every
synchronization point and at program end.

Any divergence anywhere in the decoder, optimizer, scheduler, register
allocator, code generator, host emulator or synchronization protocol fails
these tests.

Every case is driven by a PINNED seed (the spec is derived from
``random.Random(seed)``), so a red run names the exact failing input.  On
failure the harness prints the seed and writes a self-contained repro
bundle; replay it with ``darco repro <bundle>`` (see EXPERIMENTS.md,
"Reproducing a failure").
"""

import os
import random
from pathlib import Path

import pytest

from repro.system.controller import Controller
from repro.tol.config import TolConfig
from repro.workloads.generator import SyntheticSpec, generate

#: Aggressive thresholds so even short random programs reach SBM, with
#: unrolling and speculation active.
AGGRESSIVE = TolConfig(bbm_threshold=2, sbm_threshold=6,
                       unroll_factor=3)

#: Where failure bundles land (override with REPRO_BUNDLE_DIR).
BUNDLE_DIR = Path(os.environ.get("REPRO_BUNDLE_DIR", ".repro_failures"))

#: Pinned per-case seeds.  To investigate a failure locally, run e.g.
#: ``pytest "tests/test_property_full_system.py::test_random_programs_\
#: validate_end_to_end[1207]"`` — the seed is the test id.
END_TO_END_SEEDS = tuple(range(1200, 1240))
FEATURE_CONFIG_SEEDS = (2301, 2302, 2303, 2304, 2305, 2306,
                        2307, 2308, 2309, 2310, 2311, 2312)
ALIAS_SEEDS = (3401, 3402, 3403, 3404, 3405,
               3406, 3407, 3408, 3409, 3410)

FEATURE_CONFIGS = (
    TolConfig(bbm_threshold=2, sbm_threshold=6, mem_speculation=False),
    TolConfig(bbm_threshold=2, sbm_threshold=6, unroll_enable=False),
    TolConfig(bbm_threshold=2, sbm_threshold=6, chaining_enable=False),
    TolConfig(bbm_threshold=2, sbm_threshold=6, ibtc_enable=False),
    TolConfig(bbm_threshold=2, sbm_threshold=6, sbm_passes=()),
    TolConfig(bbm_threshold=2, sbm_threshold=6, assert_fail_limit=0),
    TolConfig(bbm_threshold=10_000_000),          # interpreter only
)


def _spec_from_seed(seed: int) -> SyntheticSpec:
    """Deterministic spec for a pinned seed (mirrors the distribution
    the hypothesis-based predecessor of this file drew from)."""
    rng = random.Random(seed)
    return SyntheticSpec(
        seed=rng.randint(0, 10_000),
        hot_loops=rng.randint(1, 3),
        trip_count=rng.randint(20, 250),
        bb_size=rng.randint(1, 10),
        branch_bias=rng.choice([0.5, 0.8, 0.95, 1.0]),
        branchy=rng.random() < 0.5,
        mem_ops=rng.randint(0, 3),
        fp_ops=rng.randint(0, 2),
        trig_ops=rng.randint(0, 1),
        vec_ops=rng.randint(0, 1),
        cold_stanzas=rng.randint(0, 5),
    )


def _run_case(seed: int, config: TolConfig, spec=None):
    """Run one pinned-seed case with full validation; on any failure,
    print the seed and leave a repro bundle behind."""
    program = generate(spec if spec is not None
                       else _spec_from_seed(seed))
    controller = Controller(program, config=config, validate=True)
    try:
        result = controller.run(repro_dir=str(BUNDLE_DIR))
    except Exception:
        print(f"\nproperty case FAILED: seed={seed}; "
              f"bundle: {controller.last_bundle_path} "
              f"(replay with: darco repro <bundle>)")
        raise
    if result.exit_code != 0 or len(controller.codesigned.tol.incidents):
        from repro.snapshot.bundle import write_bundle
        path = (controller.last_bundle_path
                or write_bundle(BUNDLE_DIR, controller,
                                "property_failure"))
        print(f"\nproperty case FAILED: seed={seed}; bundle: {path} "
              f"(replay with: darco repro <bundle>)")
    return result, controller


@pytest.mark.parametrize("seed", END_TO_END_SEEDS)
def test_random_programs_validate_end_to_end(seed):
    result, controller = _run_case(seed, AGGRESSIVE)
    assert result.exit_code == 0
    # Both components agree on the final instruction count.
    assert controller.x86.icount == controller.codesigned.guest_icount


@pytest.mark.parametrize("seed", FEATURE_CONFIG_SEEDS)
def test_random_programs_validate_across_feature_configs(seed):
    """Correctness must hold whichever mechanisms are enabled."""
    config = FEATURE_CONFIGS[seed % len(FEATURE_CONFIGS)]
    result, _ = _run_case(seed, config)
    assert result.exit_code == 0


@pytest.mark.parametrize("seed", ALIAS_SEEDS)
def test_tiny_alias_table_still_correct(seed):
    """Alias-table overflow forces conservative failures, never wrong
    results."""
    spec = SyntheticSpec(seed=seed, hot_loops=1, trip_count=120,
                         bb_size=3, mem_ops=3, branchy=True)
    config = TolConfig(bbm_threshold=2, sbm_threshold=6,
                       alias_table_size=1)
    result, _ = _run_case(seed, config, spec=spec)
    assert result.exit_code == 0


def test_mode_coverage_of_property_runs():
    """Sanity: the aggressive config really exercises all three modes."""
    spec = SyntheticSpec(seed=7, hot_loops=2, trip_count=200, bb_size=4,
                         branchy=True, mem_ops=1, cold_stanzas=4)
    program = generate(spec)
    controller = Controller(program, config=AGGRESSIVE)
    controller.run()
    dist = controller.codesigned.tol.mode_distribution()
    assert dist["IM"] > 0 and dist["BBM"] > 0 and dist["SBM"] > 0
