"""Unit + property tests for the optimization passes.

Property tests evaluate random straight-line IR before and after each pass
with the IR evaluator and require identical architectural results — the
semantics-preservation invariant every pass must satisfy.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.tol.ir import (
    CF, Const, Flag, GFReg, GReg, IRInstr, OF, SF, Tmp, TmpAllocator, ZF,
)
from repro.tol.ir_eval import eval_ops
from repro.tol.opt.passes import (
    available_passes, const_copy_prop, const_fold, cse_rle_forwarding,
    dead_code_elim, get_pass, run_pipeline,
)

EAX, EBX, ECX = GReg(0), GReg(3), GReg(1)


def t(i):
    return Tmp(i)


def test_registry_contains_standard_passes():
    for name in ("constfold", "constprop", "cse", "dce"):
        assert name in available_passes()
        assert get_pass(name)
    with pytest.raises(KeyError):
        get_pass("nonexistent-pass")


def test_const_fold_arithmetic():
    ops = [IRInstr("add", t(1), (Const(2), Const(3))),
           IRInstr("mov", EAX, (t(1),))]
    out, stats = const_fold(ops)
    assert out[0].op == "mov"
    assert out[0].srcs == (Const(5),)
    assert stats.changed == 1


def test_const_fold_wraps_32bit():
    ops = [IRInstr("add", t(1), (Const(0xFFFFFFFF), Const(2)))]
    out, _ = const_fold(ops)
    assert out[0].srcs == (Const(1),)


def test_const_fold_trig_uses_recipe():
    from repro.guest.semantics import gisa_sin
    from repro.tol.ir import FTmp
    ops = [IRInstr("fsin", FTmp(9), (Const(1.25),))]
    out, _ = const_fold(ops)
    assert out[0].op == "fmov"
    assert out[0].srcs[0].value == gisa_sin(1.25)


def test_copy_prop_through_temps():
    ops = [
        IRInstr("mov", t(1), (Const(7),)),
        IRInstr("mov", t(2), (t(1),)),
        IRInstr("add", t(3), (t(2), t(2))),
        IRInstr("mov", EAX, (t(3),)),
    ]
    out, _ = const_copy_prop(ops)
    assert out[2].srcs == (Const(7), Const(7))


def test_copy_prop_arch_copy_invalidated_by_redefinition():
    # t1 copies EBX; EBX is then redefined; t1 uses must NOT become EBX.
    ops = [
        IRInstr("mov", t(1), (EBX,)),
        IRInstr("mov", EBX, (Const(0),)),
        IRInstr("add", t(2), (t(1), Const(1))),
    ]
    out, _ = const_copy_prop(ops)
    assert out[2].srcs[0] == t(1)


def test_cse_dedups_pure_expressions():
    ops = [
        IRInstr("add", t(1), (EAX, EBX)),
        IRInstr("add", t(2), (EAX, EBX)),
        IRInstr("mov", ECX, (t(2),)),
    ]
    out, stats = cse_rle_forwarding(ops)
    assert out[1].op == "mov"
    assert out[1].srcs == (t(1),)
    assert stats.changed == 1


def test_rle_redundant_load_eliminated():
    ops = [
        IRInstr("ld32", t(1), (EAX,), imm=4),
        IRInstr("ld32", t(2), (EAX,), imm=4),
    ]
    out, _ = cse_rle_forwarding(ops)
    assert out[1].op == "mov"
    assert out[1].srcs == (t(1),)


def test_rle_blocked_by_intervening_store():
    ops = [
        IRInstr("ld32", t(1), (EAX,), imm=4),
        IRInstr("st32", None, (EBX, Const(9)), imm=0),
        IRInstr("ld32", t(2), (EAX,), imm=4),
    ]
    out, _ = cse_rle_forwarding(ops)
    assert out[2].op == "ld32"  # store may alias: reload


def test_store_to_load_forwarding():
    ops = [
        IRInstr("st32", None, (EAX, t(5)), imm=8),
        IRInstr("ld32", t(6), (EAX,), imm=8),
    ]
    out, _ = cse_rle_forwarding(ops)
    assert out[1].op == "mov"
    assert out[1].srcs == (t(5),)


def test_store_forwarding_blocked_when_stored_reg_redefined():
    # The forwarded value must be the register's value AT the store; after
    # ECX is overwritten, substituting ECX would read the new value.
    ops = [
        IRInstr("st32", None, (Const(0x9000), ECX), imm=24),
        IRInstr("mov", ECX, (EAX,)),
        IRInstr("ld32", t(5), (Const(0x9000),), imm=24),
    ]
    out, _ = cse_rle_forwarding(ops)
    assert out[2].op == "ld32"  # stored value stale: reload


def test_store_forwarding_blocked_when_address_reg_redefined():
    ops = [
        IRInstr("st32", None, (EAX, t(5)), imm=8),
        IRInstr("mov", EAX, (Const(0x9000),)),
        IRInstr("ld32", t(6), (EAX,), imm=8),
    ]
    out, _ = cse_rle_forwarding(ops)
    assert out[2].op == "ld32"  # address register changed: reload


def test_cse_blocked_when_source_reg_redefined():
    # add over EAX before and after EAX is overwritten must not match.
    ops = [
        IRInstr("add", t(1), (EAX, EAX)),
        IRInstr("mov", EAX, (EBX,)),
        IRInstr("add", t(2), (EAX, EAX)),
    ]
    out, _ = cse_rle_forwarding(ops)
    assert out[2].op == "add"


def test_rle_blocked_when_address_reg_redefined():
    ops = [
        IRInstr("ld32", t(1), (EAX,), imm=4),
        IRInstr("mov", EAX, (Const(0x9000),)),
        IRInstr("ld32", t(2), (EAX,), imm=4),
    ]
    out, _ = cse_rle_forwarding(ops)
    assert out[2].op == "ld32"


def test_dce_removes_dead_flag_defs_lazy_flags():
    # Two flag defs; only the second is architecturally visible.
    ops = [
        IRInstr("mov", ZF, (Const(1),)),
        IRInstr("mov", ZF, (Const(0),)),
        IRInstr("mov", EAX, (Const(5),)),
    ]
    out, stats = dead_code_elim(ops)
    assert len(out) == 2
    assert out[0].srcs == (Const(0),)


def test_dce_keeps_flag_consumed_before_overwrite():
    ops = [
        IRInstr("mov", ZF, (Const(1),)),
        IRInstr("add", t(1), (ZF, Const(1))),
        IRInstr("mov", ZF, (Const(0),)),
        IRInstr("mov", EAX, (t(1),)),
    ]
    out, _ = dead_code_elim(ops)
    assert len(out) == 4


def test_dce_respects_side_exits():
    # A flag def before a side exit is architecturally visible there even
    # though it is overwritten later.
    ops = [
        IRInstr("mov", CF, (Const(1),)),
        IRInstr("side_exit_true", None, (t(9),),
                attrs={"target_pc": 0x100, "guest_insns": 1}),
        IRInstr("mov", CF, (Const(0),)),
    ]
    out, _ = dead_code_elim(ops)
    assert len(out) == 3


def test_dce_removes_dead_loads():
    ops = [
        IRInstr("ld32", t(1), (EAX,), imm=0),
        IRInstr("mov", EBX, (Const(1),)),
    ]
    out, _ = dead_code_elim(ops)
    assert len(out) == 1
    assert out[0].op == "mov"


# -- property-based semantic preservation ------------------------------------

_PURE_BINOPS = ("add", "sub", "mul", "and", "or", "xor", "cmpeq",
                "cmplts", "cmpltu")


@st.composite
def _random_region(draw):
    """Random straight-line IR over temps/arch regs with loads/stores into
    a small scratch area."""
    alloc = TmpAllocator()
    ops = []
    defined = [GReg(i) for i in range(4)]
    n = draw(st.integers(3, 25))
    for _ in range(n):
        kind = draw(st.integers(0, 9))
        if kind <= 5:
            op = draw(st.sampled_from(_PURE_BINOPS))
            a = draw(st.sampled_from(defined))
            b = draw(st.one_of(
                st.sampled_from(defined),
                st.integers(0, 0xFFFF).map(Const)))
            dst = alloc.tmp()
            ops.append(IRInstr(op, dst, (a, b)))
            defined.append(dst)
        elif kind <= 7:
            src = draw(st.sampled_from(defined))
            dst = draw(st.sampled_from(
                [GReg(i) for i in range(4)] + [alloc.tmp()]))
            ops.append(IRInstr("mov", dst, (src,)))
            if isinstance(dst, Tmp):
                defined.append(dst)
        elif kind == 8:
            slot = draw(st.integers(0, 7))
            dst = alloc.tmp()
            ops.append(IRInstr("ld32", dst, (Const(0x9000),),
                               imm=slot * 4))
            defined.append(dst)
        else:
            slot = draw(st.integers(0, 7))
            src = draw(st.sampled_from(defined))
            ops.append(IRInstr("st32", None, (Const(0x9000), src),
                               imm=slot * 4))
    return ops


def _run_region(ops):
    state = GuestState()
    for i in range(8):
        state.gpr[i] = (i + 1) * 0x1111
    memory = PagedMemory()
    for slot in range(8):
        memory.write_u32(0x9000 + slot * 4, 0xA0 + slot)
    eval_ops(ops, state, memory)
    return state, memory


@settings(max_examples=120, deadline=None)
@given(_random_region(),
       st.sampled_from([("constfold",), ("constprop",), ("cse",),
                        ("dce",),
                        ("constfold", "constprop", "cse", "constprop",
                         "dce")]))
def test_passes_preserve_semantics(ops, pipeline):
    before_state, before_mem = _run_region(ops)
    optimized, _ = run_pipeline(ops, pipeline)
    after_state, after_mem = _run_region(optimized)
    assert after_state.diff(before_state) == {}
    for slot in range(8):
        assert after_mem.read_u32(0x9000 + slot * 4) == \
            before_mem.read_u32(0x9000 + slot * 4)
