"""Behavioural tests for the reference guest emulator."""

import math

import pytest

from repro.guest.assembler import (
    EAX, EBX, ECX, EDX, EBP, ESI, EDI, ESP, F0, F1, F2, V0, V1, Assembler, M,
)
from repro.guest.emulator import GuestEmulator
from repro.guest.program import pack_f64s, pack_u32s, unpack_u32s
from repro.guest.semantics import gisa_cos, gisa_sin
from repro.guest.syscalls import SYS_RAND, SYS_WRITE


def run_asm(build, max_steps=200_000, stdin=b""):
    """Assemble via `build(asm)`, run to exit, return the emulator."""
    asm = Assembler()
    build(asm)
    program = asm.program()
    from repro.guest.syscalls import GuestOS
    emu = GuestEmulator(program, os=GuestOS(stdin=stdin))
    emu.run(max_steps=max_steps)
    assert emu.halted, "program did not exit"
    return emu


def test_mov_add_exit_code():
    def build(asm):
        asm.mov(EBX, 30)
        asm.add(EBX, 12)
        asm.mov(EAX, 1)  # SYS_EXIT
        asm.syscall()
    emu = run_asm(build)
    assert emu.os.exit_code == 42


def test_flags_zero_sign_carry():
    def build(asm):
        asm.mov(EAX, 1)
        asm.sub(EAX, 1)      # ZF=1
        asm.mov(EBX, 0)
        asm.je("was_zero")
        asm.mov(EBX, 99)
        asm.label("was_zero")
        asm.mov(ECX, 0)
        asm.sub(ECX, 1)      # borrow: CF=1, SF=1
        asm.mov(EDX, 0)
        asm.jb("carry_set")
        asm.mov(EDX, 99)
        asm.label("carry_set")
        asm.mov(EDI, EBX)
        asm.exit(0)
    emu = run_asm(build)
    assert emu.state.get("EDI") == 0
    assert emu.state.get("EDX") == 0
    assert emu.state.get("ECX") == 0xFFFFFFFF


def test_signed_vs_unsigned_conditions():
    def build(asm):
        asm.mov(EAX, 0xFFFFFFFF)  # -1 signed, huge unsigned
        asm.cmp(EAX, 1)
        asm.mov(EBX, 0)
        asm.jl("signed_less")     # -1 < 1 signed
        asm.mov(EBX, 1)
        asm.label("signed_less")
        asm.mov(ECX, 1)
        asm.cmp(EAX, 1)
        asm.ja("unsigned_above")  # 0xFFFFFFFF > 1 unsigned
        asm.mov(ECX, 0)
        asm.label("unsigned_above")
        asm.mov(EDI, EBX)
        asm.exit(0)
    emu = run_asm(build)
    assert emu.state.get("EDI") == 0
    assert emu.state.get("ECX") == 1


def test_counted_loop_sum():
    def build(asm):
        asm.mov(EAX, 0)
        asm.mov(EBX, 0)
        with asm.counted_loop(ECX, 10):
            asm.inc(EBX)
            asm.add(EAX, EBX)
        asm.mov(EDX, EAX)
        asm.exit(0)
    emu = run_asm(build)
    # loop counts ECX down; EBX goes 1..10 -> sum 55
    assert emu.state.get("EDX") == 55


def test_memory_load_store_addressing():
    def build(asm):
        base = asm.data(0x3000, pack_u32s([11, 22, 33, 44]))
        asm.mov(EBP, base)
        asm.mov(ESI, 2)
        asm.mov(EAX, M(EBP, ESI, 4))      # load element 2 -> 33
        asm.mov(M(EBP, disp=12), EAX)     # store over element 3
        asm.mov(EDI, EAX)
        asm.exit(0)
    emu = run_asm(build)
    assert emu.state.get("EDI") == 33
    assert unpack_u32s(emu.memory.read_bytes(0x3000, 16)) == (11, 22, 33, 33)


def test_push_pop_call_ret():
    def build(asm):
        asm.mov(EAX, 5)
        asm.call("double_it")
        asm.mov(EDI, EAX)
        asm.exit(0)
        asm.label("double_it")
        asm.push(EAX)
        asm.add(EAX, EAX)
        asm.pop(ECX)         # original value
        asm.add(EAX, ECX)    # EAX = 3 * original
        asm.ret()
    emu = run_asm(build)
    assert emu.state.get("EDI") == 15


def test_idiv_quotient_remainder():
    def build(asm):
        asm.mov(EAX, 17)
        asm.mov(ECX, 5)
        asm.idiv(ECX)
        asm.mov(EDI, EAX)   # quotient 3
        asm.mov(ESI, EDX)   # remainder 2
        asm.exit(0)
    emu = run_asm(build)
    assert emu.state.get("EDI") == 3
    assert emu.state.get("ESI") == 2


def test_idiv_negative_truncates_toward_zero():
    def build(asm):
        asm.mov(EAX, 0xFFFFFFEF)  # -17
        asm.mov(ECX, 5)
        asm.idiv(ECX)
        asm.mov(ESI, EAX)
        asm.mov(EDI, EDX)
        asm.exit(0)
    emu = run_asm(build)
    assert emu.state.get("ESI") == 0xFFFFFFFD  # -3
    assert emu.state.get("EDI") == 0xFFFFFFFE  # -2


def test_shifts_and_logic():
    def build(asm):
        asm.mov(EAX, 0b1011)
        asm.shl(EAX, 4)
        asm.mov(ESI, EAX)
        asm.shr(EAX, 2)
        asm.mov(EDI, EAX)
        asm.mov(ECX, 0x80000000)
        asm.sar(ECX, 31)
        asm.mov(EDX, 0xF0F0)
        asm.emit("AND", EDX, 0x0FF0)
        asm.exit(0)
    emu = run_asm(build)
    assert emu.state.get("ESI") == 0b10110000
    assert emu.state.get("EDI") == 0b101100
    assert emu.state.get("ECX") == 0xFFFFFFFF
    assert emu.state.get("EDX") == 0x00F0


def test_imul_wraps():
    def build(asm):
        asm.mov(EAX, 0x10000)
        asm.imul(EAX, 0x10000)   # 2^32 -> wraps to 0
        asm.mov(ESI, EAX)
        asm.exit(0)
    emu = run_asm(build)
    assert emu.state.get("ESI") == 0


def test_fp_arith_and_trig():
    def build(asm):
        src = asm.data(0x5000, pack_f64s([0.5, 2.0]))
        asm.mov(EBP, src)
        asm.fld(F0, M(EBP))
        asm.fld(F1, M(EBP, disp=8))
        asm.fadd(F0, F1)         # 2.5
        asm.fmov(F2, F0)
        asm.fsin(F2)
        asm.fst(M(EBP, disp=16), F0)
        asm.fst(M(EBP, disp=24), F2)
        asm.exit(0)
    emu = run_asm(build)
    assert emu.memory.read_f64(0x5010) == 2.5
    assert emu.memory.read_f64(0x5018) == gisa_sin(2.5)
    assert abs(gisa_sin(2.5) - math.sin(2.5)) < 1e-9


def test_trig_recipe_accuracy_across_range():
    for i in range(-20, 21):
        x = i * 0.7
        assert abs(gisa_sin(x) - math.sin(x)) < 1e-9
        assert abs(gisa_cos(x) - math.cos(x)) < 1e-9


def test_cvt_round_trip():
    def build(asm):
        asm.mov(EAX, 0xFFFFFFF8)     # -8
        asm.cvtif(F0, EAX)
        asm.fldi(F1, 3)
        asm.fdiv(F0, F1)             # -8/3 = -2.666..
        asm.cvtfi(EDI, F0)           # truncate -> -2
        asm.exit(0)
    emu = run_asm(build)
    assert emu.state.get("EDI") == 0xFFFFFFFE


def test_vector_ops():
    def build(asm):
        addr = asm.data(0x6000, pack_u32s([1, 2, 3, 4, 10, 20, 30, 40]))
        asm.mov(EBP, addr)
        asm.vld(V0, M(EBP))
        asm.vld(V1, M(EBP, disp=16))
        asm.vadd(V0, V1)
        asm.vst(M(EBP, disp=32), V0)
        asm.exit(0)
    emu = run_asm(build)
    assert unpack_u32s(emu.memory.read_bytes(0x6020, 16)) == (11, 22, 33, 44)


def test_rep_movsd_copies_block():
    def build(asm):
        src = asm.data(0x7000, pack_u32s(range(100, 110)))
        asm.mov(ESI, src)
        asm.mov(EDI, 0x7100)
        asm.mov(ECX, 10)
        asm.rep_movsd()
        asm.exit(0)
    emu = run_asm(build)
    assert unpack_u32s(emu.memory.read_bytes(0x7100, 40)) == tuple(
        range(100, 110))
    assert emu.state.get("ECX") == 0


def test_syscall_write_captures_stdout():
    def build(asm):
        msg = asm.data(0x8000, b"hello")
        asm.mov(EAX, SYS_WRITE)
        asm.mov(EBX, 1)
        asm.mov(ECX, msg)
        asm.mov(EDX, 5)
        asm.syscall()
        asm.exit(7)
    emu = run_asm(build)
    assert bytes(emu.os.stdout) == b"hello"
    assert emu.os.exit_code == 7


def test_syscall_rand_deterministic():
    def build(asm):
        asm.mov(EAX, SYS_RAND)
        asm.syscall()
        asm.mov(ESI, EAX)
        asm.mov(EAX, SYS_RAND)
        asm.syscall()
        asm.mov(EDI, EAX)
        asm.exit(0)
    emu1 = run_asm(build)
    emu2 = run_asm(build)
    assert emu1.state.get("ESI") == emu2.state.get("ESI")
    assert emu1.state.get("EDI") == emu2.state.get("EDI")
    assert emu1.state.get("ESI") != emu1.state.get("EDI")


def test_indirect_jump_and_call():
    def build(asm):
        asm.mov(EAX, "target")
        asm.jmpi(EAX)
        asm.mov(EDI, 111)   # skipped
        asm.exit(1)
        asm.label("target")
        asm.mov(EDI, 222)
        asm.exit(0)
    emu = run_asm(build)
    assert emu.state.get("EDI") == 222
    assert emu.os.exit_code == 0


def test_icount_and_branch_count():
    def build(asm):
        asm.mov(EAX, 0)
        with asm.counted_loop(ECX, 5):
            asm.inc(EAX)
        asm.exit(0)
    emu = run_asm(build)
    # mov + (mov) + 5*(inc+dec+jne) + exit(3: mov,mov,syscall)
    assert emu.icount == 2 + 15 + 3
    assert emu.branch_count == 5 + 1  # 5 JNE + final syscall


def test_run_to_icount_exact():
    def build(asm):
        asm.mov(EAX, 0)
        with asm.counted_loop(ECX, 50):
            asm.inc(EAX)
        asm.exit(0)
    asm = Assembler()
    build(asm)
    program = asm.program()
    emu = GuestEmulator(program)
    emu.run_to_icount(17)
    assert emu.icount == 17
    emu.run_to_icount(100)
    assert emu.icount == 100
    with pytest.raises(Exception):
        emu.run_to_icount(50)
