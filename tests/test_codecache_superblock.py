"""Unit tests for the code cache and the superblock region builder."""

import pytest

from repro.guest.assembler import Assembler, EAX, EBX, ECX, EDX, ESI, M
from repro.guest.memory import PagedMemory
from repro.host.isa import CodeUnit, HostInstr
from repro.tol.codecache import CodeCache, PLAIN, UNROLLED
from repro.tol.config import TolConfig
from repro.tol.decoder import GisaFrontend
from repro.tol.ir import TmpAllocator
from repro.tol.profile import Profiler
from repro.tol.superblock import (
    assemble_loop, assemble_region, build_region, decode_bb,
    detect_counted_loop,
)


def unit(uid, pc, n_instrs=4, mode="BBM"):
    instrs = [HostInstr("nop") for _ in range(n_instrs - 1)]
    instrs.append(HostInstr("exit", meta={"next_pc": 0, "guest_insns": 1}))
    return CodeUnit(uid=uid, mode=mode, entry_pc=pc, instrs=instrs)


# -- code cache ------------------------------------------------------------------


def test_cache_insert_lookup_variants():
    cache = CodeCache()
    plain = unit(1, 0x1000)
    unrolled = unit(2, 0x1000)
    cache.insert(plain, PLAIN)
    assert cache.lookup(0x1000) is plain
    cache.insert(unrolled, UNROLLED)
    assert cache.lookup(0x1000) is unrolled          # unrolled preferred
    assert cache.lookup(0x1000, PLAIN) is plain
    assert cache.lookup(0x2000) is None


def test_cache_replacement_invalidates_old_unit():
    cache = CodeCache()
    old = unit(1, 0x1000)
    cache.insert(old, PLAIN)
    linker = unit(2, 0x2000)
    cache.insert(linker, PLAIN)
    cache.chain(linker, len(linker.instrs) - 1, old)
    assert linker.instrs[-1].meta["link"] is old
    new = unit(3, 0x1000, mode="SBM")
    cache.insert(new, PLAIN)                         # replaces old
    assert cache.lookup(0x1000) is new
    assert linker.instrs[-1].meta["link"] is None    # chain unlinked


def test_cache_capacity_flush():
    cache = CodeCache(capacity_insns=10)
    cache.insert(unit(1, 0x1000, n_instrs=6), PLAIN)
    flushed = cache.insert(unit(2, 0x2000, n_instrs=6), PLAIN)
    assert flushed
    assert cache.lookup(0x1000) is None              # flushed out
    assert cache.lookup(0x2000) is not None
    assert cache.flushes == 1


def test_cache_replacement_never_flushes_spuriously():
    # Retranslating a unit in place frees the old copy before the capacity
    # check, so a cache that is "full of the old copy" never flushes.
    cache = CodeCache(capacity_insns=10)
    cache.insert(unit(1, 0x1000, n_instrs=8), PLAIN)
    flushed = cache.insert(unit(2, 0x1000, n_instrs=8), PLAIN)
    assert not flushed
    assert cache.flushes == 0
    assert cache.size_insns == 8
    assert cache.lookup(0x1000).uid == 2


def test_cache_oversized_unit_rejected():
    cache = CodeCache(capacity_insns=10)
    small = unit(1, 0x1000, n_instrs=4)
    cache.insert(small, PLAIN)
    flushed = cache.insert(unit(2, 0x2000, n_instrs=12), PLAIN)
    assert not flushed
    assert cache.oversize_rejections == 1
    assert cache.flushes == 0
    assert cache.lookup(0x2000) is None
    assert cache.lookup(0x1000) is small      # resident units untouched
    assert cache.size_insns == 4


def test_cache_oversized_replacement_still_invalidates_old():
    # The stale translation must go even when its replacement can't be
    # cached: executing the old unit would be wrong.
    cache = CodeCache(capacity_insns=10)
    old = unit(1, 0x1000, n_instrs=4)
    cache.insert(old, PLAIN)
    cache.insert(unit(2, 0x1000, n_instrs=12), PLAIN)
    assert cache.lookup(0x1000) is None
    assert cache.size_insns == 0
    assert cache.invalidations == 1
    assert cache.oversize_rejections == 1


def test_cache_flush_unlinks_chains_and_fires_on_remove():
    # Regression: a capacity flush must sever every chain link and tell
    # the removal hook (which keeps the IBTC consistent) about every
    # evicted unit — a stale link would jump into freed code.
    removed = []
    cache = CodeCache(capacity_insns=10)
    cache.on_remove = removed.append
    a = unit(1, 0x1000, n_instrs=4)
    b = unit(2, 0x2000, n_instrs=4)
    cache.insert(a, PLAIN)
    cache.insert(b, PLAIN)
    cache.chain(a, len(a.instrs) - 1, b)
    assert a.instrs[-1].meta["link"] is b
    flushed = cache.insert(unit(3, 0x3000, n_instrs=9), PLAIN)
    assert flushed
    assert a.instrs[-1].meta["link"] is None
    assert {u.uid for u in removed} == {1, 2}


def test_cache_replace_fires_on_remove_before_new_unit_visible():
    # Audit of insert's replace-before-insert path: the on_remove hook
    # (IBTC consistency) must observe the cache *without* the new unit —
    # if the replacement were already visible, a dependent structure
    # refreshing itself inside the hook could alias the dead unit's key
    # to the new unit before its own cleanup ran.
    cache = CodeCache()
    old = unit(1, 0x1000)
    cache.insert(old, PLAIN)
    observed = []

    def hook(victim):
        observed.append((victim, cache._units.get((0x1000, PLAIN))))

    cache.on_remove = hook
    new = unit(2, 0x1000, mode="SBM")
    cache.insert(new, PLAIN)
    assert observed == [(old, None)]      # old gone, new not yet visible
    assert cache.lookup(0x1000) is new


def test_cache_removal_strips_direct_tier_programs():
    # Replace, targeted invalidation and capacity flush must all drop a
    # removed unit's direct-tier programs: the unit object can stay
    # referenced (mid-execution), but after quarantine/retranslation a
    # stale generated function must never be re-entered.
    def promoted(uid, pc, n_instrs=4):
        u = unit(uid, pc, n_instrs=n_instrs, mode="SBM")
        u._directprog = lambda emu, executed, fuel: None
        u._directprog_traced = lambda emu, executed, fuel: None
        return u

    # Replace (same PC/variant).
    cache = CodeCache()
    old = promoted(1, 0x1000)
    cache.insert(old, PLAIN)
    cache.insert(unit(2, 0x1000, mode="SBM"), PLAIN)
    assert "_directprog" not in old.__dict__
    assert "_directprog_traced" not in old.__dict__

    # Targeted invalidation (quarantine path).
    victim = promoted(3, 0x2000)
    cache.insert(victim, PLAIN)
    cache.invalidate_pc(0x2000)
    assert "_directprog" not in victim.__dict__
    assert "_directprog_traced" not in victim.__dict__

    # Capacity flush.
    small = CodeCache(capacity_insns=10)
    evicted = promoted(4, 0x3000, n_instrs=6)
    small.insert(evicted, PLAIN)
    assert small.insert(unit(5, 0x4000, n_instrs=6), PLAIN)  # flushes
    assert "_directprog" not in evicted.__dict__
    assert "_directprog_traced" not in evicted.__dict__


def test_cache_invalidate_severs_incoming_and_outgoing_links():
    cache = CodeCache()
    a = unit(1, 0x1000)
    b = unit(2, 0x2000)
    c = unit(3, 0x3000)
    for u in (a, b, c):
        cache.insert(u, PLAIN)
    cache.chain(a, len(a.instrs) - 1, b)     # a -> b (incoming to b)
    cache.chain(b, len(b.instrs) - 1, c)     # b -> c (outgoing from b)
    removed = cache.invalidate_pc(0x2000)
    assert [u.uid for u in removed] == [2]
    assert a.instrs[-1].meta["link"] is None
    assert cache.lookup(0x1000) is a and cache.lookup(0x3000) is c


def test_cache_chain_rejects_non_exit():
    cache = CodeCache()
    a, b = unit(1, 0x1000), unit(2, 0x2000)
    cache.insert(a, PLAIN)
    cache.insert(b, PLAIN)
    with pytest.raises(ValueError):
        cache.chain(a, 0, b)   # instruction 0 is a nop


def test_cache_size_accounting():
    cache = CodeCache()
    a = unit(1, 0x1000, n_instrs=7)
    cache.insert(a, PLAIN)
    assert cache.size_insns == 7
    cache.invalidate(a)
    assert cache.size_insns == 0
    assert len(cache) == 0


# -- basic block decoding --------------------------------------------------------


def _memory_with(build):
    asm = Assembler()
    build(asm)
    program = asm.program()
    memory = PagedMemory()
    program.load_into(memory)
    return memory, program


def test_decode_bb_stops_at_branch():
    memory, program = _memory_with(lambda asm: (
        asm.mov(EAX, 1), asm.add(EAX, 2), asm.jmp("off"),
        asm.label("off"), asm.exit(0)))
    bb = decode_bb(GisaFrontend(), memory, program.entry,
                   TmpAllocator(), 64)
    assert bb.guest_insn_count == 3
    assert bb.terminator is not None
    assert bb.terminator.guest.mnemonic == "JMP"


def test_decode_bb_stops_before_interpreter_only():
    memory, program = _memory_with(lambda asm: (
        asm.mov(ECX, 4), asm.rep_movsd(), asm.exit(0)))
    bb = decode_bb(GisaFrontend(), memory, program.entry,
                   TmpAllocator(), 64)
    assert bb.guest_insn_count == 1
    assert bb.terminator is None        # fall-through exit before REP


def test_decode_bb_respects_size_limit():
    def build(asm):
        for _ in range(50):
            asm.inc(EAX)
        asm.exit(0)
    memory, program = _memory_with(build)
    bb = decode_bb(GisaFrontend(), memory, program.entry,
                   TmpAllocator(), 8)
    assert bb.guest_insn_count == 8


# -- counted-loop detection --------------------------------------------------------


def _loop_bb(build):
    memory, program = _memory_with(build)
    return decode_bb(GisaFrontend(), memory,
                     program.label_addr("top"), TmpAllocator(), 64)


def test_detect_counted_loop_positive():
    def build(asm):
        asm.mov(ECX, 10)
        asm.label("top")
        asm.add(EAX, 1)
        asm.dec(ECX)
        asm.jne("top")
        asm.exit(0)
    bb = _loop_bb(build)
    assert detect_counted_loop(bb) == 1  # ECX index


def test_detect_counted_loop_rejects_flag_clobber_after_dec():
    def build(asm):
        asm.label("top")
        asm.dec(ECX)
        asm.add(EAX, 1)      # overwrites flags after DEC
        asm.jne("top")
        asm.exit(0)
    bb = _loop_bb(build)
    assert detect_counted_loop(bb) is None


def test_detect_counted_loop_rejects_extra_counter_write():
    def build(asm):
        asm.label("top")
        asm.add(ECX, 1)      # extra write to the counter
        asm.dec(ECX)
        asm.jne("top")
        asm.exit(0)
    bb = _loop_bb(build)
    assert detect_counted_loop(bb) is None


# -- region building ------------------------------------------------------------


def _region(build, start_label, edges):
    asm = Assembler()
    build(asm)
    program = asm.program()
    memory = PagedMemory()
    program.load_into(memory)
    profiler = Profiler()
    for (frm, to) in edges:
        for _ in range(20):
            profiler.record_edge(program.label_addr(frm),
                                 program.label_addr(to))
    return build_region(GisaFrontend(), memory,
                        program.label_addr(start_label), profiler,
                        TolConfig(), TmpAllocator()), program


def test_region_follows_biased_edges():
    def build(asm):
        asm.label("a")
        asm.cmp(EAX, 0)
        asm.jne("c")
        asm.label("b")
        asm.inc(EBX)
        asm.jmp("d")
        asm.label("c")
        asm.inc(EDX)
        asm.label("d")
        asm.exit(0)
    region, program = _region(build, "a", [("a", "c")])
    assert region is not None and not region.is_loop
    assert len(region.bbs) >= 2
    assert region.bbs[0].followed_taken is True
    assert region.bbs[1].entry_pc == program.label_addr("c")


def test_region_stops_at_indirect():
    def build(asm):
        asm.label("a")
        asm.mov(EAX, "a")
        asm.jmpi(EAX)
    region, _ = _region(build, "a", [])
    assert len(region.bbs) == 1


def test_region_detects_single_bb_loop():
    def build(asm):
        asm.label("top")
        asm.add(EAX, 3)
        asm.dec(ECX)
        asm.jne("top")
        asm.exit(0)
    region, _ = _region(build, "top", [("top", "top")])
    assert region.is_loop
    assert region.counted_reg == 1


def test_assemble_region_sbm_converts_to_asserts():
    def build(asm):
        asm.label("a")
        asm.cmp(EAX, 0)
        asm.je("b")
        asm.inc(EDX)
        asm.label("b")
        asm.inc(EBX)
        asm.exit(0)
    region, _ = _region(build, "a", [("a", "b")])
    assembled = assemble_region(region, mode="SBM")
    kinds = [op.op for op in assembled.body]
    assert any(k.startswith("assert") for k in kinds)
    assembled_x = assemble_region(region, mode="SBX")
    kinds_x = [op.op for op in assembled_x.body]
    assert any(k.startswith("side_exit") for k in kinds_x)


def test_assemble_loop_unrolled_has_guard_and_copies():
    def build(asm):
        asm.label("top")
        asm.add(EAX, 3)
        asm.dec(ECX)
        asm.jne("top")
        asm.exit(0)
    region, _ = _region(build, "top", [("top", "top")])
    plain = assemble_loop(region, unroll=1)
    unrolled = assemble_loop(region, unroll=4)
    assert plain.terminator.attrs.get("loop_back")
    assert unrolled.guest_insn_count == 4 * plain.guest_insn_count
    assert any(op.op == "guard_exit_false" for op in unrolled.body)
    assert unrolled.terminator.op == "jmp"
    assert unrolled.terminator.attrs.get("loop_back")


def test_unroll_guard_exit_dispatches_plain_variant_without_chaining():
    """Regression: an unrolled superblock's trip-count guard exits to its
    own entry pc asking for the plain body (``prefer_variant``).  With
    chaining disabled nothing patches that exit, so dispatch itself must
    honor the hint — before it did, the TOL handed the unrolled unit
    straight back (cache lookup prefers unrolled variants) and the run
    livelocked: guard fail, rollback, re-dispatch, forever, retiring
    zero guest instructions."""
    import signal

    from repro.system.controller import run_codesigned
    from repro.workloads.generator import SyntheticSpec, generate

    spec = SyntheticSpec(seed=484, hot_loops=2, trip_count=31, bb_size=5,
                         branch_bias=1.0, branchy=False, mem_ops=1,
                         fp_ops=2, cold_stanzas=1)
    config = TolConfig(bbm_threshold=2, sbm_threshold=6,
                       chaining_enable=False)

    def _hang(signum, frame):
        raise AssertionError(
            "run livelocked: unroll guard exit not honored by dispatch")

    old = signal.signal(signal.SIGALRM, _hang)
    signal.alarm(120)
    try:
        result, controller = run_codesigned(generate(spec), config=config,
                                            validate=True)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)
    assert result.exit_code == 0
    assert (controller.x86.icount
            == controller.codesigned.guest_icount)


@pytest.mark.parametrize("capacity", [120, 140, 150])
def test_unroll_guard_exit_never_self_chains_after_capacity_flush(capacity):
    """Regression for the fuzzer-surfaced single-dispatch livelock
    (DESIGN.md §12): with a tiny code cache, installing an unrolled loop
    variant flushes the cache and evicts its own plain sibling.  The
    trip-count guard exit then finds no plain variant, and the old
    chain fallback (``lookup(pc)`` prefers unrolled) patched the guard
    exit back to the unrolled unit *itself*.  The host follows chain
    links inside one ``execute`` call, so the guard-fail → self-link →
    re-enter spin retired zero guest instructions without ever
    returning to the dispatch-level stall watchdog — only the 50M-insn
    fuel backstop fired.  Chaining must honor ``prefer_variant``
    strictly and never create a zero-progress self-link."""
    import signal

    from repro.system.controller import run_codesigned
    from repro.workloads.generator import SyntheticSpec, generate

    spec = SyntheticSpec(seed=484, hot_loops=2, trip_count=31, bb_size=5,
                         branch_bias=1.0, branchy=False, mem_ops=1,
                         fp_ops=2, cold_stanzas=1)
    config = TolConfig(bbm_threshold=2, sbm_threshold=6,
                       code_cache_capacity=capacity)

    def _hang(signum, frame):
        raise AssertionError(
            "run livelocked: unroll guard exit self-chained after flush")

    old = signal.signal(signal.SIGALRM, _hang)
    signal.alarm(120)
    try:
        result, controller = run_codesigned(generate(spec), config=config,
                                            validate=True)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)
    assert result.exit_code == 0
    tol = controller.codesigned.tol
    assert tol.cache.flushes >= 1          # the churn actually happened
    # No unit may carry a link from a zero-progress exit back to itself.
    for unit in tol.cache.units():
        for ins in unit.instrs:
            if ins.op != "exit":
                continue
            if (ins.meta.get("link") is unit
                    and ins.meta.get("guest_insns", 0) == 0):
                raise AssertionError(
                    f"zero-progress self-link survives on unit "
                    f"{unit.uid} @ {unit.entry_pc:#x}")
    assert (controller.x86.icount
            == controller.codesigned.guest_icount)


def test_watchdog_quarantines_any_zero_retirement_translation():
    """Generalized livelock defense: whatever plants a translation that
    dispatches forever without retiring guest instructions (not just the
    unroll-guard bug above), the forward-progress watchdog fires,
    quarantines the entry PC, drops the unit, and the run completes
    through the interpreter with correct state."""
    from repro.system.controller import Controller

    asm = Assembler()
    asm.mov(EAX, 7)
    asm.add(EAX, 35)
    asm.mov(ESI, EAX)
    asm.exit(0)
    program = asm.program()
    # Chaining off: with it on, the TOL would patch the evil unit's
    # self-exit into an in-host loop, which the fuel backstop (not the
    # watchdog) catches — that path is exercised by the fault campaign.
    controller = Controller(program, config=TolConfig(
        bbm_threshold=2, sbm_threshold=6, watchdog_stall_limit=5,
        chaining_enable=False))
    controller.initialize()
    tol = controller.codesigned.tol
    pc = program.entry
    evil = CodeUnit(uid=999, mode="BBM", entry_pc=pc, instrs=[
        HostInstr("chkpt", meta={"guest_pc": pc}),
        HostInstr("exit", meta={"next_pc": pc, "guest_insns": 0}),
    ])
    tol.cache.insert(evil, PLAIN)
    result = controller.run()
    assert result.exit_code == 0
    assert tol.stats.watchdog_fires >= 1
    assert tol.incidents.count("livelock") >= 1
    assert tol.quarantine.level(pc) >= 1
    assert tol.cache.lookup(pc) is not evil
    assert controller.codesigned.state.get("ESI") == 42
    assert controller.x86.icount == controller.codesigned.guest_icount
