"""Parallel sweep runner: determinism across worker counts, persistent
cache correctness (hits, config/source invalidation, corruption), and
per-task failure isolation."""

import os
import pickle
import time

import pytest

from repro.harness import parallel
from repro.harness.figures import (
    fig4_table, fig5_table, fig6_table, fig7_table, run_suite_metrics,
)
from repro.harness.parallel import (
    ResultCache, SweepJob, code_fingerprint, suite_sweep_jobs, sweep,
)
from repro.tol.config import TolConfig

#: Small, fast subset spanning two suites.
WORKLOADS = ("429.mcf", "continuous", "462.libquantum")
SCALE = 0.05


def _jobs(config=None, workloads=WORKLOADS):
    return suite_sweep_jobs(scale=SCALE, config=config,
                            workloads=list(workloads), validate=False)


# -- deterministic parallelism -------------------------------------------------


def test_jobs4_byte_identical_to_jobs1():
    """Fan-out may only change wall-clock: metrics and the rendered
    EXPERIMENTS-style tables must be byte-identical."""
    seq = sweep(_jobs(), n_jobs=1, use_cache=False)
    par = sweep(_jobs(), n_jobs=4, use_cache=False)
    assert all(r.ok for r in seq + par)
    seq_metrics = [r.value for r in seq]
    par_metrics = [r.value for r in par]
    assert seq_metrics == par_metrics
    # Byte-identical per metric (whole-list pickles differ only in memo
    # references when sibling metrics share string objects).
    for seq_m, par_m in zip(seq_metrics, par_metrics):
        assert pickle.dumps(seq_m) == pickle.dumps(par_m)
    for table in (fig4_table, fig5_table, fig6_table, fig7_table):
        assert table(seq_metrics) == table(par_metrics)


def test_run_suite_metrics_sweep_path_matches_seed_loop():
    """The sweep-backed run_suite_metrics returns exactly what the
    sequential in-process loop returns."""
    from repro.workloads import PHYSICS
    plain = run_suite_metrics(scale=0.05, suites=(PHYSICS,),
                              validate=False)
    swept = run_suite_metrics(scale=0.05, suites=(PHYSICS,),
                              validate=False, jobs=2, use_cache=False)
    assert plain == swept


# -- persistent cache ----------------------------------------------------------


def test_cache_hit_replays_identical_results(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = sweep(_jobs(), n_jobs=1, cache=cache)
    second = sweep(_jobs(), n_jobs=1, cache=cache)
    assert all(r.ok for r in first + second)
    assert not any(r.cached for r in first)
    assert all(r.cached for r in second)
    assert [r.value for r in first] == [r.value for r in second]
    assert cache.hits == len(WORKLOADS)


def test_cache_misses_after_tolconfig_field_change(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    sweep(_jobs(TolConfig()), n_jobs=1, cache=cache)
    changed = sweep(_jobs(TolConfig(bbm_threshold=11)), n_jobs=1,
                    cache=cache)
    assert all(r.ok for r in changed)
    assert not any(r.cached for r in changed)


def test_cache_misses_after_source_fingerprint_change(tmp_path,
                                                      monkeypatch):
    cache = ResultCache(tmp_path / "cache")
    sweep(_jobs(), n_jobs=1, cache=cache)
    monkeypatch.setattr(parallel, "code_fingerprint",
                        lambda root=None: "0" * 64)
    stale = sweep(_jobs(), n_jobs=1, cache=cache)
    assert all(r.ok for r in stale)
    assert not any(r.cached for r in stale)


def test_code_fingerprint_tracks_file_content(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    for root in (a, b):
        root.mkdir()
        (root / "mod.py").write_text("x = 1\n")
    assert code_fingerprint(a) == code_fingerprint(b)
    (b / "mod.py").write_text("x = 2\n")
    assert code_fingerprint(a) != code_fingerprint(b)


def test_corrupted_cache_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    sweep(_jobs(), n_jobs=1, cache=cache)
    entries = list((tmp_path / "cache").rglob("*.pkl"))
    assert len(entries) == len(WORKLOADS)
    for path in entries:
        path.write_bytes(path.read_bytes()[:16])  # truncate mid-record
    recomputed = sweep(_jobs(), n_jobs=1, cache=cache)
    assert all(r.ok for r in recomputed)
    assert not any(r.cached for r in recomputed)
    # The corrupted entries were rewritten: a third pass replays.
    replay = sweep(_jobs(), n_jobs=1, cache=cache)
    assert all(r.cached for r in replay)


def test_cache_rejects_key_mismatch(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("a" * 64, {"v": 1})
    # Simulate a renamed/misfiled entry: stored key disagrees with path.
    src = cache._path("a" * 64)
    dst = cache._path("b" * 64)
    dst.parent.mkdir(parents=True, exist_ok=True)
    os.replace(src, dst)
    assert cache.get("b" * 64) is parallel._MISS


# -- failure isolation ---------------------------------------------------------


def test_unknown_workload_degrades_to_error_record():
    jobs = _jobs(workloads=("429.mcf", "no.such.workload"))
    results = sweep(jobs, n_jobs=2, use_cache=False)
    good, bad = results
    assert good.ok and good.value.name == "429.mcf"
    assert not bad.ok
    assert bad.attempts == 2  # first pass + one isolated retry
    assert "no.such.workload" in bad.error


@parallel.register_task("_test_crash")
def _crash_task():
    os._exit(13)  # hard worker death, not a Python exception


@parallel.register_task("_test_sleep")
def _sleep_task(seconds=60.0):
    time.sleep(seconds)
    return "woke"


def test_worker_crash_is_isolated_per_task():
    jobs = [SweepJob(task="_test_crash"),
            SweepJob(task="workload_metrics",
                     params={"workload": "continuous", "scale": SCALE,
                             "validate": False})]
    results = sweep(jobs, n_jobs=2, use_cache=False)
    crash, good = results
    assert not crash.ok
    assert "died" in crash.error
    assert good.ok and good.value.name == "continuous"


def test_hung_worker_times_out():
    results = sweep([SweepJob(task="_test_sleep",
                              params={"seconds": 60.0})],
                    n_jobs=2, use_cache=False, timeout=1.0)
    (result,) = results
    assert not result.ok
    assert "timed out" in result.error or "deadline" in result.error


def test_error_results_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    jobs = _jobs(workloads=("no.such.workload",))
    sweep(jobs, n_jobs=1, cache=cache)
    assert not list((tmp_path / "cache").rglob("*.pkl"))


# -- metrics round-trip --------------------------------------------------------


def test_kernel_metrics_pickle_round_trip():
    result = sweep(_jobs(workloads=("continuous",)), n_jobs=1,
                   use_cache=False)[0]
    assert result.ok
    clone = pickle.loads(pickle.dumps(result.value))
    assert clone == result.value
    assert clone.mode_fraction == result.value.mode_fraction
    assert clone.extras == result.value.extras
