"""Parallel sweep runner: determinism across worker counts, persistent
cache correctness (hits, config/source invalidation, corruption), and
per-task failure isolation."""

import os
import pickle
import time

import pytest

from repro.harness import parallel
from repro.harness.figures import (
    fig4_table, fig5_table, fig6_table, fig7_table, run_suite_metrics,
)
from repro.harness.parallel import (
    ResultCache, SweepJob, code_fingerprint, suite_sweep_jobs, sweep,
)
from repro.tol.config import TolConfig

#: Small, fast subset spanning two suites.
WORKLOADS = ("429.mcf", "continuous", "462.libquantum")
SCALE = 0.05


def _jobs(config=None, workloads=WORKLOADS):
    return suite_sweep_jobs(scale=SCALE, config=config,
                            workloads=list(workloads), validate=False)


# -- deterministic parallelism -------------------------------------------------


def test_jobs4_byte_identical_to_jobs1():
    """Fan-out may only change wall-clock: metrics and the rendered
    EXPERIMENTS-style tables must be byte-identical."""
    seq = sweep(_jobs(), n_jobs=1, use_cache=False)
    par = sweep(_jobs(), n_jobs=4, use_cache=False)
    assert all(r.ok for r in seq + par)
    seq_metrics = [r.value for r in seq]
    par_metrics = [r.value for r in par]
    assert seq_metrics == par_metrics
    # Byte-identical per metric (whole-list pickles differ only in memo
    # references when sibling metrics share string objects).
    for seq_m, par_m in zip(seq_metrics, par_metrics):
        assert pickle.dumps(seq_m) == pickle.dumps(par_m)
    for table in (fig4_table, fig5_table, fig6_table, fig7_table):
        assert table(seq_metrics) == table(par_metrics)


def test_run_suite_metrics_sweep_path_matches_seed_loop():
    """The sweep-backed run_suite_metrics returns exactly what the
    sequential in-process loop returns."""
    from repro.workloads import PHYSICS
    plain = run_suite_metrics(scale=0.05, suites=(PHYSICS,),
                              validate=False)
    swept = run_suite_metrics(scale=0.05, suites=(PHYSICS,),
                              validate=False, jobs=2, use_cache=False)
    assert plain == swept


# -- persistent cache ----------------------------------------------------------


def test_cache_hit_replays_identical_results(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = sweep(_jobs(), n_jobs=1, cache=cache)
    second = sweep(_jobs(), n_jobs=1, cache=cache)
    assert all(r.ok for r in first + second)
    assert not any(r.cached for r in first)
    assert all(r.cached for r in second)
    assert [r.value for r in first] == [r.value for r in second]
    assert cache.hits == len(WORKLOADS)


def test_cache_misses_after_tolconfig_field_change(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    sweep(_jobs(TolConfig()), n_jobs=1, cache=cache)
    changed = sweep(_jobs(TolConfig(bbm_threshold=11)), n_jobs=1,
                    cache=cache)
    assert all(r.ok for r in changed)
    assert not any(r.cached for r in changed)


def test_cache_misses_after_source_fingerprint_change(tmp_path,
                                                      monkeypatch):
    cache = ResultCache(tmp_path / "cache")
    sweep(_jobs(), n_jobs=1, cache=cache)
    monkeypatch.setattr(parallel, "code_fingerprint",
                        lambda root=None: "0" * 64)
    stale = sweep(_jobs(), n_jobs=1, cache=cache)
    assert all(r.ok for r in stale)
    assert not any(r.cached for r in stale)


def test_code_fingerprint_tracks_file_content(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    for root in (a, b):
        root.mkdir()
        (root / "mod.py").write_text("x = 1\n")
    assert code_fingerprint(a) == code_fingerprint(b)
    (b / "mod.py").write_text("x = 2\n")
    assert code_fingerprint(a) != code_fingerprint(b)


def test_corrupted_cache_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    sweep(_jobs(), n_jobs=1, cache=cache)
    entries = list((tmp_path / "cache").rglob("*.pkl"))
    assert len(entries) == len(WORKLOADS)
    for path in entries:
        path.write_bytes(path.read_bytes()[:16])  # truncate mid-record
    recomputed = sweep(_jobs(), n_jobs=1, cache=cache)
    assert all(r.ok for r in recomputed)
    assert not any(r.cached for r in recomputed)
    # The corrupted entries were rewritten: a third pass replays.
    replay = sweep(_jobs(), n_jobs=1, cache=cache)
    assert all(r.cached for r in replay)


def _boom_on_load():
    raise ZeroDivisionError("synthetic non-corruption unpickle failure")


class _EvilPayload:
    """Unpickles by raising an error *outside* the expected
    cache-corruption classes."""

    def __reduce__(self):
        return (_boom_on_load, ())


def test_unexpected_cache_error_is_counted_not_silent(tmp_path):
    """An unpickle failure outside CACHE_CORRUPTION_ERRORS still
    degrades to a miss (never kills the sweep) but must land in the
    sweep.errors.swallowed counter; expected corruption must not."""
    cache = ResultCache(tmp_path / "cache")
    key = "c" * 64
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps((key, _EvilPayload())))
    before = parallel.SWEEP_ERROR_COUNTERS["sweep.errors.swallowed"]
    assert cache.get(key) is parallel._MISS
    assert parallel.SWEEP_ERROR_COUNTERS["sweep.errors.swallowed"] \
        == before + 1
    assert not path.exists()                 # entry was dropped
    context, summary = parallel.SWEEP_ERROR_LOG[-1]
    assert context.startswith("cache.get:") and "ZeroDivisionError" in summary
    # Plain truncation is an *expected* corruption class: miss, no count.
    cache.put(key, {"v": 1})
    path.write_bytes(path.read_bytes()[:8])
    assert cache.get(key) is parallel._MISS
    assert parallel.SWEEP_ERROR_COUNTERS["sweep.errors.swallowed"] \
        == before + 1


def test_cache_rejects_key_mismatch(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("a" * 64, {"v": 1})
    # Simulate a renamed/misfiled entry: stored key disagrees with path.
    src = cache._path("a" * 64)
    dst = cache._path("b" * 64)
    dst.parent.mkdir(parents=True, exist_ok=True)
    os.replace(src, dst)
    assert cache.get("b" * 64) is parallel._MISS


# -- failure isolation ---------------------------------------------------------


def test_unknown_workload_degrades_to_error_record():
    jobs = _jobs(workloads=("429.mcf", "no.such.workload"))
    results = sweep(jobs, n_jobs=2, use_cache=False)
    good, bad = results
    assert good.ok and good.value.name == "429.mcf"
    assert not bad.ok
    assert bad.attempts == 2  # first pass + one isolated retry
    assert "no.such.workload" in bad.error


@parallel.register_task("_test_crash")
def _crash_task():
    os._exit(13)  # hard worker death, not a Python exception


@parallel.register_task("_test_sleep")
def _sleep_task(seconds=60.0):
    time.sleep(seconds)
    return "woke"


class _UnexpectedSweepError(RuntimeError):
    pass


@parallel.register_task("_test_unexpected_raise")
def _unexpected_raise_task():
    raise _UnexpectedSweepError("must surface in the sweep report")


@pytest.mark.parametrize("n_jobs", [1, 2], ids=["inline", "pooled"])
def test_unexpected_worker_exception_surfaces_in_report(n_jobs):
    """Regression: an exception type the harness has no special handling
    for must come back as a full error record in the sweep report —
    never vanish into a bare except."""
    (result,) = sweep([SweepJob(task="_test_unexpected_raise")],
                      n_jobs=n_jobs, use_cache=False, retries=1)
    assert not result.ok
    assert "_UnexpectedSweepError" in result.error
    assert "must surface in the sweep report" in result.error


def test_worker_crash_is_isolated_per_task():
    jobs = [SweepJob(task="_test_crash"),
            SweepJob(task="workload_metrics",
                     params={"workload": "continuous", "scale": SCALE,
                             "validate": False})]
    results = sweep(jobs, n_jobs=2, use_cache=False)
    crash, good = results
    assert not crash.ok
    assert "died" in crash.error
    assert good.ok and good.value.name == "continuous"


def test_hung_worker_times_out():
    results = sweep([SweepJob(task="_test_sleep",
                              params={"seconds": 60.0})],
                    n_jobs=2, use_cache=False, timeout=1.0)
    (result,) = results
    assert not result.ok
    assert "timed out" in result.error or "deadline" in result.error


def test_error_results_are_not_cached(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    jobs = _jobs(workloads=("no.such.workload",))
    sweep(jobs, n_jobs=1, cache=cache)
    assert not list((tmp_path / "cache").rglob("*.pkl"))


# -- metrics round-trip --------------------------------------------------------


def test_kernel_metrics_pickle_round_trip():
    result = sweep(_jobs(workloads=("continuous",)), n_jobs=1,
                   use_cache=False)[0]
    assert result.ok
    clone = pickle.loads(pickle.dumps(result.value))
    assert clone == result.value
    assert clone.mode_fraction == result.value.mode_fraction
    assert clone.extras == result.value.extras


# -- crash-resumable sweeps ----------------------------------------------------


def _arch_jobs(workloads=("ticker", "blend"), scale=0.3):
    return suite_sweep_jobs(scale=scale, workloads=list(workloads),
                            validate=True, task="arch_run")


def test_arch_sweep_values_are_resume_stable(tmp_path):
    """ArchResult values are byte-identical with and without
    checkpointing (perf counters are deliberately excluded)."""
    plain = sweep(_arch_jobs(), n_jobs=1, use_cache=False)
    ckpt = sweep(_arch_jobs(), n_jobs=1, use_cache=False,
                 checkpoint_dir=tmp_path / "ck")
    assert all(r.ok for r in plain + ckpt)
    assert [r.value for r in plain] == [r.value for r in ckpt]
    assert (pickle.dumps([r.value for r in plain])
            == pickle.dumps([r.value for r in ckpt]))
    # Checkpoints actually landed in the per-job directories.
    job_dirs = [p for p in (tmp_path / "ck").iterdir() if p.is_dir()]
    assert len(job_dirs) == 2
    for d in job_dirs:
        assert list(d.glob("ckpt-*.json"))


def test_interrupted_arch_task_resumes_from_checkpoint(tmp_path):
    """A killed attempt's checkpoints are picked up by --resume: the
    resumed value equals an uninterrupted run's, and resume evidence
    lands in the sidecar log, not in the value."""
    from repro.snapshot.runner import run_checkpointed
    from repro.system.controller import SystemError_
    from repro.workloads import get_workload

    jobs = _arch_jobs(workloads=("ticker",))
    (job,) = jobs
    key = job.key(code_fingerprint())
    job_dir = tmp_path / "ck" / key[:16]

    # Simulate a mid-task kill: run with a tiny event budget so the
    # attempt dies after writing a few checkpoints.
    program = get_workload("ticker").program(scale=0.3)
    with pytest.raises(SystemError_):
        run_checkpointed(program, config=job.params["config"],
                         checkpoint_dir=job_dir, max_events=8)
    assert list(job_dir.glob("ckpt-*.json")), "no checkpoint to resume"

    baseline = sweep(_arch_jobs(workloads=("ticker",)), n_jobs=1,
                     use_cache=False)[0]
    resumed = sweep(jobs, n_jobs=1, use_cache=False,
                    checkpoint_dir=tmp_path / "ck", resume=True)[0]
    assert resumed.ok
    assert resumed.value == baseline.value
    assert pickle.dumps(resumed.value) == pickle.dumps(baseline.value)
    log = (job_dir / "resume.log").read_text()
    assert "resumed from ckpt-" in log


def test_resume_sweep_replays_completed_tasks_from_cache(tmp_path):
    """Rerunning the same sweep command with --resume must not rerun
    completed tasks: they come back as cache hits."""
    cache = ResultCache(tmp_path / "cache")
    first = sweep(_arch_jobs(), n_jobs=1, cache=cache,
                  checkpoint_dir=tmp_path / "ck")
    second = sweep(_arch_jobs(), n_jobs=1, cache=cache,
                   checkpoint_dir=tmp_path / "ck", resume=True)
    assert all(r.ok for r in first + second)
    assert all(r.cached for r in second)
    assert [r.value for r in first] == [r.value for r in second]


def test_checkpoint_params_do_not_change_cache_keys(tmp_path):
    """Where resume points live is execution plumbing, not job identity:
    a result computed without checkpointing is a cache hit for the same
    job run with it."""
    cache = ResultCache(tmp_path / "cache")
    plain = sweep(_arch_jobs(workloads=("ticker",)), n_jobs=1,
                  cache=cache)
    ckpt = sweep(_arch_jobs(workloads=("ticker",)), n_jobs=1,
                 cache=cache, checkpoint_dir=tmp_path / "ck",
                 resume=True)
    assert plain[0].ok and ckpt[0].ok
    assert ckpt[0].cached


def test_results_are_cached_eagerly_as_tasks_resolve(tmp_path):
    """Cache writes happen per-task, not at sweep end, so a sweep killed
    mid-flight keeps everything it finished."""
    cache = ResultCache(tmp_path / "cache")
    seen = []

    def spy(result, done, total):
        seen.append(len(list((tmp_path / "cache").rglob("*.pkl"))))

    sweep(_arch_jobs(), n_jobs=1, cache=cache, progress=spy)
    # After the first task resolved there was already one entry on disk.
    assert seen[0] == 1
    assert seen[-1] == 2
