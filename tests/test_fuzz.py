"""The coverage-guided differential fuzzer: mutation determinism,
coverage accounting, oracle classification, campaign replay determinism
across ``--jobs``, runaway containment, planted-bug end-to-end triage
(found -> deduped -> minimized -> confirmed via ``darco repro``) and the
pinned-corpus direct-tier repromotion regression.
"""

import json
import os
import random
from dataclasses import asdict

import pytest

from repro.fuzz.coverage import CoverageMap, edges_from_counters
from repro.fuzz.engine import FuzzConfig, run_campaign, seed_corpus
from repro.fuzz.mutate import MutationEngine, load_corpus_program
from repro.fuzz.oracle import FuzzOutcome, evaluate_candidate
from repro.snapshot.minimize import decode_program_instrs
from repro.tol.config import TolConfig
from repro.workloads.generator import SyntheticSpec, generate

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

#: Plants known to convert exec 0 of a ``seed=2`` campaign into a
#: finding (scanned once, pinned for determinism).
PLANT_DIVERGENCE = {"exec": 0, "site": "host_bitflip", "ordinal": 2,
                    "salt": 7}
PLANT_SANITIZER = {"exec": 0, "site": "stale_chain", "ordinal": 1,
                   "salt": 11}


def _small_program():
    return generate(SyntheticSpec(seed=9, hot_loops=1, trip_count=60,
                                  bb_size=4, cold_stanzas=1))


# ---------------------------------------------------------------------------
# Mutation engine.
# ---------------------------------------------------------------------------


def test_mutations_are_deterministic_and_length_preserving():
    program = _small_program()
    engine = MutationEngine(program)
    a = engine.mutate(random.Random("k:1"))
    b = engine.mutate(random.Random("k:1"))
    c = engine.mutate(random.Random("k:2"))
    assert a.code == b.code          # same seed -> same mutant
    assert a.code != program.code    # something actually changed
    assert len(a.code) == len(program.code)
    assert c.code != a.code          # different seed -> different mutant
    # Every mutant still decodes to the same instruction boundaries.
    assert [i.addr for i in decode_program_instrs(a)] == \
        [i.addr for i in decode_program_instrs(program)]


# ---------------------------------------------------------------------------
# Coverage map.
# ---------------------------------------------------------------------------


def test_coverage_edges_whitelist_and_buckets():
    edges = edges_from_counters({
        "cov.exit.SBM:exit": 5,          # -> bucket 3
        "mode.retired.IM": 1000,         # -> bucket 10
        "tol.dispatches": 99,            # not a coverage namespace
        "cov.shape.bb": 0,               # zero: not exercised
    })
    assert edges == {"cov.exit.SBM:exit#3", "mode.retired.IM#10"}


def test_coverage_digest_tracks_edge_set_not_hit_counts():
    a, b = CoverageMap(), CoverageMap()
    assert a.add(["x#1", "y#2"]) == 2
    assert a.add(["x#1"]) == 0           # repeat: hit count, not new
    b.add(["y#2"])
    b.add(["x#1"])
    assert a.digest() == b.digest()      # order/count independent
    assert a.as_dict() == {"x#1": 2, "y#2": 1}
    b.add(["z#1"])
    assert a.digest() != b.digest()


# ---------------------------------------------------------------------------
# Oracle classification.
# ---------------------------------------------------------------------------


def test_clean_candidate_classifies_ok_with_edges():
    outcome = evaluate_candidate(_small_program())
    assert outcome.classification == "ok"
    assert outcome.edges                          # coverage non-empty
    assert any(e.startswith("cov.") for e in outcome.edges)


def test_reference_crashing_candidate_is_invalid():
    program = _small_program()
    # Entry pointing at the data-less tail: reference faults -> invalid,
    # regardless of what the co-designed stack would do with it.
    from dataclasses import replace
    broken = replace(program, entry=program.base + len(program.code) - 1)
    outcome = evaluate_candidate(broken)
    assert outcome.classification == "invalid"


# ---------------------------------------------------------------------------
# Runaway containment (satellite: never hang a worker, never abort).
# ---------------------------------------------------------------------------


def _syscall_spinner(trips=1500):
    """A deliberate livelock kernel: every loop iteration crosses the
    controller (SYS_TIME), so a tiny event budget is guaranteed to blow.
    The body repeats the syscall so most mutants still spin."""
    from repro.guest.assembler import Assembler, EAX, ECX
    asm = Assembler()
    with asm.counted_loop(ECX, trips):
        for _ in range(8):
            asm.mov(EAX, 5)          # SYS_TIME: benign, deterministic
            asm.emit("SYSCALL")
    asm.exit(0)
    return asm.program()


def test_event_budget_blowout_classifies_runaway():
    """The livelock kernel under a tiny event budget is 'runaway' — not
    a crash, not a finding, and it must not hang the evaluation."""
    outcome = evaluate_candidate(_syscall_spinner(), max_events=100)
    assert outcome.classification == "runaway"
    assert outcome.runaway_leg == "interp_strict"
    assert "event budget" in outcome.error
    # With the normal budget the same kernel is a clean program.
    assert evaluate_candidate(_syscall_spinner()).classification == "ok"


def test_campaign_skips_runaway_mutants_and_completes(tmp_path):
    from repro.fuzz.mutate import save_corpus_program
    save_corpus_program(str(tmp_path / "spinner.json"),
                        _syscall_spinner())
    result = run_campaign(FuzzConfig(seed=3, budget=6, batch=6,
                                     corpus_dir=str(tmp_path),
                                     max_events=100, minimize=False,
                                     confirm=False))
    assert result.executions == 6               # never aborted
    assert result.classified["runaway"] >= 1    # spinner mutant skipped
    assert not result.findings                  # and not misfiled


# ---------------------------------------------------------------------------
# Replay determinism across --jobs.
# ---------------------------------------------------------------------------


def test_campaign_identical_at_jobs_1_and_jobs_4():
    config = dict(seed=5, budget=8, batch=4, minimize=False,
                  confirm=False)
    seq = run_campaign(FuzzConfig(jobs=1, **config))
    par = run_campaign(FuzzConfig(jobs=4, **config))
    assert seq.executions == par.executions == 8
    assert seq.coverage_digest == par.coverage_digest
    assert seq.coverage == par.coverage
    assert seq.classified == par.classified
    assert seq.signatures() == par.signatures()
    assert seq.corpus_size == par.corpus_size


# ---------------------------------------------------------------------------
# Planted bugs: found, minimized, confirmed end to end.
# ---------------------------------------------------------------------------


def _planted_campaign(tmp_path, plant):
    return run_campaign(FuzzConfig(
        seed=2, budget=1, batch=1, plant=plant,
        repro_dir=str(tmp_path / "repro")))


def test_planted_divergence_found_minimized_confirmed(tmp_path):
    from repro.cli import main
    result = _planted_campaign(tmp_path, PLANT_DIVERGENCE)
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.kind == "divergence"
    assert finding.minimized_instructions is not None
    assert finding.minimized_instructions <= 10
    assert finding.minimized_instructions < finding.original_instructions
    assert finding.confirmed is True
    # The emitted bundle replays through the user-facing command.
    assert finding.bundle_path and os.path.exists(finding.bundle_path)
    assert main(["repro", finding.bundle_path]) == 0


def test_planted_sanitizer_violation_found_minimized_confirmed(tmp_path):
    from repro.cli import main
    result = _planted_campaign(tmp_path, PLANT_SANITIZER)
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.kind == "sanitizer"
    assert finding.minimized_instructions is not None
    assert finding.minimized_instructions <= 10
    assert finding.confirmed is True
    assert finding.bundle_path and os.path.exists(finding.bundle_path)
    assert main(["repro", finding.bundle_path]) == 0


# ---------------------------------------------------------------------------
# Dedup + worker-crash triage (stubbed sweep: no real runs).
# ---------------------------------------------------------------------------


def _stub_sweep(outcomes):
    """A sweep replacement yielding canned per-job results."""
    from repro.harness.parallel import SweepResult

    def fake_sweep(jobs, n_jobs=None, use_cache=False):
        results = []
        for job, canned in zip(jobs, outcomes):
            if isinstance(canned, str):
                results.append(SweepResult(job=job, error=canned))
            else:
                results.append(SweepResult(job=job, value=asdict(canned)))
        return results
    return fake_sweep


def test_same_signature_findings_dedup(monkeypatch):
    import repro.fuzz.engine as engine_mod
    finding = FuzzOutcome(classification="finding",
                          finding_kind="divergence",
                          finding_leg="direct_strict",
                          signature="sig-xyz", edges=["cov.a#1"])
    monkeypatch.setattr(engine_mod, "sweep",
                        _stub_sweep([finding, finding]))
    result = run_campaign(FuzzConfig(seed=1, budget=2, batch=2,
                                     minimize=False, confirm=False))
    assert result.classified["finding"] == 2
    assert len(result.findings) == 1            # deduped by signature
    assert result.findings[0].duplicates == 1


def test_worker_crash_becomes_finding_not_abort(monkeypatch):
    import repro.fuzz.engine as engine_mod
    monkeypatch.setattr(engine_mod, "sweep",
                        _stub_sweep(["TypeError: worker exploded"]))
    result = run_campaign(FuzzConfig(seed=1, budget=1, batch=1,
                                     minimize=False, confirm=False))
    assert result.executions == 1               # campaign completed
    assert len(result.findings) == 1
    assert result.findings[0].leg == "worker"
    assert "worker exploded" in result.findings[0].error


# ---------------------------------------------------------------------------
# Pinned corpus seed: direct-tier repromotion cap (satellite).
# ---------------------------------------------------------------------------


def test_corpus_dir_feeds_the_seed_corpus():
    entries = seed_corpus(1, corpus_dir=CORPUS_DIR)
    ids = [e.entry_id for e in entries]
    assert "corpus:direct_repromote.json" in ids


def test_direct_repromotion_after_demotion_and_cap():
    """The pinned corpus kernel (hot function called from a loop: a
    stable superblock head) is direct-promoted, demoted by cache
    flushes, re-promoted at the *same* entry PC, and finally refused
    once ``direct_max_repromotions`` is spent."""
    from repro.system.controller import Controller

    program = load_corpus_program(
        os.path.join(CORPUS_DIR, "direct_repromote.json"))
    config = TolConfig(direct_promote_threshold=5,
                       direct_max_repromotions=2)
    controller = Controller(program, config=config)
    tol = controller.codesigned.tol

    target = 2500
    result = None
    for _ in range(10):
        result = controller.run(until_icount=target)
        if result.exit_code is not None:
            break
        tol.cache.flush()               # organic capacity-flush demotion
        target += 2500
    if result.exit_code is None:
        result = controller.run()
    assert result.exit_code == 0

    # Repromotion after demotion: some PC was direct-promoted more than
    # once, and exactly up to the cap.
    promotions = dict(tol.profiler.direct_promotions)
    assert max(promotions.values()) == config.direct_max_repromotions
    assert tol.stats.direct_tier.get("rejected_cap", 0) >= 1
    assert tol.cache.direct_strips >= 2

    # And the whole story is visible to the fuzzer's coverage map.
    counters = tol.telemetry.snapshot().counters
    assert counters.get("cov.direct.promoted", 0) >= 1
    assert counters.get("cov.direct.rejected_cap", 0) >= 1
    edges = edges_from_counters(counters)
    assert any(e.startswith("cov.direct.rejected_cap#") for e in edges)


def test_pinned_corpus_program_runs_clean_through_the_oracle():
    program = load_corpus_program(
        os.path.join(CORPUS_DIR, "direct_repromote.json"))
    outcome = evaluate_candidate(program)
    assert outcome.classification == "ok"
    assert any(e.startswith("cov.direct.") for e in outcome.edges)


# ---------------------------------------------------------------------------
# Campaign result serialization (what --json/--out and CI consume).
# ---------------------------------------------------------------------------


def test_campaign_result_as_dict_is_json_safe():
    result = run_campaign(FuzzConfig(seed=6, budget=2, batch=2,
                                     minimize=False, confirm=False))
    blob = json.dumps(result.as_dict(), sort_keys=True)
    loaded = json.loads(blob)
    assert loaded["executions"] == 2
    assert loaded["coverage_digest"] == result.coverage_digest
    assert "execs_per_sec" in loaded
