"""Encoder/decoder round-trip tests for the guest ISA."""

import pytest
from hypothesis import given, strategies as st

from repro.guest.encoding import EncodingError, decode_instr, encode_instr
from repro.guest.isa import (
    FPR_NAMES, GPR_NAMES, INSN_SPECS, MNEMONICS, VR_NAMES,
    FReg, GuestInstr, Imm, Mem, Reg, VReg,
)


def roundtrip(instr: GuestInstr, addr: int = 0x1000) -> GuestInstr:
    blob = encode_instr(instr)
    decoded = decode_instr(lambda a: blob[a - addr], addr)
    assert decoded.length == len(blob)
    assert decoded.addr == addr
    return decoded


def test_simple_reg_reg():
    instr = GuestInstr("ADD", (Reg("EAX"), Reg("EBX")))
    decoded = roundtrip(instr)
    assert decoded.mnemonic == "ADD"
    assert decoded.operands == (Reg("EAX"), Reg("EBX"))


def test_imm_operand():
    decoded = roundtrip(GuestInstr("MOV", (Reg("ECX"), Imm(0xDEADBEEF))))
    assert decoded.operands[1].u32 == 0xDEADBEEF


def test_mem_operand_full():
    mem = Mem(base="EBP", index="ESI", scale=4, disp=0x40)
    decoded = roundtrip(GuestInstr("MOV", (Reg("EAX"), mem)))
    assert decoded.operands[1] == mem


def test_mem_operand_disp_only():
    mem = Mem(disp=0x2000)
    decoded = roundtrip(GuestInstr("MOV", (mem, Reg("EAX"))))
    assert decoded.operands[0] == mem


def test_zero_operand_instrs():
    for m in ("NOP", "RET", "SYSCALL", "REP_MOVSD"):
        decoded = roundtrip(GuestInstr(m, ()))
        assert decoded.mnemonic == m
        assert decoded.operands == ()


def test_variable_lengths_are_cisc_like():
    nop = encode_instr(GuestInstr("NOP", ()))
    movmi = encode_instr(GuestInstr(
        "MOV", (Mem(base="EBP", index="ESI", scale=2, disp=8), Imm(7))))
    assert len(nop) == 1
    assert len(movmi) >= 10  # opcode + mem + imm


def test_operand_kind_checked():
    with pytest.raises(EncodingError):
        encode_instr(GuestInstr("LEA", (Reg("EAX"), Reg("EBX"))))
    with pytest.raises(EncodingError):
        encode_instr(GuestInstr("ADD", (Reg("EAX"),)))


def test_bad_opcode_rejected():
    with pytest.raises(EncodingError):
        decode_instr(lambda a: 0xFF, 0)


def test_fp_and_vector_operands():
    decoded = roundtrip(GuestInstr("FADD", (FReg("F0"), FReg("F3"))))
    assert decoded.operands == (FReg("F0"), FReg("F3"))
    decoded = roundtrip(GuestInstr("VSPLAT", (VReg("V2"), Reg("EDX"))))
    assert decoded.operands == (VReg("V2"), Reg("EDX"))


# -- property-based round trip over the whole instruction space -------------

_regs = st.sampled_from(GPR_NAMES).map(Reg)
_fregs = st.sampled_from(FPR_NAMES).map(FReg)
_vregs = st.sampled_from(VR_NAMES).map(VReg)
_imms = st.integers(min_value=0, max_value=0xFFFFFFFF).map(Imm)
_mems = st.builds(
    Mem,
    base=st.one_of(st.none(), st.sampled_from(GPR_NAMES)),
    index=st.one_of(st.none(), st.sampled_from(GPR_NAMES)),
    scale=st.sampled_from([1, 2, 4, 8]),
    disp=st.integers(min_value=0, max_value=0xFFFFFFFF),
)

_KIND_STRATEGIES = {
    "r": _regs,
    "f": _fregs,
    "v": _vregs,
    "i": _imms,
    "m": _mems,
    "rm": st.one_of(_regs, _mems),
    "ri": st.one_of(_regs, _imms),
    "rmi": st.one_of(_regs, _mems, _imms),
}


@st.composite
def _instrs(draw):
    mnemonic = draw(st.sampled_from(MNEMONICS))
    spec = INSN_SPECS[mnemonic]
    operands = tuple(draw(_KIND_STRATEGIES[k]) for k in spec.operands)
    return GuestInstr(mnemonic, operands)


@given(_instrs())
def test_roundtrip_property(instr):
    decoded = roundtrip(instr, addr=0x4321)
    assert decoded.mnemonic == instr.mnemonic
    assert decoded.operands == instr.operands
