"""Edge cases of the synchronization protocol and rollback machinery:
restartable string operations across missing pages, vector-state rollback,
and pause interaction with chained loop units."""

import pytest

from repro.guest.assembler import (
    Assembler, EAX, EBX, ECX, EDI, ESI, V0, V1, M,
)
from repro.guest.memory import PAGE_SIZE, PagedMemory
from repro.guest.program import pack_u32s, unpack_u32s
from repro.guest.state import GuestState
from repro.host.emulator import EXIT_ASSERT, HostEmulator
from repro.host.isa import CodeUnit, HostInstr as H
from repro.tol.config import TolConfig
from repro.system.controller import Controller, run_codesigned

FAST = TolConfig(bbm_threshold=3, sbm_threshold=8)


def build(fn):
    asm = Assembler()
    fn(asm)
    return asm.program()


def test_rep_movsd_across_page_boundaries():
    """The copy spans two data pages, both served lazily mid-instruction;
    per-element register updates make REP restartable at each fault."""
    src = 0x20000 - 64          # last 64 bytes of one page
    def body(asm):
        asm.data(src, pack_u32s(range(100, 132)))   # crosses into 0x20000
        asm.mov(ESI, src)
        asm.mov(EDI, 0x30000 - 64)                  # dst also crosses
        asm.mov(ECX, 32)
        asm.rep_movsd()
        asm.exit(0)
    result, controller = run_codesigned(build(body), config=FAST)
    assert result.exit_code == 0
    copied = unpack_u32s(
        controller.x86.memory.read_bytes(0x30000 - 64, 128))
    assert copied == tuple(range(100, 132))
    # The interpreter faulted at least twice mid-REP (src + dst pages).
    assert result.data_requests >= 4


def test_vector_state_rolls_back_on_assert_failure():
    emu = HostEmulator(PagedMemory())
    state = GuestState()
    state.set("V0", [1, 2, 3, 4])
    unit = CodeUnit(uid=1, mode="SBM", entry_pc=0x1000, instrs=[
        H("chkpt", meta={"guest_pc": 0x1000}),
        H("li", d=16, imm=9),
        H("vsplat", d=1, a=16),          # clobber guest V0 speculatively
        H("li", d=17, imm=0),
        H("assert_nz", a=17),            # fail
        H("exit", meta={"next_pc": 0, "guest_insns": 1}),
    ])
    event = emu.execute(unit, state)
    assert event.kind == EXIT_ASSERT
    assert state.get("V0") == [1, 2, 3, 4]


def test_pause_inside_chained_loop_is_architecturally_clean():
    def body(asm):
        asm.mov(EAX, 0)
        with asm.counted_loop(ECX, 3000):
            asm.add(EAX, 1)
        asm.mov(EDI, EAX)
        asm.exit(0)
    controller = Controller(build(body), config=FAST)
    # Pause repeatedly at short intervals; state must stay consistent with
    # the reference at every pause (the reference can always catch up).
    for target in (500, 1200, 2500, 4000):
        result = controller.run(until_icount=target)
        if result.exit_code is not None:
            break
        controller.x86.run_to_icount(controller.codesigned.guest_icount)
        diff = controller.codesigned.state.diff(controller.x86.state)
        assert not diff, f"pause at {target} left divergent state: {diff}"
    final = controller.run()
    assert final.exit_code == 0
    assert controller.x86.state.get("EDI") == 3000


def test_code_spanning_page_boundary():
    """A hot loop placed so its code crosses a page boundary: the second
    code page is faulted in mid-decode."""
    def body(asm):
        # Pad with cold straight-line code to push the loop near the
        # page boundary.
        for i in range(560):
            asm.mov(EAX, i)
        asm.mov(EBX, 0)
        with asm.counted_loop(ECX, 400):
            asm.add(EBX, 2)
            asm.emit("XOR", EBX, 0)
            asm.add(EBX, 0)
        asm.mov(EDI, EBX)
        asm.exit(0)
    program = build(body)
    assert program.static_code_bytes > PAGE_SIZE  # really crosses a page
    result, controller = run_codesigned(program, config=FAST)
    assert result.exit_code == 0
    assert controller.x86.state.get("EDI") == 800


def test_vector_loop_with_speculation_and_rollback_pressure():
    def body(asm):
        asm.data(0x40000, pack_u32s(range(16)))
        asm.mov(EBX, 0x40000)
        with asm.counted_loop(ECX, 300):
            asm.vld(V0, M(EBX))
            asm.vld(V1, M(EBX, disp=16))
            asm.vadd(V0, V1)
            asm.vst(M(EBX, disp=32), V0)
            asm.mov(EAX, M(EBX, disp=32))   # reload what vst wrote
            asm.add(ESI, EAX)
        asm.mov(EDI, ESI)
        asm.exit(0)
    result, controller = run_codesigned(build(body), config=FAST)
    assert result.exit_code == 0  # validation covers vector memory


def test_cold_code_only_program_never_translates():
    def body(asm):
        for i in range(200):
            asm.add(EAX, i % 7)
        asm.mov(EDI, EAX)
        asm.exit(0)
    config = TolConfig(bbm_threshold=10, sbm_threshold=60)
    result, controller = run_codesigned(build(body), config=config)
    tol = controller.codesigned.tol
    assert result.exit_code == 0
    assert tol.translator.bb_translations == 0
    dist = tol.mode_distribution()
    assert dist["BBM"] == 0 and dist["SBM"] == 0
    # Syscalls execute on the x86 component, so they are not IM-counted.
    assert dist["IM"] == result.guest_icount - result.syscalls
