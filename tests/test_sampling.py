"""Tests for the warm-up sampling methodology (paper §VI-E)."""

import pytest

from repro.guest.assembler import Assembler, EAX, EBX, ECX, EDX, ESI, M
from repro.guest.program import pack_u32s
from repro.sampling.warmup import (
    WarmupSimulator, collect_bb_frequencies, distribution_similarity,
)
from repro.tol.config import TolConfig

FAST = TolConfig(bbm_threshold=6, sbm_threshold=30)


def phased_program():
    """Two phases with distinct hot loops, ~40k guest instructions."""
    asm = Assembler()
    asm.data(0x4000, pack_u32s(range(64)))
    asm.mov(EAX, 0)
    asm.mov(EBX, 0x4000)
    with asm.counted_loop(ECX, 3000):      # phase 1: ALU loop
        asm.add(EAX, ECX)
        asm.emit("AND", EAX, 0xFFFF)
    asm.mov(ESI, 0)
    with asm.counted_loop(ECX, 3000):      # phase 2: memory loop
        asm.mov(EDX, ESI)
        asm.emit("AND", EDX, 63)
        asm.add(EAX, M(EBX, EDX, 4))
        asm.inc(ESI)
    asm.exit(0)
    return asm.program()


def test_collect_bb_frequencies_window():
    program = phased_program()
    freqs = collect_bb_frequencies(program, 100, 2000)
    assert sum(freqs.values()) > 0
    # The phase-1 loop dominates this early window: one BB stands out.
    top = freqs.most_common(1)[0][1]
    assert top > sum(freqs.values()) * 0.8


def test_distribution_similarity_basics():
    from collections import Counter
    a = Counter({1: 100, 2: 10})
    assert distribution_similarity(a, a) == pytest.approx(1.0)
    disjoint = Counter({3: 50})
    assert distribution_similarity(a, disjoint) == 0.0
    assert distribution_similarity(a, Counter()) == 0.0


def test_simulate_sample_runs_and_measures():
    program = phased_program()
    sim = WarmupSimulator(program, tol_config=FAST)
    sample = sim.simulate_sample(start=6000, length=2000, warmup=2000,
                                 scale=4.0)
    assert sample.cpi > 0
    assert sample.detailed_instructions > 0
    assert sample.simulated_guest_insns <= 4200  # warmup + sample (+slack)


def test_downscaled_warmup_reaches_hotter_state():
    program = phased_program()
    sim = WarmupSimulator(program, tol_config=FAST)
    cold = sim.warmup_bb_distribution(start=4000, warmup=800, scale=1.0)
    hot = sim.warmup_bb_distribution(start=4000, warmup=800, scale=8.0)
    # With downscaled thresholds the loop must be translated (executions
    # counted on units), matching the authoritative distribution better.
    authoritative = collect_bb_frequencies(program, 0, 4000)
    assert distribution_similarity(hot, authoritative) >= \
        distribution_similarity(cold, authoritative) - 1e-9


def test_heuristic_prefers_cheapest_good_candidate():
    program = phased_program()
    sim = WarmupSimulator(program, tol_config=FAST)
    authoritative = collect_bb_frequencies(program, 0, 6000)
    candidates = [(1.0, 500), (8.0, 500), (8.0, 2000)]
    scale, warmup = sim.pick_configuration(
        6000, candidates, authoritative, similarity_floor=0.5)
    assert (scale, warmup) in candidates


def test_sampled_run_aggregates():
    program = phased_program()
    sim = WarmupSimulator(program, tol_config=FAST)
    result = sim.run_sampled(
        sample_starts=[5000, 25000], sample_length=1500,
        warmup=1500, scale=6.0)
    assert len(result.samples) == 2
    assert result.cpi > 0
    assert result.cost_guest_insns < 40000  # far below full detailed run


def test_sample_beyond_program_end_raises():
    program = phased_program()
    sim = WarmupSimulator(program, tol_config=FAST)
    with pytest.raises(ValueError):
        sim.simulate_sample(start=10_000_000, length=100, warmup=100,
                            scale=2.0)
