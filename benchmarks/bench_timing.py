"""Traced-timing speed: cycle-annotated batches vs per-instruction feed.

A detailed-timing run pays a *trace tax* on top of plain co-designed
execution: every retired host instruction historically crossed a Python
call boundary (``trace_sink`` -> classify -> ``InOrderCore.feed``).
ISSUE 7 eliminates most of that tax: units carry a translate-time static
timing profile, record batches are applied through
``InOrderCore.feed_unit`` in one call, and hot units tier up to a
generated per-unit applier with the static facts folded into bytecode
(:mod:`repro.timing.annotate`).

The benchmark isolates exactly that tax.  Three wall-clocks on the same
workload, best of ``ROUNDS`` each:

- ``base``: plain ``run_codesigned`` (no timing attached);
- ``annotated``: ``run_with_timing`` on the annotated path;
- ``per_instruction``: ``run_with_timing`` with ``annotate=False``.

``tax = traced - base`` per mode; ``speedup = tax_per / tax_annotated``
is what the >=3x bar is asserted on, and ``timing_kips_*`` report host
timing instructions per second of tax.  The differential identity suite
(tests/test_timing_annotation.py) guarantees both modes produce
bit-identical ``core.report()``; this benchmark re-checks it on its own
workload, so a regression cannot hide behind a fast-but-wrong path.

Run as a script to (re)generate ``BENCH_timing.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_timing.py
    PYTHONPATH=src python benchmarks/bench_timing.py --smoke
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.system.controller import run_codesigned
from repro.timing.run import run_with_timing
from repro.tol.config import TolConfig
from repro.workloads import SyntheticSpec, generate

#: The annotated-path guarantee: >=3x the per-instruction path on the
#: trace tax (wall-clock added by detailed timing).
TIMING_SPEEDUP_BAR = 3.0
ROUNDS = 3

#: A hot, branchy, mixed int/fp/mem workload: mostly translated-code
#: execution, so the trace tax dominates the timed delta.
SPEC = SyntheticSpec(seed=5, hot_loops=3, trip_count=4000, bb_size=8,
                     branchy=True, mem_ops=1, fp_ops=1)
SMOKE_SPEC = SyntheticSpec(seed=5, hot_loops=3, trip_count=400, bb_size=8,
                           branchy=True, mem_ops=1, fp_ops=1)
TOL = dict(bbm_threshold=3, sbm_threshold=8)


def _best_of(fn, rounds):
    best = None
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        dt = time.perf_counter() - t0
        if best is None or dt < best:
            best = dt
    return best, value


def compare(spec=SPEC, rounds: int = ROUNDS):
    base_s, _ = _best_of(
        lambda: run_codesigned(generate(spec), config=TolConfig(**TOL),
                               validate=False),
        rounds)
    ann_s, ann = _best_of(
        lambda: run_with_timing(generate(spec), tol_config=TolConfig(**TOL),
                                validate=False, annotate=True),
        rounds)
    per_s, per = _best_of(
        lambda: run_with_timing(generate(spec), tol_config=TolConfig(**TOL),
                                validate=False, annotate=False),
        rounds)
    _, ann_controller, ann_core = ann
    _, _, per_core = per
    session = ann_controller.codesigned.tol.host.trace_sink.__self__
    identical = ann_core.report() == per_core.report()
    insns = ann_core.stats.instructions
    tax_ann = max(ann_s - base_s, 1e-9)
    tax_per = max(per_s - base_s, 1e-9)
    speedup = tax_per / tax_ann
    return {
        "timed_insns": insns,
        "base_s": round(base_s, 3),
        "annotated_s": round(ann_s, 3),
        "per_instruction_s": round(per_s, 3),
        "timing_kips_annotated": round(insns / tax_ann / 1e3, 1),
        "timing_kips_per_instruction": round(insns / tax_per / 1e3, 1),
        "annotated_units": session.annotated_units,
        "compiled_units": session.compiled_units,
        "fastpath_insns": session.fastpath_insns,
        "fallback_insns": session.fallback_insns,
        "report_identical": identical,
        "speedup": round(speedup, 2),
        "bar": TIMING_SPEEDUP_BAR,
        "pass": identical and speedup >= TIMING_SPEEDUP_BAR,
    }


def test_annotated_timing_speedup(benchmark):
    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\n=== cycle-annotated timing ===")
    print(f"base (no timing):   {results['base_s']:.2f}s")
    print(f"annotated:          {results['annotated_s']:.2f}s "
          f"({results['timing_kips_annotated']:.0f} KIPS of tax)")
    print(f"per-instruction:    {results['per_instruction_s']:.2f}s "
          f"({results['timing_kips_per_instruction']:.0f} KIPS of tax)")
    print(f"trace-tax speedup:  {results['speedup']:.2f}x")
    assert results["report_identical"], \
        "annotated and per-instruction timing reports diverged"
    assert results["pass"], (
        f"annotated timing at {results['speedup']:.2f}x the "
        f"per-instruction trace tax (bar {results['bar']:.1f}x)")


def main(argv):
    smoke = "--smoke" in argv
    if smoke:
        # CI smoke: a short run must exercise the annotated fast path
        # (batches actually consumed, zero fallback) and stay identical
        # to the per-instruction path; the 3x bar is only asserted on
        # the full-length run (short runs are dominated by warm-up).
        results = compare(spec=SMOKE_SPEC, rounds=1)
        print(json.dumps(results, indent=2))
        ok = (results["report_identical"]
              and results["fastpath_insns"] > 0
              and results["fallback_insns"] == 0)
        return 0 if ok else 1
    from repro.hostinfo import host_snapshot
    results = compare()
    results["host"] = host_snapshot()
    print(json.dumps(results, indent=2))
    out = Path(__file__).resolve().parent.parent / "BENCH_timing.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    return 0 if results["pass"] else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
