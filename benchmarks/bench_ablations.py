"""Ablations over the design choices DESIGN.md calls out (paper §III /
§V-D): chaining+IBTC, loop unrolling, memory speculation, optimization
passes, promotion thresholds (startup delay), and the wide-in-order design
point (issue width vs performance/watt)."""

from repro.harness.ablations import (
    ablate_background_translation, ablate_chaining, ablate_optimizations,
    ablate_speculation, ablate_startup_delay, ablate_unrolling,
    format_rows, sweep_alias_table, sweep_issue_width, sweep_thresholds,
)


def test_ablation_chaining_and_ibtc(benchmark):
    rows = benchmark.pedantic(ablate_chaining, rounds=1, iterations=1)
    print("\n=== Ablation: chaining / IBTC ===")
    print(format_rows(rows))
    on = rows[0].metrics
    off = rows[3].metrics
    # Without linking, every transition pays a code-cache lookup.
    assert off["cc_lookups"] > 3 * on["cc_lookups"]
    assert off["tol_overhead"] > on["tol_overhead"]


def test_ablation_unrolling(benchmark):
    rows = benchmark.pedantic(
        ablate_unrolling, kwargs={"workload_name": "462.libquantum"},
        rounds=1, iterations=1)
    print("\n=== Ablation: loop unrolling ===")
    print(format_rows(rows))
    on, off = rows[0].metrics, rows[1].metrics
    assert on["loops_unrolled"] >= 1
    assert off["loops_unrolled"] == 0
    # Unrolling amortizes back-edge and bookkeeping work.
    assert on["emulation_cost_sbm"] < off["emulation_cost_sbm"]


def test_ablation_speculation(benchmark):
    rows = benchmark.pedantic(ablate_speculation, rounds=1, iterations=1)
    print("\n=== Ablation: memory speculation ===")
    print(format_rows(rows))
    on, off = rows[0].metrics, rows[1].metrics
    assert off["speculated_pairs"] == 0
    assert off["spec_failures"] == 0


def test_ablation_optimizations(benchmark):
    rows = benchmark.pedantic(ablate_optimizations, rounds=1, iterations=1)
    print("\n=== Ablation: optimization passes ===")
    print(format_rows(rows))
    by_label = {r.label: r.metrics for r in rows}
    # Removing the optimizer raises the emulation cost monotonically-ish.
    assert by_label["full pipeline"]["emulation_cost_sbm"] <= \
        by_label["no CSE/RLE"]["emulation_cost_sbm"] + 1e-9
    assert by_label["no CSE/RLE"]["emulation_cost_sbm"] < \
        by_label["no optimization"]["emulation_cost_sbm"]


def test_threshold_sweep_startup_tradeoff(benchmark):
    rows = benchmark.pedantic(sweep_thresholds, rounds=1, iterations=1)
    print("\n=== Sweep: promotion thresholds (startup delay trade-off) "
          "===")
    print(format_rows(rows))
    aggressive, conservative = rows[0].metrics, rows[-1].metrics
    # Aggressive promotion: less interpretation, more translation work.
    assert aggressive["im_share"] < conservative["im_share"]
    assert aggressive["translator_overhead"] > \
        conservative["translator_overhead"]


def test_issue_width_perf_per_watt(benchmark):
    rows = benchmark.pedantic(sweep_issue_width, rounds=1, iterations=1)
    print("\n=== Sweep: issue width (wide in-order design point) ===")
    print(format_rows(rows))
    ipc = [r.metrics["ipc"] for r in rows]
    # Wider in-order cores gain IPC with diminishing returns.
    assert ipc[1] > ipc[0]
    gain_12 = ipc[1] / ipc[0]
    gain_24 = ipc[2] / ipc[1]
    assert gain_24 < gain_12


def test_ablation_startup_delay_dual_decoder(benchmark):
    rows = benchmark.pedantic(ablate_startup_delay, rounds=1, iterations=1)
    print("\n=== Ablation: startup delay (software interp vs dual "
          "decoder) ===")
    print(format_rows(rows))
    soft, dual = rows[0].metrics, rows[1].metrics
    # Denver's design point: interpretation overhead all but disappears.
    assert dual["interp_overhead"] < soft["interp_overhead"] / 3
    assert dual["tol_overhead"] < soft["tol_overhead"]


def test_sweep_alias_table_size_and_policy(benchmark):
    rows = benchmark.pedantic(sweep_alias_table, rounds=1, iterations=1)
    print("\n=== Sweep: alias table size x search policy ===")
    print(format_rows(rows))
    by_label = {r.label: r.metrics for r in rows}
    # Tiny tables overflow conservatively -> at least as many failures.
    assert by_label["1 parallel"]["spec_failures"] >= \
        by_label["32 parallel"]["spec_failures"]
    # Serial search is never cheaper, and costs grow with table size.
    assert by_label["32 serial"]["search_insns"] >= \
        by_label["1 serial"]["search_insns"]


def test_ablation_background_translation(benchmark):
    rows = benchmark.pedantic(ablate_background_translation,
                              rounds=1, iterations=1)
    print("\n=== Ablation: background translation core ===")
    print(format_rows(rows))
    inline, background = rows[0].metrics, rows[1].metrics
    assert background["background_insns"] > 0
    assert background["main_stream_insns"] < inline["main_stream_insns"]
    assert background["tol_overhead"] < inline["tol_overhead"]


def main(argv):
    """Script mode: fan every registered ablation out over worker
    processes via the sweep runner (``--jobs N``, ``--cache DIR``)."""
    import sys

    from repro.harness.ablations import run_ablations
    from repro.harness.parallel import print_progress

    jobs = None
    cache_dir = None
    if "--jobs" in argv:
        jobs = int(argv[argv.index("--jobs") + 1])
    if "--cache" in argv:
        cache_dir = argv[argv.index("--cache") + 1]
    studies = run_ablations(jobs=jobs, use_cache=cache_dir is not None,
                            cache_dir=cache_dir, progress=print_progress)
    for name, rows in studies.items():
        print(f"\n=== {name} ===")
        print(format_rows(rows))
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
