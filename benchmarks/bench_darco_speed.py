"""Section VI-A: DARCO speed.

Paper: guest 3.4 MIPS functional / 370 KIPS with timing; host 20 MIPS
functional / 2 MIPS with timing.  Our absolute speeds are Python-bound;
the functional-vs-timing slowdown ratio is the comparable shape.
"""

from repro.harness.speed import measure_speed


def test_darco_speed(benchmark):
    report = benchmark.pedantic(
        measure_speed, kwargs={"workload_name": "429.mcf", "scale": 0.4},
        rounds=1, iterations=1)
    print("\n=== DARCO speed (paper section VI-A) ===")
    print(report.table())

    assert report.guest_emulation_ips > 0
    # Host stream is several times denser than the guest stream.
    assert report.host_emulation_ips > 2 * report.guest_emulation_ips
    # Timing simulation is substantially slower than functional emulation
    # (the paper sees ~9x for the guest stream).
    assert report.guest_timing_ips < report.guest_emulation_ips / 2
