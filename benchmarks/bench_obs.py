"""Observability overhead: serve throughput with tracing on vs off.

The tracing design note (DESIGN.md §13) claims counters-mode tracing —
the serve default: a handful of lifecycle spans per job written by the
service and the worker, plus the always-on flight recorder — is cheap
enough to leave on in production.  This benchmark is that claim as a
gate: the same distinct-job load (no coalescing — every submission does
real simulation work) is driven through two fresh service instances,
one with ``tracing="off"`` and one with ``tracing="counters"``, and the
throughput penalty must stay under :data:`MAX_OVERHEAD` (5%).

Each mode runs :data:`TRIALS` times, interleaved so machine drift hits
both sides equally, and the gate compares the modes' *median*
throughput — span I/O cost is present in every traced trial, while a
single lucky (or unlucky) trial is exactly what a median discards.  The
traced
runs must also actually trace: the gate cross-checks that span files
appeared (service + worker roles) and that every completed job left
latency-percentile samples, so "fast because tracing silently never
happened" cannot pass.

Run as a script to (re)generate ``BENCH_obs.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_obs.py [--smoke]
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.hostinfo import host_snapshot
from repro.serve import ServeClient, ServeConfig, ServeService

#: The hard gate: counters-mode tracing may cost at most this fraction
#: of untraced throughput (full runs; smoke runs are tiny and noisy, so
#: they gate at SMOKE_MAX_OVERHEAD instead).
MAX_OVERHEAD = 0.05
SMOKE_MAX_OVERHEAD = 0.25

TRIALS = 5
WORKLOADS = ("429.mcf", "462.libquantum", "continuous", "ragdoll")
SCALES = (0.05, 0.08)


class ServeUnderTest:
    """An in-process service on a background loop + a client."""

    def __init__(self, root: str, **kw):
        self.sock = os.path.join(root, "serve.sock")
        kw.setdefault("cache_dir", os.path.join(root, "cache"))
        kw.setdefault("use_cache", False)
        self.config = ServeConfig(socket_path=self.sock, **kw)
        self.service = ServeService(self.config)
        self._ready = threading.Event()
        self._thread = None

    def __enter__(self):
        async def _run():
            await self.service.start()
            self._ready.set()
            await self.service.serve_until_shutdown()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_run()), daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "service did not come up"
        return self

    def __exit__(self, *exc):
        try:
            with ServeClient(socket_path=self.sock) as client:
                client.shutdown()
        except Exception:
            pass
        self._thread.join(30)

    def client(self) -> ServeClient:
        return ServeClient(socket_path=self.sock)


def run_trial(tracing: str, jobs, workers: int) -> dict:
    """One fresh service, all jobs to completion; returns the stats."""
    root = tempfile.mkdtemp(prefix=f"bench_obs_{tracing}_")
    trace_dir = os.path.join(root, "traces")
    try:
        with ServeUnderTest(root, workers=workers, tracing=tracing,
                            trace_dir=trace_dir) as host:
            with host.client() as client:
                start = time.perf_counter()
                accepted = []
                for params in jobs:
                    reply = client.submit("workload_metrics", params)
                    assert reply["code"] == 202, reply
                    accepted.append(reply["job"])
                for job in accepted:
                    final = client.wait(job, timeout=600)
                    assert final["state"] == "done", final
                wall = time.perf_counter() - start
                health = client.healthz()
        span_files = (sorted(os.listdir(trace_dir))
                      if os.path.isdir(trace_dir) else [])
        return {
            "tracing": tracing,
            "jobs": len(jobs),
            "wall_s": round(wall, 3),
            "jobs_per_s": round(len(jobs) / wall, 3),
            "run_ms_p50": health["latency"]["run_ms"]["p50"],
            "span_files": span_files,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def compare(smoke: bool = False) -> dict:
    workloads = WORKLOADS[:2] if smoke else WORKLOADS
    scales = SCALES[:1] if smoke else SCALES
    trials = 2 if smoke else TRIALS
    workers = 2
    jobs = [{"workload": w, "scale": s}
            for w in workloads for s in scales]

    results = {"off": [], "counters": []}
    # Interleave the modes so drift (thermal, cache, background load)
    # hits both sides equally.
    for _ in range(trials):
        for mode in ("off", "counters"):
            results[mode].append(run_trial(mode, jobs, workers))

    def median_rate(rs):
        ordered = sorted(r["jobs_per_s"] for r in rs)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    off_rate = median_rate(results["off"])
    traced_rate = median_rate(results["counters"])
    overhead = max(0.0, (off_rate - traced_rate) / off_rate)
    return {
        "host": host_snapshot(),
        "jobs_per_trial": len(jobs),
        "trials": trials,
        "workers": workers,
        "trials_off": results["off"],
        "trials_counters": results["counters"],
        "median_off_jobs_per_s": round(off_rate, 3),
        "median_counters_jobs_per_s": round(traced_rate, 3),
        "tracing_overhead": round(overhead, 4),
        "max_overhead": SMOKE_MAX_OVERHEAD if smoke else MAX_OVERHEAD,
        "smoke": smoke,
    }


def check_gates(results: dict) -> None:
    bound = results["max_overhead"]
    assert results["tracing_overhead"] < bound, (
        f"counters-mode tracing costs "
        f"{results['tracing_overhead']:.1%} of serve throughput "
        f"(bound {bound:.0%})")
    for trial in results["trials_counters"]:
        roles = {name.split("-")[0] for name in trial["span_files"]}
        assert {"service", "worker"} <= roles, (
            f"a traced trial produced no spans ({trial['span_files']}) "
            f"— the overhead number is meaningless")
        assert trial["run_ms_p50"] > 0, "no latency samples recorded"
    for trial in results["trials_off"]:
        assert not trial["span_files"], (
            f"tracing=off still wrote span files: {trial['span_files']}")


def test_obs_overhead(benchmark):
    results = benchmark.pedantic(lambda: compare(smoke=True),
                                 rounds=1, iterations=1)
    print("\n=== serve tracing overhead (counters vs off) ===")
    print(f"off      : {results['median_off_jobs_per_s']:.3f} jobs/s")
    print(f"counters : {results['median_counters_jobs_per_s']:.3f} jobs/s")
    print(f"overhead : {results['tracing_overhead']:.1%} "
          f"(bound {results['max_overhead']:.0%})")
    check_gates(results)


def main(argv):
    smoke = "--smoke" in argv
    results = compare(smoke=smoke)
    print(json.dumps(results, indent=2))
    check_gates(results)
    if not smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
