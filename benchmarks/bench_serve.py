"""darco serve under load: throughput, latency, coalescing, chaos.

A load generator drives an in-process serve instance (real unix socket,
real supervised worker processes) with a zipf-distributed job mix — a
few hot jobs dominate, exactly the multi-tenant pattern the coalescing
tier exists for — and reports:

- accepted-jobs throughput (jobs/sec) and end-to-end latency p50/p99;
- the cache-coalescing rate: the fraction of submissions answered by
  riding an in-flight run or replaying the shared result cache instead
  of consuming a worker;
- a **chaos** section: workers are SIGKILLed mid-job on a timer while a
  batch of checkpointable jobs runs.  The acceptance bar is absolute —
  every accepted job still completes, and every result is bit-identical
  to a clean, uninterrupted run of the same job.

Run as a script to (re)generate ``BENCH_serve.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import shutil
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.harness.parallel import _execute
from repro.harness.retry import RetryPolicy
from repro.ioutil import canonical_json
from repro.hostinfo import host_snapshot
from repro.serve import ServeClient, ServeConfig, ServeService
from repro.serve.service import wire_value

#: Zipf exponent for the job mix (1.1: heavy head, long tail).
ZIPF_S = 1.1
SEED = 20170424  # ISPASS'17

LOAD_WORKLOADS = ("429.mcf", "462.libquantum", "continuous", "ragdoll",
                  "433.milc", "blend")
LOAD_SCALES = (0.05, 0.1)
LOAD_SUBMISSIONS = 48

CHAOS_WORKLOADS = ("429.mcf", "462.libquantum", "continuous")
CHAOS_SCALE = 0.3
CHAOS_KILL_PERIOD_S = 0.6


class ServeUnderTest:
    """An in-process service on a background loop + a client."""

    def __init__(self, root: str, **kw):
        self.sock = os.path.join(root, "serve.sock")
        kw.setdefault("cache_dir", os.path.join(root, "cache"))
        self.config = ServeConfig(socket_path=self.sock, **kw)
        self.service = ServeService(self.config)
        self._ready = threading.Event()
        self._thread = None

    def __enter__(self):
        async def _run():
            await self.service.start()
            self._ready.set()
            await self.service.serve_until_shutdown()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(_run()), daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "service did not come up"
        return self

    def __exit__(self, *exc):
        try:
            with ServeClient(socket_path=self.sock) as client:
                client.shutdown()
        except Exception:
            pass
        self._thread.join(30)

    def client(self) -> ServeClient:
        return ServeClient(socket_path=self.sock)


def _zipf_mix(jobs, n, seed=SEED):
    """``n`` draws from ``jobs`` with zipf(rank) weights."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(jobs))]
    return rng.choices(jobs, weights=weights, k=n)


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def run_load(workers=2, submissions=LOAD_SUBMISSIONS,
             workloads=LOAD_WORKLOADS, scales=LOAD_SCALES):
    """Drive the zipf mix through a fresh service; returns the stats."""
    distinct = [{"workload": w, "scale": s}
                for w in workloads for s in scales]
    mix = _zipf_mix(distinct, submissions)
    root = tempfile.mkdtemp(prefix="bench_serve_")
    try:
        with ServeUnderTest(root, workers=workers) as host:
            with host.client() as client:
                inflight = []  # (job_id, t_submit)
                latencies = []
                start = time.perf_counter()
                for params in mix:
                    reply = client.submit("workload_metrics", params)
                    assert reply["code"] in (200, 202, 203), reply
                    inflight.append((reply["job"], time.perf_counter()))
                pending = dict(inflight[::-1])  # job -> first submit t
                for job, t_submit in inflight:
                    pending.setdefault(job, t_submit)
                while pending:
                    for job in list(pending):
                        status = client.status(job)
                        if status.get("state") in ("done", "failed"):
                            assert status["state"] == "done", status
                            latencies.append(
                                time.perf_counter() - pending.pop(job))
                    time.sleep(0.02)
                wall = time.perf_counter() - start
                health = client.healthz()
                counters = health["counters"]
        submitted = counters["serve.submitted"]
        coalesced = (counters.get("serve.coalesced", 0)
                     + counters.get("serve.cache_hits", 0))
        return {
            "submissions": submissions,
            "distinct_jobs": len(distinct),
            "workers": workers,
            "wall_s": round(wall, 3),
            "jobs_per_s": round(submissions / wall, 2),
            "latency_p50_s": round(_percentile(latencies, 0.50), 4),
            "latency_p99_s": round(_percentile(latencies, 0.99), 4),
            "coalescing_rate": round(coalesced / submitted, 3),
            "counters": counters,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _chaos_killer(sock_path, stop, period_s, kills, max_kills):
    """SIGKILL whichever worker is busy, every ``period_s`` seconds.

    Kills are bounded so chaos stays distinguishable from denial of
    service: a job must be able to out-progress the killer via its
    checkpoints, not merely out-retry it."""
    with ServeClient(socket_path=sock_path) as client:
        while not stop.is_set() and len(kills) < max_kills:
            stop.wait(period_s)
            if stop.is_set():
                return
            try:
                busy = [w for w in client.healthz()["workers"]
                        if w["state"] == "busy" and w["pid"]]
            except Exception:
                return
            if busy:
                try:
                    os.kill(busy[0]["pid"], signal.SIGKILL)
                    kills.append(busy[0]["pid"])
                except ProcessLookupError:
                    pass


def run_chaos(workers=2, workloads=CHAOS_WORKLOADS, scale=CHAOS_SCALE,
              kill_period_s=CHAOS_KILL_PERIOD_S, max_kills=4):
    """Kill workers mid-job; every accepted job must still finish with
    a result bit-identical to a clean in-process run."""
    specs = [{"workload": w, "scale": scale} for w in workloads]
    clean = {w["workload"]: canonical_json(
        wire_value(_execute("arch_run", dict(w)))) for w in specs}

    root = tempfile.mkdtemp(prefix="bench_serve_chaos_")
    kills, stop = [], threading.Event()
    try:
        with ServeUnderTest(
                root, workers=workers, use_cache=False,
                checkpoint_dir=os.path.join(root, "ckpt"),
                retry=RetryPolicy(max_attempts=8, base_delay_s=0.02,
                                  max_delay_s=0.5, jitter=0.5)) as host:
            killer = threading.Thread(
                target=_chaos_killer,
                args=(host.sock, stop, kill_period_s, kills, max_kills),
                daemon=True)
            killer.start()
            with host.client() as client:
                accepted = {}
                for spec in specs:
                    reply = client.submit("arch_run", spec,
                                          max_attempts=8)
                    assert reply["code"] == 202, reply
                    accepted[reply["job"]] = spec["workload"]
                finals = {}
                for job, workload in accepted.items():
                    finals[workload] = client.wait(job, timeout=600)
                stop.set()
                killer.join(10)
                counters = client.healthz()["counters"]
        completed = {w: f["state"] == "done" for w, f in finals.items()}
        identical = {w: canonical_json(f.get("value")) == clean[w]
                     for w, f in finals.items()}
        attempts = {w: f["attempts"] for w, f in finals.items()}
        return {
            "jobs": len(specs),
            "scale": scale,
            "worker_kills": len(kills),
            "worker_deaths_seen": counters.get("serve.worker_deaths", 0),
            "worker_restarts": counters.get("serve.worker_restarts", 0),
            "attempts_per_job": attempts,
            "all_completed": all(completed.values()),
            "bit_identical_to_clean_run": all(identical.values()),
        }
    finally:
        stop.set()
        shutil.rmtree(root, ignore_errors=True)


def check_gates(results, smoke: bool = False) -> None:
    load, chaos = results["load"], results["chaos"]
    assert load["jobs_per_s"] > 0
    assert load["coalescing_rate"] > 0, (
        "zipf mix produced no coalescing/cache sharing")
    assert chaos["all_completed"], "an accepted job was lost to chaos"
    assert chaos["bit_identical_to_clean_run"], (
        "chaos changed a result: determinism contract broken")
    if not smoke:
        assert chaos["worker_kills"] > 0, "chaos mode never killed"


def compare(smoke: bool = False):
    if smoke:
        load = run_load(submissions=12,
                        workloads=LOAD_WORKLOADS[:3], scales=(0.05,))
        chaos = run_chaos(workloads=CHAOS_WORKLOADS[:2], scale=0.2,
                          kill_period_s=0.5, max_kills=2)
    else:
        load = run_load()
        chaos = run_chaos()
    return {
        "host": host_snapshot(),
        "zipf_s": ZIPF_S,
        "seed": SEED,
        "load": load,
        "chaos": chaos,
    }


def test_serve_load_and_chaos(benchmark):
    results = benchmark.pedantic(lambda: compare(smoke=True),
                                 rounds=1, iterations=1)
    print("\n=== darco serve: load + chaos ===")
    load, chaos = results["load"], results["chaos"]
    print(f"throughput : {load['jobs_per_s']:.2f} jobs/s "
          f"(p50 {load['latency_p50_s']:.3f}s, "
          f"p99 {load['latency_p99_s']:.3f}s)")
    print(f"coalescing : {load['coalescing_rate']:.1%}")
    print(f"chaos      : {chaos['worker_kills']} kills, "
          f"completed={chaos['all_completed']}, "
          f"bit-identical={chaos['bit_identical_to_clean_run']}")
    check_gates(results, smoke=True)


def main(argv):
    smoke = "--smoke" in argv
    results = compare(smoke=smoke)
    print(json.dumps(results, indent=2))
    check_gates(results, smoke=smoke)
    if not smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
