"""Shared fixtures for the reproduction benchmarks.

The full 31-workload functional sweep feeds Figures 4-7, so it runs once
per session.  ``REPRO_SCALE`` (default 1.0) scales workload dynamic sizes;
``REPRO_VALIDATE=1`` enables full state validation during the sweep.
"""

import os

import pytest

from repro.harness.figures import run_suite_metrics


def _env_float(name, default):
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def suite_scale():
    return _env_float("REPRO_SCALE", 1.0)


@pytest.fixture(scope="session")
def suite_metrics(suite_scale):
    validate = os.environ.get("REPRO_VALIDATE", "0") == "1"
    return run_suite_metrics(scale=suite_scale, validate=validate)
