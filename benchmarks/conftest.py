"""Shared fixtures for the reproduction benchmarks.

The full 31-workload functional sweep feeds Figures 4-7, so it runs once
per session — through the parallel sweep runner, so it fans out over
worker processes and can replay from the persistent result cache:

- ``REPRO_SCALE``    (default 1.0)  scales workload dynamic sizes;
- ``REPRO_VALIDATE=1``              enables full state validation;
- ``REPRO_JOBS``     (default 0)    worker processes (0 = sequential
                                    in-process, the seed behaviour);
- ``REPRO_CACHE``    (default off)  result-cache directory; set to a
                                    path to make re-runs instant replays.
"""

import os

import pytest

from repro.harness.figures import run_suite_metrics


def _env_float(name, default):
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def suite_scale():
    return _env_float("REPRO_SCALE", 1.0)


@pytest.fixture(scope="session")
def suite_metrics(suite_scale):
    validate = os.environ.get("REPRO_VALIDATE", "0") == "1"
    jobs = int(os.environ.get("REPRO_JOBS", "0") or 0) or None
    cache_dir = os.environ.get("REPRO_CACHE") or None
    return run_suite_metrics(scale=suite_scale, validate=validate,
                             jobs=jobs, use_cache=cache_dir is not None,
                             cache_dir=cache_dir)
