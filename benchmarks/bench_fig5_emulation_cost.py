"""Figure 5: host instructions per guest instruction in SBM.

Paper result: ~4 / 2.6 / 3.1 for SPECINT2006 / SPECFP2006 / Physicsbench.
SPECINT pays for branch emulation in small basic blocks; Physicsbench pays
for software-emulated trigonometry.
"""

from repro.harness.figures import (
    PAPER_EMULATION_COST, fig5_table, run_workload_metrics, suite_average,
)
from repro.workloads import PHYSICS, SPECFP, SPECINT, get_workload


def test_fig5_emulation_cost(benchmark, suite_metrics, suite_scale):
    benchmark.pedantic(
        run_workload_metrics, args=(get_workload("470.lbm"),),
        kwargs={"scale": min(0.2, suite_scale), "validate": False},
        rounds=1, iterations=1)

    print("\n=== Figure 5: emulation cost (host insns / guest insn, "
          "SBM) ===")
    print(fig5_table(suite_metrics))

    cost = {s: suite_average(suite_metrics, s,
                             lambda m: m.emulation_cost_sbm)
            for s in (SPECINT, SPECFP, PHYSICS)}
    # Shape: SPECINT most expensive, SPECFP cheapest, Physicsbench between.
    assert cost[SPECINT] > cost[PHYSICS] > cost[SPECFP]
    # Magnitudes within a factor of ~1.5 of the paper.
    for suite, value in cost.items():
        paper = PAPER_EMULATION_COST[suite]
        assert 0.5 < value / paper < 1.6, (
            f"{suite}: emulation cost {value:.2f} vs paper {paper}")
    # Trig-heavy physics kernels exceed the pure-FP SPECFP stencils.
    povray = next(m for m in suite_metrics if m.name == "453.povray")
    lbm = next(m for m in suite_metrics if m.name == "470.lbm")
    assert povray.emulation_cost_sbm > lbm.emulation_cost_sbm
