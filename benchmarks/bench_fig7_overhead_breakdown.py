"""Figure 7: dynamic TOL overhead distribution over seven categories
(interpreter, BB translator, SB translator, prologue, chaining, code-cache
lookup, others).

Paper result: in Physicsbench, interpretation + BB-translation overhead
dominate (low reuse means translation work is never amortized); for
SPECFP2006 those components are comparatively small, and SB-translator
overhead is relatively small everywhere.
"""

from repro.harness.figures import (
    fig7_table, run_workload_metrics, suite_average,
)
from repro.workloads import PHYSICS, SPECFP, SPECINT, get_workload


def _suite_avg_breakdown(metrics, suite):
    rows = [m for m in metrics if m.suite == suite]
    keys = rows[0].overhead_breakdown.keys()
    return {k: sum(m.overhead_breakdown[k] for m in rows) / len(rows)
            for k in keys}


def test_fig7_overhead_breakdown(benchmark, suite_metrics, suite_scale):
    benchmark.pedantic(
        run_workload_metrics, args=(get_workload("continuous"),),
        kwargs={"scale": min(0.5, suite_scale), "validate": False},
        rounds=1, iterations=1)

    print("\n=== Figure 7: TOL overhead breakdown by category ===")
    print(fig7_table(suite_metrics))

    phys = _suite_avg_breakdown(suite_metrics, PHYSICS)
    fp = _suite_avg_breakdown(suite_metrics, SPECFP)
    intb = _suite_avg_breakdown(suite_metrics, SPECINT)

    # Physicsbench: interpreter + BB translator dominate the overhead.
    front = phys["interpreter"] + phys["bb_translator"]
    assert front > 0.5, f"physics front-end overhead only {front:.2%}"

    # The substantive claim behind the figure: as a share of the whole
    # dynamic host stream, Physicsbench's interpretation + BB-translation
    # work dwarfs SPEC's (it is never amortized).
    def front_of_stream(suite, breakdown):
        ovh = suite_average(suite_metrics, suite,
                            lambda m: m.tol_overhead_fraction)
        return ovh * (breakdown["interpreter"]
                      + breakdown["bb_translator"])

    phys_stream = front_of_stream(PHYSICS, phys)
    assert phys_stream > 3 * front_of_stream(SPECFP, fp)
    assert phys_stream > 1.8 * front_of_stream(SPECINT, intb)
    # SB translator overhead is comparatively small everywhere (the most
    # aggressive optimizer runs only on the hottest, amortized code).
    for suite_breakdown in (phys, fp, intb):
        assert suite_breakdown["sb_translator"] < 0.45
    # Every category is exercised somewhere.
    total = {}
    for m in suite_metrics:
        for key, value in m.overhead_breakdown.items():
            total[key] = total.get(key, 0) + value
    for key, value in total.items():
        assert value > 0, f"category {key} never charged"
