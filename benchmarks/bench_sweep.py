"""Sweep-runner speed: cold-sequential vs cold-parallel vs warm-cached.

The paper fanned DARCO's evaluation out on a cluster because each run is
independent (§VI); :mod:`repro.harness.parallel` brings the same two
levers to the reproduction — process fan-out and a persistent
content-addressed result cache.  This benchmark measures a fixed
workload subset three ways and gates the contract:

- parallel cold run beats the sequential cold run (> 1.8x with 4+ cores;
  on smaller hosts the ratio is recorded but not gated);
- a warm-cache replay beats the cold-sequential run by at least 10x.

Run as a script to (re)generate ``BENCH_sweep.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_sweep.py [--smoke]
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.harness.parallel import ResultCache, suite_sweep_jobs, sweep
from repro.hostinfo import host_snapshot

WORKLOADS = ("429.mcf", "462.libquantum", "continuous", "ragdoll")
SCALE = 0.3
JOBS = 4

#: Acceptance gates (enforced at full scale).
PARALLEL_SPEEDUP_FLOOR = 1.8
WARM_SPEEDUP_FLOOR = 10.0


def _timed_sweep(n_jobs, cache, scale):
    jobs = suite_sweep_jobs(scale=scale, workloads=list(WORKLOADS),
                            validate=False)
    start = time.perf_counter()
    results = sweep(jobs, n_jobs=n_jobs, use_cache=cache is not None,
                    cache=cache)
    wall = time.perf_counter() - start
    assert all(r.ok for r in results), [r.error for r in results
                                        if not r.ok]
    return wall, [r.value for r in results]


def compare(scale: float = SCALE):
    cache_dir = tempfile.mkdtemp(prefix="repro_bench_cache_")
    try:
        cache = ResultCache(cache_dir)
        cold_seq, metrics_seq = _timed_sweep(1, None, scale)
        cold_par, metrics_par = _timed_sweep(JOBS, cache, scale)
        warm, metrics_warm = _timed_sweep(1, cache, scale)
        assert metrics_seq == metrics_par == metrics_warm, \
            "fan-out/cache changed results"
        assert cache.hits == len(WORKLOADS), "warm pass missed the cache"
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "workloads": list(WORKLOADS),
        "scale": scale,
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "host": host_snapshot(),
        "cold_sequential_s": round(cold_seq, 3),
        "cold_parallel_s": round(cold_par, 3),
        "warm_cached_s": round(warm, 3),
        "parallel_speedup": round(cold_seq / cold_par, 2),
        "warm_speedup": round(cold_seq / warm, 1),
        "parallel_gate": (f"> {PARALLEL_SPEEDUP_FLOOR}x with >= 4 cores "
                          f"(host has {os.cpu_count()})"),
        "warm_gate": f">= {WARM_SPEEDUP_FLOOR}x vs cold sequential",
    }


def check_gates(results, smoke: bool = False) -> None:
    if smoke:
        return
    assert results["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm-cache replay only {results['warm_speedup']}x faster "
        f"than cold sequential (floor {WARM_SPEEDUP_FLOOR}x)")
    if (os.cpu_count() or 1) >= 4:
        assert results["parallel_speedup"] > PARALLEL_SPEEDUP_FLOOR, (
            f"cold parallel only {results['parallel_speedup']}x faster "
            f"than cold sequential (floor {PARALLEL_SPEEDUP_FLOOR}x)")


def test_sweep_speedups(benchmark):
    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\n=== sweep runner: fan-out and cache ===")
    print(f"cold sequential: {results['cold_sequential_s']:.2f}s")
    print(f"cold parallel  : {results['cold_parallel_s']:.2f}s "
          f"({results['parallel_speedup']:.2f}x, jobs={JOBS})")
    print(f"warm cached    : {results['warm_cached_s']:.2f}s "
          f"({results['warm_speedup']:.1f}x)")
    check_gates(results)


def main(argv):
    smoke = "--smoke" in argv
    results = compare(scale=0.05 if smoke else SCALE)
    print(json.dumps(results, indent=2))
    check_gates(results, smoke=smoke)
    if not smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
