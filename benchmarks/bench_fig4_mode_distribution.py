"""Figure 4: dynamic guest instruction distribution in IM / BBM / SBM.

Paper result: 88% / 96% / 75% of the dynamic stream executes in SBM for
SPECINT2006 / SPECFP2006 / Physicsbench, and the low dynamic-to-static
benchmarks (continuous, periodic, ragdoll) show large BBM shares.
"""

from repro.harness.figures import (
    PAPER_SBM_SHARE, fig4_table, suite_average,
)
from repro.workloads import PHYSICS, SPECFP, SPECINT, get_workload
from repro.harness.figures import run_workload_metrics


def test_fig4_mode_distribution(benchmark, suite_metrics, suite_scale):
    # Benchmark the underlying measurement on one representative kernel.
    benchmark.pedantic(
        run_workload_metrics, args=(get_workload("458.sjeng"),),
        kwargs={"scale": min(0.2, suite_scale), "validate": False},
        rounds=1, iterations=1)

    print("\n=== Figure 4: dynamic guest instruction distribution ===")
    print(fig4_table(suite_metrics))

    sbm = {s: suite_average(suite_metrics, s,
                            lambda m: m.mode_fraction.get("SBM", 0))
           for s in (SPECINT, SPECFP, PHYSICS)}
    # Shape: ordering matches the paper and absolute levels are close.
    assert sbm[SPECFP] > sbm[SPECINT] > sbm[PHYSICS]
    for suite, value in sbm.items():
        assert abs(value - PAPER_SBM_SHARE[suite]) < 0.15, (
            f"{suite}: SBM share {value:.2f} far from paper "
            f"{PAPER_SBM_SHARE[suite]:.2f}")
    # The three low dyn/static Physicsbench benchmarks execute a
    # significant share in BBM (paper calls these out explicitly).
    for name in ("continuous", "periodic", "ragdoll"):
        m = next(m for m in suite_metrics if m.name == name)
        assert m.mode_fraction.get("BBM", 0) > 0.25, (
            f"{name} should be BBM-heavy: {m.mode_fraction}")
