"""Fuzzer throughput, coverage guidance, and sanitizer overhead.

Three campaigns at the same candidate budget gate the fuzzing
contract (§ DESIGN.md 12):

- **guided**: the full engine — seed corpus, coverage-fed corpus
  growth, mutation-energy scheduling, invariant sanitizer hot;
- **unguided**: the classic blackbox baseline — blind random mutation
  of a single seed, no coverage feedback (``guided=False,
  corpus_limit=1``);
- **sanitize-off**: the guided campaign with ``TolConfig.sanitize``
  disabled, to price the invariant checks.

Gated at full scale: guided coverage must reach **>= 1.5x** the edges
of unguided at equal budget — the feedback loop has to pay for itself.
Sanitizer overhead is recorded (throughput ratio), not gated: the
checks ride cold paths (translation, invalidation, rollback), so the
expected cost is small.

Run as a script to (re)generate ``BENCH_fuzz.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_fuzz.py [--smoke]
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.fuzz import FuzzConfig, run_campaign
from repro.hostinfo import host_snapshot

SEED = 1
BUDGET = 48
BATCH = 12
JOBS = 4

#: Acceptance gate (enforced at full scale).
GUIDED_EDGE_FLOOR = 1.5


def _campaign(budget, batch, jobs, *, guided=True, corpus_limit=None,
              sanitize=True):
    return run_campaign(FuzzConfig(
        seed=SEED, budget=budget, batch=batch, jobs=jobs,
        guided=guided, corpus_limit=corpus_limit, sanitize=sanitize,
        minimize=False, confirm=False))


def compare(budget: int = BUDGET, batch: int = BATCH, jobs: int = JOBS):
    guided = _campaign(budget, batch, jobs)
    unguided = _campaign(budget, batch, jobs, guided=False,
                         corpus_limit=1)
    unchecked = _campaign(budget, batch, jobs, sanitize=False)

    for result in (guided, unguided, unchecked):
        assert result.executions == budget, "campaign under-ran budget"
        assert not result.findings, \
            [f.signature for f in result.findings]

    edge_ratio = (len(guided.coverage) / len(unguided.coverage)
                  if unguided.coverage else float("inf"))
    overhead = (guided.elapsed_s / unchecked.elapsed_s - 1.0
                if unchecked.elapsed_s else 0.0)
    return {
        "seed": SEED,
        "budget": budget,
        "batch": batch,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "host": host_snapshot(),
        "guided_edges": len(guided.coverage),
        "unguided_edges": len(unguided.coverage),
        "guided_edge_ratio": round(edge_ratio, 2),
        "guided_execs_per_sec": round(guided.execs_per_sec, 3),
        "unguided_execs_per_sec": round(unguided.execs_per_sec, 3),
        "guided_corpus_size": guided.corpus_size,
        "guided_classified": guided.classified,
        "unguided_classified": unguided.classified,
        "sanitize_on_s": round(guided.elapsed_s, 3),
        "sanitize_off_s": round(unchecked.elapsed_s, 3),
        "sanitizer_overhead_pct": round(100 * overhead, 1),
        "coverage_digest": guided.coverage_digest,
        "edge_gate": (f">= {GUIDED_EDGE_FLOOR}x unguided edges "
                      f"at equal budget"),
    }


def check_gates(results, smoke: bool = False) -> None:
    assert results["guided_edges"] > 0, "coverage map is empty"
    if smoke:
        return
    assert results["guided_edge_ratio"] >= GUIDED_EDGE_FLOOR, (
        f"guided campaign reached only "
        f"{results['guided_edge_ratio']}x the unguided edges "
        f"(floor {GUIDED_EDGE_FLOOR}x)")


def test_fuzz_guidance(benchmark):
    results = benchmark.pedantic(
        lambda: compare(budget=16, batch=8, jobs=2),
        rounds=1, iterations=1)
    print("\n=== fuzzer: coverage guidance and sanitizer cost ===")
    print(f"guided  : {results['guided_edges']} edges "
          f"({results['guided_execs_per_sec']:.2f} execs/s)")
    print(f"unguided: {results['unguided_edges']} edges "
          f"({results['guided_edge_ratio']:.2f}x)")
    print(f"sanitizer overhead: {results['sanitizer_overhead_pct']}%")
    check_gates(results, smoke=True)  # ratio gated at full scale only


def main(argv):
    smoke = "--smoke" in argv
    if smoke:
        results = compare(budget=12, batch=6, jobs=2)
    else:
        results = compare()
    print(json.dumps(results, indent=2))
    check_gates(results, smoke=smoke)
    if not smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_fuzz.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
