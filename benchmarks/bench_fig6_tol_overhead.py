"""Figure 6: TOL overhead vs application instructions in the dynamic host
stream.

Paper result: 16% / 13% / 41% TOL overhead for SPECINT2006 / SPECFP2006 /
Physicsbench — the high dynamic-to-static ratio of SPEC amortizes the
overhead; Physicsbench's does not.
"""

from repro.harness.figures import (
    PAPER_TOL_OVERHEAD, fig6_table, run_workload_metrics, suite_average,
)
from repro.workloads import PHYSICS, SPECFP, SPECINT, get_workload


def test_fig6_tol_overhead(benchmark, suite_metrics, suite_scale):
    benchmark.pedantic(
        run_workload_metrics, args=(get_workload("ragdoll"),),
        kwargs={"scale": min(0.4, suite_scale), "validate": False},
        rounds=1, iterations=1)

    print("\n=== Figure 6: TOL overhead share of the host dynamic "
          "stream ===")
    print(fig6_table(suite_metrics))

    ovh = {s: suite_average(suite_metrics, s,
                            lambda m: m.tol_overhead_fraction)
           for s in (SPECINT, SPECFP, PHYSICS)}
    # Shape: Physicsbench overhead dominates by a wide margin.
    assert ovh[PHYSICS] > 2 * ovh[SPECINT]
    assert ovh[PHYSICS] > 2 * ovh[SPECFP]
    assert ovh[SPECFP] < ovh[SPECINT]
    # Magnitudes in the paper's neighbourhood.
    for suite, value in ovh.items():
        paper = PAPER_TOL_OVERHEAD[suite]
        assert abs(value - paper) < 0.10, (
            f"{suite}: overhead {value:.2%} vs paper {paper:.0%}")
