"""Interpreter fast-path speed: closure-compiled vs op-list interpretation.

The IM interpreter's fast path (:mod:`repro.tol.ir_eval.compile_ops`)
replaces per-instruction op-list walking with one cached specialized
closure per decode address.  This benchmark measures both modes on the
same workload with a standalone interpreter (syscalls executed locally, so
only interpretation speed is timed) and asserts the fast path clears a 2x
KIPS bar.

It also enforces the telemetry layer's overhead budget: a full-system
run with ``telemetry="counters"`` must stay within 5% of the KIPS of an
identical run with ``telemetry="off"`` (the guarantee that makes
``counters`` the safe default).  The comparison interleaves the two
modes and takes the best of five rounds per mode, so scheduler noise
does not fail the bar spuriously.

Run as a script to (re)generate ``BENCH_fastpath.json`` at the repo root
(``--telemetry`` adds the overhead entry to the file):

    PYTHONPATH=src python benchmarks/bench_fastpath.py [--smoke]
    PYTHONPATH=src python benchmarks/bench_fastpath.py --telemetry
    PYTHONPATH=src python benchmarks/bench_fastpath.py --telemetry-smoke
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.guest.syscalls import GuestOS
from repro.tol.decoder import GisaFrontend
from repro.tol.interp import END, SYSCALL, Interpreter
from repro.workloads import get_workload

WORKLOAD = "429.mcf"
SCALE = 0.4
STEPS = 120_000


def measure_interp_kips(fastpath: bool, steps: int = STEPS,
                        workload_name: str = WORKLOAD,
                        scale: float = SCALE):
    """KIPS of a standalone interpreter run over ``steps`` guest
    instructions; returns ``(kips, icount)``."""
    program = get_workload(workload_name).program(scale=scale)
    memory = PagedMemory()
    program.load_into(memory)
    state = GuestState()
    state.eip = program.entry
    state.set("ESP", program.stack_top)
    interp = Interpreter(GisaFrontend(), state, memory, fastpath=fastpath)
    os = GuestOS()

    t0 = time.perf_counter()
    while interp.icount < steps:
        result = interp.step()
        if result.status == SYSCALL:
            os.execute(state, memory)
            interp.advance_past_syscall()
            if os.exited:
                break
        elif result.status == END:
            break
    dt = time.perf_counter() - t0
    return interp.icount / dt / 1e3, interp.icount


def compare(steps: int = STEPS):
    slow_kips, slow_icount = measure_interp_kips(False, steps=steps)
    fast_kips, fast_icount = measure_interp_kips(True, steps=steps)
    assert slow_icount == fast_icount, "modes executed different work"
    return {
        "workload": WORKLOAD,
        "scale": SCALE,
        "guest_insns": fast_icount,
        "interpreted_kips": round(slow_kips, 1),
        "compiled_kips": round(fast_kips, 1),
        "speedup": round(fast_kips / slow_kips, 2),
    }


#: The telemetry guarantee: ``counters`` mode costs <5% KIPS vs ``off``.
TELEMETRY_OVERHEAD_BAR = 0.05
TELEMETRY_ROUNDS = 5


def measure_system_kips(telemetry_mode: str,
                        workload_name: str = WORKLOAD,
                        scale: float = SCALE):
    """KIPS of a full-controller run (both components, sync protocol,
    validation off so dispatch dominates) under the given telemetry
    mode; returns ``(kips, icount)``."""
    from repro.system.controller import run_codesigned
    from repro.tol.config import TolConfig
    program = get_workload(workload_name).program(scale=scale)
    config = TolConfig(telemetry=telemetry_mode)
    t0 = time.perf_counter()
    result, _ = run_codesigned(program, config=config, validate=False)
    dt = time.perf_counter() - t0
    return result.guest_icount / dt / 1e3, result.guest_icount


def compare_telemetry(scale: float = SCALE,
                      rounds: int = TELEMETRY_ROUNDS):
    """Best-of-``rounds`` KIPS for ``off`` vs ``counters``; the
    ``pass`` flag enforces the <5% bar."""
    off = 0.0
    counters = 0.0
    icount = None
    for _ in range(rounds):
        kips, n = measure_system_kips("off", scale=scale)
        off = max(off, kips)
        kips, n2 = measure_system_kips("counters", scale=scale)
        counters = max(counters, kips)
        assert n == n2, "telemetry modes executed different work"
        icount = n
    overhead = max(0.0, 1.0 - counters / off)
    return {
        "workload": WORKLOAD,
        "scale": scale,
        "guest_insns": icount,
        "kips_off": round(off, 1),
        "kips_counters": round(counters, 1),
        "overhead_fraction": round(overhead, 4),
        "bar": TELEMETRY_OVERHEAD_BAR,
        "pass": overhead < TELEMETRY_OVERHEAD_BAR,
    }


def test_fastpath_speedup(benchmark):
    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\n=== interpreter fast path ===")
    print(f"op-list interpretation: {results['interpreted_kips']:.1f} KIPS")
    print(f"closure-compiled:       {results['compiled_kips']:.1f} KIPS")
    print(f"speedup:                {results['speedup']:.2f}x")
    assert results["speedup"] >= 2.0


def test_telemetry_counters_overhead(benchmark):
    results = benchmark.pedantic(
        lambda: compare_telemetry(scale=0.2), rounds=1, iterations=1)
    print("\n=== telemetry counters-mode overhead ===")
    print(f"off:      {results['kips_off']:.1f} KIPS")
    print(f"counters: {results['kips_counters']:.1f} KIPS")
    print(f"overhead: {results['overhead_fraction']:.2%} "
          f"(bar {results['bar']:.0%})")
    assert results["pass"], (
        f"counters-mode telemetry costs "
        f"{results['overhead_fraction']:.2%} KIPS "
        f"(budget {results['bar']:.0%})")


def main(argv):
    if "--telemetry-smoke" in argv:
        results = compare_telemetry(scale=0.1, rounds=2)
        print(json.dumps(results, indent=2))
        return 0 if results["pass"] else 1
    steps = 5_000 if "--smoke" in argv else STEPS
    results = compare(steps=steps)
    if "--telemetry" in argv:
        results["telemetry"] = compare_telemetry()
    print(json.dumps(results, indent=2))
    if "--smoke" not in argv:
        out = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out}")
    if "--telemetry" in argv and not results["telemetry"]["pass"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
