"""Interpreter fast-path speed: closure-compiled vs op-list interpretation.

The IM interpreter's fast path (:mod:`repro.tol.ir_eval.compile_ops`)
replaces per-instruction op-list walking with one cached specialized
closure per decode address.  This benchmark measures both modes on the
same workload with a standalone interpreter (syscalls executed locally, so
only interpretation speed is timed) and asserts the fast path clears a 2x
KIPS bar.

Run as a script to (re)generate ``BENCH_fastpath.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_fastpath.py [--smoke]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.guest.syscalls import GuestOS
from repro.tol.decoder import GisaFrontend
from repro.tol.interp import END, SYSCALL, Interpreter
from repro.workloads import get_workload

WORKLOAD = "429.mcf"
SCALE = 0.4
STEPS = 120_000


def measure_interp_kips(fastpath: bool, steps: int = STEPS,
                        workload_name: str = WORKLOAD,
                        scale: float = SCALE):
    """KIPS of a standalone interpreter run over ``steps`` guest
    instructions; returns ``(kips, icount)``."""
    program = get_workload(workload_name).program(scale=scale)
    memory = PagedMemory()
    program.load_into(memory)
    state = GuestState()
    state.eip = program.entry
    state.set("ESP", program.stack_top)
    interp = Interpreter(GisaFrontend(), state, memory, fastpath=fastpath)
    os = GuestOS()

    t0 = time.perf_counter()
    while interp.icount < steps:
        result = interp.step()
        if result.status == SYSCALL:
            os.execute(state, memory)
            interp.advance_past_syscall()
            if os.exited:
                break
        elif result.status == END:
            break
    dt = time.perf_counter() - t0
    return interp.icount / dt / 1e3, interp.icount


def compare(steps: int = STEPS):
    slow_kips, slow_icount = measure_interp_kips(False, steps=steps)
    fast_kips, fast_icount = measure_interp_kips(True, steps=steps)
    assert slow_icount == fast_icount, "modes executed different work"
    return {
        "workload": WORKLOAD,
        "scale": SCALE,
        "guest_insns": fast_icount,
        "interpreted_kips": round(slow_kips, 1),
        "compiled_kips": round(fast_kips, 1),
        "speedup": round(fast_kips / slow_kips, 2),
    }


def test_fastpath_speedup(benchmark):
    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\n=== interpreter fast path ===")
    print(f"op-list interpretation: {results['interpreted_kips']:.1f} KIPS")
    print(f"closure-compiled:       {results['compiled_kips']:.1f} KIPS")
    print(f"speedup:                {results['speedup']:.2f}x")
    assert results["speedup"] >= 2.0


def main(argv):
    steps = 5_000 if "--smoke" in argv else STEPS
    results = compare(steps=steps)
    print(json.dumps(results, indent=2))
    if "--smoke" not in argv:
        out = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
