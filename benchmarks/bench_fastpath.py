"""Interpreter fast-path speed: closure-compiled vs op-list interpretation.

The IM interpreter's fast path (:mod:`repro.tol.ir_eval.compile_ops`)
replaces per-instruction op-list walking with one cached specialized
closure per decode address.  This benchmark measures both modes on the
same workload with a standalone interpreter (syscalls executed locally, so
only interpretation speed is timed) and asserts the fast path clears a 2x
KIPS bar.

``--direct`` adds the IR-less direct tier (:mod:`repro.tol.direct`): a
full co-designed component (TOL + host emulator, syscalls executed
locally, no controller/validation) runs the same workload to the same
instruction count with ``direct_enable`` off and on.  Two numbers are
recorded:

- ``direct_kips``: end-to-end KIPS of the whole run with the tier on —
  this blends in interpretation, translation and optimization of cold
  code, so it understates the tier itself;
- ``direct_tier_kips``: KIPS measured *inside* direct-tier programs
  only (a perf-counter wrapper around each entry).  This is the
  methodological parallel of ``compiled_kips`` (which also times one
  execution engine in isolation), and is what the >=3x bar vs
  ``compiled_kips`` is asserted on.

It also enforces the telemetry layer's overhead budget: a full-system
run with ``telemetry="counters"`` must stay within 5% of the KIPS of an
identical run with ``telemetry="off"`` (the guarantee that makes
``counters`` the safe default).  The comparison interleaves the two
modes and takes the best of five rounds per mode, so scheduler noise
does not fail the bar spuriously.

Every entry in the emitted JSON records its own ``guest_insns``: the
interpreter and direct comparisons stop at a fixed instruction count,
while the telemetry comparison runs its workload to completion, so the
per-entry counts legitimately differ and are reported explicitly.

Run as a script to (re)generate ``BENCH_fastpath.json`` at the repo root
(``--telemetry`` / ``--direct`` add their entries to the file):

    PYTHONPATH=src python benchmarks/bench_fastpath.py [--smoke]
    PYTHONPATH=src python benchmarks/bench_fastpath.py --direct
    PYTHONPATH=src python benchmarks/bench_fastpath.py --direct --smoke
    PYTHONPATH=src python benchmarks/bench_fastpath.py --telemetry
    PYTHONPATH=src python benchmarks/bench_fastpath.py --telemetry-smoke
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.guest.syscalls import GuestOS
from repro.tol.decoder import GisaFrontend
from repro.tol.interp import END, SYSCALL, Interpreter
from repro.workloads import get_workload

WORKLOAD = "429.mcf"
SCALE = 0.4
STEPS = 120_000


def measure_interp_kips(fastpath: bool, steps: int = STEPS,
                        workload_name: str = WORKLOAD,
                        scale: float = SCALE):
    """KIPS of a standalone interpreter run over ``steps`` guest
    instructions; returns ``(kips, icount)``."""
    program = get_workload(workload_name).program(scale=scale)
    memory = PagedMemory()
    program.load_into(memory)
    state = GuestState()
    state.eip = program.entry
    state.set("ESP", program.stack_top)
    interp = Interpreter(GisaFrontend(), state, memory, fastpath=fastpath)
    os = GuestOS()

    t0 = time.perf_counter()
    while interp.icount < steps:
        result = interp.step()
        if result.status == SYSCALL:
            os.execute(state, memory)
            interp.advance_past_syscall()
            if os.exited:
                break
        elif result.status == END:
            break
    dt = time.perf_counter() - t0
    return interp.icount / dt / 1e3, interp.icount


def compare(steps: int = STEPS):
    slow_kips, slow_icount = measure_interp_kips(False, steps=steps)
    fast_kips, fast_icount = measure_interp_kips(True, steps=steps)
    assert slow_icount == fast_icount, "modes executed different work"
    return {
        "guest_insns": fast_icount,
        "interpreted_kips": round(slow_kips, 1),
        "compiled_kips": round(fast_kips, 1),
        "speedup": round(fast_kips / slow_kips, 2),
    }


# -- direct (IR-less) tier ------------------------------------------------------

#: The direct-tier guarantee: >=3x KIPS over the compiled interpreter
#: fast path, measured inside the tier (``direct_tier_kips``).
DIRECT_SPEEDUP_BAR = 3.0
DIRECT_ROUNDS = 3


def measure_tol_kips(direct: bool, steps: int = STEPS,
                     workload_name: str = WORKLOAD,
                     scale: float = SCALE,
                     promote_threshold: int | None = None):
    """KIPS of a raw co-designed component run (TOL + host emulator,
    syscalls executed locally, no controller/validation) to ``steps``
    guest instructions.

    Returns ``(end_to_end_kips, tier_kips, icount, promotions)`` where
    ``tier_kips`` isolates wall-clock spent inside direct-tier programs
    (``None`` when the tier is off or never entered): the promote hook
    is wrapped so every installed program accumulates its own
    perf-counter time and guest-retired delta.  Direct-tier entries are
    rare (cluster programs run whole phases per call), so the wrapper
    itself costs nothing measurable.
    """
    from repro.tol.config import TolConfig
    from repro.tol.tol import (
        EVENT_DATA_REQUEST, EVENT_END, EVENT_PAUSE, EVENT_SYSCALL, Tol,
    )

    program = get_workload(workload_name).program(scale=scale)
    memory = PagedMemory()
    program.load_into(memory)
    state = GuestState()
    state.eip = program.entry
    state.set("ESP", program.stack_top)
    kwargs = {}
    if promote_threshold is not None:
        kwargs["direct_promote_threshold"] = promote_threshold
    config = TolConfig(telemetry="off", direct_enable=direct, **kwargs)
    tol = Tol(state, memory, config=config)
    os = GuestOS()
    acc = [0.0, 0]                       # [tier seconds, tier guest insns]

    if direct:
        perf = time.perf_counter
        hook = tol.host.direct_promote_hook

        def wrapping_hook(unit):
            hook(unit)
            prog = unit.__dict__.get("_directprog")
            if prog is None:
                return

            def wrapped(emu, executed, fuel, _prog=prog):
                g0 = emu.guest_retired_total
                t0 = perf()
                r = _prog(emu, executed, fuel)
                acc[0] += perf() - t0
                acc[1] += emu.guest_retired_total - g0
                return r

            unit._directprog = wrapped

        tol.host.direct_promote_hook = wrapping_hook

    tol.pause_at_icount = steps
    t0 = time.perf_counter()
    while True:
        event = tol.run()
        if event.kind == EVENT_SYSCALL:
            os.execute(state, memory)
            tol.complete_syscall()
            if os.exited:
                break
        elif event.kind == EVENT_DATA_REQUEST:
            memory.install_page(event.fault_addr & ~0xFFF, bytes(4096))
        elif event.kind in (EVENT_END, EVENT_PAUSE):
            break
    dt = time.perf_counter() - t0
    end_to_end = tol.guest_icount / dt / 1e3
    tier = acc[1] / acc[0] / 1e3 if acc[0] > 0 else None
    return end_to_end, tier, tol.guest_icount, tol.stats.direct_promotions


def compare_direct(compiled_kips: float, steps: int = STEPS,
                   rounds: int = DIRECT_ROUNDS, scale: float = SCALE,
                   promote_threshold: int | None = None):
    """Best-of-``rounds`` co-designed-component KIPS with the direct
    tier off vs on, plus the tier-isolated number the >=3x bar (vs the
    ``compiled_kips`` argument) is asserted on."""
    base = 0.0
    on = 0.0
    tier = 0.0
    icount = None
    promotions = 0
    for _ in range(rounds):
        kips, _, n, _ = measure_tol_kips(
            False, steps=steps, scale=scale,
            promote_threshold=promote_threshold)
        base = max(base, kips)
        kips, tier_kips, n2, promoted = measure_tol_kips(
            True, steps=steps, scale=scale,
            promote_threshold=promote_threshold)
        on = max(on, kips)
        if tier_kips is not None:
            tier = max(tier, tier_kips)
        promotions = max(promotions, promoted)
        assert n == n2, "direct on/off executed different work"
        icount = n
    speedup = tier / compiled_kips if compiled_kips else 0.0
    return {
        "guest_insns": icount,
        "direct_promotions": promotions,
        "tol_kips": round(base, 1),
        "direct_kips": round(on, 1),
        "direct_tier_kips": round(tier, 1),
        "speedup_vs_tol": round(on / base, 2) if base else 0.0,
        "compiled_kips_basis": compiled_kips,
        "speedup_vs_compiled": round(speedup, 2),
        "bar": DIRECT_SPEEDUP_BAR,
        "pass": speedup >= DIRECT_SPEEDUP_BAR,
    }


#: The telemetry guarantee: ``counters`` mode costs <5% KIPS vs ``off``.
TELEMETRY_OVERHEAD_BAR = 0.05
TELEMETRY_ROUNDS = 5


def measure_system_kips(telemetry_mode: str,
                        workload_name: str = WORKLOAD,
                        scale: float = SCALE):
    """KIPS of a full-controller run (both components, sync protocol,
    validation off so dispatch dominates) under the given telemetry
    mode; returns ``(kips, icount)``."""
    from repro.system.controller import run_codesigned
    from repro.tol.config import TolConfig
    program = get_workload(workload_name).program(scale=scale)
    config = TolConfig(telemetry=telemetry_mode)
    t0 = time.perf_counter()
    result, _ = run_codesigned(program, config=config, validate=False)
    dt = time.perf_counter() - t0
    return result.guest_icount / dt / 1e3, result.guest_icount


def compare_telemetry(scale: float = SCALE,
                      rounds: int = TELEMETRY_ROUNDS):
    """Best-of-``rounds`` KIPS for ``off`` vs ``counters``; the
    ``pass`` flag enforces the <5% bar.  Runs the workload to
    completion (no instruction-count cutoff), so ``guest_insns`` here
    is the full dynamic count, not the ``steps`` cutoff the other
    entries use."""
    off = 0.0
    counters = 0.0
    icount = None
    for _ in range(rounds):
        kips, n = measure_system_kips("off", scale=scale)
        off = max(off, kips)
        kips, n2 = measure_system_kips("counters", scale=scale)
        counters = max(counters, kips)
        assert n == n2, "telemetry modes executed different work"
        icount = n
    overhead = max(0.0, 1.0 - counters / off)
    return {
        "scale": scale,
        "guest_insns": icount,
        "kips_off": round(off, 1),
        "kips_counters": round(counters, 1),
        "overhead_fraction": round(overhead, 4),
        "bar": TELEMETRY_OVERHEAD_BAR,
        "pass": overhead < TELEMETRY_OVERHEAD_BAR,
    }


def test_fastpath_speedup(benchmark):
    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\n=== interpreter fast path ===")
    print(f"op-list interpretation: {results['interpreted_kips']:.1f} KIPS")
    print(f"closure-compiled:       {results['compiled_kips']:.1f} KIPS")
    print(f"speedup:                {results['speedup']:.2f}x")
    assert results["speedup"] >= 2.0


def test_direct_speedup(benchmark):
    interp = compare()
    results = benchmark.pedantic(
        lambda: compare_direct(interp["compiled_kips"]),
        rounds=1, iterations=1)
    print("\n=== direct (IR-less) tier ===")
    print(f"tol (direct off):  {results['tol_kips']:.1f} KIPS")
    print(f"tol (direct on):   {results['direct_kips']:.1f} KIPS")
    print(f"inside the tier:   {results['direct_tier_kips']:.1f} KIPS")
    print(f"vs compiled_kips:  {results['speedup_vs_compiled']:.2f}x")
    assert results["pass"], (
        f"direct tier at {results['speedup_vs_compiled']:.2f}x "
        f"compiled_kips (bar {results['bar']:.1f}x)")


def test_telemetry_counters_overhead(benchmark):
    results = benchmark.pedantic(
        lambda: compare_telemetry(scale=0.2), rounds=1, iterations=1)
    print("\n=== telemetry counters-mode overhead ===")
    print(f"off:      {results['kips_off']:.1f} KIPS")
    print(f"counters: {results['kips_counters']:.1f} KIPS")
    print(f"overhead: {results['overhead_fraction']:.2%} "
          f"(bar {results['bar']:.0%})")
    assert results["pass"], (
        f"counters-mode telemetry costs "
        f"{results['overhead_fraction']:.2%} KIPS "
        f"(budget {results['bar']:.0%})")


def main(argv):
    if "--telemetry-smoke" in argv:
        results = compare_telemetry(scale=0.1, rounds=2)
        print(json.dumps(results, indent=2))
        return 0 if results["pass"] else 1
    smoke = "--smoke" in argv
    if "--direct" in argv and smoke:
        # CI smoke: a short run with a low promotion threshold must
        # actually promote into the tier and agree on work done; the 3x
        # bar is only asserted on the full-length run (short runs are
        # dominated by warm-up and scheduler noise).
        interp = compare(steps=20_000)
        results = compare_direct(interp["compiled_kips"], steps=20_000,
                                 rounds=1, promote_threshold=50)
        print(json.dumps(results, indent=2))
        return 0 if results["direct_promotions"] > 0 else 1
    steps = 5_000 if smoke else STEPS
    interp = compare(steps=steps)
    from repro.hostinfo import host_snapshot
    results = {
        "workload": WORKLOAD,
        "scale": SCALE,
        "host": host_snapshot(),
        "interp": interp,
    }
    if "--direct" in argv:
        results["direct"] = compare_direct(interp["compiled_kips"],
                                           steps=steps)
    if "--telemetry" in argv:
        results["telemetry"] = compare_telemetry()
    print(json.dumps(results, indent=2))
    if not smoke:
        out = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {out}")
    if "--direct" in argv and not results["direct"]["pass"]:
        return 1
    if "--telemetry" in argv and not results["telemetry"]["pass"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
