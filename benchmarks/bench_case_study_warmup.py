"""Section VI-E case study: warm-up simulation methodology.

Paper: downscaling TOL promotion thresholds during warm-up plus the offline
distribution-matching heuristic reduces simulation cost 65x at 0.75%
average error.  Our scaled-down runs measure the same quantities; the cost
reduction tracks the sampled fraction of the (much shorter) run, and the
CPI error must stay small.
"""

from repro.harness.warmup_case import run_case_study
from repro.tol.config import TolConfig


def test_case_study_warmup(benchmark):
    result = benchmark.pedantic(
        run_case_study,
        kwargs={
            "workload_name": "473.astar",
            "scale": 0.5,
            "n_samples": 4,
            "sample_length": 3000,
            "tol_config": TolConfig(),
        },
        rounds=1, iterations=1)
    print("\n=== Warm-up methodology case study (paper section VI-E) ===")
    print(result.table())

    # Shape: large cost reduction at small CPI error.
    assert result.cost_reduction > 4.0
    assert result.cpi_error < 0.15
    # The heuristic must pick a downscaled configuration (scale > 1): a
    # cold TOL cannot match the authoritative distribution on a short
    # warm-up budget.
    assert result.chosen_scale > 1.0
