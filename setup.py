"""Legacy setup shim (the environment's setuptools predates PEP 660)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["darco = repro.cli:main"]},
)
