#!/usr/bin/env python3
"""Design-space exploration: wide in-order cores and performance/watt.

The paper (§III) asks how wide in-order cores compare once dynamic
optimization is in the picture.  This example sweeps issue width on a
SPECINT-shaped kernel with the timing simulator and the McPAT-like power
model, printing IPC, power and performance/watt.

Run:  python examples/timing_power_sweep.py
"""

from repro.power.model import PowerModel
from repro.timing.config import TimingConfig
from repro.timing.run import run_with_timing
from repro.workloads import get_workload


def main():
    workload = get_workload("458.sjeng")
    print(f"workload: {workload.name} ({workload.description})\n")
    header = (f"{'width':>6}{'IPC':>8}{'cycles':>12}{'mispred':>9}"
              f"{'L1D miss':>10}{'power(W)':>10}{'perf/W':>12}")
    print(header)
    baseline = None
    for width in (1, 2, 4, 6):
        timing = TimingConfig(issue_width=width,
                              fetch_width=max(4, 2 * width))
        timing.units = dict(timing.units)
        timing.units["simple"] = (width, 1, True)
        program = workload.program(scale=0.15)
        result, controller, core = run_with_timing(
            program, timing_config=timing, validate=False)
        stats = core.finalize()
        report = PowerModel(timing).report(core)
        perf = 1e9 / max(1, stats.cycles)
        perf_per_watt = perf / max(1e-9, report.average_power_w)
        if baseline is None:
            baseline = perf_per_watt
        mispred = stats.mispredicts / max(1, stats.branches)
        print(f"{width:>6}{stats.ipc:>8.2f}{stats.cycles:>12}"
              f"{mispred:>9.1%}{core.mem.l1d.miss_rate():>10.2%}"
              f"{report.average_power_w:>10.2f}"
              f"{perf_per_watt / baseline:>11.2f}x")
    print("\n(perf/W normalized to width 1; wider cores gain IPC with "
          "diminishing returns while leakage grows)")


if __name__ == "__main__":
    main()
