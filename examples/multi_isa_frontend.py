#!/usr/bin/env python3
"""Multiple guest ISAs on the same TOL (paper §V-D, "Support for multiple
ISA").

DARCO's frontend is the only guest-specific piece: everything from SSA to
code generation is shared.  This example defines a brand-new toy RISC
guest ISA ("TRISC", 4-byte fixed instructions), writes a decoder for it to
the TOL IR — about a hundred lines — and runs a TRISC program through the
unchanged TOL: interpretation, profiling, basic-block translation and
superblock optimization all just work.

Run:  python examples/multi_isa_frontend.py
"""

import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.tol.config import TolConfig
from repro.tol.decoder import DecodedInstr, Frontend
from repro.tol.ir import Const, GReg, IRInstr, TmpAllocator
from repro.tol.tol import EVENT_END, Tol

# --- the TRISC ISA: op, rd, ra, rb/imm8; 4 bytes, little endian ----------
HALT, LDI, ADD, SUB, MUL, BNZ, LD, ST, ADDI = range(9)
_MNEMONIC = ["HLT", "LDI", "ADD", "SUB", "MUL", "BNZ", "LD", "ST", "ADDI"]


def trisc(op, rd=0, ra=0, rb=0):
    return struct.pack("<4B", op, rd, ra, rb)


@dataclass(frozen=True)
class _ToySpec:
    interpreter_only: bool = False
    is_branch: bool = False
    writes_flags: bool = False


@dataclass(frozen=True)
class _ToyOperand:
    u32: int


@dataclass(frozen=True)
class ToyInstr:
    """Duck-types repro.guest.isa.GuestInstr for the TOL."""

    mnemonic: str
    addr: int
    length: int
    operands: tuple
    spec: _ToySpec

    @property
    def next_addr(self) -> int:
        return self.addr + self.length

    @property
    def is_branch(self) -> bool:
        return self.spec.is_branch


class TriscFrontend(Frontend):
    """TRISC -> TOL IR decoder: the only new code a guest ISA needs."""

    name = "trisc"

    def __init__(self):
        self._cache: Dict[int, DecodedInstr] = {}
        self._alloc = TmpAllocator()

    def decode(self, memory: PagedMemory, pc: int,
               alloc: Optional[TmpAllocator] = None) -> DecodedInstr:
        if alloc is None:
            cached = self._cache.get(pc)
            if cached is None:
                cached = self._decode(memory, pc, self._alloc)
                self._cache[pc] = cached
            return cached
        return self._decode(memory, pc, alloc)

    def _decode(self, memory, pc, alloc) -> DecodedInstr:
        op, rd, ra, rb = (memory.read_u8(pc + i) for i in range(4))
        ops = []
        spec = _ToySpec()
        operands = ()
        if op == HALT:
            spec = _ToySpec(interpreter_only=True, is_branch=True)
        elif op == LDI:
            ops.append(IRInstr("mov", GReg(rd & 7), (Const(rb),)))
        elif op in (ADD, SUB, MUL):
            ir = {ADD: "add", SUB: "sub", MUL: "mul"}[op]
            tmp = alloc.tmp()
            ops.append(IRInstr(ir, tmp, (GReg(ra & 7), GReg(rb & 7))))
            ops.append(IRInstr("mov", GReg(rd & 7), (tmp,)))
        elif op == ADDI:
            tmp = alloc.tmp()
            ops.append(IRInstr("add", tmp, (GReg(ra & 7), Const(rb))))
            ops.append(IRInstr("mov", GReg(rd & 7), (tmp,)))
        elif op == LD:
            tmp = alloc.tmp()
            ops.append(IRInstr("ld32", tmp, (GReg(ra & 7),), imm=rb * 4))
            ops.append(IRInstr("mov", GReg(rd & 7), (tmp,)))
        elif op == ST:
            ops.append(IRInstr("st32", None,
                               (GReg(ra & 7), GReg(rb & 7)), imm=rd * 4))
        elif op == BNZ:
            offset = rb - 256 if rb >= 128 else rb  # signed, in instrs
            taken = pc + 4 * offset
            cond = alloc.tmp()
            ops.append(IRInstr("cmpne", cond, (GReg(ra & 7), Const(0))))
            ops.append(IRInstr("br_true", None, (cond,),
                               attrs={"taken_pc": taken,
                                      "fall_pc": pc + 4}))
            spec = _ToySpec(is_branch=True)
            operands = (_ToyOperand(taken),)
        else:
            raise ValueError(f"bad TRISC opcode {op} at {pc:#x}")
        guest = ToyInstr(mnemonic=_MNEMONIC[op], addr=pc, length=4,
                         operands=operands, spec=spec)
        return DecodedInstr(guest, ops)


def build_trisc_program():
    """sum = Σ a[i]*b[i] over 64 elements, 300 passes (hot loop)."""
    code = b"".join([
        trisc(LDI, 5, 0, 0),        # r5 = total passes counter
        trisc(ADDI, 5, 5, 44),      # r5 = 44
        trisc(LDI, 0, 0, 0),        # r0 = acc
        # outer: reset index
        trisc(LDI, 1, 0, 64),       # r1 = count          (addr 0x100C)
        trisc(LDI, 2, 0, 0),        # r2 = byte offset
        # inner loop body                                  (addr 0x1014)
        trisc(LD, 3, 2, 0x40),      # r3 = a[i]  (base 0x100 via offset)
        trisc(LD, 4, 2, 0x80),      # r4 = b[i]  (base 0x200)
        trisc(MUL, 3, 3, 4),        # r3 *= r4
        trisc(ADD, 0, 0, 3),        # acc += r3
        trisc(ADDI, 2, 2, 4),       # offset += 4
        trisc(SUB, 1, 1, 6),        # r1 -= r6 (r6 == 1)
        trisc(BNZ, 0, 1, 256 - 6),  # loop while r1 != 0
        trisc(SUB, 5, 5, 6),        # passes -= 1
        trisc(BNZ, 0, 5, 256 - 10), # outer loop
        trisc(ST, 0x30, 7, 0),      # mem[r7 + 0xC0] = acc
        trisc(HALT),
    ])
    return code


def main():
    memory = PagedMemory(demand_zero=True)
    base = 0x1000
    memory.write_bytes(base, build_trisc_program())
    for i in range(64):                       # a[] and b[] tables
        memory.write_u32(0x100 + 4 * i, i + 1)   # LD disp 0x40*4
        memory.write_u32(0x200 + 4 * i, 2)       # LD disp 0x80*4

    state = GuestState()
    state.eip = base
    state.gpr[6] = 1      # r6 = constant 1
    state.gpr[7] = 0      # r7 = output base

    tol = Tol(state, memory, config=TolConfig(),
              frontend=TriscFrontend())
    event = tol.run()
    assert event.kind == EVENT_END, event

    expected = 44 * sum((i + 1) * 2 for i in range(64))
    got = memory.read_u32(0xC0)
    print("TRISC program finished on the unchanged TOL")
    print(f"  result            : {got} (expected {expected})")
    dist = tol.mode_distribution()
    total = sum(dist.values()) or 1
    print(f"  mode distribution : "
          + ", ".join(f"{k}={v / total:.1%}" for k, v in dist.items()))
    modes = {u.mode for u in tol.cache.units()}
    print(f"  code cache        : {len(tol.cache)} units, modes {modes}")
    assert got == expected
    assert "SBM" in modes, "TRISC hot loop should reach superblock mode"


if __name__ == "__main__":
    main()
