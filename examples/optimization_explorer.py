#!/usr/bin/env python3
"""Optimization explorer: watch the TOL pipeline transform a superblock.

Uses the translator's per-stage capture (the debug toolchain hook) to print
a hot region's IR after decode, SSA, the optimization passes and
scheduling, then the final host code — and shows the plug-and-play pass
registry by re-running with optimizations disabled.

Run:  python examples/optimization_explorer.py
"""

from repro.guest.assembler import Assembler, EAX, EBX, ECX, EDX, M
from repro.guest.program import pack_u32s
from repro.system.controller import Controller
from repro.tol.config import TolConfig
from repro.tol.opt.passes import available_passes


def build_program():
    asm = Assembler()
    asm.data(0x4000, pack_u32s(range(64)))
    asm.mov(EDX, 0)
    with asm.counted_loop(ECX, 2000):
        asm.mov(EAX, M(None, disp=0x4000))   # redundant load (RLE bait)
        asm.mov(EBX, M(None, disp=0x4000))   # ... same address
        asm.add(EAX, EBX)
        asm.add(EAX, 0)                      # dead-ish arithmetic
        asm.emit("XOR", EBX, EBX)            # constant result
        asm.add(EDX, EAX)
    asm.exit(0)
    return asm.program()


def run_with(config):
    controller = Controller(build_program(), config=config)
    translator = controller.codesigned.tol.translator
    translator.capture = {}
    controller.run()
    return controller, translator.capture


def main():
    print(f"registered passes: {', '.join(available_passes())}\n")

    controller, capture = run_with(TolConfig())
    entry_pc, stages = max(
        capture.items(),
        key=lambda item: len(item[1].get("decoded", [])))
    print(f"=== superblock at {entry_pc:#x} ===")
    for stage in ("decoded", "ssa", "optimized", "scheduled"):
        ops = stages[stage]
        print(f"\n--- {stage} ({len(ops)} IR ops) ---")
        for op in ops:
            print(f"    {op!r}")

    unit = controller.codesigned.tol.cache.lookup(entry_pc)
    print(f"\n--- final host code ({len(unit.instrs)} instructions, "
          f"mode {unit.mode}) ---")
    for i, instr in enumerate(unit.instrs):
        print(f"    [{i:3d}] {instr!r}")

    # Plug-and-play: disable the optimizer and compare emulation cost.
    tuned = controller.codesigned.tol.emulation_cost_sbm()
    controller2, _ = run_with(TolConfig(sbm_passes=(), bbm_passes=()))
    raw = controller2.codesigned.tol.emulation_cost_sbm()
    print(f"\nemulation cost (host insns / guest insn, SBM):")
    print(f"    full pipeline : {tuned:.2f}")
    print(f"    no passes     : {raw:.2f}")


if __name__ == "__main__":
    main()
