#!/usr/bin/env python3
"""The debug toolchain in action (paper §V-D).

"An erroneous behaviour could be caused by a bug in distinct modules of
TOL such as translator, optimizer, instruction scheduler, register
allocator, code generator ... a powerful debug toolchain becomes essential
to quickly locate and fix any bugs."

This example *injects* a miscompilation into the optimizer (a deliberately
broken optimization pass), then walks DARCO's three debugging stages:

1. validation catches the divergence at a synchronization point;
2. the divergence finder pinpoints the exact code unit that produced it;
3. per-stage replay blames the pipeline stage that introduced the bug.

Run:  python examples/debugging_a_miscompilation.py
"""

from repro.guest.assembler import Assembler, EAX, ECX, EDI
from repro.debug.divergence import find_divergence
from repro.tol.config import TolConfig
from repro.tol.ir import Const
from repro.tol.opt.passes import PassStats, register_pass
from repro.system.controller import Controller, ValidationError


def build_program():
    asm = Assembler()
    asm.mov(EAX, 0)
    with asm.counted_loop(ECX, 500):
        asm.add(EAX, 3)
    asm.mov(EDI, EAX)
    asm.exit(0)
    return asm.program()


@register_pass("example_buggy_strength_reduction")
def buggy_strength_reduction(ops):
    """A plausible-looking but WRONG optimization: 'strength-reduce'
    add-constant into shift — with an off-by-one in the constant check."""
    stats = PassStats("example_buggy_strength_reduction", ops_in=len(ops))
    out = []
    for instr in ops:
        if (instr.op == "add" and len(instr.srcs) == 2
                and isinstance(instr.srcs[1], Const)
                and instr.srcs[1].value == 3):
            # BUG: 'add x, 3' is not 'shl x, 1 + add x, 1'... the author
            # meant 4 -> shl 2. Replace with add 4 to keep it subtle.
            instr = instr.with_changes(srcs=(instr.srcs[0], Const(4)))
        out.append(instr)
    stats.ops_out = len(out)
    return out, stats


def main():
    config = TolConfig(
        bbm_threshold=3, sbm_threshold=8,
        sbm_passes=("constfold", "constprop",
                    "example_buggy_strength_reduction", "cse",
                    "constprop", "dce"))

    print("stage 1: validation ---------------------------------------")
    controller = Controller(build_program(), config=config)
    try:
        controller.run()
        print("  run completed cleanly?! (unexpected)")
        return
    except ValidationError as error:
        print(f"  ValidationError after {error.guest_icount} guest "
              f"instructions")
        print(f"  state diff: {error.state_diff}")

    print("\nstage 2: pinpoint the culpable unit -----------------------")
    divergence = find_divergence(build_program(), config=config)
    print(f"  {divergence}")
    assert divergence.unit is not None

    print("\nstage 3: blame the pipeline stage -------------------------")
    # Re-run with per-stage IR capture and replay each stage.
    from repro.debug.divergence import blame_stage
    from repro.guest.emulator import GuestEmulator
    from repro.guest.memory import PagedMemory

    program = build_program()
    capture_controller = Controller(program, config=config,
                                    validate=False)
    translator = capture_controller.codesigned.tol.translator
    translator.capture = {}
    try:
        capture_controller.run()
    except ValidationError:
        pass
    entry_pc = divergence.entry_pc
    stages = translator.capture.get(entry_pc)
    if stages is None:
        entry_pc, stages = next(iter(translator.capture.items()))

    reference = GuestEmulator(program)
    while reference.state.eip != entry_pc:
        reference.step()
    entry_state = reference.state.copy()
    unit = capture_controller.codesigned.tol.cache.lookup(entry_pc)
    n_guest = unit.guest_insn_count if unit else 4

    def memory_factory():
        memory = PagedMemory()
        program.load_into(memory)
        return memory

    def reference_stepper(state, memory):
        ref = GuestEmulator(program)
        ref.state.restore(entry_state.snapshot())
        ref.state.eip = entry_pc
        for _ in range(n_guest):
            ref.step()
        return ref.state, ref.state.eip

    blame = blame_stage(stages, entry_state, memory_factory,
                        reference_stepper)
    for stage, ok in blame.per_stage_ok.items():
        print(f"  {stage:<10}: {'OK' if ok else 'DIVERGES'}")
    print(f"  => first bad stage: {blame.first_bad_stage}")
    print("\nconclusion: the bug was introduced by an optimization pass "
          "(between 'ssa' and 'optimized'),\nnot by the decoder, "
          "scheduler, register allocator or code generator.")


if __name__ == "__main__":
    main()
