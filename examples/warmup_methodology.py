#!/usr/bin/env python3
"""The warm-up simulation methodology case study (paper §VI-E).

Shows why sampled simulation of a co-designed processor must warm up the
*TOL state*, and how downscaling promotion thresholds during warm-up plus
the offline distribution-matching heuristic recovers accuracy cheaply.

Run:  python examples/warmup_methodology.py
"""

from repro.harness.warmup_case import run_case_study
from repro.sampling.warmup import (
    WarmupSimulator, collect_bb_frequencies, distribution_similarity,
)
from repro.tol.config import TolConfig
from repro.workloads import get_workload


def main():
    name = "473.astar"
    program = get_workload(name).program(scale=0.5)
    config = TolConfig()

    # 1. Show the heuristic's raw material: how well does the TOL state
    #    reached by different warm-up configurations match the
    #    authoritative hot-code distribution?
    sim = WarmupSimulator(program, tol_config=config)
    start = 30_000
    authoritative = collect_bb_frequencies(
        get_workload(name).program(scale=0.5), 0, start)
    print("warm-up configuration -> similarity to authoritative "
          "hot-code distribution")
    for scale, warmup in ((1.0, 300), (4.0, 300), (8.0, 300), (8.0, 3000)):
        achieved = sim.warmup_bb_distribution(start, warmup, scale)
        sim_score = distribution_similarity(achieved, authoritative)
        print(f"  scale {scale:>4.0f}x, warm-up {warmup:>5} insns : "
              f"{sim_score:.3f}")

    # 2. Run the full case study: full detailed run vs sampled simulation.
    print("\nrunning full detailed simulation vs sampled methodology...")
    result = run_case_study(workload_name=name, scale=0.5, n_samples=4,
                            sample_length=3000, tol_config=config)
    print(result.table())


if __name__ == "__main__":
    main()
