#!/usr/bin/env python3
"""Quickstart: run a guest program on the DARCO co-designed processor.

Builds a small x86-like guest program with the assembler, executes it on
the full co-designed stack (TOL + host emulator) with the authoritative
x86 component validating every synchronization point, and prints what the
software layer did.

Run:  python examples/quickstart.py
"""

from repro.guest.assembler import Assembler, EAX, EBX, ECX, EDI, ESI, M
from repro.guest.program import pack_u32s, unpack_u32s
from repro.debug.tracing import tol_stats_dump
from repro.system.controller import run_codesigned
from repro.tol.config import TolConfig


def build_program():
    """Sum and transform a table, with a helper function and a hot loop."""
    asm = Assembler()
    table = asm.data(0x4000, pack_u32s(range(100)))

    asm.mov(EDI, 0)                     # checksum
    asm.mov(ESI, 0)                     # index
    with asm.counted_loop(ECX, 5000):   # hot: promoted to a superblock
        asm.mov(EAX, ESI)
        asm.emit("AND", EAX, 63)
        asm.mov(EBX, M(None, EAX, 4, disp=0x4000))
        asm.call("mix")                 # exercised via IBTC on return
        asm.add(EDI, EBX)
        asm.inc(ESI)
    asm.mov(M(None, disp=0x5000), EDI)  # store the checksum
    asm.exit(0)

    asm.label("mix")
    asm.imul(EBX, 2654435761)
    asm.shr(EBX, 7)
    asm.ret()
    return asm.program()


def main():
    program = build_program()
    config = TolConfig()  # default thresholds: IM -> BBM at 10, SBM at 60

    result, controller = run_codesigned(program, config=config)

    print("=== run result ===")
    print(f"exit code        : {result.exit_code}")
    print(f"guest insns      : {result.guest_icount}")
    print(f"data requests    : {result.data_requests}")
    print(f"validations      : {result.validations} (all passed)")
    checksum = unpack_u32s(controller.x86.memory.read_bytes(0x5000, 4))[0]
    print(f"checksum         : {checksum:#x}")

    print("\n=== what the TOL did ===")
    for key, value in tol_stats_dump(controller.codesigned.tol).items():
        print(f"{key:24s}: {value}")


if __name__ == "__main__":
    main()
