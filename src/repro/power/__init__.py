"""Analytic power/energy model (McPAT substitute)."""

from repro.power.model import PowerModel, PowerReport

__all__ = ["PowerModel", "PowerReport"]
