"""Analytic power and energy model (McPAT substitute; see DESIGN.md).

The paper integrates McPAT as an optional backend fed by the timing
simulator's activity counts.  This model plays the same role: per-structure
dynamic energy per access (scaled with structure size, CACTI-style
square-root scaling) plus size-proportional leakage, evaluated over a
finished :class:`repro.timing.core.InOrderCore`.

All constants are nominal 22nm-class values in picojoules; they produce
plausible relative numbers (the evaluation uses ratios, never absolute
watts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.timing.config import TimingConfig
from repro.timing.core import InOrderCore

#: Base dynamic energy per event (pJ) at the reference structure size.
_BASE_ENERGY_PJ = {
    "fetch": 4.0,            # per fetched instruction (decode included)
    "alu_simple": 1.5,
    "alu_complex": 6.0,
    "fpu": 8.0,
    "fp_div": 20.0,
    "vector": 10.0,
    "regfile_read": 0.8,
    "regfile_write": 1.2,
    "bpred": 1.0,
    "btb": 0.8,
    "l1_access": 10.0,       # per access at 32KB reference
    "l2_access": 28.0,       # per access at 512KB reference
    "memory_access": 120.0,  # DRAM access energy charged at L2 miss
    "tlb": 0.6,
    "prefetcher": 1.5,
}

#: Leakage power (mW) per KB of SRAM and per structure at reference size.
_LEAK_MW_PER_KB = 0.05
_CORE_LEAK_MW = 40.0


def _size_scale(actual_bytes: int, reference_bytes: int) -> float:
    """CACTI-flavoured sqrt energy scaling with structure capacity."""
    if actual_bytes <= 0:
        return 0.0
    return math.sqrt(actual_bytes / reference_bytes)


@dataclass
class PowerReport:
    """Per-structure dynamic energy plus leakage, for one simulation."""

    dynamic_energy_pj: Dict[str, float] = field(default_factory=dict)
    leakage_power_mw: float = 0.0
    cycles: int = 0
    frequency_ghz: float = 2.0
    instructions: int = 0

    @property
    def runtime_s(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9) \
            if self.cycles else 0.0

    @property
    def total_dynamic_pj(self) -> float:
        return sum(self.dynamic_energy_pj.values())

    @property
    def leakage_energy_pj(self) -> float:
        return self.leakage_power_mw * 1e-3 * self.runtime_s * 1e12

    @property
    def total_energy_pj(self) -> float:
        return self.total_dynamic_pj + self.leakage_energy_pj

    @property
    def average_power_w(self) -> float:
        if not self.runtime_s:
            return 0.0
        return self.total_energy_pj * 1e-12 / self.runtime_s

    @property
    def energy_per_instruction_pj(self) -> float:
        if not self.instructions:
            return 0.0
        return self.total_energy_pj / self.instructions

    def breakdown(self) -> Dict[str, float]:
        total = self.total_dynamic_pj
        if not total:
            return {}
        return {k: v / total for k, v in self.dynamic_energy_pj.items()}


class PowerModel:
    """Evaluates energy/power from timing activity counts."""

    def __init__(self, config: TimingConfig = None):
        self.config = config if config is not None else TimingConfig()

    def report(self, core: InOrderCore) -> PowerReport:
        cfg = self.config
        stats = core.finalize()
        mem = core.mem
        e = _BASE_ENERGY_PJ
        dyn: Dict[str, float] = {}

        n = stats.instructions
        alu = n - stats.loads - stats.stores - stats.branches
        dyn["frontend"] = n * e["fetch"]
        dyn["alu"] = alu * e["alu_simple"]
        dyn["regfile"] = n * (2 * e["regfile_read"] + e["regfile_write"])
        dyn["bpred"] = stats.branches * (e["bpred"] + e["btb"])

        l1_scale = _size_scale(cfg.l1d.size_bytes, 32 * 1024)
        l1i_scale = _size_scale(cfg.l1i.size_bytes, 32 * 1024)
        l2_scale = _size_scale(cfg.l2.size_bytes, 512 * 1024)
        dyn["l1i"] = mem.l1i.accesses * e["l1_access"] * l1i_scale
        dyn["l1d"] = mem.l1d.accesses * e["l1_access"] * l1_scale
        dyn["l2"] = mem.l2.accesses * e["l2_access"] * l2_scale
        dyn["dram"] = mem.l2.misses * e["memory_access"]
        dyn["tlb"] = (mem.dtlb.hits + mem.dtlb.misses) * e["tlb"]
        if mem.prefetcher is not None:
            dyn["prefetcher"] = mem.prefetcher.issued * e["prefetcher"]

        sram_kb = (cfg.l1i.size_bytes + cfg.l1d.size_bytes
                   + cfg.l2.size_bytes) / 1024
        # Wider cores leak more (linear in issue width, a standard McPAT
        # first-order behaviour).
        leakage = _CORE_LEAK_MW * (0.5 + 0.5 * cfg.issue_width) \
            + sram_kb * _LEAK_MW_PER_KB

        return PowerReport(
            dynamic_energy_pj=dyn,
            leakage_power_mw=leakage,
            cycles=stats.cycles,
            frequency_ghz=cfg.frequency_ghz,
            instructions=stats.instructions,
        )
