"""Debug toolchain: divergence pinpointing, stage blaming, monitoring."""

from repro.debug.divergence import (
    Divergence, StageBlame, blame_stage, find_divergence,
)
from repro.debug.export import metrics_csv, run_record, to_json, units_csv
from repro.debug.tracing import DispatchTracer, ModeTracer, tol_stats_dump

__all__ = [
    "Divergence", "StageBlame", "blame_stage", "find_divergence",
    "DispatchTracer", "ModeTracer", "tol_stats_dump",
    "metrics_csv", "run_record", "to_json", "units_csv",
]
