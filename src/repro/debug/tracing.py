"""Monitoring tools: mode-transition logs, dispatch traces, stats dumps.

Tracers attach through the TOL's probe registry
(:meth:`repro.tol.tol.Tol.add_probe`), so any number can observe the
same run and each can :meth:`detach` independently.  The old idiom —
each tracer capturing ``tol.probe`` and installing a wrapper that
forwarded to its predecessor — made detaching impossible: the wrapper
held its predecessor alive forever and there was no way to unlink one
tracer from the middle of the chain.

The stats dump is a projection of the telemetry snapshot
(:meth:`repro.telemetry.Telemetry.snapshot`): the registry's collectors
are the single source of instrument values, and the dump keeps its
legacy key names on top of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.telemetry import overhead_breakdown_from_snapshot
from repro.tol.tol import Tol


@dataclass
class ModeTransition:
    guest_icount: int
    entry_pc: Optional[int]
    mode: str


class ModeTracer:
    """Records the sequence of execution-mode transitions (IM/BBM/SBM/SBX)
    a run goes through — the raw data behind paper Fig. 3/4 discussions."""

    def __init__(self, tol: Tol):
        self.transitions: List[ModeTransition] = []
        self._last_mode: Optional[str] = None
        self._tol = tol
        tol.add_probe(self._probe)

    def _probe(self, tol: Tol, unit) -> None:
        mode = unit.mode if unit is not None else "IM"
        if mode != self._last_mode:
            self.transitions.append(ModeTransition(
                guest_icount=tol.guest_icount,
                entry_pc=unit.entry_pc if unit is not None else None,
                mode=mode))
            self._last_mode = mode

    def detach(self) -> None:
        """Stop observing; other probes on the same TOL are unaffected."""
        self._tol.remove_probe(self._probe)

    def mode_sequence(self) -> List[str]:
        return [t.mode for t in self.transitions]


class DispatchTracer:
    """Collects one line per dispatch: (icount, mode, entry_pc, execs)."""

    def __init__(self, tol: Tol, limit: int = 100_000):
        self.records: List[tuple] = []
        self.limit = limit
        self._tol = tol
        tol.add_probe(self._probe)

    def _probe(self, tol: Tol, unit) -> None:
        if len(self.records) >= self.limit:
            return
        if unit is None:
            self.records.append((tol.guest_icount, "IM", None, 1))
        else:
            self.records.append((
                tol.guest_icount, unit.mode, unit.entry_pc,
                unit.exec_count))

    def detach(self) -> None:
        """Stop observing; other probes on the same TOL are unaffected."""
        self._tol.remove_probe(self._probe)

    def format(self, n: int = 50) -> str:
        lines = []
        for (icount, mode, pc, execs) in self.records[:n]:
            where = f"{pc:#x}" if pc is not None else "-"
            lines.append(f"{icount:>10} {mode:<4} {where:<10} x{execs}")
        return "\n".join(lines)


def tol_stats_dump(tol: Tol) -> Dict[str, object]:
    """A monitoring snapshot of every interesting TOL statistic.

    Values come from the telemetry registry (scraped via
    ``snapshot(force=True)``, so the dump works even with the
    ``telemetry`` config mode ``off``); the key names are the legacy
    ones this dump has always used.
    """
    snap = tol.telemetry.snapshot(force=True)
    c = snap.counters
    dist = tol.mode_distribution()
    total = sum(dist.values()) or 1
    return {
        "guest_icount": c["tol.guest_icount"],
        "mode_distribution": {k: v / total for k, v in dist.items()},
        "emulation_cost_sbm": round(tol.emulation_cost_sbm(), 3),
        "tol_overhead_fraction": round(tol.overhead_fraction(), 4),
        "overhead_breakdown": overhead_breakdown_from_snapshot(snap),
        "code_cache_units": int(snap.gauges["cache.units"]),
        "code_cache_insns": int(snap.gauges["cache.size_insns"]),
        "code_cache_hits": c["cache.hits"],
        "code_cache_misses": c["cache.misses"],
        "bb_translations": c["tol.translations.bb"],
        "sb_translations": c["tol.translations.sb"],
        "loops_unrolled": c["tol.loops_unrolled"],
        "assert_failures": c["tol.rollbacks.assert"],
        "spec_failures": c["tol.rollbacks.spec"],
        "demotions": c["tol.demotions"],
        "chains_made": c["tol.chains_made"],
        "ibtc_hits": c["host.ibtc.hits"],
        "ibtc_misses": c["host.ibtc.misses"],
        "host_insns_committed": c["host.insns.committed"],
        "host_insns_wasted": c["host.insns.wasted"],
        "host_fastpath_segments": c["host.fastpath.segments"],
        "incidents": c["resilience.incidents"],
        "incident_kinds": sorted(set(tol.incidents.kinds())),
        "watchdog_fires": c["tol.watchdog_fires"],
        "quarantined_pcs": c["resilience.quarantined_pcs"],
        "quarantine_levels": tol.quarantine.summary(),
    }
