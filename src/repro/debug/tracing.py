"""Monitoring tools: mode-transition logs, dispatch traces, stats dumps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.tol.tol import Tol


@dataclass
class ModeTransition:
    guest_icount: int
    entry_pc: Optional[int]
    mode: str


class ModeTracer:
    """Records the sequence of execution-mode transitions (IM/BBM/SBM/SBX)
    a run goes through — the raw data behind paper Fig. 3/4 discussions."""

    def __init__(self, tol: Tol):
        self.transitions: List[ModeTransition] = []
        self._last_mode: Optional[str] = None
        self._chain(tol)

    def _chain(self, tol: Tol) -> None:
        previous = tol.probe

        def probe(tol_, unit):
            mode = unit.mode if unit is not None else "IM"
            if mode != self._last_mode:
                self.transitions.append(ModeTransition(
                    guest_icount=tol_.guest_icount,
                    entry_pc=unit.entry_pc if unit is not None else None,
                    mode=mode))
                self._last_mode = mode
            if previous is not None:
                previous(tol_, unit)

        tol.probe = probe

    def mode_sequence(self) -> List[str]:
        return [t.mode for t in self.transitions]


class DispatchTracer:
    """Collects one line per dispatch: (icount, mode, entry_pc, execs)."""

    def __init__(self, tol: Tol, limit: int = 100_000):
        self.records: List[tuple] = []
        self.limit = limit
        previous = tol.probe

        def probe(tol_, unit):
            if len(self.records) < self.limit:
                if unit is None:
                    self.records.append((tol_.guest_icount, "IM", None, 1))
                else:
                    self.records.append((
                        tol_.guest_icount, unit.mode, unit.entry_pc,
                        unit.exec_count))
            if previous is not None:
                previous(tol_, unit)

        tol.probe = probe

    def format(self, n: int = 50) -> str:
        lines = []
        for (icount, mode, pc, execs) in self.records[:n]:
            where = f"{pc:#x}" if pc is not None else "-"
            lines.append(f"{icount:>10} {mode:<4} {where:<10} x{execs}")
        return "\n".join(lines)


def tol_stats_dump(tol: Tol) -> Dict[str, object]:
    """A monitoring snapshot of every interesting TOL statistic."""
    dist = tol.mode_distribution()
    total = sum(dist.values()) or 1
    return {
        "guest_icount": tol.guest_icount,
        "mode_distribution": {k: v / total for k, v in dist.items()},
        "emulation_cost_sbm": round(tol.emulation_cost_sbm(), 3),
        "tol_overhead_fraction": round(tol.overhead_fraction(), 4),
        "overhead_breakdown": tol.overhead.breakdown(),
        "code_cache_units": len(tol.cache),
        "code_cache_insns": tol.cache.size_insns,
        "bb_translations": tol.translator.bb_translations,
        "sb_translations": tol.translator.sb_translations,
        "loops_unrolled": tol.translator.loops_unrolled,
        "assert_failures": tol.stats.assert_failures,
        "spec_failures": tol.stats.spec_failures,
        "demotions": tol.stats.demotions,
        "chains_made": tol.stats.chains_made,
        "ibtc_hits": tol.host.ibtc.hits,
        "ibtc_misses": tol.host.ibtc.misses,
        "host_insns_committed": tol.host.host_insns_committed,
        "host_insns_wasted": tol.host.host_insns_wasted,
        "incidents": len(tol.incidents),
        "incident_kinds": sorted(set(tol.incidents.kinds())),
        "watchdog_fires": tol.stats.watchdog_fires,
        "quarantined_pcs": len(tol.quarantine),
        "quarantine_levels": tol.quarantine.summary(),
    }
