"""Divergence finder (paper §V-D, debug toolchain).

When validation detects a mismatch, DARCO "first of all pinpoints the exact
basic block where the problem was originated.  Then it traces back to find
out the particular step where the bug first appeared".  This module
implements both stages:

1. :func:`find_divergence` re-runs the application with a per-dispatch
   probe: after every translated-unit execution and every interpreted
   basic block, the emulated state is compared against a private reference
   emulator advanced to the same instruction count.  The first mismatching
   dispatch names the culpable code unit (or the interpreter).
2. :func:`blame_stage` replays the culpable region at every TOL pipeline
   stage (decoded IR, SSA, optimized, scheduled) with the IR evaluator and
   reports the first stage whose result diverges from stepping the
   reference — separating decoder bugs from optimizer bugs from scheduler
   bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.guest.emulator import GuestEmulator
from repro.guest.program import GuestProgram
from repro.guest.state import GuestState
from repro.guest.syscalls import GuestOS
from repro.host.isa import CodeUnit
from repro.tol.config import TolConfig
from repro.tol.ir_eval import EXIT, IRAssertFailure, JUMP, eval_ops
from repro.system.controller import Controller


@dataclass
class Divergence:
    """First detected mismatch between emulated and authoritative state."""

    guest_icount: int
    state_diff: Dict[str, tuple]
    #: The code unit whose execution produced the mismatch (None when the
    #: divergence appeared during interpretation).
    unit: Optional[CodeUnit]
    entry_pc: Optional[int]
    mode: str

    def __str__(self):
        where = (f"unit {self.unit.uid} ({self.mode}) at "
                 f"{self.entry_pc:#x}" if self.unit is not None
                 else "interpreter")
        return (f"divergence after {self.guest_icount} guest instructions "
                f"in {where}: {self.state_diff}")


class _ProbeHit(Exception):
    def __init__(self, divergence: Divergence):
        self.divergence = divergence


def find_divergence(program: GuestProgram,
                    config: Optional[TolConfig] = None,
                    max_events: int = 10_000_000,
                    fault: Optional[dict] = None,
                    os_factory=GuestOS) -> Optional[Divergence]:
    """Locate the first dispatch step whose result state mismatches a
    lockstep reference.  Returns None for a clean run.

    ``fault`` (a ``{"site", "ordinal", "salt"}`` mapping, e.g. from a
    repro bundle) arms the same deterministic fault the original run
    carried; ``os_factory`` supplies the deterministic OS for both the
    probed run and the reference (pass a closure over the bundle's
    stdin/seed to replay a bundle's inputs)."""
    reference = GuestEmulator(program, os=os_factory())
    controller = Controller(program, config=config, os=os_factory(),
                            validate=False)
    if fault is not None:
        from repro.resilience.faults import FaultInjector, FaultSpec
        FaultInjector(FaultSpec(
            site=fault["site"], ordinal=fault["ordinal"],
            salt=fault["salt"])).attach(controller.codesigned.tol)

    def probe(tol, unit) -> None:
        reference.run_to_icount(tol.guest_icount)
        diff = tol.state.diff(reference.state)
        if diff:
            raise _ProbeHit(Divergence(
                guest_icount=tol.guest_icount,
                state_diff=diff,
                unit=unit,
                entry_pc=unit.entry_pc if unit is not None else None,
                mode=unit.mode if unit is not None else "IM",
            ))

    controller.codesigned.tol.probe = probe
    try:
        controller.run(max_events=max_events)
    except _ProbeHit as hit:
        return hit.divergence
    return None


@dataclass
class StageBlame:
    """Result of per-stage replay of a culpable region."""

    entry_pc: int
    #: First pipeline stage whose IR evaluation diverges from the
    #: reference ("decoded", "ssa", "optimized", "scheduled"), or None if
    #: every stage matched (pointing at codegen / the host emulator).
    first_bad_stage: Optional[str]
    per_stage_ok: Dict[str, bool]

    def __str__(self):
        stage = self.first_bad_stage or "codegen/host"
        return f"region {self.entry_pc:#x}: first bad stage = {stage}"


STAGE_ORDER = ("decoded", "ssa", "optimized", "scheduled")


def blame_stage(stages: Dict[str, List], entry_state: GuestState,
                memory_factory, reference_stepper) -> StageBlame:
    """Replay captured per-stage IR against a reference.

    ``stages`` comes from ``Translator.capture[entry_pc]``;
    ``memory_factory()`` returns a fresh guest memory image at region
    entry; ``reference_stepper(state, memory)`` executes the same guest
    instructions on reference semantics and returns the expected state.
    """
    expected_state, expected_exit = reference_stepper(
        entry_state.copy(), memory_factory())
    per_stage_ok: Dict[str, bool] = {}
    first_bad: Optional[str] = None
    entry_pc = None
    for stage in STAGE_ORDER:
        ops = stages.get(stage)
        if ops is None:
            continue
        if entry_pc is None and ops:
            entry_pc = ops[0].guest_pc
        state = entry_state.copy()
        memory = memory_factory()
        try:
            outcome, target = eval_ops(ops, state, memory)
        except IRAssertFailure:
            per_stage_ok[stage] = True  # rollback: no state to compare
            continue
        ok = (outcome in (EXIT, JUMP)
              and target == expected_exit
              and not _diff_ignoring_eip(state, expected_state))
        per_stage_ok[stage] = ok
        if not ok and first_bad is None:
            first_bad = stage
    return StageBlame(entry_pc=entry_pc or 0, first_bad_stage=first_bad,
                      per_stage_ok=per_stage_ok)


def _diff_ignoring_eip(state: GuestState, expected: GuestState) -> dict:
    diff = state.diff(expected)
    diff.pop("EIP", None)
    return diff
