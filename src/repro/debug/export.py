"""Statistics export: JSON/CSV dumps of run results (monitoring tools).

The paper lists "monitoring tools" among DARCO's components; these helpers
serialize everything a run produced — TOL statistics, per-unit code-cache
data, timing and power reports — for offline analysis."""

from __future__ import annotations

import csv
import io
import json
from typing import Optional

from repro.debug.tracing import tol_stats_dump
from repro.tol.tol import Tol


def run_record(tol: Tol, result=None, timing_core=None,
               power_report=None) -> dict:
    """One JSON-serializable record describing a finished run."""
    record = {"tol": tol_stats_dump(tol)}
    if result is not None:
        record["run"] = {
            "exit_code": result.exit_code,
            "guest_icount": result.guest_icount,
            "syscalls": result.syscalls,
            "data_requests": result.data_requests,
            "validations": result.validations,
        }
    if timing_core is not None:
        record["timing"] = timing_core.report()
    if power_report is not None:
        record["power"] = {
            "average_power_w": power_report.average_power_w,
            "energy_per_instruction_pj":
                power_report.energy_per_instruction_pj,
            "leakage_power_mw": power_report.leakage_power_mw,
            "dynamic_breakdown": power_report.breakdown(),
        }
    return record


def to_json(record: dict, path: Optional[str] = None) -> str:
    text = json.dumps(record, indent=2, sort_keys=True, default=str)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text


#: Columns of the per-unit code cache export.
UNIT_COLUMNS = (
    "uid", "mode", "entry_pc", "size_insns", "guest_insns",
    "guest_bbs", "unrolled", "exec_count", "guest_retired",
    "host_committed", "host_wasted", "assert_failures", "spec_failures",
)


def units_csv(tol: Tol, path: Optional[str] = None) -> str:
    """CSV of every unit in the code cache (hotness/failure analysis)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(UNIT_COLUMNS)
    for unit in sorted(tol.cache.units(), key=lambda u: u.uid):
        writer.writerow([
            unit.uid, unit.mode, f"{unit.entry_pc:#x}", unit.size(),
            unit.guest_insn_count, unit.guest_bb_count,
            int(unit.unrolled), unit.exec_count,
            unit.guest_insns_retired, unit.host_insns_committed,
            unit.host_insns_wasted, unit.assert_failures,
            unit.spec_failures,
        ])
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
    return text


def metrics_csv(metrics, path: Optional[str] = None) -> str:
    """CSV of harness KernelMetrics (one row per workload)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([
        "name", "suite", "guest_icount", "im", "bbm", "sbm",
        "emulation_cost_sbm", "tol_overhead_fraction",
        "app_host_insns", "tol_host_insns", "static_code_bytes",
    ])
    for m in metrics:
        writer.writerow([
            m.name, m.suite, m.guest_icount,
            round(m.mode_fraction.get("IM", 0), 6),
            round(m.mode_fraction.get("BBM", 0), 6),
            round(m.mode_fraction.get("SBM", 0), 6),
            round(m.emulation_cost_sbm, 4),
            round(m.tol_overhead_fraction, 6),
            m.app_host_insns, m.tol_host_insns, m.static_code_bytes,
        ])
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
    return text
