"""Durable artifact IO shared by every on-disk writer in the repository.

The result cache, the incident log exporter, the checkpoint store and
the repro-bundle writer all need the same two guarantees:

- **atomicity**: an artifact is either the complete old version or the
  complete new version — a crash (or a SIGKILL from the sweep runner's
  watchdog) mid-write must never leave a half-written file that a later
  run trips over.  Writes go to a same-directory temp file, are fsynced,
  and are published with ``os.replace``.
- **versioned self-description**: every JSON artifact carries a
  ``schema_version``, a ``kind`` and a content hash, so a loader can
  tell "this is a checkpoint, schema 1, intact" apart from "this is
  corrupt" or "this was written by an incompatible future version" and
  raise a clear :class:`SchemaError` instead of a ``KeyError`` deep in
  replay.

Loaders choose between two failure semantics:

- ``load_artifact(...)`` raises :class:`SchemaError` (checkpoints,
  bundles: the caller asked for *this* artifact and must know why it is
  unusable);
- ``load_artifact(..., missing_ok=True)`` returns ``None`` for a
  missing/corrupt/mismatched file (caches: corruption is a miss, never
  a crash).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional


class SchemaError(Exception):
    """An on-disk artifact is missing, corrupt, of the wrong kind, or of
    an incompatible schema version."""


def atomic_write_bytes(path, data: bytes, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The temp file lives in the target directory (``os.replace`` must not
    cross filesystems) and is fsynced before the rename so the published
    name never points at partially-flushed content.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except Exception:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload: Any) -> str:
    """SHA-256 over the canonical JSON rendering of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def write_artifact(path, kind: str, schema_version: int,
                   payload: Dict[str, Any], fsync: bool = True) -> str:
    """Write a versioned, content-hashed JSON artifact; returns the
    payload's content hash (the artifact's identity)."""
    digest = content_hash(payload)
    envelope = {
        "kind": kind,
        "schema_version": schema_version,
        "sha256": digest,
        "payload": payload,
    }
    blob = json.dumps(envelope, sort_keys=True, indent=1).encode()
    atomic_write_bytes(path, blob, fsync=fsync)
    return digest


def load_artifact(path, kind: str, schema_version: int,
                  missing_ok: bool = False) -> Optional[Dict[str, Any]]:
    """Load and verify a versioned artifact; returns its payload.

    Raises :class:`SchemaError` on a missing/corrupt/mismatched file, or
    returns ``None`` instead when ``missing_ok`` is set (cache
    semantics: corruption is a miss).
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except FileNotFoundError:
        if missing_ok:
            return None
        raise SchemaError(f"artifact not found: {path}") from None
    except (OSError, ValueError) as exc:
        if missing_ok:
            return None
        raise SchemaError(f"corrupt artifact {path}: {exc}") from None
    if not isinstance(envelope, dict) or "payload" not in envelope:
        if missing_ok:
            return None
        raise SchemaError(f"{path}: not a versioned artifact envelope")
    found_kind = envelope.get("kind")
    if found_kind != kind:
        if missing_ok:
            return None
        raise SchemaError(
            f"{path}: artifact kind {found_kind!r}, expected {kind!r}")
    version = envelope.get("schema_version")
    if version != schema_version:
        if missing_ok:
            return None
        raise SchemaError(
            f"{path}: {kind} schema version {version!r} is not supported "
            f"by this build (expected {schema_version}); re-create the "
            f"artifact or use a matching version of the tools")
    payload = envelope["payload"]
    digest = envelope.get("sha256")
    if digest != content_hash(payload):
        if missing_ok:
            return None
        raise SchemaError(
            f"{path}: content hash mismatch (truncated or tampered "
            f"{kind})")
    return payload
