"""Durable artifact IO shared by every on-disk writer in the repository.

The result cache, the incident log exporter, the checkpoint store and
the repro-bundle writer all need the same two guarantees:

- **atomicity**: an artifact is either the complete old version or the
  complete new version — a crash (or a SIGKILL from the sweep runner's
  watchdog) mid-write must never leave a half-written file that a later
  run trips over.  Writes go to a same-directory temp file, are fsynced,
  and are published with ``os.replace``.
- **versioned self-description**: every JSON artifact carries a
  ``schema_version``, a ``kind`` and a content hash, so a loader can
  tell "this is a checkpoint, schema 1, intact" apart from "this is
  corrupt" or "this was written by an incompatible future version" and
  raise a clear :class:`SchemaError` instead of a ``KeyError`` deep in
  replay.

Loaders choose between two failure semantics:

- ``load_artifact(...)`` raises :class:`SchemaError` (checkpoints,
  bundles: the caller asked for *this* artifact and must know why it is
  unusable);
- ``load_artifact(..., missing_ok=True)`` returns ``None`` for a
  missing/corrupt/mismatched file (caches: corruption is a miss, never
  a crash).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import re
import time
from pathlib import Path
from typing import Any, Dict, Optional


class SchemaError(Exception):
    """An on-disk artifact is missing, corrupt, of the wrong kind, or of
    an incompatible schema version."""


#: Per-process sequence for temp-file names: two threads of one process
#: writing the same target must not collide on a pid-only suffix.
_tmp_seq = itertools.count()

#: ``<name>.tmp<pid>.<seq>`` — the in-flight temp-file suffix.  A file
#: matching this pattern whose pid is dead is an orphan from a killed
#: writer (the "stale lock" of the multi-process cache protocol) and is
#: safe to delete: the rename it was staged for never happened.
_TMP_RE = re.compile(r"\.tmp(\d+)\.\d+$")


def atomic_write_bytes(path, data: bytes, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The temp file lives in the target directory (``os.replace`` must not
    cross filesystems) and is fsynced before the rename so the published
    name never points at partially-flushed content.  Temp names carry
    pid + a per-process sequence number, so concurrent writers of the
    *same* target — two sweep processes sharing one ``.repro_cache``,
    two serve workers completing a coalesced job's duplicate — each
    stage a private file and the last rename wins whole; a reader can
    never observe a torn artifact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.tmp{os.getpid()}.{next(_tmp_seq)}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except Exception:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but owned elsewhere — leave it alone
    return True


def _pid_start_time(pid: int) -> Optional[float]:
    """Epoch start time of ``pid``, or ``None`` when it cannot be read
    (non-Linux hosts, procfs races, permission trouble).  Used to tell
    a long-lived writer apart from a recycled pid."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read()
        with open("/proc/uptime", "r", encoding="ascii") as handle:
            uptime = float(handle.read().split()[0])
        # Fields after the parenthesised comm (which may itself contain
        # spaces); starttime is overall field 22, i.e. index 19 here.
        fields = stat[stat.rindex(b")") + 2:].split()
        ticks = int(fields[19])
        return time.time() - uptime + ticks / os.sysconf("SC_CLK_TCK")
    except (OSError, ValueError, IndexError):
        return None


def cleanup_stale_tmp(root, max_age_s: float = 3600.0) -> int:
    """Remove orphaned atomic-write temp files under ``root``.

    A writer SIGKILLed between staging and rename (a sweep worker shot
    by the watchdog, a serve worker shot by the chaos benchmark) leaks
    its ``*.tmp<pid>.<seq>`` file.  Those are this protocol's stale
    locks: they are never adopted, only ever renamed by their creator,
    so any such file whose writer pid is dead is garbage.  When the pid
    looks alive it may still be a *recycled* pid wearing a dead writer's
    number: a process whose start time postdates the temp file did not
    stage it, so a file older than ``max_age_s`` in that situation is
    garbage too.  A live writer that demonstrably predates its temp
    file is never touched, however old the file — a slow or suspended
    job is not an orphan.  Returns the number of files removed.  Never
    raises: cleanup is opportunistic.
    """
    root = Path(root)
    removed = 0
    if not root.is_dir():
        return removed
    now = time.time()
    for tmp in root.rglob("*.tmp*"):
        match = _TMP_RE.search(tmp.name)
        if match is None:
            continue
        pid = int(match.group(1))
        try:
            if _pid_alive(pid):
                if now - tmp.stat().st_mtime <= max_age_s:
                    continue  # live pid, plausibly fresh: in flight
                started = _pid_start_time(pid)
                if started is not None \
                        and started <= tmp.stat().st_mtime + 2.0:
                    continue  # writer predates its file: still at work
                # Old file + pid started after it was staged (or start
                # time unknowable): recycled pid, the writer is gone.
            tmp.unlink()
            removed += 1
        except OSError:
            continue
    return removed


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload: Any) -> str:
    """SHA-256 over the canonical JSON rendering of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def write_artifact(path, kind: str, schema_version: int,
                   payload: Dict[str, Any], fsync: bool = True) -> str:
    """Write a versioned, content-hashed JSON artifact; returns the
    payload's content hash (the artifact's identity)."""
    digest = content_hash(payload)
    envelope = {
        "kind": kind,
        "schema_version": schema_version,
        "sha256": digest,
        "payload": payload,
    }
    blob = json.dumps(envelope, sort_keys=True, indent=1).encode()
    atomic_write_bytes(path, blob, fsync=fsync)
    return digest


def load_artifact(path, kind: str, schema_version: int,
                  missing_ok: bool = False) -> Optional[Dict[str, Any]]:
    """Load and verify a versioned artifact; returns its payload.

    Raises :class:`SchemaError` on a missing/corrupt/mismatched file, or
    returns ``None`` instead when ``missing_ok`` is set (cache
    semantics: corruption is a miss).
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except FileNotFoundError:
        if missing_ok:
            return None
        raise SchemaError(f"artifact not found: {path}") from None
    except (OSError, ValueError) as exc:
        if missing_ok:
            return None
        raise SchemaError(f"corrupt artifact {path}: {exc}") from None
    if not isinstance(envelope, dict) or "payload" not in envelope:
        if missing_ok:
            return None
        raise SchemaError(f"{path}: not a versioned artifact envelope")
    found_kind = envelope.get("kind")
    if found_kind != kind:
        if missing_ok:
            return None
        raise SchemaError(
            f"{path}: artifact kind {found_kind!r}, expected {kind!r}")
    version = envelope.get("schema_version")
    if version != schema_version:
        if missing_ok:
            return None
        raise SchemaError(
            f"{path}: {kind} schema version {version!r} is not supported "
            f"by this build (expected {schema_version}); re-create the "
            f"artifact or use a matching version of the tools")
    payload = envelope["payload"]
    digest = envelope.get("sha256")
    if digest != content_hash(payload):
        if missing_ok:
            return None
        raise SchemaError(
            f"{path}: content hash mismatch (truncated or tampered "
            f"{kind})")
    return payload
