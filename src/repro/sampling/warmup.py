"""Warm-up simulation methodology (paper §VI-E case study).

Sampling-based simulation picks a few windows of the dynamic instruction
stream for detailed timing.  For HW/SW co-designed processors the *TOL
state* (profiler counters, code cache) must be warmed up in addition to the
microarchitectural state, and its warm-up penalty is orders of magnitude
larger: a missing translation costs thousands of cycles, a cold cache line
hundreds.

The methodology reproduced here:

- each sample is simulated independently: functional fast-forward to the
  warm-up start (reference emulator, cheap), then a co-designed system is
  spun up from that checkpoint;
- during the warm-up window the TOL's promotion thresholds are *downscaled*
  so hot code promotes to superblocks quickly; the original thresholds are
  restored for the measurement window;
- an offline heuristic picks the (scale factor, warm-up length) per sample
  by correlating the basic-block execution frequency distribution reached
  at the end of warm-up against the authoritative distribution of the full
  run, choosing the cheapest configuration that matches well.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.guest.emulator import GuestEmulator
from repro.guest.program import GuestProgram
from repro.guest.syscalls import GuestOS
from repro.timing.config import TimingConfig
from repro.timing.core import InOrderCore
from repro.timing.trace import TimingSession
from repro.tol.config import TolConfig
from repro.system.controller import Controller


def collect_bb_frequencies(program: GuestProgram, start: int,
                           length: int) -> Counter:
    """Authoritative basic-block execution frequencies over a window of
    the dynamic stream (reference emulator)."""
    emu = GuestEmulator(program, os=GuestOS())
    emu.run_to_icount(start)
    freqs: Counter = Counter()
    bb_head = emu.state.eip
    while emu.icount < start + length and not emu.halted:
        instr = emu.step()
        if instr.is_branch:
            freqs[bb_head] += 1
            bb_head = emu.state.eip
    return freqs


def distribution_similarity(a: Counter, b: Counter) -> float:
    """Cosine similarity between two BB frequency distributions."""
    if not a or not b:
        return 0.0
    keys = set(a) | set(b)
    dot = sum(a.get(k, 0) * b.get(k, 0) for k in keys)
    norm = math.sqrt(sum(v * v for v in a.values())) * \
        math.sqrt(sum(v * v for v in b.values()))
    return dot / norm if norm else 0.0


@dataclass
class SampleMeasurement:
    start: int
    length: int
    warmup_length: int
    scale_factor: float
    cpi: float
    detailed_instructions: int
    #: guest instructions executed under the full co-designed stack
    #: (warm-up + measurement): the expensive part of the simulation.
    simulated_guest_insns: int


@dataclass
class SampledResult:
    samples: List[SampleMeasurement]
    cpi: float
    #: detailed-simulation cost (guest insns under TOL+timing).
    cost_guest_insns: int


class WarmupSimulator:
    """Runs sampled simulations with threshold-downscaled TOL warm-up."""

    def __init__(self, program: GuestProgram,
                 tol_config: Optional[TolConfig] = None,
                 timing_config: Optional[TimingConfig] = None):
        self.program = program
        self.tol_config = tol_config if tol_config is not None \
            else TolConfig()
        self.timing_config = timing_config if timing_config is not None \
            else TimingConfig()

    # ------------------------------------------------------------------

    def _fresh_controller(self) -> Tuple[Controller, "Tol"]:
        from dataclasses import replace
        config = replace(self.tol_config)
        controller = Controller(self.program, config=config,
                                validate=False)
        return controller, controller.codesigned.tol

    def simulate_sample(self, start: int, length: int, warmup: int,
                        scale: float) -> SampleMeasurement:
        """Simulate one sample: fast-forward, warm up with downscaled
        thresholds, measure with original thresholds."""
        controller, tol = self._fresh_controller()
        warm_start = max(0, start - warmup)
        # Functional fast-forward: the x86 component skips ahead; the
        # co-designed component starts from its checkpoint.
        controller.x86.run_to_icount(warm_start)
        if controller.x86.os.exited:
            raise ValueError("sample window beyond end of program")
        controller.initialize()
        tol.guest_icount = warm_start

        core = InOrderCore(self.timing_config)
        session = TimingSession(core)
        tol.host.trace_sink = session.sink

        # Warm-up phase: downscaled promotion thresholds.
        original = (self.tol_config.bbm_threshold,
                    self.tol_config.sbm_threshold)
        tol.set_thresholds(max(1, int(original[0] / scale)),
                           max(1, int(original[1] / scale)))
        result = controller.run(until_icount=start)
        if result.exit_code is not None:
            raise ValueError("sample window beyond end of program")

        # Measurement phase: original thresholds, stats delta.
        tol.set_thresholds(*original)
        stats_before = core.finalize()
        insns_before = stats_before.instructions
        cycles_before = stats_before.cycles
        result = controller.run(until_icount=start + length)
        stats_after = core.finalize()
        insns = stats_after.instructions - insns_before
        cycles = stats_after.cycles - cycles_before
        measured_guest = tol.guest_icount - warm_start
        return SampleMeasurement(
            start=start, length=length, warmup_length=warmup,
            scale_factor=scale,
            cpi=cycles / insns if insns else 0.0,
            detailed_instructions=insns,
            simulated_guest_insns=measured_guest,
        )

    # ------------------------------------------------------------------

    def warmup_bb_distribution(self, start: int, warmup: int,
                               scale: float) -> Counter:
        """Translated-code execution distribution after a warm-up run.

        Only *translated* units count: what decides measurement accuracy
        is whether the hot code has already reached its steady-state mode
        in the code cache.  A cold TOL (nothing translated yet) therefore
        scores zero similarity, even though its raw interpreter counters
        would mimic the hot distribution's shape."""
        controller, tol = self._fresh_controller()
        warm_start = max(0, start - warmup)
        controller.x86.run_to_icount(warm_start)
        controller.initialize()
        tol.guest_icount = warm_start
        tol.set_thresholds(
            max(1, int(self.tol_config.bbm_threshold / scale)),
            max(1, int(self.tol_config.sbm_threshold / scale)))
        controller.run(until_icount=start)
        freqs: Counter = Counter()
        for unit in tol.cache.units():
            if unit.mode == "BBM":
                # Not steady state: hot code must reach its final
                # optimization level before measurement is representative
                # (a pending promotion costs tens of thousands of cycles).
                continue
            # Approximate basic-block executions from retired guest
            # instructions (loop units iterate many times per dispatch).
            avg_bb_len = max(1, unit.guest_insn_count
                             // max(1, unit.guest_bb_count))
            freqs[unit.entry_pc] += \
                unit.guest_insns_retired // avg_bb_len
        return freqs

    def pick_configuration(self, start: int, candidates,
                           authoritative: Counter,
                           similarity_floor: float = 0.9):
        """The paper's offline heuristic: among (scale, warmup) candidates
        pick the cheapest whose warm-up BB distribution correlates well
        with the authoritative one; fall back to the best match."""
        scored = []
        for (scale, warmup) in candidates:
            achieved = self.warmup_bb_distribution(start, warmup, scale)
            score = distribution_similarity(achieved, authoritative)
            scored.append((score, warmup, scale))
        good = [s for s in scored if s[0] >= similarity_floor]
        if good:
            _score, warmup, scale = min(good, key=lambda s: s[1])
        else:
            _score, warmup, scale = max(scored, key=lambda s: s[0])
        return scale, warmup

    # ------------------------------------------------------------------

    def run_sampled_auto(self, sample_starts: List[int],
                         sample_length: int, candidates,
                         authoritative_window: int = 0,
                         similarity_floor: float = 0.85) -> SampledResult:
        """Per-sample heuristic configuration (the paper predicts "the
        scaling factor and warm-up length for each sample")."""
        samples = []
        for start in sample_starts:
            window = authoritative_window or start
            authoritative = collect_bb_frequencies(
                self.program, max(0, start - window), window)
            scale, warmup = self.pick_configuration(
                start, candidates, authoritative,
                similarity_floor=similarity_floor)
            samples.append(self.simulate_sample(
                start, sample_length, warmup, scale))
        total_cycles = sum(s.cpi * s.detailed_instructions for s in samples)
        total_insns = sum(s.detailed_instructions for s in samples)
        return SampledResult(
            samples=samples,
            cpi=total_cycles / total_insns if total_insns else 0.0,
            cost_guest_insns=sum(s.simulated_guest_insns for s in samples),
        )

    def run_sampled(self, sample_starts: List[int], sample_length: int,
                    warmup: int, scale: float) -> SampledResult:
        samples = [
            self.simulate_sample(start, sample_length, warmup, scale)
            for start in sample_starts
        ]
        total_cycles = sum(s.cpi * s.detailed_instructions for s in samples)
        total_insns = sum(s.detailed_instructions for s in samples)
        return SampledResult(
            samples=samples,
            cpi=total_cycles / total_insns if total_insns else 0.0,
            cost_guest_insns=sum(s.simulated_guest_insns for s in samples),
        )
