"""Sampling / warm-up simulation methodology (paper §VI-E)."""

from repro.sampling.warmup import (
    SampledResult, SampleMeasurement, WarmupSimulator,
    collect_bb_frequencies, distribution_similarity,
)

__all__ = [
    "SampledResult", "SampleMeasurement", "WarmupSimulator",
    "collect_bb_frequencies", "distribution_similarity",
]
