"""The ``darco`` command line interface.

Mirrors the paper's description of the controller as "the main user
interface of DARCO": run guest programs (assembly files or named
workloads) on the co-designed stack, optionally with timing/power
simulation, inspect TOL statistics, list workloads, and regenerate the
paper's figures.

Examples::

    darco list
    darco run program.s --stats
    darco run 429.mcf --scale 0.2 --timing --power
    darco figures --scale 0.5 --fig 4
    darco speed
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.guest.asmtext import assemble_text
from repro.tol.config import TolConfig


def _load_program(target: str, scale: float):
    """A path ending in .s is assembled; anything else is a workload."""
    if target.endswith(".s"):
        with open(target, "r", encoding="utf-8") as handle:
            return assemble_text(handle.read()), target
    from repro.workloads import get_workload
    workload = get_workload(target)
    return workload.program(scale=scale), workload.name


def _parse_set_pairs(pairs) -> dict:
    overrides = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        overrides[key] = value
    return overrides


def _apply_config_overrides(config: TolConfig, pairs) -> TolConfig:
    try:
        return config.with_overrides(_parse_set_pairs(pairs))
    except ValueError as exc:
        raise SystemExit(str(exc))


def _merged_overrides(args) -> dict:
    """``--set`` pairs plus the dedicated robustness flags
    (``--watchdog-stall-limit`` / ``--event-budget``)."""
    overrides = _parse_set_pairs(getattr(args, "set", None))
    if getattr(args, "watchdog_stall_limit", None) is not None:
        overrides["watchdog_stall_limit"] = args.watchdog_stall_limit
    if getattr(args, "event_budget", None) is not None:
        overrides["event_budget"] = args.event_budget
    return overrides


def _add_budget_args(parser) -> None:
    parser.add_argument("--watchdog-stall-limit", type=int, default=None,
                        metavar="N",
                        help="kill a run after N consecutive events "
                             "with no guest progress (livelock guard)")
    parser.add_argument("--event-budget", type=int, default=None,
                        metavar="N",
                        help="hard cap on controller events per run "
                             "(runaway-application guard)")


# ---------------------------------------------------------------------------
# Subcommands.
# ---------------------------------------------------------------------------


def cmd_run(args) -> int:
    program, name = _load_program(args.target, args.scale)
    config = _apply_config_overrides(TolConfig(), args.set)

    if args.timing or args.power:
        from repro.timing.run import run_with_timing
        result, controller, core = run_with_timing(
            program, tol_config=config, validate=not args.no_validate)
    else:
        from repro.system.controller import run_codesigned
        result, controller = run_codesigned(
            program, config=config, validate=not args.no_validate)
        core = None

    print(f"{name}: exit={result.exit_code} "
          f"guest_insns={result.guest_icount} "
          f"syscalls={result.syscalls} "
          f"data_requests={result.data_requests} "
          f"validations={result.validations}")
    if result.stdout:
        sys.stdout.write("--- guest stdout ---\n")
        sys.stdout.write(result.stdout.decode("utf-8", "replace"))
        sys.stdout.write("\n--------------------\n")
    if args.stats:
        from repro.debug.tracing import tol_stats_dump
        for key, value in tol_stats_dump(
                controller.codesigned.tol).items():
            print(f"  {key:26s}: {value}")
    if core is not None and args.timing:
        print("timing:")
        for key, value in core.report().items():
            print(f"  {key:26s}: {value}")
    if core is not None and args.power:
        from repro.power.model import PowerModel
        report = PowerModel(core.config).report(core)
        print("power:")
        print(f"  average power (W)         : "
              f"{report.average_power_w:.3f}")
        print(f"  energy per instr (pJ)     : "
              f"{report.energy_per_instruction_pj:.2f}")
        for key, fraction in sorted(report.breakdown().items(),
                                    key=lambda kv: -kv[1]):
            print(f"  dynamic {key:18s}: {fraction:.1%}")
    return 0 if result.exit_code == 0 else int(result.exit_code or 1)


def cmd_list(args) -> int:
    from repro.workloads import all_workloads
    by_suite = {}
    for workload in all_workloads():
        by_suite.setdefault(workload.suite, []).append(workload)
    for suite, items in by_suite.items():
        print(f"{suite}:")
        for w in items:
            print(f"  {w.name:<18} {w.description}")
    return 0


def cmd_figures(args) -> int:
    from repro.harness.figures import (
        fig4_table, fig5_table, fig6_table, fig7_table,
        run_suite_metrics, shape_checks,
    )
    metrics = run_suite_metrics(scale=args.scale,
                                validate=args.validate,
                                jobs=args.jobs,
                                use_cache=not args.no_cache,
                                cache_dir=args.cache_dir)
    tables = {"4": ("Figure 4: mode distribution", fig4_table),
              "5": ("Figure 5: emulation cost", fig5_table),
              "6": ("Figure 6: TOL overhead", fig6_table),
              "7": ("Figure 7: overhead breakdown", fig7_table)}
    wanted = tables.keys() if args.fig == "all" else [args.fig]
    for key in wanted:
        title, fn = tables[key]
        print(f"\n=== {title} ===")
        print(fn(metrics))
    print("\nshape checks:")
    for name, ok in shape_checks(metrics).items():
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
    return 0


def cmd_speed(args) -> int:
    from repro.harness.speed import measure_speed
    report = measure_speed(args.workload, scale=args.scale)
    print(report.table())
    return 0


def cmd_inject(args) -> int:
    """Seeded fault-injection campaign against the resilience layer.

    Exit status is 0 iff every *triggered* fault was caught — recovered
    by the controller or quarantined by the TOL's escalation ladder —
    and every run's final guest state matched the clean authoritative
    reference."""
    from repro.resilience.campaign import (
        DEFAULT_SITES, run_campaign,
    )
    from repro.resilience.faults import SITES

    sites = tuple(args.site) if args.site else DEFAULT_SITES
    for site in sites:
        if site not in SITES:
            raise SystemExit(f"unknown fault site {site!r}; valid: "
                             f"{', '.join(SITES)}")

    def progress(record, done, total):
        if not args.json:
            print(f"  [{done}/{total}] {record.site}#{record.ordinal}"
                  f" -> {record.status}", file=sys.stderr)

    overrides = _merged_overrides(args)
    report = run_campaign(args.seed, n=args.faults, sites=sites,
                          mode=args.mode, n_jobs=args.jobs or 1,
                          progress=progress if args.jobs in (None, 1)
                          else None,
                          config_overrides=overrides or None)
    if args.json:
        import json
        payload = {
            "schema_version": 1,
            "seed": report.seed,
            "mode": report.mode,
            "signature": report.signature(),
            "by_status": report.by_status,
            "all_triggered_caught": report.all_triggered_caught,
            "records": [
                {"site": r.site, "ordinal": r.ordinal, "salt": r.salt,
                 "status": r.status, "triggered": r.triggered,
                 "incidents": r.incidents,
                 "incident_kinds": list(r.incident_kinds),
                 "quarantined": r.quarantined,
                 "recoveries": r.recoveries,
                 "final_match": r.final_match,
                 "log_signature": r.log_signature,
                 "error": r.error}
                for r in report.records],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.table())
        print(f"campaign seed={report.seed} mode={report.mode} "
              f"signature={report.signature()[:16]}")
    ok = (report.all_triggered_caught
          and "failed" not in report.by_status)
    if not args.json:
        print("RESULT: PASS — every triggered fault was caught"
              if ok else "RESULT: FAIL — uncaught faults present")
    return 0 if ok else 1


def cmd_sweep(args) -> int:
    import time

    from repro.harness.figures import (
        fig4_table, fig5_table, fig6_table, fig7_table, shape_checks,
    )
    from repro.harness.parallel import (
        ResultCache, merged_telemetry, print_progress, retry_summary,
        serialize_params, suite_sweep_jobs, sweep, telemetry_digest,
    )
    overrides = _merged_overrides(args)
    try:
        config = TolConfig().with_overrides(overrides) \
            if overrides else None
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.arch and args.timing:
        print("--arch and --timing are mutually exclusive",
              file=sys.stderr)
        return 1
    if args.arch:
        task = "arch_run"
    elif args.timing:
        task = "timing_report"
    else:
        task = "workload_metrics"
    sweep_jobs = suite_sweep_jobs(scale=args.scale, config=config,
                                  workloads=args.workload or None,
                                  validate=args.validate, task=task)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    start = time.perf_counter()
    results = sweep(sweep_jobs, n_jobs=args.jobs,
                    use_cache=not args.no_cache, cache=cache,
                    timeout=args.timeout, progress=print_progress,
                    checkpoint_dir=args.checkpoint_dir,
                    checkpoint_every=args.checkpoint_every,
                    resume=args.resume, retries=args.retries)
    wall = time.perf_counter() - start
    failed = [r for r in results if not r.ok]
    hits = cache.hits if cache is not None else 0
    print(f"\nsweep: {len(results) - len(failed)}/{len(results)} tasks ok, "
          f"{hits} cache hits, {wall:.1f}s wall "
          f"(jobs={args.jobs or 'auto'}, "
          f"cache={'off' if args.no_cache else args.cache_dir})")
    retried = retry_summary(results)
    if retried["extra_attempts"]:
        print(f"retries: {retried['tasks_retried']} task(s) retried, "
              f"{retried['extra_attempts']} extra attempt(s), "
              f"{retried['rescued']} rescued by retry")
    from repro.harness.parallel import SWEEP_ERROR_COUNTERS, SWEEP_ERROR_LOG
    swallowed = SWEEP_ERROR_COUNTERS.get("sweep.errors.swallowed", 0)
    if swallowed:
        print(f"sweep.errors.swallowed={swallowed} (unexpected exceptions "
              f"absorbed by the harness; most recent below)")
        for context, summary in list(SWEEP_ERROR_LOG)[-5:]:
            print(f"  {context}: {summary}")
    if args.out:
        # Deterministic result artifact: only resume-stable fields go
        # in (attempts/durations vary run to run), so a resumed sweep's
        # output is byte-identical to an uninterrupted one.
        from pathlib import Path

        from repro.ioutil import write_artifact
        payload = {"results": [
            {"task": r.job.task,
             "label": r.job.label,
             "params": serialize_params(r.job.params),
             "ok": r.ok,
             "value": (r.value.as_dict()
                       if hasattr(r.value, "as_dict")
                       else serialize_params(r.value)),
             "telemetry_digest": telemetry_digest(r.value),
             "error": r.error,
             "stderr_tail": r.stderr_tail}
            for r in results]}
        write_artifact(args.out, "sweep_results", 1, payload)
        print(f"wrote {args.out}")
        merged = merged_telemetry(results)
        if merged is not None:
            telemetry_path = Path(args.out).with_suffix(".telemetry.json")
            merged.save(telemetry_path)
            print(f"wrote {telemetry_path} (merged telemetry of "
                  f"{sum(1 for r in results if r.ok)} tasks)")
    for r in failed:
        print(f"\nFAILED {r.job.label} after {r.attempts} attempt(s):")
        for line in r.error.rstrip().splitlines():
            print(f"  {line}")
    if failed:
        return 1
    if args.figures and (args.arch or args.timing):
        print("--figures needs performance metrics; rerun without "
              "--arch/--timing", file=sys.stderr)
        return 1
    if args.figures:
        metrics = [r.value for r in results]
        for title, fn in (("Figure 4: mode distribution", fig4_table),
                          ("Figure 5: emulation cost", fig5_table),
                          ("Figure 6: TOL overhead", fig6_table),
                          ("Figure 7: overhead breakdown", fig7_table)):
            print(f"\n=== {title} ===")
            print(fn(metrics))
        print("\nshape checks:")
        for name, ok in shape_checks(metrics).items():
            print(f"  {'PASS' if ok else 'FAIL'}  {name}")
    return 0


def _print_snapshot(snapshot, show_zeros: bool = False) -> None:
    """Human-readable instrument table for a telemetry snapshot."""
    print("counters:")
    for name, value in snapshot.counters.items():
        if value or show_zeros:
            print(f"  {name:36s} {value}")
    if snapshot.gauges:
        print("gauges:")
        for name, value in snapshot.gauges.items():
            if value or show_zeros:
                print(f"  {name:36s} {value:g}")
    if snapshot.histograms:
        print("histograms:")
        for name, hist in snapshot.histograms.items():
            count = hist.get("count", 0)
            if not count and not show_zeros:
                continue
            mean = hist.get("total", 0) / count if count else 0.0
            print(f"  {name:36s} n={count} mean={mean:.1f}")


def cmd_metrics(args) -> int:
    """Dump a workload's metrics snapshot, or diff two saved snapshots."""
    if args.diff:
        from repro.ioutil import SchemaError
        from repro.telemetry import TelemetrySnapshot
        try:
            before = TelemetrySnapshot.load(args.diff[0])
            after = TelemetrySnapshot.load(args.diff[1])
        except SchemaError as exc:
            print(f"cannot load snapshot: {exc}", file=sys.stderr)
            return 1
        delta = before.diff(after)
        print(f"counter deltas ({args.diff[1]} - {args.diff[0]}):")
        for name, value in delta["counters"].items():
            if value or args.all:
                print(f"  {name:36s} {value:+d}")
        if delta["gauges"]:
            print("gauge changes (before -> after):")
            for name, (va, vb) in delta["gauges"].items():
                print(f"  {name:36s} {va} -> {vb}")
        changed_hists = {n: d for n, d in delta["histograms"].items() if d}
        if changed_hists:
            print("histogram observation deltas:")
            for name, value in changed_hists.items():
                print(f"  {name:36s} {value:+d}")
        return 0

    if not args.target:
        raise SystemExit("metrics needs a target (or --diff A B)")
    program, name = _load_program(args.target, args.scale)
    config = _apply_config_overrides(TolConfig(), args.set)
    if config.telemetry == "off":
        # The whole point of this command is a snapshot.
        config = replace(config, telemetry="counters")
    if args.timing:
        from repro.timing.run import run_with_timing
        result, _controller, core = run_with_timing(
            program, tol_config=config, validate=not args.no_validate)
    else:
        from repro.system.controller import run_codesigned
        result, _controller = run_codesigned(
            program, config=config, validate=not args.no_validate)
        core = None
    print(f"{name}: exit={result.exit_code} "
          f"guest_insns={result.guest_icount}")
    if core is not None:
        print("timing report:")
        for key, value in core.report().items():
            print(f"  {key:26s}: {value}")
    _print_snapshot(result.telemetry, show_zeros=args.all)
    if args.out:
        digest = result.telemetry.save(args.out)
        print(f"wrote {args.out} ({digest[:12]})")
    return 0 if result.exit_code == 0 else int(result.exit_code or 1)


def cmd_trace(args) -> int:
    """Run a workload in full-trace mode and export the span trace, or
    (--job/--trace-id) merge a served job's distributed span files into
    one Perfetto timeline."""
    if args.job or args.trace_id:
        return _cmd_trace_merge(args)
    if not args.target:
        raise SystemExit("need a workload target (or --job/--trace-id "
                         "to merge a served job's trace)")
    program, name = _load_program(args.target, args.scale)
    config = _apply_config_overrides(TolConfig(), args.set)
    config = replace(config, telemetry="full")
    from repro.system.controller import run_codesigned
    result, controller = run_codesigned(
        program, config=config, validate=not args.no_validate)
    tracer = controller.telemetry.tracer
    tracer.write_chrome(args.out)
    print(f"{name}: exit={result.exit_code} "
          f"guest_insns={result.guest_icount}")
    print(f"wrote {args.out} ({len(tracer.events)} events, "
          f"{tracer.dropped} dropped) — load in Perfetto "
          f"(ui.perfetto.dev) or chrome://tracing")
    if args.jsonl:
        tracer.write_jsonl(args.jsonl)
        print(f"wrote {args.jsonl}")
    return 0 if result.exit_code == 0 else int(result.exit_code or 1)


def _cmd_trace_merge(args) -> int:
    """Assemble one timeline for a served job from the per-process span
    files (client + service + workers).  Works offline: only the trace
    directory is read, no live service needed."""
    from repro.telemetry.tracemerge import write_merged_trace

    doc = write_merged_trace(args.trace_dir, args.out,
                             trace_id=args.trace_id, job=args.job)
    events = [ev for ev in doc["traceEvents"] if ev.get("ph") != "M"]
    other = doc.get("otherData", {})
    if not events:
        print(f"no spans matching "
              f"{'job ' + args.job if args.job else ''}"
              f"{'trace ' + args.trace_id if args.trace_id else ''} "
              f"under {args.trace_dir} "
              f"(is the service tracing? see darco serve --tracing)",
              file=sys.stderr)
        return 1
    span_ms = max((ev.get("ts", 0) + ev.get("dur", 0)
                   for ev in events), default=0) / 1000.0
    print(f"wrote {args.out} ({len(events)} events from "
          f"{len(other.get('span_files', []))} span files, "
          f"{span_ms:.1f}ms timeline, trace ids: "
          f"{', '.join(other.get('trace_ids', [])) or '-'}) — load in "
          f"Perfetto (ui.perfetto.dev) or chrome://tracing")
    return 0


def cmd_repro(args) -> int:
    """Replay a divergence repro bundle deterministically.

    Exit status: 0 when the bundle's failure reproduces, 2 when the
    replay runs clean (the bug did not reproduce), 1 when the bundle
    cannot be loaded."""
    from repro.ioutil import SchemaError
    from repro.snapshot.bundle import load_bundle, replay_bundle

    try:
        bundle = load_bundle(args.bundle)
    except SchemaError as exc:
        print(f"cannot load bundle: {exc}", file=sys.stderr)
        return 1

    fault = bundle.fault
    print(f"bundle: reason={bundle.reason} "
          f"guest_icount={bundle.guest_icount} "
          f"incidents={len(bundle.incidents)} "
          f"signature={bundle.incident_signature[:16]}")
    if bundle.error:
        print(f"  error: {bundle.error}")
    if fault:
        print(f"  fault: site={fault['site']} ordinal={fault['ordinal']} "
              f"salt={fault['salt']:#x}")
    if args.from_checkpoint and bundle.checkpoint is None:
        print("bundle carries no checkpoint; replaying from program "
              "start", file=sys.stderr)

    outcome, controller = replay_bundle(
        bundle, max_events=args.max_events,
        from_checkpoint=args.from_checkpoint and bundle.checkpoint
        is not None)
    status = "REPRODUCED" if outcome.reproduced else "did not reproduce"
    print(f"replay: {status} "
          f"(diverged={outcome.diverged} kinds={outcome.kinds} "
          f"exit={outcome.exit_code})")
    if outcome.error:
        print(f"  replay error: {outcome.error}")

    if args.find and outcome.reproduced:
        from repro.debug.divergence import find_divergence
        from repro.guest.syscalls import GuestOS
        stdin, seed = bundle.os_stdin, bundle.os_seed
        div = find_divergence(
            bundle.program, config=bundle.config, fault=fault,
            os_factory=lambda: GuestOS(stdin=stdin, rand_seed=seed))
        print(f"find_divergence: {div}" if div is not None
              else "find_divergence: no dispatch-level divergence "
                   "(incident was caught before state escaped)")

    if args.minimize and outcome.reproduced:
        from repro.snapshot.minimize import format_program, minimize_bundle
        minimized = minimize_bundle(
            bundle, max_events=args.max_events or 200_000)
        print(f"minimized: {minimized.original_instructions} -> "
              f"{minimized.instructions} instructions "
              f"({minimized.tests_run} oracle runs, "
              f"compacted={minimized.compacted})")
        print(format_program(minimized.program))

    return 0 if outcome.reproduced else 2


def _parse_plant(spec: str) -> dict:
    """``site:ordinal:salt@exec`` -> FuzzConfig.plant dict."""
    try:
        body, sep, exec_s = spec.partition("@")
        if not sep:
            raise ValueError("missing @exec")
        site, ordinal, salt = body.split(":")
        return {"site": site, "ordinal": int(ordinal),
                "salt": int(salt, 0), "exec": int(exec_s)}
    except (ValueError, TypeError):
        raise SystemExit(
            f"--plant expects SITE:ORDINAL:SALT@EXEC "
            f"(e.g. host_bitflip:0:0x1@2), got {spec!r}")


def cmd_fuzz(args) -> int:
    """Run a coverage-guided differential fuzz campaign.

    Exit status: 0 when the campaign completed and every finding was
    fully triaged (minimized where enabled and confirmed by replay),
    1 when any finding failed to confirm."""
    import json

    from repro.fuzz import FuzzConfig, run_campaign

    config = FuzzConfig(
        seed=args.seed, budget=args.budget,
        jobs=args.jobs or 1, batch=args.batch,
        sanitize=not args.no_sanitize,
        timing_every=args.timing_every,
        max_events=args.max_events, step_cap=args.step_cap,
        repro_dir=args.repro_dir, corpus_dir=args.corpus_dir,
        overrides=_parse_set_pairs(args.set),
        plant=_parse_plant(args.plant) if args.plant else None,
        minimize=not args.no_minimize,
        confirm=not args.no_confirm)

    def progress(executed, budget, edges, n_findings):
        print(f"  fuzz: {executed}/{budget} execs  {edges} edges  "
              f"{n_findings} findings", file=sys.stderr)

    result = run_campaign(config, progress=progress)

    if args.json or args.out:
        text = json.dumps(result.as_dict(), indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.out}")
        if args.json:
            print(text)
    else:
        print(f"campaign: {result.executions} execs in "
              f"{result.elapsed_s:.1f}s "
              f"({result.execs_per_sec:.2f} execs/s)  "
              f"seed={config.seed} jobs={config.jobs}")
        classified = " ".join(f"{k}={v}" for k, v in
                              sorted(result.classified.items()))
        print(f"classified: {classified}")
        print(f"coverage: {len(result.coverage)} edges  "
              f"digest={result.coverage_digest[:16]}")
        print(f"corpus: {result.corpus_size} entries")
        print(f"findings: {len(result.findings)}")
        for f in result.findings:
            print(f"  [{f.kind}] leg={f.leg} exec={f.exec_index} "
                  f"sig={f.signature[:16]} dupes={f.duplicates}")
            if f.minimized_instructions is not None:
                print(f"    minimized: {f.original_instructions} -> "
                      f"{f.minimized_instructions} instructions")
            if f.confirmed is not None:
                print(f"    confirmed: {f.confirmed}")
            if f.bundle_path:
                print(f"    bundle: {f.bundle_path}")

    untriaged = [f for f in result.findings
                 if not args.no_confirm and f.confirmed is not True]
    return 1 if untriaged else 0


DEFAULT_SOCKET = ".darco-serve.sock"


def _serve_client(args):
    from repro.serve.client import ServeClient
    if args.port:
        return ServeClient(host=args.host, port=args.port,
                           timeout=args.rpc_timeout)
    return ServeClient(socket_path=args.socket, timeout=args.rpc_timeout)


def cmd_serve(args) -> int:
    """Run the fault-tolerant simulation service until shutdown."""
    import asyncio

    from repro.harness.retry import RetryPolicy
    from repro.serve import ServeConfig, ServeService

    retry = RetryPolicy(max_attempts=max(1, args.max_attempts),
                        base_delay_s=0.05, max_delay_s=2.0, jitter=0.5)
    config = ServeConfig(
        socket_path=None if args.port is not None else args.socket,
        host=args.host, port=args.port,
        workers=args.workers, max_pending=args.max_pending,
        default_deadline_s=args.deadline, retry=retry,
        use_cache=not args.no_cache, cache_dir=args.cache_dir,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        stale_serve=not args.no_stale,
        tracing=args.tracing, trace_dir=args.trace_dir,
        metrics_interval_s=args.metrics_interval,
        timeseries_capacity=args.timeseries_capacity)
    service = ServeService(config)

    async def _main():
        await service.start()
        print(f"darco serve: listening on {service.endpoint} "
              f"({config.workers} workers, queue {config.max_pending}, "
              f"cache={'off' if args.no_cache else args.cache_dir})",
              flush=True)
        try:
            await service.serve_until_shutdown()
        except asyncio.CancelledError:
            await service.stop()
            raise

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args) -> int:
    """Submit one job; optionally wait for (and print) its result."""
    import json

    from repro.serve.client import ServeError

    params = {}
    if args.params:
        try:
            decoded = json.loads(args.params)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--params is not valid JSON: {exc}")
        if not isinstance(decoded, dict):
            raise SystemExit("--params must be a JSON object")
        params.update(decoded)
    for pair in args.param or ():
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        try:
            params[key] = json.loads(value)
        except json.JSONDecodeError:
            params[key] = value
    overrides = _parse_set_pairs(args.set)
    if overrides:
        base = params.get("config")
        params["config"] = ({**base, **overrides}
                            if isinstance(base, dict) else overrides)
    extra = {}
    if args.deadline is not None:
        extra["deadline_s"] = args.deadline
    if args.max_attempts is not None:
        extra["max_attempts"] = args.max_attempts

    # Distributed tracing: mint the trace context here, at the very
    # start of the job's lifecycle, and record the submit RPC as the
    # timeline's first span.  Without --trace the server decides
    # (its --tracing default); --trace off suppresses even that.
    ctx = spans = None
    if args.trace is not None:
        from repro.telemetry.tracectx import (
            SpanFileWriter, TraceContext, epoch_us, mint_trace_id)
        ctx = TraceContext(trace_id=args.trace_id or mint_trace_id(),
                           mode=args.trace)
        if args.trace != "off":
            spans = SpanFileWriter(args.trace_dir, "client")
        extra["trace"] = ctx.as_wire()

    try:
        with _serve_client(args) as client:
            if spans is not None:
                submit_start = epoch_us()
            reply = client.submit(args.task, params,
                                  label=args.label or "", **extra)
            code = reply.get("code")
            if spans is not None and "job" in reply:
                spans.complete("submit", "client", submit_start,
                               epoch_us(),
                               ctx=ctx.with_job(reply["job"]),
                               code=code, task=args.task)
            if code == 429:
                print(f"shed: {reply.get('error')} "
                      f"(retry after {reply.get('retry_after_s')}s)",
                      file=sys.stderr)
                return 2
            if reply.get("error"):
                print(f"submit failed ({code}): {reply['error']}",
                      file=sys.stderr)
                return 1
            note = "".join((
                ", coalesced" if reply.get("coalesced") else "",
                ", cached" if reply.get("cached") else "",
                ", STALE" if reply.get("stale") else ""))
            trace_note = (f" trace {reply['trace_id']}"
                          if reply.get("trace_id") else "")
            print(f"job {reply['job']} {reply['state']} "
                  f"(code {code}{note}){trace_note}")
            if not args.wait:
                return 0
            if spans is not None:
                wait_start = epoch_us()
            final = client.wait(reply["job"], timeout=args.timeout)
            if spans is not None:
                spans.complete("wait", "client", wait_start, epoch_us(),
                               ctx=ctx.with_job(reply["job"]),
                               state=final.get("state"))
            print(json.dumps(final, indent=2, sort_keys=True))
            return 0 if final.get("state") == "done" else 1
    except ServeError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1


def cmd_serve_status(args) -> int:
    """Job status (with --watch streaming) or, without a job id, the
    service healthz summary."""
    import json

    from repro.serve.client import ServeError

    try:
        with _serve_client(args) as client:
            if args.job and args.watch:
                for update in client.watch(args.job):
                    if update.get("error"):
                        print(f"serve: {update['error']}",
                              file=sys.stderr)
                        return 1
                    print(f"{update.get('state'):<11} "
                          f"attempts={update.get('attempts')} "
                          f"{(update.get('events') or [''])[-1]}")
                return 0
            if args.job:
                reply = client.status(args.job)
                if reply.get("error"):
                    print(f"serve: {reply['error']}", file=sys.stderr)
                    return 1
                print(json.dumps(reply, indent=2, sort_keys=True))
                return 0
            health = client.healthz()
            if args.json:
                print(json.dumps(health, indent=2, sort_keys=True))
                return 0
            queue = health["queue"]
            print(f"serve at {health['endpoint']}: live, "
                  f"up {health['uptime_s']}s, "
                  f"saturation {health['saturation']:.2f} "
                  f"(pending {queue['pending']}/{queue['capacity']})")
            for name, pct in (health.get("latency") or {}).items():
                print(f"  {name:14s} p50={pct.get('p50', 0.0):g}ms "
                      f"p95={pct.get('p95', 0.0):g}ms "
                      f"p99={pct.get('p99', 0.0):g}ms")
            host = health["host"]
            load = host.get("loadavg") or {}
            print(f"host: {host['cpu_count']} cpus "
                  f"({host['available_cpus']} available), "
                  f"load {load.get('1m', '?')}")
            for worker in health["workers"]:
                print(f"  worker {worker['index']}: {worker['state']} "
                      f"pid={worker['pid']} spawns={worker['spawns']} "
                      f"done={worker['jobs_done']}")
            print("jobs: " + " ".join(
                f"{state}={count}"
                for state, count in health["jobs"].items()))
            for name, value in sorted(health["counters"].items()):
                print(f"  {name:28s} {value}")
            return 0
    except ServeError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1


KIND_POSTMORTEM = "job_postmortem"
POSTMORTEM_SCHEMA_VERSION = 1


def _write_postmortem(path, reply) -> None:
    """Persist a failed job's record — flight recorder included — as a
    versioned artifact for offline triage."""
    from repro.ioutil import write_artifact
    write_artifact(path, KIND_POSTMORTEM, POSTMORTEM_SCHEMA_VERSION,
                   reply)
    print(f"wrote postmortem {path}", file=sys.stderr)


def cmd_fetch(args) -> int:
    """Fetch a completed job's value (exit 1: failed, 2: not done)."""
    import json

    from repro.serve.client import ServeError

    try:
        with _serve_client(args) as client:
            reply = client.fetch(args.job) if not args.wait \
                else client.wait(args.job, timeout=args.timeout)
    except ServeError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    if reply.get("error") and "value" not in reply:
        print(f"serve: {reply['error']}", file=sys.stderr)
        return 1
    state = reply.get("state")
    if state == "failed":
        print(f"job {args.job} failed after "
              f"{reply.get('attempts')} attempt(s): "
              f"{reply.get('last_error')}", file=sys.stderr)
        flight = reply.get("flight")
        if flight and flight.get("events"):
            print(f"flight recorder ({len(flight['events'])} events, "
                  f"{flight.get('dropped', 0)} dropped):",
                  file=sys.stderr)
            for ev in flight["events"]:
                detail = {k: v for k, v in ev.items()
                          if k not in ("t", "kind", "name")}
                print(f"  {ev.get('kind', '?'):8s} "
                      f"{ev.get('name', '?'):16s} "
                      f"{json.dumps(detail, sort_keys=True)}",
                      file=sys.stderr)
        if args.postmortem:
            _write_postmortem(args.postmortem, reply)
        return 1
    if state != "done":
        print(f"job {args.job} not done yet (state {state!r}); "
              f"use --wait", file=sys.stderr)
        return 2
    if reply.get("stale"):
        print(f"NOTE: stale result (computed at source fingerprint "
              f"{reply.get('stale_fingerprint', '')[:12]})",
              file=sys.stderr)
    text = json.dumps(reply, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_top(args) -> int:
    """Live service dashboard (curses-free); --once prints one frame."""
    import time as _time

    from repro.serve.client import ServeError
    from repro.serve.dashboard import render

    def frame(client) -> str:
        health = client.healthz()
        try:
            series = client.timeseries(n=args.window)
        except ServeError:
            series = {}
        return render(health, (series or {}).get("timeseries"),
                      top_n=args.top)

    try:
        with _serve_client(args) as client:
            if args.once:
                print(frame(client))
                return 0
            while True:
                text = frame(client)
                # ANSI home + clear-to-end: a poor man's curses that
                # works on every terminal the test suite cares about.
                sys.stdout.write("\x1b[H\x1b[2J" + text + "\n")
                sys.stdout.flush()
                _time.sleep(max(0.2, args.interval))
    except KeyboardInterrupt:
        return 0
    except ServeError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="darco",
        description="DARCO: simulation infrastructure for HW/SW "
                    "co-designed processors (ISPASS 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a .s file or named workload")
    run_p.add_argument("target", help="assembly file (*.s) or workload")
    run_p.add_argument("--scale", type=float, default=1.0,
                       help="workload scale factor")
    run_p.add_argument("--timing", action="store_true",
                       help="attach the timing simulator")
    run_p.add_argument("--power", action="store_true",
                       help="report power/energy (implies timing model)")
    run_p.add_argument("--stats", action="store_true",
                       help="print TOL statistics")
    run_p.add_argument("--no-validate", action="store_true",
                       help="skip authoritative state validation")
    run_p.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override a TolConfig field (repeatable)")
    run_p.set_defaults(fn=cmd_run)

    list_p = sub.add_parser("list", help="list the workload suite")
    list_p.set_defaults(fn=cmd_list)

    fig_p = sub.add_parser("figures",
                           help="regenerate the paper's figures")
    fig_p.add_argument("--fig", choices=["4", "5", "6", "7", "all"],
                       default="all")
    fig_p.add_argument("--scale", type=float, default=1.0)
    fig_p.add_argument("--validate", action="store_true")
    fig_p.add_argument("--jobs", "-j", type=int, default=None,
                       help="parallel worker processes "
                            "(default: sequential)")
    fig_p.add_argument("--no-cache", action="store_true",
                       help="disable the persistent result cache")
    fig_p.add_argument("--cache-dir", default=".repro_cache",
                       help="result cache directory "
                            "(default: .repro_cache)")
    fig_p.set_defaults(fn=cmd_figures)

    sweep_p = sub.add_parser(
        "sweep",
        help="fan the workload suite out over worker processes with a "
             "persistent result cache")
    sweep_p.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes (default: cpu count)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="disable the persistent result cache")
    sweep_p.add_argument("--cache-dir", default=".repro_cache",
                         help="result cache directory "
                              "(default: .repro_cache)")
    sweep_p.add_argument("--scale", type=float, default=1.0,
                         help="workload scale factor")
    sweep_p.add_argument("--workload", action="append", metavar="NAME",
                         help="restrict to this workload (repeatable; "
                              "default: the full paper suite)")
    sweep_p.add_argument("--validate", action="store_true",
                         help="enable authoritative state validation")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-task timeout in seconds")
    sweep_p.add_argument("--set", action="append", metavar="KEY=VALUE",
                         help="override a TolConfig field (repeatable)")
    sweep_p.add_argument("--figures", action="store_true",
                         help="print the figure tables after the sweep")
    sweep_p.add_argument("--arch", action="store_true",
                         help="run architectural (checkpointable) tasks "
                              "instead of performance metrics")
    sweep_p.add_argument("--timing", action="store_true",
                         help="run detailed-timing tasks (cycle reports "
                              "via the annotated fast path) instead of "
                              "performance metrics")
    sweep_p.add_argument("--checkpoint-dir", default=None,
                         help="write per-task checkpoints here; enables "
                              "crash-resumable sweeps for --arch tasks")
    sweep_p.add_argument("--checkpoint-every", type=int, default=1,
                         help="checkpoint cadence in validation "
                              "boundaries (default: 1)")
    sweep_p.add_argument("--resume", action="store_true",
                         help="resume interrupted tasks from their last "
                              "checkpoint (rerun the same sweep command "
                              "after a crash or kill)")
    sweep_p.add_argument("--out", default=None, metavar="PATH",
                         help="write a deterministic JSON result "
                              "artifact (resume-stable fields only)")
    sweep_p.add_argument("--retries", type=int, default=None,
                         metavar="N",
                         help="extra attempts per failed task "
                              "(default: 1 immediate retry)")
    _add_budget_args(sweep_p)
    sweep_p.set_defaults(fn=cmd_sweep)

    repro_p = sub.add_parser(
        "repro",
        help="replay a divergence repro bundle deterministically "
             "(exit 0 iff the failure reproduces)")
    repro_p.add_argument("bundle", help="path to a bundle-*.json file")
    repro_p.add_argument("--from-checkpoint", action="store_true",
                         help="replay from the bundle's embedded "
                              "checkpoint instead of program start")
    repro_p.add_argument("--find", action="store_true",
                         help="run the dispatch-level divergence finder "
                              "on a reproduced failure")
    repro_p.add_argument("--minimize", action="store_true",
                         help="delta-debug the guest program down to a "
                              "minimal diverging instruction sequence")
    repro_p.add_argument("--max-events", type=int, default=None,
                         help="cap replay length in controller events")
    repro_p.set_defaults(fn=cmd_repro)

    inject_p = sub.add_parser(
        "inject",
        help="run a seeded fault-injection campaign against the "
             "resilience layer (exit 0 iff every triggered fault was "
             "recovered or quarantined)")
    inject_p.add_argument("--seed", type=int, default=7,
                          help="campaign master seed (default: 7)")
    inject_p.add_argument("--faults", "-n", type=int, default=50,
                          help="number of faults to plan (default: 50)")
    inject_p.add_argument("--site", action="append", metavar="SITE",
                          help="restrict to this fault site "
                               "(repeatable; default: every site that "
                               "fires on the campaign workload)")
    inject_p.add_argument("--mode", choices=["recover", "strict"],
                          default="recover",
                          help="recovery_mode for the campaign runs "
                               "(default: recover)")
    inject_p.add_argument("--jobs", "-j", type=int, default=None,
                          help="fan the campaign out over worker "
                               "processes (default: sequential)")
    inject_p.add_argument("--json", action="store_true",
                          help="emit the full report as JSON")
    inject_p.add_argument("--set", action="append", metavar="KEY=VALUE",
                          help="override a TolConfig field for every "
                               "campaign run (repeatable)")
    _add_budget_args(inject_p)
    inject_p.set_defaults(fn=cmd_inject)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="coverage-guided differential fuzz campaign across the "
             "execution tiers with auto-minimized repro triage "
             "(exit 0 iff every finding confirmed)")
    fuzz_p.add_argument("--seed", type=int, default=1,
                        help="campaign master seed (default: 1)")
    fuzz_p.add_argument("--budget", "-n", type=int, default=200,
                        help="candidate executions (default: 200)")
    fuzz_p.add_argument("--jobs", "-j", type=int, default=None,
                        help="fan candidates out over worker processes "
                             "(default: sequential; the mutant stream "
                             "and results are identical at any value)")
    fuzz_p.add_argument("--batch", type=int, default=16,
                        help="candidates per scheduling round "
                             "(default: 16)")
    fuzz_p.add_argument("--plant", metavar="SITE:ORD:SALT@EXEC",
                        default=None,
                        help="plant a deterministic fault on one "
                             "execution (campaign self-test, e.g. "
                             "host_bitflip:0:0x1@2)")
    fuzz_p.add_argument("--repro-dir", default=None, metavar="DIR",
                        help="write self-contained repro bundles for "
                             "findings here")
    fuzz_p.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="extra seed programs (corpus JSON files)")
    fuzz_p.add_argument("--timing-every", type=int, default=0,
                        metavar="N",
                        help="run the annotated-timing oracle leg on "
                             "every Nth candidate (default: off)")
    fuzz_p.add_argument("--max-events", type=int, default=100_000,
                        help="controller event budget per oracle leg "
                             "(runaway mutants classify as 'runaway' "
                             "and are skipped)")
    fuzz_p.add_argument("--step-cap", type=int, default=400_000,
                        help="reference-interpreter step cap per "
                             "candidate")
    fuzz_p.add_argument("--no-sanitize", action="store_true",
                        help="do not run the TOL invariant sanitizer "
                             "during oracle legs")
    fuzz_p.add_argument("--no-minimize", action="store_true",
                        help="skip ddmin minimization of findings")
    fuzz_p.add_argument("--no-confirm", action="store_true",
                        help="skip confirming findings by bundle replay")
    fuzz_p.add_argument("--json", action="store_true",
                        help="emit the full campaign result as JSON")
    fuzz_p.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON campaign result here")
    fuzz_p.add_argument("--set", action="append", metavar="KEY=VALUE",
                        help="override a TolConfig field for every "
                             "oracle leg (repeatable)")
    fuzz_p.set_defaults(fn=cmd_fuzz)

    metrics_p = sub.add_parser(
        "metrics",
        help="run a workload and dump its telemetry snapshot, or diff "
             "two saved snapshots (--diff)")
    metrics_p.add_argument("target", nargs="?", default=None,
                           help="assembly file (*.s) or workload")
    metrics_p.add_argument("--scale", type=float, default=1.0,
                           help="workload scale factor")
    metrics_p.add_argument("--no-validate", action="store_true",
                           help="skip authoritative state validation")
    metrics_p.add_argument("--set", action="append", metavar="KEY=VALUE",
                           help="override a TolConfig field (repeatable)")
    metrics_p.add_argument("--all", action="store_true",
                           help="include zero-valued instruments")
    metrics_p.add_argument("--timing", action="store_true",
                           help="attach the timing simulator: print the "
                                "cycle report and include timing.* / "
                                "timing.annotated.* instruments")
    metrics_p.add_argument("--out", default=None, metavar="PATH",
                           help="save the snapshot as a versioned "
                                "artifact (for later --diff)")
    metrics_p.add_argument("--diff", nargs=2, metavar=("A", "B"),
                           default=None,
                           help="report per-instrument deltas B - A of "
                                "two saved snapshots")
    metrics_p.set_defaults(fn=cmd_metrics)

    trace_p = sub.add_parser(
        "trace",
        help="run a workload in full-trace mode and export a "
             "Perfetto-viewable Chrome trace, or merge a served job's "
             "distributed span files (--job) into one timeline")
    trace_p.add_argument("target", nargs="?", default=None,
                         help="assembly file (*.s) or workload "
                              "(omit with --job/--trace-id)")
    trace_p.add_argument("--scale", type=float, default=1.0,
                         help="workload scale factor")
    trace_p.add_argument("--no-validate", action="store_true",
                         help="skip authoritative state validation")
    trace_p.add_argument("--set", action="append", metavar="KEY=VALUE",
                         help="override a TolConfig field (repeatable)")
    trace_p.add_argument("--out", default="trace.json", metavar="PATH",
                         help="Chrome trace-event JSON output path "
                              "(default: trace.json)")
    trace_p.add_argument("--jsonl", default=None, metavar="PATH",
                         help="additionally write one event per line "
                              "here (jq/pandas-friendly)")
    trace_p.add_argument("--job", default=None, metavar="ID",
                         help="merge a served job's end-to-end trace "
                              "(job id prefix) from --trace-dir")
    trace_p.add_argument("--trace-id", default=None, metavar="HEX",
                         help="merge by trace id instead of job id")
    trace_p.add_argument("--trace-dir", default=".darco-serve-traces",
                         metavar="DIR",
                         help="span-file directory (default: "
                              ".darco-serve-traces)")
    trace_p.set_defaults(fn=cmd_trace)

    speed_p = sub.add_parser("speed", help="measure simulation speed")
    speed_p.add_argument("--workload", default="429.mcf")
    speed_p.add_argument("--scale", type=float, default=0.4)
    speed_p.set_defaults(fn=cmd_speed)

    def _endpoint_args(p):
        p.add_argument("--socket", default=DEFAULT_SOCKET,
                       metavar="PATH",
                       help=f"unix socket path "
                            f"(default: {DEFAULT_SOCKET})")
        p.add_argument("--host", default="127.0.0.1",
                       help="TCP host for --port mode")
        p.add_argument("--port", type=int, default=None,
                       help="serve over TCP loopback instead of the "
                            "unix socket (0 = pick a free port)")
        p.add_argument("--rpc-timeout", type=float, default=30.0,
                       help="client-side RPC timeout in seconds")

    serve_p = sub.add_parser(
        "serve",
        help="run the fault-tolerant simulation service: supervised "
             "workers, deadlines/retries, admission control, graceful "
             "degradation")
    _endpoint_args(serve_p)
    serve_p.add_argument("--workers", type=int, default=2,
                         help="supervised worker processes (default: 2)")
    serve_p.add_argument("--max-pending", type=int, default=64,
                         help="admission bound: queued+running jobs "
                              "before shedding (default: 64)")
    serve_p.add_argument("--deadline", type=float, default=None,
                         metavar="S",
                         help="default per-attempt deadline in seconds "
                              "(jobs past it are killed and retried)")
    serve_p.add_argument("--max-attempts", type=int, default=3,
                         help="default attempt budget per job "
                              "(default: 3)")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="disable the shared result cache")
    serve_p.add_argument("--cache-dir", default=".repro_cache",
                         help="result cache directory (shared with "
                              "darco sweep; default: .repro_cache)")
    serve_p.add_argument("--checkpoint-dir", default=None,
                         help="checkpoint long checkpointable jobs "
                              "here so killed workers resume them")
    serve_p.add_argument("--checkpoint-every", type=int, default=1,
                         help="checkpoint cadence (default: 1)")
    serve_p.add_argument("--no-stale", action="store_true",
                         help="shed instead of serving stale results "
                              "under overload")
    serve_p.add_argument("--tracing",
                         choices=["off", "counters", "full"],
                         default="counters",
                         help="distributed-tracing default for jobs "
                              "without their own context: lifecycle "
                              "spans (counters), simulator-internal "
                              "spans too (full), or none (off) "
                              "(default: counters)")
    serve_p.add_argument("--trace-dir", default=".darco-serve-traces",
                         metavar="DIR",
                         help="per-process span-file directory "
                              "(default: .darco-serve-traces)")
    serve_p.add_argument("--metrics-interval", type=float, default=1.0,
                         metavar="S",
                         help="time-series sampling interval in "
                              "seconds (default: 1.0)")
    serve_p.add_argument("--timeseries-capacity", type=int, default=512,
                         help="time-series ring size in samples "
                              "(default: 512)")
    serve_p.set_defaults(fn=cmd_serve)

    submit_p = sub.add_parser(
        "submit",
        help="submit a job to a running darco serve (exit 2 when shed)")
    _endpoint_args(submit_p)
    submit_p.add_argument("task",
                          help="registered sweep task, e.g. "
                               "workload_metrics, arch_run, "
                               "timing_report, fault_run")
    submit_p.add_argument("--param", action="append",
                          metavar="KEY=VALUE",
                          help="task parameter (JSON-coerced; "
                               "repeatable), e.g. workload=429.mcf "
                               "scale=0.2")
    submit_p.add_argument("--params", default=None, metavar="JSON",
                          help="task parameters as one JSON object")
    submit_p.add_argument("--set", action="append", metavar="KEY=VALUE",
                          help="TolConfig override for the job "
                               "(repeatable)")
    submit_p.add_argument("--label", default=None,
                          help="human-readable job label")
    submit_p.add_argument("--deadline", type=float, default=None,
                          metavar="S",
                          help="per-attempt deadline for this job")
    submit_p.add_argument("--max-attempts", type=int, default=None,
                          help="attempt budget for this job")
    submit_p.add_argument("--wait", action="store_true",
                          help="block until terminal and print the "
                               "final fetch")
    submit_p.add_argument("--timeout", type=float, default=300.0,
                          help="--wait timeout in seconds")
    submit_p.add_argument("--trace",
                          choices=["off", "counters", "full"],
                          default=None,
                          help="mint a client-side trace context for "
                               "this job (default: let the service "
                               "decide; off suppresses tracing)")
    submit_p.add_argument("--trace-id", default=None, metavar="HEX",
                          help="use this trace id instead of a random "
                               "one (with --trace)")
    submit_p.add_argument("--trace-dir", default=".darco-serve-traces",
                          metavar="DIR",
                          help="client span-file directory (must match "
                               "the service's; default: "
                               ".darco-serve-traces)")
    submit_p.set_defaults(fn=cmd_submit)

    status_p = sub.add_parser(
        "status",
        help="job status (--watch to stream) or, with no job id, the "
             "service healthz summary")
    _endpoint_args(status_p)
    status_p.add_argument("job", nargs="?", default=None,
                          help="job id (prefix accepted)")
    status_p.add_argument("--watch", action="store_true",
                          help="stream state changes until terminal")
    status_p.add_argument("--json", action="store_true",
                          help="raw healthz JSON")
    status_p.set_defaults(fn=cmd_serve_status)

    fetch_p = sub.add_parser(
        "fetch",
        help="fetch a completed job's result JSON")
    _endpoint_args(fetch_p)
    fetch_p.add_argument("job", help="job id (prefix accepted)")
    fetch_p.add_argument("--wait", action="store_true",
                         help="block until the job is terminal first")
    fetch_p.add_argument("--timeout", type=float, default=300.0,
                         help="--wait timeout in seconds")
    fetch_p.add_argument("--out", default=None, metavar="PATH",
                         help="write the result JSON here instead of "
                              "stdout")
    fetch_p.add_argument("--postmortem", default=None, metavar="PATH",
                         help="on failure, write the job record (flight "
                              "recorder included) as a versioned "
                              "postmortem artifact")
    fetch_p.set_defaults(fn=cmd_fetch)

    top_p = sub.add_parser(
        "top",
        help="live serve dashboard: throughput, latency percentiles, "
             "queue-depth history, shard liveness, hottest tiers")
    _endpoint_args(top_p)
    top_p.add_argument("--once", action="store_true",
                       help="print one frame and exit (CI/pipes)")
    top_p.add_argument("--interval", type=float, default=2.0,
                       metavar="S",
                       help="refresh interval in seconds (default: 2)")
    top_p.add_argument("--window", type=int, default=60,
                       help="time-series samples per frame "
                            "(default: 60)")
    top_p.add_argument("--top", type=int, default=6,
                       help="hottest-tier rows shown (default: 6)")
    top_p.set_defaults(fn=cmd_top)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
