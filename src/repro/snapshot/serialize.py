"""Serialization of the full tri-component system state.

:func:`capture_controller` projects a :class:`~repro.system.controller.
Controller` paused at a synchronization boundary into a JSON-safe payload;
:func:`restore_controller` rebuilds a controller from such a payload that
continues the run **bit-identically** (final guest state, memory image,
retirement count, incident-log hash, RunResult counters) to the original
uncheckpointed run.

What is captured
----------------
- the guest program image (code/data/entry/stack — checkpoints are
  self-contained: no source file needed to resume);
- the :class:`TolConfig` (field by field);
- authoritative x86 component: architectural state, every materialized
  memory page, emulator counters, and the deterministic OS (stdout so
  far, stdin cursor, heap break, tick/rand generators, syscall count);
- co-designed component: emulated state, the *materialized subset* of
  its lazy memory image, and the data-request count;
- TOL control plane: retirement count, interpreter counters, profiler
  repetition/edge counters, quarantine ladder, incident log, superblock
  blacklist, overhead/host accounting, TolStats;
- controller protocol counters (validations, sync events, recoveries);
- the armed fault injector, if any (spec + fired flag + eligible-event
  count), so an injected-but-not-yet-fired fault fires at the same
  ordinal after resume.

What is deliberately NOT captured
---------------------------------
The code cache, chains, IBTC and the dispatch window are
micro-architectural artifacts: every execution mode (IM/BBM/SBM) is
architecturally equivalent, and the profiler counters *are* restored, so
hot entry PCs cross the promotion thresholds again on their first
post-resume dispatch and the cache re-warms to an equivalent steady
state.  See DESIGN.md §7 for the full argument and the one caveat
(fault-corrupted-but-latent cached units).
"""

from __future__ import annotations

import base64
from collections import Counter
from dataclasses import asdict
from typing import Any, Dict, Optional

from repro.guest.isa import InsnClass
from repro.guest.program import GuestProgram
from repro.guest.syscalls import GuestOS
from repro.tol.config import TolConfig
from repro.tol.overhead import CATEGORIES


def _b64(data: bytes) -> str:
    return base64.b64encode(bytes(data)).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


# ---------------------------------------------------------------------------
# Leaf (de)serializers.
# ---------------------------------------------------------------------------


def program_to_dict(program: GuestProgram) -> Dict[str, Any]:
    return {
        "code": _b64(program.code),
        "base": program.base,
        "entry": program.entry,
        "data": {str(addr): _b64(blob)
                 for addr, blob in sorted(program.data.items())},
        "stack_top": program.stack_top,
        "labels": dict(program.labels),
    }


def program_from_dict(d: Dict[str, Any]) -> GuestProgram:
    return GuestProgram(
        code=_unb64(d["code"]),
        base=d["base"],
        entry=d["entry"],
        data={int(addr): _unb64(blob) for addr, blob in d["data"].items()},
        stack_top=d["stack_top"],
        labels=dict(d["labels"]),
    )


def config_to_dict(config: TolConfig) -> Dict[str, Any]:
    out = {}
    for name, value in asdict(config).items():
        out[name] = list(value) if isinstance(value, tuple) else value
    return out


def config_from_dict(d: Dict[str, Any]) -> TolConfig:
    defaults = TolConfig()
    kwargs = {}
    for name, value in d.items():
        if isinstance(getattr(defaults, name, None), tuple):
            value = tuple(value)
        kwargs[name] = value
    return TolConfig(**kwargs)


def _pages_to_dict(memory) -> Dict[str, str]:
    return {str(page): _b64(memory.export_page(page))
            for page in sorted(memory.present_pages())}


def _install_pages(memory, pages: Dict[str, str]) -> None:
    for page, blob in pages.items():
        memory.install_page(int(page), _unb64(blob))


def _os_to_dict(os: GuestOS) -> Dict[str, Any]:
    return {
        "stdout": _b64(os.stdout),
        "stdin": _b64(os.stdin),
        "stdin_pos": os.stdin_pos,
        "heap_top": os.heap_top,
        "ticks": os.ticks,
        "rand_state": os.rand_state,
        "seed": os._seed,
        "exit_code": os.exit_code,
        "syscall_count": os.syscall_count,
    }


def _os_restore(os: GuestOS, d: Dict[str, Any]) -> None:
    os.stdout = bytearray(_unb64(d["stdout"]))
    os.stdin = _unb64(d["stdin"])
    os.stdin_pos = d["stdin_pos"]
    os.heap_top = d["heap_top"]
    os.ticks = d["ticks"]
    os.rand_state = d["rand_state"]
    os._seed = d["seed"]
    os.exit_code = d["exit_code"]
    os.syscall_count = d["syscall_count"]


def fault_to_dict(injector) -> Optional[Dict[str, Any]]:
    """Serialize an attached :class:`FaultInjector` (or ``None``)."""
    if injector is None:
        return None
    return {
        "site": injector.spec.site,
        "ordinal": injector.spec.ordinal,
        "salt": injector.spec.salt,
        "fired": injector.fired,
        "seen": injector._seen,
        "fired_detail": dict(injector.fired_detail),
    }


def fault_from_dict(d: Optional[Dict[str, Any]]):
    """Rebuild a :class:`FaultInjector` ready to re-attach.

    Safe across a checkpoint because the injector's private RNG is only
    consumed at fire time: a not-yet-fired fault re-fires at the same
    eligible-event ordinal with the same random choices, and a fired one
    stays inert (every hook is a pass-through once ``fired`` is set).
    """
    if d is None:
        return None
    from repro.resilience.faults import FaultInjector, FaultSpec
    injector = FaultInjector(FaultSpec(site=d["site"], ordinal=d["ordinal"],
                                       salt=d["salt"]))
    injector.fired = d["fired"]
    injector._seen = d["seen"]
    injector.fired_detail = dict(d["fired_detail"])
    return injector


# ---------------------------------------------------------------------------
# Whole-controller capture / restore.
# ---------------------------------------------------------------------------


def capture_controller(controller) -> Dict[str, Any]:
    """JSON-safe snapshot of a controller paused at a sync boundary."""
    tol = controller.codesigned.tol
    x86 = controller.x86
    payload = {
        "program": program_to_dict(controller.program),
        "config": config_to_dict(controller.config),
        "controller": {
            "validate": controller.validate,
            "validations": controller.validations,
            "syscall_events": controller.syscall_events,
            "sync_events": controller._sync_events,
            "last_validated_icount": controller._last_validated_icount,
            "recoveries": controller.recoveries,
        },
        "x86": {
            "state": x86.state.snapshot(),
            "icount": x86.emulator.icount,
            "branch_count": x86.emulator.branch_count,
            "bb_count": x86.emulator.bb_count,
            "class_counts": {klass.value: count for klass, count
                             in sorted(x86.emulator.class_counts.items(),
                                       key=lambda kv: kv[0].value)},
            "pages": _pages_to_dict(x86.memory),
            "os": _os_to_dict(x86.os),
        },
        "codesigned": {
            "state": controller.codesigned.state.snapshot(),
            "pages": _pages_to_dict(controller.codesigned.memory),
            "data_requests": controller.codesigned.data_requests,
        },
        "tol": {
            "guest_icount": tol.guest_icount,
            "interp": {
                "icount": tol.interp.icount,
                "ir_ops_evaluated": tol.interp.ir_ops_evaluated,
            },
            "stats": asdict(tol.stats),
            "profiler": {
                "bb_counts": {str(pc): n for pc, n
                              in sorted(tol.profiler.bb_counts.items())},
                "edge_counts": {
                    str(pc): {str(succ): n
                              for succ, n in sorted(edges.items())}
                    for pc, edges in sorted(tol.profiler.edge_counts.items())
                    if edges},
            },
            "quarantine": {
                "levels": {str(pc): level
                           for pc, level in tol.quarantine.entries()},
                "escalations": tol.quarantine.escalations,
            },
            "incidents": tol.incidents.as_dicts(),
            "sb_blacklist": sorted(tol._sb_blacklist),
            "overhead": dict(tol.overhead.counters),
            "host": {
                "host_insns_total": tol.host.host_insns_total,
                "host_insns_committed": tol.host.host_insns_committed,
                "host_insns_wasted": tol.host.host_insns_wasted,
                "guest_retired_total": tol.host.guest_retired_total,
                "guest_retired_by_mode": dict(tol.host.guest_retired_by_mode),
                "host_committed_by_mode": dict(tol.host.host_committed_by_mode),
                "alias_search_insns": tol.host.alias_search_insns,
            },
            "background_translation_insns": tol.background_translation_insns,
            "hw_decode_insns": tol._hw_decode_insns,
        },
        "fault": fault_to_dict(getattr(tol, "fault_injector", None)),
    }
    return payload


def restore_controller(payload: Dict[str, Any]):
    """Rebuild a resumable controller from :func:`capture_controller`'s
    payload.  The returned controller is past initialization; calling
    ``run()`` continues the interrupted execution."""
    from repro.system.controller import Controller

    program = program_from_dict(payload["program"])
    config = config_from_dict(payload["config"])
    ctl = payload["controller"]
    controller = Controller(program, config=config,
                            validate=ctl["validate"])
    controller.validations = ctl["validations"]
    controller.syscall_events = ctl["syscall_events"]
    controller._sync_events = ctl["sync_events"]
    controller._last_validated_icount = ctl["last_validated_icount"]
    controller.recoveries = ctl["recoveries"]

    x86p = payload["x86"]
    x86 = controller.x86
    x86.state.restore(x86p["state"])
    x86.emulator.icount = x86p["icount"]
    x86.emulator.branch_count = x86p["branch_count"]
    x86.emulator.bb_count = x86p["bb_count"]
    x86.emulator.class_counts = Counter(
        {InsnClass(value): count
         for value, count in x86p["class_counts"].items()})
    # The constructor already loaded the program image; the checkpoint's
    # page set is a superset of it (pages are only ever added), so
    # installing every checkpointed page fully overwrites the image.
    _install_pages(x86.memory, x86p["pages"])
    x86.memory.clear_dirty()
    _os_restore(x86.os, x86p["os"])
    x86.tracker.launched = True

    cdp = payload["codesigned"]
    controller.codesigned.state.restore(cdp["state"])
    _install_pages(controller.codesigned.memory, cdp["pages"])
    controller.codesigned.memory.clear_dirty()
    controller.codesigned.data_requests = cdp["data_requests"]

    tolp = payload["tol"]
    tol = controller.codesigned.tol
    tol.guest_icount = tolp["guest_icount"]
    tol.interp.icount = tolp["interp"]["icount"]
    tol.interp.ir_ops_evaluated = tolp["interp"]["ir_ops_evaluated"]
    for name, value in tolp["stats"].items():
        setattr(tol.stats, name, value)
    tol.profiler.bb_counts = Counter(
        {int(pc): n for pc, n in tolp["profiler"]["bb_counts"].items()})
    for pc, edges in tolp["profiler"]["edge_counts"].items():
        tol.profiler.edge_counts[int(pc)] = Counter(
            {int(succ): n for succ, n in edges.items()})
    tol.quarantine._levels = {
        int(pc): level
        for pc, level in tolp["quarantine"]["levels"].items()}
    tol.quarantine.escalations = tolp["quarantine"]["escalations"]
    tol.incidents.restore(tolp["incidents"])
    tol._sb_blacklist = set(tolp["sb_blacklist"])
    for category in CATEGORIES:
        tol.overhead.counters[category] = tolp["overhead"][category]
    hostp = tolp["host"]
    tol.host.host_insns_total = hostp["host_insns_total"]
    tol.host.host_insns_committed = hostp["host_insns_committed"]
    tol.host.host_insns_wasted = hostp["host_insns_wasted"]
    tol.host.guest_retired_total = hostp["guest_retired_total"]
    tol.host.guest_retired_by_mode = dict(hostp["guest_retired_by_mode"])
    tol.host.host_committed_by_mode = dict(hostp["host_committed_by_mode"])
    tol.host.alias_search_insns = hostp["alias_search_insns"]
    tol.background_translation_insns = tolp["background_translation_insns"]
    tol._hw_decode_insns = tolp["hw_decode_insns"]

    injector = fault_from_dict(payload.get("fault"))
    if injector is not None:
        injector.attach(tol)

    controller._initialized = True
    return controller
