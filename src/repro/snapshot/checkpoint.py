"""Content-hashed, versioned checkpoints of a running system.

A :class:`CheckpointStore` manages a directory of checkpoint artifacts,
one per synchronization boundary the controller chose to persist.  Files
are named ``ckpt-<sync_events:08d>-<hash12>.json`` so lexicographic
order is resume order, and each is a versioned envelope (see
:mod:`repro.ioutil`) whose payload hash doubles as the checkpoint
identity.  Loading a corrupt, truncated or incompatible checkpoint
raises :class:`~repro.ioutil.SchemaError` with the reason — never a
``KeyError`` deep in replay.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.ioutil import SchemaError, load_artifact, write_artifact
from repro.snapshot.serialize import capture_controller, restore_controller

CHECKPOINT_SCHEMA_VERSION = 1
KIND_CHECKPOINT = "checkpoint"


class CheckpointStore:
    """A directory of resume points for one run."""

    def __init__(self, directory):
        self.directory = Path(directory)
        #: Paths written by this store instance, in write order.
        self.written: List[Path] = []

    def write(self, controller) -> Path:
        """Snapshot ``controller`` (paused at a sync boundary) to disk."""
        payload = capture_controller(controller)
        ordinal = payload["controller"]["sync_events"]
        # Hash first so the name matches the envelope's content hash.
        from repro.ioutil import content_hash
        digest = content_hash(payload)
        path = self.directory / f"ckpt-{ordinal:08d}-{digest[:12]}.json"
        write_artifact(path, KIND_CHECKPOINT, CHECKPOINT_SCHEMA_VERSION,
                       payload)
        self.written.append(path)
        return path

    def paths(self) -> List[Path]:
        """Every checkpoint on disk, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("ckpt-*.json"))

    def latest(self) -> Optional[Path]:
        paths = self.paths()
        return paths[-1] if paths else None

    def load(self, path) -> Dict[str, Any]:
        """Verified checkpoint payload; raises :class:`SchemaError` on a
        missing/corrupt/incompatible file."""
        return load_artifact(path, KIND_CHECKPOINT,
                             CHECKPOINT_SCHEMA_VERSION)

    def restore(self, path=None):
        """Controller resumed from ``path`` (default: the latest
        checkpoint).  Raises :class:`SchemaError` when there is nothing
        usable to resume from."""
        if path is None:
            path = self.latest()
            if path is None:
                raise SchemaError(
                    f"no checkpoints in {self.directory}")
        return restore_controller(self.load(path))

    def clear(self) -> None:
        """Delete every checkpoint (a fresh, non-resumed run must not
        inherit resume points from a previous attempt)."""
        for path in self.paths():
            try:
                path.unlink()
            except OSError:
                pass
