"""Checkpointable architectural runs for the sweep runner.

The sweep's byte-identical resume guarantee needs a task whose value is
a pure function of the *architectural* execution — performance counters
are not resume-stable, because a resumed run re-pays translation work
for the re-warmed code cache.  :class:`ArchResult` carries exactly the
architecturally determined outcomes of a run (everything the round-trip
guarantee covers), so an interrupted-and-resumed sweep produces results
byte-identical to an uninterrupted one.

:func:`run_checkpointed` is the execution engine: run a program with
periodic checkpoints, optionally resuming from the newest checkpoint
left behind by a previous (killed) attempt.  Resume evidence goes to a
``resume.log`` sidecar in the checkpoint directory, never into the
result value (which must stay byte-identical).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.guest.program import GuestProgram
from repro.ioutil import content_hash
from repro.snapshot.checkpoint import CheckpointStore
from repro.tol.config import TolConfig


@dataclass
class ArchResult:
    """Architectural outcome of one run (bit-identical under resume)."""

    exit_code: Optional[int]
    guest_icount: int
    syscalls: int
    data_requests: int
    validations: int
    stdout: bytes
    incidents: int
    recoveries: int
    incident_signature: str
    final_state_hash: str
    final_memory_hash: str

    def as_dict(self) -> dict:
        return {
            "exit_code": self.exit_code,
            "guest_icount": self.guest_icount,
            "syscalls": self.syscalls,
            "data_requests": self.data_requests,
            "validations": self.validations,
            "stdout": self.stdout.hex(),
            "incidents": self.incidents,
            "recoveries": self.recoveries,
            "incident_signature": self.incident_signature,
            "final_state_hash": self.final_state_hash,
            "final_memory_hash": self.final_memory_hash,
        }


def state_hash(state) -> str:
    """Content hash of a :class:`GuestState`."""
    return content_hash(state.snapshot())


def memory_hash(memory) -> str:
    """SHA-256 over every materialized page of a memory image."""
    digest = hashlib.sha256()
    for page in sorted(memory.present_pages()):
        digest.update(page.to_bytes(4, "little"))
        digest.update(memory.export_page(page))
    return digest.hexdigest()


def arch_result(result, controller) -> ArchResult:
    """Project a finished run onto its architectural outcomes."""
    return ArchResult(
        exit_code=result.exit_code,
        guest_icount=result.guest_icount,
        syscalls=result.syscalls,
        data_requests=result.data_requests,
        validations=result.validations,
        stdout=result.stdout,
        incidents=result.incidents,
        recoveries=result.recoveries,
        incident_signature=controller.codesigned.tol.incidents.signature(),
        final_state_hash=state_hash(controller.x86.state),
        final_memory_hash=memory_hash(controller.x86.memory),
    )


def run_checkpointed(program: GuestProgram,
                     config: Optional[TolConfig] = None,
                     validate: bool = True,
                     checkpoint_dir=None,
                     checkpoint_every: int = 1,
                     resume: bool = False,
                     max_events: Optional[int] = None
                     ) -> Tuple[ArchResult, object]:
    """Run ``program`` with periodic checkpoints; returns
    ``(ArchResult, controller)``.

    ``resume=True`` continues from the newest checkpoint in
    ``checkpoint_dir`` when one exists (falling back to a fresh run);
    ``resume=False`` clears stale checkpoints first, so a fresh attempt
    never silently inherits a previous run's resume points."""
    from repro.system.controller import Controller

    controller = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        if resume:
            latest = store.latest()
            if latest is not None:
                controller = store.restore(latest)
                _log_resume(store.directory, latest,
                            controller.codesigned.guest_icount)
        else:
            store.clear()
    if controller is None:
        controller = Controller(program, config=config, validate=validate)
    result = controller.run(max_events=max_events,
                            checkpoint_dir=checkpoint_dir,
                            checkpoint_every=checkpoint_every)
    return arch_result(result, controller), controller


def _log_resume(directory: Path, checkpoint: Path, icount: int) -> None:
    """Append resume evidence to the ``resume.log`` sidecar (plain
    append: this is forensic evidence, not a consumed artifact)."""
    with open(Path(directory) / "resume.log", "a",
              encoding="utf-8") as handle:
        handle.write(f"resumed from {checkpoint.name} "
                     f"at guest_icount={icount}\n")
