"""Self-contained divergence repro bundles.

When a run diverges — a validation mismatch, an incident in recover
mode, or an uncaught controller exception — everything needed to replay
it deterministically is packed into one versioned JSON artifact:

- the exact guest program bytes (code, data, entry, stack);
- the full :class:`TolConfig`;
- the deterministic OS inputs (stdin bytes, RNG seed);
- the armed fault spec (site/ordinal/salt), if any;
- the incident log so far and its content hash;
- the last checkpoint payload (when checkpointing was on), so the tail
  of a long run can be replayed without re-executing the prefix;
- the event ordinals at failure time (guest icount, sync events,
  validations, recoveries).

``darco repro <bundle>`` replays a bundle from program start (bit-exact
by construction: every input above is deterministic) and reports whether
the divergence still occurs; see :func:`replay_bundle`.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.guest.program import GuestProgram
from repro.guest.syscalls import GuestOS
from repro.ioutil import content_hash, load_artifact, write_artifact
from repro.snapshot.serialize import (
    config_from_dict, config_to_dict, program_from_dict, program_to_dict,
    restore_controller,
)
from repro.tol.config import TolConfig

BUNDLE_SCHEMA_VERSION = 1
KIND_BUNDLE = "repro_bundle"


@dataclass
class ReproBundle:
    """In-memory form of a loaded repro bundle."""

    program: GuestProgram
    config: TolConfig
    reason: str
    error: Optional[str]
    os_stdin: bytes
    os_seed: int
    fault: Optional[Dict[str, Any]]
    incidents: List[Dict[str, Any]]
    incident_signature: str
    guest_icount: int
    counters: Dict[str, int] = field(default_factory=dict)
    checkpoint: Optional[Dict[str, Any]] = None
    #: Telemetry snapshot taken at divergence time (``as_dict`` form;
    #: ``None`` for bundles written with telemetry off or by older
    #: versions — the field is additive within schema version 1).
    telemetry: Optional[Dict[str, Any]] = None
    #: Flight-recorder dump (bounded ring of recent lifecycle events,
    #: :meth:`repro.serve.flightrec.FlightRecorder.as_dict`) when the
    #: failure happened under a recorder — serve jobs, or any caller
    #: passing one to :func:`write_bundle`.  Additive within schema
    #: version 1, like ``telemetry``.
    flight: Optional[Dict[str, Any]] = None
    path: Optional[Path] = None


def write_bundle(directory, controller, reason: str,
                 error: Optional[str] = None,
                 flight: Optional[Dict[str, Any]] = None) -> Path:
    """Emit a repro bundle for ``controller``'s current run into
    ``directory``; returns the bundle path."""
    tol = controller.codesigned.tol
    injector = getattr(tol, "fault_injector", None)
    store = getattr(controller, "_checkpoint_store", None)
    snapshot = tol.telemetry.snapshot()
    checkpoint = None
    if store is not None and store.written:
        # Embed the payload of the last checkpoint this run wrote, so
        # the bundle replays the failing tail without the prefix.
        checkpoint = store.load(store.written[-1])
    payload = {
        "reason": reason,
        "error": error,
        "program": program_to_dict(controller.program),
        "config": config_to_dict(controller.config),
        "os": {
            "stdin": base64.b64encode(controller.x86.os.stdin).decode(),
            "seed": controller.x86.os._seed,
        },
        "fault": None if injector is None else {
            "site": injector.spec.site,
            "ordinal": injector.spec.ordinal,
            "salt": injector.spec.salt,
            "fired": injector.fired,
        },
        "incidents": tol.incidents.as_dicts(),
        "incident_signature": tol.incidents.signature(),
        "guest_icount": controller.codesigned.guest_icount,
        "counters": {
            "syscall_events": controller.syscall_events,
            "sync_events": controller._sync_events,
            "validations": controller.validations,
            "recoveries": controller.recoveries,
        },
        "checkpoint": checkpoint,
        "telemetry": None if snapshot is None else snapshot.as_dict(),
        "flight": flight,
    }
    digest = content_hash(payload)
    path = Path(directory) / f"bundle-{reason}-{digest[:12]}.json"
    write_artifact(path, KIND_BUNDLE, BUNDLE_SCHEMA_VERSION, payload)
    return path


def load_bundle(path) -> ReproBundle:
    """Load and verify a bundle; raises
    :class:`~repro.ioutil.SchemaError` on a corrupt or incompatible
    file."""
    payload = load_artifact(path, KIND_BUNDLE, BUNDLE_SCHEMA_VERSION)
    return ReproBundle(
        program=program_from_dict(payload["program"]),
        config=config_from_dict(payload["config"]),
        reason=payload["reason"],
        error=payload["error"],
        os_stdin=base64.b64decode(payload["os"]["stdin"]),
        os_seed=payload["os"]["seed"],
        fault=payload["fault"],
        incidents=payload["incidents"],
        incident_signature=payload["incident_signature"],
        guest_icount=payload["guest_icount"],
        counters=dict(payload["counters"]),
        checkpoint=payload.get("checkpoint"),
        telemetry=payload.get("telemetry"),
        flight=payload.get("flight"),
        path=Path(path),
    )


@dataclass
class ReplayOutcome:
    """What happened when a bundle was replayed."""

    diverged: bool
    kinds: List[str]
    error: Optional[str]
    incident_signature: Optional[str]
    guest_icount: int
    exit_code: Optional[int]

    @property
    def reproduced(self) -> bool:
        return self.diverged


def _fresh_controller(bundle: ReproBundle, from_checkpoint: bool):
    from repro.system.controller import Controller

    if from_checkpoint:
        if bundle.checkpoint is None:
            raise ValueError(
                "bundle carries no checkpoint; replay from start")
        controller = restore_controller(bundle.checkpoint)
    else:
        controller = Controller(
            bundle.program, config=bundle.config,
            os=GuestOS(stdin=bundle.os_stdin, rand_seed=bundle.os_seed))
        if bundle.fault is not None:
            from repro.resilience.faults import FaultInjector, FaultSpec
            FaultInjector(FaultSpec(
                site=bundle.fault["site"],
                ordinal=bundle.fault["ordinal"],
                salt=bundle.fault["salt"],
            )).attach(controller.codesigned.tol)
    return controller


def replay_bundle(bundle: ReproBundle, max_events: Optional[int] = None,
                  from_checkpoint: bool = False):
    """Replay ``bundle`` deterministically; returns
    ``(ReplayOutcome, controller)``.

    A replay counts as *diverged* when the run raises (strict mode) or
    records at least one incident (recover mode) — the same signals that
    caused the bundle to be written.  When ``from_checkpoint`` is set
    the embedded checkpoint is the starting point instead of program
    start (incident counts then cover only the replayed tail)."""
    controller = _fresh_controller(bundle, from_checkpoint)
    tol = controller.codesigned.tol
    prior_incidents = len(tol.incidents)
    error = None
    exit_code = None
    try:
        result = controller.run(max_events=max_events)
        exit_code = result.exit_code
    except Exception as exc:  # strict-mode divergences arrive as raises
        error = f"{type(exc).__name__}: {exc}"
    kinds = tol.incidents.kinds()[prior_incidents:]
    diverged = error is not None or bool(kinds)
    outcome = ReplayOutcome(
        diverged=diverged,
        kinds=kinds,
        error=error,
        incident_signature=tol.incidents.signature(),
        guest_icount=controller.codesigned.guest_icount,
        exit_code=exit_code,
    )
    return outcome, controller
