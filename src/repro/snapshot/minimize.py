"""Delta-debugging minimizer for divergent guest programs.

Given a program that makes the co-designed stack diverge (under a given
config and optional armed fault), shrink it to a minimal instruction
sequence that still diverges, so fuzzer- and campaign-found failures
become one-screen reproducers.

Two phases:

1. **NOP masking (ddmin).**  The guest encoding is variable-length with
   absolute branch targets, so instructions cannot simply be deleted —
   every deletion would shift all later addresses and break every
   branch.  Instead, a removed n-byte instruction is overwritten with n
   one-byte ``NOP``\\ s: all addresses, branch targets and data
   references stay valid, and the classic ddmin algorithm applies
   unchanged over the instruction list.

2. **Compaction.**  The masked program is rewritten without its NOPs:
   surviving instructions are re-encoded back to back and the absolute
   ``Imm`` targets of direct branches are remapped through the
   old-address -> new-address map (a target inside a deleted NOP run
   maps to the next surviving instruction, which is where the NOP slide
   would have delivered control).  Programs whose control flow the
   rewrite cannot preserve (e.g. computed targets via ``JMPI``) simply
   fail the oracle and the minimizer keeps the masked form — compaction
   is verify-or-fallback, never trusted blindly.

The oracle is two runs per candidate: the plain authoritative
:class:`GuestEmulator` first (a candidate that crashes or hangs the
*reference* is an invalid program, not an interesting one), then the
full co-designed stack; a candidate is interesting iff the reference
run is clean and the co-designed run raises or records incidents.

Oracles are pluggable: :class:`ProgramOracle` is the generic divergence
oracle; :class:`SanitizerOracle` keeps only candidates that still trip a
``sanitizer_violation`` (so a sanitizer finding cannot degrade into an
unrelated divergence during shrinking); :class:`TimingMismatchOracle`
keeps candidates whose two timing legs still report different cycle
counts.  :func:`minimize_bundle` picks the oracle from the bundle's
``reason`` so every fuzz finding kind minimizes with its own signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.guest.emulator import GuestEmulator
from repro.guest.encoding import decode_instr, encode_instr
from repro.guest.isa import GuestInstr, Imm
from repro.guest.program import GuestProgram
from repro.guest.syscalls import GuestOS

#: One-byte NOP used for masking.
_NOP_BYTE = encode_instr(GuestInstr("NOP", ()))
assert len(_NOP_BYTE) == 1

#: Direct branches whose ``Imm`` operand is an absolute code address.
_DIRECT_BRANCH_PREFIXES = ("JMP", "CALL")


def _is_direct_branch(instr: GuestInstr) -> bool:
    if not instr.is_branch or not instr.operands:
        return False
    return isinstance(instr.operands[0], Imm) and (
        instr.mnemonic.startswith("J") or instr.mnemonic == "CALL")


def decode_program_instrs(program: GuestProgram) -> List[GuestInstr]:
    """The static instruction sequence of ``program.code``."""
    code = program.code
    base = program.base

    def read_byte(addr: int) -> int:
        return code[addr - base]

    instrs = []
    addr = base
    end = base + len(code)
    while addr < end:
        instr = decode_instr(read_byte, addr)
        instrs.append(instr)
        addr += instr.length
    return instrs


@dataclass
class MinimizeResult:
    """Outcome of one minimization."""

    program: GuestProgram          #: the minimized program (still diverges)
    instructions: int              #: surviving (non-NOP) instruction count
    original_instructions: int
    tests_run: int
    compacted: bool                #: False => compaction failed the oracle,
                                   #: the masked (NOP-padded) form is kept


class ProgramOracle:
    """``diverges(program) -> bool`` for candidate programs."""

    def __init__(self, config, fault: Optional[Dict] = None,
                 os_stdin: bytes = b"", os_seed: int = 0x5EED,
                 max_events: int = 200_000,
                 reference_step_cap: int = 2_000_000):
        self.config = config
        self.fault = fault
        self.os_stdin = os_stdin
        self.os_seed = os_seed
        self.max_events = max_events
        self.reference_step_cap = reference_step_cap
        self.tests_run = 0

    def _os(self) -> GuestOS:
        return GuestOS(stdin=self.os_stdin, rand_seed=self.os_seed)

    def valid(self, program: GuestProgram) -> bool:
        """Does the *reference* emulator run the candidate cleanly?"""
        reference = GuestEmulator(program, os=self._os())
        try:
            reference.run(max_steps=self.reference_step_cap)
        except Exception:
            return False
        return reference.os.exited

    def diverges(self, program: GuestProgram) -> bool:
        from repro.system.controller import Controller

        self.tests_run += 1
        if not self.valid(program):
            return False
        controller = Controller(program, config=self.config,
                                os=self._os())
        tol = controller.codesigned.tol
        if self.fault is not None:
            from repro.resilience.faults import FaultInjector, FaultSpec
            FaultInjector(FaultSpec(
                site=self.fault["site"], ordinal=self.fault["ordinal"],
                salt=self.fault["salt"])).attach(tol)
        try:
            controller.run(max_events=self.max_events)
        except Exception:
            # Validation mismatch (strict), lost sync, corrupted-code
            # crash, or a co-designed livelock on a reference-clean
            # program: all divergence signals.
            return True
        return bool(len(tol.incidents))


class SanitizerOracle(ProgramOracle):
    """Keeps only candidates that still violate a TOL invariant.

    The config is forced to ``sanitize=True``; a candidate is
    interesting iff the run raises :class:`SanitizerError` or records a
    ``sanitizer_violation`` incident.  A candidate that diverges some
    *other* way is rejected — shrinking must preserve the finding kind,
    not trade it for a different bug."""

    def __init__(self, config, **kwargs):
        from dataclasses import replace
        super().__init__(replace(config, sanitize=True), **kwargs)

    def diverges(self, program: GuestProgram) -> bool:
        from repro.system.controller import Controller
        from repro.tol.sanitize import KIND_SANITIZER, SanitizerError

        self.tests_run += 1
        if not self.valid(program):
            return False
        controller = Controller(program, config=self.config,
                                os=self._os())
        tol = controller.codesigned.tol
        if self.fault is not None:
            from repro.resilience.faults import FaultInjector, FaultSpec
            FaultInjector(FaultSpec(
                site=self.fault["site"], ordinal=self.fault["ordinal"],
                salt=self.fault["salt"])).attach(tol)
        try:
            controller.run(max_events=self.max_events)
        except SanitizerError:
            return True
        except Exception:
            pass  # a different failure kind: not this finding
        return KIND_SANITIZER in tol.incidents.kinds()


class TimingMismatchOracle:
    """Keeps candidates whose two timing legs still disagree.

    The legs are ``(timing_config, annotate=True)`` vs
    ``(timing_config_b or timing_config, annotate=False)`` — with one
    timing config this checks the cycle-annotation identity contract (a
    mismatch is a timing-path bug); with two it shrinks any
    configuration-sensitive kernel to the minimal cycle-divergent core.
    A candidate whose annotated leg *raises* while the plain leg runs
    clean is also a mismatch (an annotated-path-only failure)."""

    def __init__(self, config, timing_config=None, timing_config_b=None,
                 fault: Optional[Dict] = None, os_stdin: bytes = b"",
                 os_seed: int = 0x5EED, max_events: int = 200_000,
                 reference_step_cap: int = 2_000_000):
        if fault is not None:
            raise ValueError(
                "TimingMismatchOracle does not support armed faults: "
                "a timing mismatch is a property of the clean run")
        self.config = config
        self.timing_config = timing_config
        self.timing_config_b = timing_config_b
        self.fault = None
        self.os_stdin = os_stdin
        self.os_seed = os_seed
        self.max_events = max_events
        self.reference_step_cap = reference_step_cap
        self.tests_run = 0

    _os = ProgramOracle._os
    valid = ProgramOracle.valid

    def _leg(self, program: GuestProgram, timing_config, annotate: bool):
        from repro.timing.run import run_with_timing
        _, _, core = run_with_timing(
            program, tol_config=self.config,
            timing_config=timing_config, os=self._os(),
            annotate=annotate)
        return core.report()

    def diverges(self, program: GuestProgram) -> bool:
        self.tests_run += 1
        if not self.valid(program):
            return False
        cfg_b = self.timing_config_b or self.timing_config
        try:
            report_b = self._leg(program, cfg_b, annotate=False)
        except Exception:
            return False  # plain leg fails: invalid candidate
        try:
            report_a = self._leg(program, self.timing_config,
                                 annotate=True)
        except Exception:
            return True  # annotated-path-only failure
        return report_a != report_b


def _mask_code(instrs: List[GuestInstr], program: GuestProgram,
               keep: List[int]) -> GuestProgram:
    """Program with every instruction not in ``keep`` NOP-masked."""
    kept = set(keep)
    out = bytearray()
    code = program.code
    base = program.base
    for i, instr in enumerate(instrs):
        offset = instr.addr - base
        if i in kept:
            out += code[offset:offset + instr.length]
        else:
            out += _NOP_BYTE * instr.length
    return GuestProgram(code=bytes(out), base=program.base,
                        entry=program.entry, data=dict(program.data),
                        stack_top=program.stack_top)


def _ddmin(indices: List[int], test) -> List[int]:
    """Classic ddmin: a 1-minimal sublist of ``indices`` for which
    ``test(sublist)`` holds.  ``test(indices)`` must hold on entry."""
    items = list(indices)
    n = 2
    while len(items) >= 2:
        chunk_size = -(-len(items) // n)  # ceil
        chunks = [items[i:i + chunk_size]
                  for i in range(0, len(items), chunk_size)]
        reduced = False
        for chunk in chunks:
            if len(chunk) == len(items):
                continue
            if test(chunk):
                items, n = chunk, 2
                reduced = True
                break
        if not reduced and n > 2:
            for chunk in chunks:
                complement = [i for i in items if i not in set(chunk)]
                if complement and test(complement):
                    items, n = complement, max(n - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    return items


def _compact(instrs: List[GuestInstr], keep: List[int],
             program: GuestProgram) -> Optional[GuestProgram]:
    """Delete the masked instructions outright, remapping direct branch
    targets; returns None when a target cannot be remapped."""
    kept = [instrs[i] for i in sorted(keep)]
    base = program.base
    # New address of each surviving instruction.
    new_addr: Dict[int, int] = {}
    cursor = base
    for instr in kept:
        new_addr[instr.addr] = cursor
        cursor += instr.length
    end_old = instrs[-1].addr + instrs[-1].length if instrs else base

    def remap(target: int) -> Optional[int]:
        if target < base or target > end_old:
            return target  # outside the code image: leave untouched
        # Exact survivor, or fall through a deleted run to the next one.
        for instr in kept:
            if instr.addr >= target:
                return new_addr[instr.addr]
        return cursor  # past the last survivor: one past the end

    out = bytearray()
    for instr in kept:
        if _is_direct_branch(instr):
            target = remap(instr.operands[0].u32)
            if target is None:
                return None
            rewritten = GuestInstr(
                instr.mnemonic,
                (Imm(target),) + tuple(instr.operands[1:]))
            out += encode_instr(rewritten)
        else:
            out += encode_instr(instr)
    entry = remap(program.entry)
    if entry is None:
        return None
    return GuestProgram(code=bytes(out), base=base, entry=entry,
                        data=dict(program.data),
                        stack_top=program.stack_top)


def minimize_program(program: GuestProgram, config=None,
                     fault: Optional[Dict] = None,
                     os_stdin: bytes = b"", os_seed: int = 0x5EED,
                     max_events: int = 200_000,
                     oracle=None) -> MinimizeResult:
    """Shrink ``program`` to a minimal instruction sequence for which
    ``oracle.diverges`` still holds (default: the generic
    :class:`ProgramOracle` divergence oracle built from ``config`` and
    ``fault``).

    Raises :class:`ValueError` when the input program does not diverge
    in the first place (nothing to minimize)."""
    if oracle is None:
        oracle = ProgramOracle(config, fault=fault, os_stdin=os_stdin,
                               os_seed=os_seed, max_events=max_events)
    instrs = decode_program_instrs(program)
    all_indices = list(range(len(instrs)))
    if not oracle.diverges(program):
        raise ValueError(
            "program does not diverge under the given config/fault; "
            "nothing to minimize")
    # Masking can turn loops infinite (e.g. masking the decrement); cap
    # candidate reference runs by the original program's length so such
    # invalid candidates are rejected quickly instead of spinning to the
    # default 2M-step cap.
    baseline = GuestEmulator(program, os=oracle._os())
    baseline.run(max_steps=oracle.reference_step_cap)
    oracle.reference_step_cap = max(10_000, 8 * baseline.icount)

    def test(keep: List[int]) -> bool:
        return oracle.diverges(_mask_code(instrs, program, keep))

    keep = _ddmin(all_indices, test)
    masked = _mask_code(instrs, program, keep)

    compacted = _compact(instrs, keep, program)
    if compacted is not None and oracle.diverges(compacted):
        return MinimizeResult(
            program=compacted, instructions=len(keep),
            original_instructions=len(instrs),
            tests_run=oracle.tests_run, compacted=True)
    return MinimizeResult(
        program=masked, instructions=len(keep),
        original_instructions=len(instrs),
        tests_run=oracle.tests_run, compacted=False)


def oracle_for_reason(reason: str, config, fault: Optional[Dict] = None,
                      os_stdin: bytes = b"", os_seed: int = 0x5EED,
                      max_events: int = 200_000):
    """The right oracle for a bundle/finding ``reason`` string:
    sanitizer findings shrink against the sanitizer oracle, timing
    findings against the timing-mismatch oracle, everything else
    against the generic divergence oracle."""
    common = dict(fault=fault, os_stdin=os_stdin, os_seed=os_seed,
                  max_events=max_events)
    if "sanitizer" in reason:
        return SanitizerOracle(config, **common)
    if "timing" in reason:
        common.pop("fault")
        return TimingMismatchOracle(config, **common)
    return ProgramOracle(config, **common)


def minimize_bundle(bundle, max_events: int = 200_000) -> MinimizeResult:
    """Minimize the guest program of a loaded
    :class:`~repro.snapshot.bundle.ReproBundle`, with the oracle picked
    from the bundle's ``reason``."""
    oracle = oracle_for_reason(
        bundle.reason or "", bundle.config, fault=bundle.fault,
        os_stdin=bundle.os_stdin, os_seed=bundle.os_seed,
        max_events=max_events)
    return minimize_program(bundle.program, oracle=oracle)


def format_program(program: GuestProgram) -> str:
    """Human-readable listing of a (minimized) program."""
    lines = []
    for instr in decode_program_instrs(program):
        marker = " <- entry" if instr.addr == program.entry else ""
        lines.append(f"  {instr.addr:#06x}: {instr!r}{marker}")
    return "\n".join(lines)
