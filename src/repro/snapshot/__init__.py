"""Checkpoint/restore, repro bundles and failure minimization.

- :mod:`repro.snapshot.serialize` — full tri-component state capture
  and bit-identical restore;
- :mod:`repro.snapshot.checkpoint` — versioned, content-hashed
  checkpoint stores written at synchronization boundaries;
- :mod:`repro.snapshot.bundle` — self-contained divergence repro
  bundles and their deterministic replay;
- :mod:`repro.snapshot.minimize` — delta-debugging minimizer shrinking
  divergent guest programs to one-screen reproducers;
- :mod:`repro.snapshot.runner` — checkpointable architectural runs for
  the crash-resumable sweep runner.
"""

from repro.snapshot.checkpoint import (         # noqa: F401
    CHECKPOINT_SCHEMA_VERSION, CheckpointStore,
)
from repro.snapshot.serialize import (          # noqa: F401
    capture_controller, restore_controller,
)
from repro.snapshot.bundle import (             # noqa: F401
    BUNDLE_SCHEMA_VERSION, ReproBundle, load_bundle, replay_bundle,
    write_bundle,
)
