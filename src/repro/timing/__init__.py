"""Parameterized in-order timing simulator for the host core."""

from repro.timing.branch import BTB, Gshare
from repro.timing.cache import Cache, MemoryHierarchy, StridePrefetcher, TLB
from repro.timing.config import CacheConfig, TimingConfig, TLBConfig
from repro.timing.core import InOrderCore, TimingStats
from repro.timing.run import run_with_timing
from repro.timing.trace import TimingSession

__all__ = [
    "BTB", "Gshare", "Cache", "MemoryHierarchy", "StridePrefetcher", "TLB",
    "CacheConfig", "TimingConfig", "TLBConfig", "InOrderCore",
    "TimingStats", "run_with_timing", "TimingSession",
]
