"""Branch prediction: gshare direction predictor + branch target buffer."""

from __future__ import annotations


class Gshare:
    """Global-history XOR PC indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int = 4096, history_bits: int = 10):
        if entries & (entries - 1):
            raise ValueError("gshare entries must be a power of two")
        self.entries = entries
        self.mask = entries - 1
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.table = [2] * entries  # weakly taken
        self.history = 0
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self.mask

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train, and update history; returns correctness."""
        self.lookups += 1
        index = self._index(pc)
        prediction = self.table[index] >= 2
        if taken and self.table[index] < 3:
            self.table[index] += 1
        elif not taken and self.table[index] > 0:
            self.table[index] -= 1
        self.history = ((self.history << 1) | int(taken)) \
            & self.history_mask
        correct = prediction == taken
        if not correct:
            self.mispredicts += 1
        return correct


class BTB:
    """Direct-mapped branch target buffer."""

    def __init__(self, entries: int = 512):
        if entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self.mask = entries - 1
        self.tags = [None] * entries
        self.targets = [0] * entries
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int):
        """Predicted target or None on miss."""
        index = (pc >> 2) & self.mask
        if self.tags[index] == pc:
            self.hits += 1
            return self.targets[index]
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        index = (pc >> 2) & self.mask
        self.tags[index] = pc
        self.targets[index] = target
