"""Adapter from executed host instructions to timing-model records.

The host emulator's ``trace_sink`` delivers ``(unit, index, instr, info)``
per executed instruction; this module classifies the instruction, maps its
register operands into the unified scoreboard namespace and synthesizes a
host PC (units are placed in a synthetic code-address space so the I-cache
and branch predictors see a realistic stream).
"""

from __future__ import annotations

from typing import Optional

from repro.host.isa import HostInstr, HostOp, op_unit_class
from repro.timing.core import FP_BASE, VEC_BASE, InOrderCore

def _classify_regfiles(op: str) -> tuple:
    d = a = b = c = "i"
    if op in ("lif", "fmov", "fadd", "fsub", "fmul", "fdiv", "fneg",
              "fabs", "fsqrt", "ffloor"):
        d = a = b = "f"
    elif op in ("fcmpeq", "fcmplt", "fcmpun"):
        d, a, b = "i", "f", "f"
    elif op == "i2f":
        d, a = "f", "i"
    elif op == "f2i":
        d, a = "i", "f"
    elif op in ("vmov", "vadd32", "vsub32", "vmul32"):
        d = a = b = "v"
    elif op == "vsplat":
        d, a = "v", "i"
    elif op in ("ldf", "sldf"):
        d, a = "f", "i"
    elif op == "vld":
        d, a = "v", "i"
    elif op in ("stf", "stfchk"):
        d, a, b = "i", "i", "f"
    elif op == "vst":
        d, a, b = "i", "i", "v"
    return (d, a, b, c)


#: op -> (d, a, b, c) register file letters ('i' int, 'f' fp, 'v' vec),
#: precomputed for the whole host ISA at import time so the per-record
#: hot path is a single dict lookup (no lazy-memo branch).
_REGFILES = {op: _classify_regfiles(op) for op in sorted(HostOp.ALL)}


def _reg_classes(op: str) -> tuple:
    return _REGFILES[op]


#: op -> execution-unit class, likewise precomputed at import time.
_UNIT_CLASS = {op: op_unit_class(op) for op in sorted(HostOp.ALL)}


_BASE = {"i": 0, "f": FP_BASE, "v": VEC_BASE}


def _map_reg(index: Optional[int], klass: str) -> Optional[int]:
    if index is None:
        return None
    return _BASE[klass] + index


def host_pc(unit_uid: int, index: int) -> int:
    """Synthetic host code address of instruction ``index`` in a unit."""
    return (unit_uid << 14) | (index << 2)


_CONTROL = frozenset({"beqz", "bnez", "j", "exit", "exit_ind", "ibtc",
                      "assert_z", "assert_nz"})


def classify(ins: HostInstr) -> str:
    unit = op_unit_class(ins.op)
    return unit


class TimingSession:
    """Streams executed host instructions into an :class:`InOrderCore`.

    Attach via ``host_emulator.trace_sink = session.sink``.  Optionally,
    TOL overhead charges can be fed as synthetic instruction batches so the
    timing results include the software layer (``feed_tol_overhead``).
    """

    #: Synthetic TOL instruction mix: (class, has_mem, serial-dependency).
    TOL_MIX = (
        ("simple", False), ("simple", False), ("simple", False),
        ("load", True), ("simple", False), ("branch", False),
        ("load", True), ("simple", False), ("store", True),
        ("simple", False),
    )

    def __init__(self, core: Optional[InOrderCore] = None,
                 sample_filter=None):
        self.core = core if core is not None else InOrderCore()
        #: optional callable(instr_number) -> bool controlling whether the
        #: instruction is simulated in detail (sampling support).
        self.sample_filter = sample_filter
        self.fed = 0
        self.skipped = 0
        self._seen = 0
        self._tol_pc = 0x7F00_0000
        self._tol_addr = 0xE000_0000
        self._tol_dep = None

    # ------------------------------------------------------------------

    def sink(self, unit, index: int, ins: HostInstr, info) -> None:
        self._seen += 1
        if self.sample_filter is not None \
                and not self.sample_filter(self._seen):
            self.skipped += 1
            return
        op = ins.op
        klass = _UNIT_CLASS[op]
        d_class, a_class, b_class, c_class = _REGFILES[op]
        dst = _map_reg(ins.d, d_class)
        srcs = (_map_reg(ins.a, a_class), _map_reg(ins.b, b_class),
                _map_reg(ins.c, c_class))
        mem_addr = None
        branch = None
        if info is not None:
            mem_addr = info.get("mem_addr")
            if "taken" in info:
                taken = info["taken"]
                target = host_pc(unit.uid, ins.target or 0) if taken \
                    else host_pc(unit.uid, index + 1)
                branch = (taken, target)
        if klass in ("branch",) and branch is None:
            branch = (False, 0)
        # Stores carry their value in b (or d); they have no destination.
        if klass == "store":
            dst = None
        self.core.feed(host_pc(unit.uid, index), klass, dst, srcs,
                       mem_addr=mem_addr, branch=branch)
        self.fed += 1

    def sink_batch(self, unit, records) -> None:
        """Batch form of :meth:`sink` for the direct tier's buffered
        trace flushes: ``records`` is a list of ``(index, ins, info)``
        tuples in execution order.  Semantically identical to calling
        :meth:`sink` per record."""
        instrs = unit.instrs
        for index, info in records:
            self.sink(unit, index, instrs[index], info)

    # ------------------------------------------------------------------

    def feed_tol_overhead(self, host_insns: int) -> None:
        """Feed ``host_insns`` synthetic TOL instructions (a fixed,
        moderately serial mix over a small working set)."""
        mix = self.TOL_MIX
        n_mix = len(mix)
        for i in range(host_insns):
            klass, has_mem = mix[i % n_mix]
            pc = self._tol_pc + (i % 4096) * 4
            mem = None
            if has_mem:
                # The TOL's dispatch structures are a small, hot working
                # set (~8KB) — mostly cache resident.
                self._tol_addr = 0xE000_0000 + ((self._tol_addr + 64)
                                                & 0x1FFF)
                mem = self._tol_addr
            branch = (True, pc + 64) if klass == "branch" else None
            dst = 20 if i % 3 == 0 else 21
            srcs = (dst, 22, None)
            self.core.feed(pc, klass, dst, srcs, mem_addr=mem,
                           branch=branch)
        self.fed += host_insns
