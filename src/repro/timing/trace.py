"""Adapter from executed host instructions to timing-model records.

The host emulator's ``trace_sink`` delivers ``(unit, index, instr, info)``
per executed instruction; this module classifies the instruction, maps its
register operands into the unified scoreboard namespace and synthesizes a
host PC (units are placed in a synthetic code-address space so the I-cache
and branch predictors see a realistic stream).

Two delivery modes exist:

- **per-instruction** (:meth:`TimingSession.sink`): the original adapter
  — one Python round trip into :meth:`InOrderCore.feed` per record.
  Still the path for sampled sessions and units without a usable
  annotation.

- **annotated** (:meth:`TimingSession.sink_batch` with annotation
  enabled, the default): each unit's static timing profile is computed
  once (:mod:`repro.timing.annotate`), and whole record batches are
  applied through :meth:`InOrderCore.feed_unit` in a single call —
  bit-identical results, without the per-record classification or call
  overhead.  ``timing.annotated.*`` telemetry counters expose the
  fastpath/fallback split.
"""

from __future__ import annotations

from typing import Optional

from repro.host.isa import HostInstr  # noqa: F401  (re-export for API compat)
from repro.timing.annotate import (
    _BASE, _REGFILES, _UNIT_CLASS, compile_applier, host_pc,
    resolve_annotation,
)
from repro.timing.core import FP_BASE, VEC_BASE, InOrderCore  # noqa: F401


def _reg_classes(op: str) -> tuple:
    return _REGFILES[op]


def _map_reg(index: Optional[int], klass: str) -> Optional[int]:
    if index is None:
        return None
    return _BASE[klass] + index


_CONTROL = frozenset({"beqz", "bnez", "j", "exit", "exit_ind", "ibtc",
                      "assert_z", "assert_nz"})

#: fallback reasons surfaced through ``timing.annotated.fallback.*``
FALLBACK_SAMPLING = "sampling"
FALLBACK_UNANNOTATABLE = "unannotatable"
FALLBACK_UNBATCHED = "unbatched"


class TimingSession:
    """Streams executed host instructions into an :class:`InOrderCore`.

    Attach via :meth:`install` (or manually:
    ``host_emulator.trace_sink = session.sink`` plus
    ``trace_sink_batch = session.sink_batch``).  Optionally, TOL overhead
    charges can be fed as synthetic instruction batches so the timing
    results include the software layer (``feed_tol_overhead``).

    ``annotate`` (default: on, unless a ``sample_filter`` is given)
    enables the cycle-annotated fast path: per-unit static profiles are
    resolved against the core's configuration and record batches are fed
    through ``InOrderCore.feed_unit``.  Cycle-for-cycle identical to the
    per-instruction path by construction (DESIGN.md §10); only simulator
    wall-clock changes.
    """

    #: Synthetic TOL instruction mix: (class, has_mem).
    TOL_MIX = (
        ("simple", False), ("simple", False), ("simple", False),
        ("load", True), ("simple", False), ("branch", False),
        ("load", True), ("simple", False), ("store", True),
        ("simple", False),
    )

    def __init__(self, core: Optional[InOrderCore] = None,
                 sample_filter=None, annotate: Optional[bool] = None):
        self.core = core if core is not None else InOrderCore()
        #: optional callable(instr_number) -> bool controlling whether the
        #: instruction is simulated in detail (sampling support).
        self.sample_filter = sample_filter
        if annotate is None:
            annotate = sample_filter is None
        #: cycle-annotated batch mode (sampling forces per-record).
        self.annotate = bool(annotate) and sample_filter is None
        self.fed = 0
        self.skipped = 0
        self._seen = 0
        self._tol_pc = 0x7F00_0000
        self._tol_addr = 0xE000_0000
        self._tol_slots = None
        # Satellite of ISSUE 7: per-record attribute lookups hoisted out
        # of the hot path once, at session construction.
        self._feed = self.core.feed
        self._feed_unit = self.core.feed_unit
        #: uid -> resolved UnitAnnotation (False = unannotatable).
        self._annotations = {}
        self._batch_reason = None
        # -- annotated-mode accounting (timing.annotated.* telemetry) --
        self.annotated_units = 0
        self.compiled_units = 0
        self.fastpath_batches = 0
        self.fastpath_insns = 0
        self.fallback_insns = 0
        self.fallback_reasons = {}

    # ------------------------------------------------------------------

    def install(self, tol) -> None:
        """Wire this session into a TOL instance: trace sinks, batched
        delivery when annotating, and annotation-cache invalidation
        chained onto the code cache's ``on_remove`` hook (which already
        keeps the IBTC consistent)."""
        host = tol.host
        host.trace_sink = self.sink
        host.trace_sink_batch = self.sink_batch
        host.trace_batching = self.annotate
        cache = tol.cache
        prev = cache.on_remove
        inv = self.invalidate_unit
        if prev is None:
            cache.on_remove = inv
        else:
            def chained(unit, _prev=prev, _inv=inv):
                _inv(unit)
                _prev(unit)
            cache.on_remove = chained

    def invalidate_unit(self, unit) -> None:
        """Drop a removed unit's annotation (``CodeCache.on_remove``)."""
        self._annotations.pop(unit.uid, None)

    # ------------------------------------------------------------------

    def sink(self, unit, index: int, ins: HostInstr, info) -> None:
        self._seen += 1
        if self.sample_filter is not None \
                and not self.sample_filter(self._seen):
            self.skipped += 1
            return
        op = ins.op
        klass = _UNIT_CLASS[op]
        d_class, a_class, b_class, c_class = _REGFILES[op]
        dst = _map_reg(ins.d, d_class)
        srcs = (_map_reg(ins.a, a_class), _map_reg(ins.b, b_class),
                _map_reg(ins.c, c_class))
        mem_addr = None
        branch = None
        uid = unit.uid
        if info is not None:
            mem_addr = info.get("mem_addr")
            if "taken" in info:
                taken = info["taken"]
                target = host_pc(uid, ins.target or 0) if taken \
                    else host_pc(uid, index + 1)
                branch = (taken, target)
        if klass in ("branch",) and branch is None:
            branch = (False, 0)
        # Stores carry their value in b (or d); they have no destination.
        if klass == "store":
            dst = None
        self._feed(host_pc(uid, index), klass, dst, srcs,
                   mem_addr=mem_addr, branch=branch)
        self.fed += 1
        if self.annotate and self._batch_reason is None:
            # Per-record delivery while annotation is on: someone fed us
            # outside the batched path (visible as a fallback).
            self.fallback_insns += 1
            reasons = self.fallback_reasons
            reasons[FALLBACK_UNBATCHED] = \
                reasons.get(FALLBACK_UNBATCHED, 0) + 1

    def sink_batch(self, unit, records) -> None:
        """Batch form of :meth:`sink`: ``records`` is a list of
        ``(index, info)`` pairs in execution order.  Semantically
        identical to calling :meth:`sink` per record; with annotation
        enabled the whole batch is applied through the unit's resolved
        annotation in one core call."""
        if self.annotate:
            if self.sample_filter is None:
                anns = self._annotations
                uid = unit.uid
                ann = anns.get(uid)
                if ann is None and uid not in anns:
                    ann = self._build_annotation(unit)
                if ann:
                    n = len(records)
                    self._seen += n
                    fn = ann.compiled
                    if fn is not None:
                        rem = fn(records)
                        if rem is not None:
                            # Non-leader entry (pause flush inside a
                            # straight-line run): finish the batch on
                            # the generic annotated loop — still exact.
                            self._feed_unit(ann, records[rem:])
                    else:
                        self._feed_unit(ann, records)
                        threshold = ann.compile_at
                        if threshold is not None:
                            fed = ann.fed_records = ann.fed_records + n
                            if fed >= threshold:
                                self._compile_annotation(unit, ann)
                    self.fed += n
                    self.fastpath_batches += 1
                    self.fastpath_insns += n
                    return
                reason = FALLBACK_UNANNOTATABLE
            else:
                reason = FALLBACK_SAMPLING
            n = len(records)
            self.fallback_insns += n
            reasons = self.fallback_reasons
            reasons[reason] = reasons.get(reason, 0) + n
            self._batch_reason = reason
            try:
                self._sink_records(unit, records)
            finally:
                self._batch_reason = None
            return
        self._sink_records(unit, records)

    def _sink_records(self, unit, records) -> None:
        instrs = unit.instrs
        sink = self.sink
        for index, info in records:
            sink(unit, index, instrs[index], info)

    def _compile_annotation(self, unit, ann) -> None:
        """Tier a hot unit's annotation up to its generated applier
        (``annotate.compile_applier``); a failed or refused compile
        pins the unit to the generic loop for good."""
        ann.compile_at = None
        try:
            fn = compile_applier(unit, self.core)
        except Exception:
            fn = None
        ann.compiled = fn
        if fn is not None:
            self.compiled_units += 1

    def _build_annotation(self, unit):
        """Resolve (and cache) a unit's annotation; ``False`` marks a
        unit the profile cannot describe (it stays on the per-record
        path — bailing is always safe)."""
        try:
            ann = resolve_annotation(unit, self.core)
        except Exception:
            ann = False
        self._annotations[unit.uid] = ann
        if ann:
            self.annotated_units += 1
        return ann

    # ------------------------------------------------------------------

    def _build_tol_slots(self) -> tuple:
        """Precompute the TOL mix's steady-state schedule table: one
        ``(kind, dst, klass)`` entry per phase of the combined (mix x
        destination-pattern) period, with the class mapping, kind code
        and destination pattern folded in (every mix instruction reads
        ``(dst, 22)``).  Computed once per session; after this, applying
        a whole overhead charge is a single ``feed_synthetic_batch``
        call."""
        mix = self.TOL_MIX
        n_mix = len(mix)
        period = n_mix * 3  # lcm(len(mix), dst pattern period 3)
        kinds = {"simple": 0, "load": 1, "store": 2, "branch": 3}
        slots = []
        for i in range(period):
            klass, _has_mem = mix[i % n_mix]
            dst = 20 if i % 3 == 0 else 21
            slots.append((kinds[klass], dst, klass))
        return tuple(slots)

    def feed_tol_overhead(self, host_insns: int) -> None:
        """Feed ``host_insns`` synthetic TOL instructions (a fixed,
        moderately serial mix over a small working set) as one batch."""
        slots = self._tol_slots
        if slots is None:
            slots = self._tol_slots = self._build_tol_slots()
        self._tol_addr = self.core.feed_synthetic_batch(
            host_insns, slots, self._tol_pc, self._tol_addr)
        self.fed += host_insns
