"""Static cycle annotation of translated units (Schnerr-style
back-annotation, PAPERS.md "Cycle Accurate Binary Translation").

A timing run used to pay a per-executed-instruction Python round trip:
the host emulator delivered every record into ``TimingSession.sink``,
which re-classified the op, re-mapped its registers into the scoreboard
namespace and re-synthesized its host PC before calling
``InOrderCore.feed`` — all of it recomputed on *every execution* of the
same translated instruction.

This module computes that work **once per unit**:

- :func:`build_static_profile` runs at translate time (hooked into
  ``CodeGenerator.generate``) and captures everything about an
  instruction that does not depend on the timing configuration: its
  synthetic host PC and I-line, execution-unit class, scoreboard-mapped
  destination/sources, and (for control transfers) the precomputed
  taken-target PC.

- :func:`resolve_annotation` binds a static profile to one
  ``InOrderCore``: class latencies/occupancies from the core's
  ``TimingConfig`` and direct references to the core's per-class unit
  scoreboards, producing the flat record tuples
  ``InOrderCore.feed_unit`` consumes in its hoisted-locals loop.  It
  also derives the unit's *steady-state schedule* — the cycles the body
  would take under the all-L1-hit / correctly-predicted assumption —
  kept on the annotation for diagnostics (`steady_cycles`); the live
  model still executes every stateful update, which is what keeps the
  fast path bit-identical to the per-instruction path (DESIGN.md §10).

Annotations are cached per session keyed by unit uid and dropped via the
``CodeCache.on_remove`` hook when a unit is invalidated or evicted.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.host.isa import HostOp, op_unit_class

# Scoreboard register-id namespaces (mirrors timing.core; duplicated here
# so translate-time profiling never imports the timing core).
FP_BASE = 64
VEC_BASE = 96

#: record kind codes used by ``InOrderCore.feed_unit``
KIND_EXEC = 0     # simple/complex/fp/fp_div/vector (a cfg.units class)
KIND_LOAD = 1
KIND_STORE = 2
KIND_BRANCH = 3   # branch-class ops (incl. exits/asserts/ibtc)


def _classify_regfiles(op: str) -> tuple:
    d = a = b = c = "i"
    if op in ("lif", "fmov", "fadd", "fsub", "fmul", "fdiv", "fneg",
              "fabs", "fsqrt", "ffloor"):
        d = a = b = "f"
    elif op in ("fcmpeq", "fcmplt", "fcmpun"):
        d, a, b = "i", "f", "f"
    elif op == "i2f":
        d, a = "f", "i"
    elif op == "f2i":
        d, a = "i", "f"
    elif op in ("vmov", "vadd32", "vsub32", "vmul32"):
        d = a = b = "v"
    elif op == "vsplat":
        d, a = "v", "i"
    elif op in ("ldf", "sldf"):
        d, a = "f", "i"
    elif op == "vld":
        d, a = "v", "i"
    elif op in ("stf", "stfchk"):
        d, a, b = "i", "i", "f"
    elif op == "vst":
        d, a, b = "i", "i", "v"
    return (d, a, b, c)


#: op -> (d, a, b, c) register file letters ('i' int, 'f' fp, 'v' vec),
#: precomputed for the whole host ISA at import time.
_REGFILES = {op: _classify_regfiles(op) for op in sorted(HostOp.ALL)}

#: op -> execution-unit class, likewise precomputed at import time.
_UNIT_CLASS = {op: op_unit_class(op) for op in sorted(HostOp.ALL)}

_BASE = {"i": 0, "f": FP_BASE, "v": VEC_BASE}

_KIND = {"load": KIND_LOAD, "store": KIND_STORE, "branch": KIND_BRANCH}

#: a unit's applier is compiled after the generic loop has fed
#: ``PER_INSN * unit_size + BASE`` of its records (hot units only —
#: compiling costs real time; see the tiering note below).
COMPILE_AT_PER_INSN = 8
COMPILE_AT_BASE = 256


def host_pc(unit_uid: int, index: int) -> int:
    """Synthetic host code address of instruction ``index`` in a unit."""
    return (unit_uid << 14) | (index << 2)


def build_static_profile(unit) -> list:
    """Timing-config-independent per-instruction profile of ``unit``.

    Entry ``i`` is ``(pc, line, kind, klass, dst, srcs, taken_pc)``:

    - ``pc``/``line``: synthetic host PC and its I-cache line;
    - ``kind``: one of the ``KIND_*`` codes;
    - ``klass``: the execution-unit class string (telemetry bucketing);
    - ``dst``: scoreboard-mapped destination (``None`` for stores, which
      retire through the store buffer);
    - ``srcs``: scoreboard-mapped source registers with the ``None``
      operand slots already filtered out;
    - ``taken_pc``: for branch-class ops, the synthetic target of a
      taken transfer (``host_pc(uid, target or 0)`` — exactly what the
      per-instruction adapter computes); ``0`` otherwise.

    Computed once at translate time and attached to the unit as
    ``_timing_profile``; a few dict lookups per instruction, dwarfed by
    the SSA/scheduling passes that precede code generation.
    """
    uid = unit.uid
    base = uid << 14
    profile = []
    append = profile.append
    regfiles = _REGFILES
    unit_class = _UNIT_CLASS
    reg_base = _BASE
    kinds = _KIND
    for index, ins in enumerate(unit.instrs):
        op = ins.op
        klass = unit_class[op]
        d_class, a_class, b_class, c_class = regfiles[op]
        kind = kinds.get(klass, KIND_EXEC)
        dst = None
        if ins.d is not None and kind != KIND_STORE:
            dst = reg_base[d_class] + ins.d
        srcs = []
        if ins.a is not None:
            srcs.append(reg_base[a_class] + ins.a)
        if ins.b is not None:
            srcs.append(reg_base[b_class] + ins.b)
        if ins.c is not None:
            srcs.append(reg_base[c_class] + ins.c)
        pc = base | (index << 2)
        taken_pc = 0
        if kind == KIND_BRANCH:
            taken_pc = base | ((ins.target or 0) << 2)
        append((pc, pc >> 6, kind, klass, dst, tuple(srcs), taken_pc))
    return profile


class UnitAnnotation:
    """A static profile bound to one core's configuration and resources.

    ``recs[i]`` is the flat tuple ``feed_unit`` unpacks per executed
    record: ``(pc, line, kind, ki, dst, srcs, ulist, ext)`` where ``ki``
    indexes ``class_names`` (telemetry bucketing without per-record dict
    hashing), ``ulist`` is the core's scoreboard list for the
    instruction's unit class (``None`` for loads/stores, which bind to
    the shared memory ports) and ``ext`` is ``(latency, occupancy,
    n_units)`` for exec ops or the precomputed taken-target PC for
    branch-class ops.  ``srcs`` is ``None`` when the instruction reads
    no registers.
    """

    __slots__ = ("uid", "recs", "size", "steady_cycles", "class_counts",
                 "class_names", "compiled", "fed_records", "compile_at")

    def __init__(self, uid: int, recs: list, steady_cycles: int,
                 class_counts: dict, class_names: list):
        self.uid = uid
        self.recs = recs
        self.size = len(recs)
        #: cycles for one straight-line pass over the unit body under
        #: the all-hit / correctly-predicted / no-external-dependence
        #: assumption (diagnostics; the live model recomputes exactly).
        self.steady_cycles = steady_cycles
        self.class_counts = class_counts
        #: ki -> execution-class string, for merging batch class counts
        #: back into ``stats.by_class``.
        self.class_names = class_names
        #: generated per-unit batch applier (``fn(records) -> None |
        #: resume position``), or None while the unit stays on the
        #: generic ``InOrderCore.feed_unit`` loop.
        self.compiled = None
        #: records fed so far through the generic loop; once this
        #: crosses ``compile_at`` the session compiles the specialized
        #: applier — annotation is tiered exactly like translation.
        self.fed_records = 0
        self.compile_at = (COMPILE_AT_PER_INSN * self.size
                           + COMPILE_AT_BASE)


def resolve_annotation(unit, core, profile: Optional[list] = None
                       ) -> UnitAnnotation:
    """Bind ``unit``'s static profile to ``core``'s configuration.

    Raises ``KeyError``/``AttributeError`` for units the profile cannot
    describe (unknown op classes); callers treat that as "unannotatable"
    and fall back to the per-instruction path.
    """
    if profile is None:
        profile = unit.__dict__.get("_timing_profile")
        if profile is None:
            profile = build_static_profile(unit)
            unit._timing_profile = profile
    cfg = core.config
    units = core._units
    recs: List[Tuple] = []
    append = recs.append
    class_counts: dict = {}
    class_index: dict = {}
    class_names: list = []
    # Steady-state schedule: issue-width-limited, dependence-free,
    # all-hit latencies (documentation of the unit's best case).
    issue_width = cfg.issue_width or 1
    l1d_hit = cfg.l1d.hit_latency
    steady_done = 0
    for pc, line, kind, klass, dst, srcs, taken_pc in profile:
        class_counts[klass] = class_counts.get(klass, 0) + 1
        ki = class_index.get(klass)
        if ki is None:
            ki = class_index[klass] = len(class_names)
            class_names.append(klass)
        srcs = srcs or None
        if kind == KIND_EXEC:
            count, latency, pipelined = cfg.units[klass]
            occupancy = 1 if pipelined else latency
            ulist = units[klass]
            append((pc, line, kind, ki, dst, srcs, ulist,
                    (latency, occupancy, len(ulist))))
            steady_done = max(steady_done, latency)
        elif kind == KIND_BRANCH:
            ulist = units["simple"]
            append((pc, line, kind, ki, dst, srcs, ulist, taken_pc))
            steady_done = max(steady_done, 1)
        else:
            append((pc, line, kind, ki, dst, srcs, None, None))
            steady_done = max(steady_done,
                              l1d_hit if kind == KIND_LOAD else 1)
    n = len(profile)
    issue_cycles = (n + issue_width - 1) // issue_width if n else 0
    steady_cycles = issue_cycles + steady_done
    return UnitAnnotation(unit.uid, recs, steady_cycles, class_counts,
                          class_names)


# ----------------------------------------------------------------------
# Generated per-unit batch appliers.
#
# ``feed_unit`` already amortizes the per-record Python call, but it
# still re-reads every static fact (PC, line, kind, operands, unit
# class) from the annotation table on every execution and re-dispatches
# on the record kind.  For compiled units all of that is known at
# annotation time, so — exactly like the host emulator's fast segments
# and the direct tier — we generate a specialized Python function per
# unit with the constants folded into the bytecode:
#
# - one straight-line block per instruction, with literal PCs, I-lines,
#   latencies and scoreboard indices;
# - the I-line change check elided whenever the previous instruction in
#   the same straight-line run shares the line (statically known);
# - RAW lookups unrolled per operand, unit/port selection unrolled for
#   the 1- and 2-wide cases;
# - control flow mirroring the unit CFG: arms per *leader* (entry 0,
#   branch targets, fall-throughs past a branch), so a record batch is
#   consumed by running down the arm and re-dispatching only at
#   branch-class records.
#
# The arithmetic is ``InOrderCore.feed``'s line for line (see the
# mirror note in timing/core.py); only its operands are pre-resolved.
# A batch that enters at a non-leader index (rare: a pause flush inside
# a run) makes the dispatcher bail by returning the unconsumed
# position, and the caller finishes the batch on the generic
# ``feed_unit`` loop — bailing is always exact.
#
# Compiling is not free (tens of ms for a big unit), so it is *tiered*
# like translation itself: the session compiles a unit's applier only
# after the generic loop has fed ``compile_at`` records for it, and the
# resulting code objects are memoized by source text — a unit translated
# identically in a later session (same uid sequence, same timing
# configuration) rebinds the cached bytecode with a cheap ``exec``
# instead of recompiling.
# ----------------------------------------------------------------------

#: units larger than this keep the generic ``feed_unit`` loop (bounds
#: generated-source size; covers every BBM/SBM unit in practice).
_MAX_COMPILED_SIZE = 512

#: source text -> code object (cross-session; cleared when full)
_CODE_CACHE: dict = {}
_CODE_CACHE_MAX = 1024


def _emit_issue_block(emit, ind, n_srcs, bound: str, bucket: str,
                      issue_width: int) -> None:
    """The shared issue/stall-attribution sequence of ``feed``, with the
    RAW comparisons dropped for 0-source instructions (a zero bound can
    never exceed ``ready`` >= 0)."""
    emit(ind, "issue = ready")
    if n_srcs:
        emit(ind, "if raw_bound > issue:")
        emit(ind + 1, "issue = raw_bound")
    emit(ind, f"if {bound} > issue:")
    emit(ind + 1, f"issue = {bound}")
    emit(ind, "if last_issue > issue:")
    emit(ind + 1, "issue = last_issue")
    emit(ind, f"if issue == last_issue and issued_in_cycle >= {issue_width}:")
    emit(ind + 1, "issue += 1")
    if n_srcs:
        emit(ind, "if raw_bound >= issue and raw_bound > ready:")
        emit(ind + 1, "st_raw += raw_bound - ready")
        emit(ind, f"elif {bound} >= issue and {bound} > ready:")
    else:
        emit(ind, f"if {bound} >= issue and {bound} > ready:")
    emit(ind + 1, f"st_{bucket} += {bound} - ready")
    emit(ind, "if issue > last_issue:")
    emit(ind + 1, "issued_in_cycle = 1")
    emit(ind + 1, "last_issue = issue")
    emit(ind, "else:")
    emit(ind + 1, "issued_in_cycle += 1")
    emit(ind, "IQA(issue)")


def _emit_select(emit, ind, ulist: str, n: int, ranges: set) -> str:
    """Emit lowest-ready selection over ``ulist`` (ties to the lowest
    index, as ``min`` resolves them); returns the index expression to
    write back through."""
    if n == 1:
        emit(ind, f"unit_bound = {ulist}[0]")
        return "0"
    if n == 2:
        emit(ind, "_ui = 0")
        emit(ind, f"unit_bound = {ulist}[0]")
        emit(ind, f"_u1 = {ulist}[1]")
        emit(ind, "if _u1 < unit_bound:")
        emit(ind + 1, "unit_bound = _u1")
        emit(ind + 1, "_ui = 1")
        return "_ui"
    ranges.add(n)
    emit(ind, f"_ui = _min(_R{n}, key={ulist}.__getitem__)")
    emit(ind, f"unit_bound = {ulist}[_ui]")
    return "_ui"


def compile_applier(unit, core, profile=None):
    """Generate the unit's specialized batch applier, or ``None`` when
    the unit is too large to compile.  The returned function has the
    signature ``fn(records) -> None | int``: ``None`` when the whole
    batch was consumed, else the position of the first unconsumed
    record (non-leader entry; the caller falls back to ``feed_unit``
    for the remainder)."""
    if profile is None:
        profile = unit.__dict__.get("_timing_profile")
        if profile is None:
            profile = build_static_profile(unit)
            unit._timing_profile = profile
    size = len(profile)
    if size == 0 or size > _MAX_COMPILED_SIZE:
        return None
    cfg = core.config

    # -- leaders: entry, branch targets, fall-throughs past branches --
    leaders = {0}
    for k, ins in enumerate(unit.instrs):
        if profile[k][2] == KIND_BRANCH:
            if k + 1 < size:
                leaders.add(k + 1)
            if ins.target is not None and 0 <= ins.target < size:
                leaders.add(ins.target)
    order = sorted(leaders)
    next_leader = {}
    for i, lead in enumerate(order):
        next_leader[lead] = order[i + 1] if i + 1 < len(order) else size

    classes = []
    for entry in profile:
        if entry[3] not in classes:
            classes.append(entry[3])

    params = {
        "C": core, "RR": core.reg_ready, "IQ": core._iq,
        "IQA": core._iq.append, "IQP": core._iq.popleft,
        "ST": core._stall, "SS": core.stats,
        "FL": core.mem.fetch_latency, "DL": core.mem.data_latency,
        "GU": core.gshare.update, "BL": core.btb.lookup,
        "BU": core.btb.update, "_len": len,
    }
    uses_min = False
    needed_ranges: set = set()
    for klass in classes:
        if klass in ("load", "store"):
            continue
        unit_klass = "simple" if klass == "branch" else klass
        params[f"UL_{unit_klass}"] = core._units[unit_klass]
    if "load" in classes:
        params["RP"] = core._read_ports
    if "store" in classes:
        params["WP"] = core._write_ports

    fetch_width = cfg.fetch_width
    decode_depth = cfg.decode_depth
    iq_size = cfg.iq_size
    issue_width = cfg.issue_width
    mispredict_penalty = cfg.mispredict_penalty
    l1i_hit = cfg.l1i.hit_latency

    lines: list = []

    def emit(ind: int, text: str) -> None:
        lines.append("    " * ind + text)

    def emit_instr(k: int, first: bool) -> None:
        pc, line, kind, klass, dst, srcs, taken_pc = profile[k]
        if not first:
            emit(3, "if pos == n:")
            emit(4, "break")
        emit(3, f"# [{k}] {unit.instrs[k].op}")
        # fetch
        emit(3, f"if fetched >= {fetch_width}:")
        emit(4, "fetch_cycle += 1")
        emit(4, "fetched = 0")
        if first or profile[k - 1][1] != line:
            emit(3, f"if {line} != last_line:")
            emit(4, f"last_line = {line}")
            emit(4, f"_fl = FL({pc})")
            emit(4, f"if _fl > {l1i_hit}:")
            emit(5, f"fetch_cycle += _fl - {l1i_hit}")
            emit(5, "fetched = 0")
            emit(5, f"st_front += _fl - {l1i_hit}")
        emit(3, f"if _len(IQ) >= {iq_size}:")
        emit(4, "_b = IQP()")
        emit(4, "if _b > fetch_cycle:")
        emit(5, "st_iq += _b - fetch_cycle")
        emit(5, "fetch_cycle = _b")
        emit(5, "fetched = 0")
        emit(3, "fetched += 1")
        emit(3, f"ready = fetch_cycle + {decode_depth}")
        # RAW, unrolled per operand
        n_srcs = len(srcs)
        if n_srcs == 1:
            emit(3, f"raw_bound = RR[{srcs[0]}]")
        elif n_srcs >= 2:
            emit(3, f"raw_bound = RR[{srcs[0]}]")
            for s in srcs[1:]:
                emit(3, f"_r = RR[{s}]")
                emit(3, "if _r > raw_bound:")
                emit(4, "raw_bound = _r")
        # kind-specific issue / latency
        nonlocal_ranges = needed_ranges
        if kind == KIND_EXEC:
            _count, latency, pipelined = cfg.units[klass]
            occupancy = 1 if pipelined else latency
            ulist = f"UL_{klass}"
            n_units = len(core._units[klass])
            uexpr = _emit_select(emit, 3, ulist, n_units, nonlocal_ranges)
            _emit_issue_block(emit, 3, n_srcs, "unit_bound", "unit",
                              issue_width)
            emit(3, f"{ulist}[{uexpr}] = issue + {occupancy}")
            emit(3, f"done = issue + {latency}")
        elif kind == KIND_BRANCH:
            ulist = "UL_simple"
            n_units = len(core._units["simple"])
            uexpr = _emit_select(emit, 3, ulist, n_units, nonlocal_ranges)
            _emit_issue_block(emit, 3, n_srcs, "unit_bound", "unit",
                              issue_width)
            emit(3, f"{ulist}[{uexpr}] = issue + 1")
            emit(3, "done = issue + 1")
            emit(3, "n_branches += 1")
            emit(3, "_inf = records[pos][1]")
            emit(3, '_tk = _inf["taken"] if _inf is not None else False')
            emit(3, f"_dok = GU({pc}, _tk)")
            emit(3, "if _tk:")
            emit(4, f"_tok = BL({pc}) == {taken_pc}")
            emit(4, f"BU({pc}, {taken_pc})")
            emit(4, "if not _dok or not _tok:")
            emit(5, "n_mispredicts += 1")
            emit(5, f"_rd = done + {mispredict_penalty}")
            emit(5, "if _rd > fetch_cycle:")
            emit(6, "fetch_cycle = _rd")
            emit(6, "fetched = 0")
            emit(3, "elif not _dok:")
            emit(4, "n_mispredicts += 1")
            emit(4, f"_rd = done + {mispredict_penalty}")
            emit(4, "if _rd > fetch_cycle:")
            emit(5, "fetch_cycle = _rd")
            emit(5, "fetched = 0")
        else:
            if kind == KIND_LOAD:
                plist, n_ports = "RP", len(core._read_ports)
            else:
                plist, n_ports = "WP", len(core._write_ports)
            if n_ports == 1:
                pexpr = "0"
                emit(3, f"port_bound = {plist}[0]")
            else:
                nonlocal_ranges.add(n_ports)
                emit(3, f"_pi = _min(_R{n_ports}, key={plist}.__getitem__)")
                emit(3, f"port_bound = {plist}[_pi]")
                pexpr = "_pi"
            _emit_issue_block(emit, 3, n_srcs, "port_bound", "mem",
                              issue_width)
            emit(3, "_inf = records[pos][1]")
            emit(3, '_a = _inf["mem_addr"] if _inf is not None else None')
            if kind == KIND_LOAD:
                emit(3, "n_loads += 1")
                emit(3, f"done = issue + DL({pc}, _a or 0)")
            else:
                emit(3, "n_stores += 1")
                emit(3, f"DL({pc}, _a or 0)")
                emit(3, "done = issue + 1")
            emit(3, f"{plist}[{pexpr}] = issue + 1")
        # shared tail
        if dst is not None:
            emit(3, f"RR[{dst}] = done")
        emit(3, "if done > last_done:")
        emit(4, "last_done = done")
        emit(3, f"kc_{klass} += 1")
        emit(3, "pos += 1")

    # ------------------------------------------------------------------
    emit(0, f"def _annfeed(records, {', '.join(f'{p}={p}' for p in params)}):")
    for scalar, attr in (("fetch_cycle", "_fetch_cycle"),
                        ("fetched", "_fetched_in_cycle"),
                        ("last_line", "_last_fetch_line"),
                        ("last_issue", "_last_issue"),
                        ("issued_in_cycle", "_issued_in_cycle"),
                        ("last_done", "_last_done")):
        emit(1, f"{scalar} = C.{attr}")
    for bucket in ("raw", "unit", "mem", "iq", "front"):
        key = {"mem": "memport", "front": "frontend"}.get(bucket, bucket)
        emit(1, f'st_{bucket} = ST["{key}"]')
    for klass in classes:
        emit(1, f"kc_{klass} = 0")
    emit(1, "n_branches = 0")
    emit(1, "n_mispredicts = 0")
    emit(1, "n_loads = 0")
    emit(1, "n_stores = 0")
    emit(1, "pos = 0")
    emit(1, "n = _len(records)")
    emit(1, "try:")
    emit(2, "while pos < n:")
    emit(3, "index = records[pos][0]")
    first_arm = True
    for lead in order:
        cond = "if" if first_arm else "elif"
        first_arm = False
        emit(3, f"{cond} index == {lead}:")
        # re-indent arm bodies one level deeper than the emit_instr base
        mark = len(lines)
        for k in range(lead, next_leader[lead]):
            emit_instr(k, first=(k == lead))
        emit(3, "continue")
        for i in range(mark, len(lines)):
            lines[i] = "    " + lines[i]
    emit(3, "else:")
    emit(4, "return pos")
    emit(1, "finally:")
    for scalar, attr in (("fetch_cycle", "_fetch_cycle"),
                        ("fetched", "_fetched_in_cycle"),
                        ("last_line", "_last_fetch_line"),
                        ("last_issue", "_last_issue"),
                        ("issued_in_cycle", "_issued_in_cycle"),
                        ("last_done", "_last_done")):
        emit(2, f"C.{attr} = {scalar}")
    for bucket in ("raw", "unit", "mem", "iq", "front"):
        key = {"mem": "memport", "front": "frontend"}.get(bucket, bucket)
        emit(2, f'ST["{key}"] = st_{bucket}')
    emit(2, "_bc = SS.by_class")
    for klass in classes:
        emit(2, f"if kc_{klass}:")
        emit(3, f'_bc["{klass}"] = _bc.get("{klass}", 0) + kc_{klass}')
    emit(2, "SS.instructions += pos")
    emit(2, "SS.branches += n_branches")
    emit(2, "SS.mispredicts += n_mispredicts")
    emit(2, "SS.loads += n_loads")
    emit(2, "SS.stores += n_stores")
    emit(2, "SS.cycles = last_done")

    if needed_ranges:
        params["_min"] = min
        for n_range in needed_ranges:
            params[f"_R{n_range}"] = range(n_range)
        # ranges/min are referenced by the body; re-emit the signature
        # line with the complete parameter list.
        lines[0] = (f"def _annfeed(records, "
                    f"{', '.join(f'{p}={p}' for p in params)}):")

    source = "\n".join(lines) + "\n"
    code = _CODE_CACHE.get(source)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.clear()
        code = compile(source, f"<timing-annotation:{unit.uid}>", "exec")
        _CODE_CACHE[source] = code
    namespace = dict(params)
    exec(code, namespace)
    fn = namespace["_annfeed"]
    fn._source = source  # debugging / tests
    return fn
