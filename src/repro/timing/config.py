"""Timing simulator configuration (paper §V-C).

Every parameter the paper lists is here: issue width, instruction queue
size, numbers/latencies of execution units, branch predictor and BTB sizes,
cache and TLB sizes/latencies, memory ports and SIMD vector length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheConfig:
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 3


@dataclass
class TLBConfig:
    entries: int
    assoc: int = 4
    hit_latency: int = 0  # folded into the cache hit pipeline


@dataclass
class TimingConfig:
    # -- front-end ----------------------------------------------------------
    fetch_width: int = 4
    decode_depth: int = 4          # front-end pipeline stages
    iq_size: int = 32              # instruction queue between FE and BE
    # -- branch prediction ----------------------------------------------------
    gshare_entries: int = 4096
    gshare_history_bits: int = 10
    btb_entries: int = 512
    mispredict_penalty: int = 8
    # -- back-end -------------------------------------------------------------
    issue_width: int = 2
    #: execution units: class -> (count, latency, pipelined)
    units: Dict[str, tuple] = field(default_factory=lambda: {
        "simple": (2, 1, True),
        "complex": (1, 4, False),      # mul 4; div uses extra occupancy
        "fp": (1, 4, True),
        "fp_div": (1, 12, False),
        "vector": (1, 4, True),
    })
    div_latency: int = 12
    #: memory read / write ports
    mem_read_ports: int = 1
    mem_write_ports: int = 1
    #: scalar / vector physical registers (scoreboard capacity modelling)
    scalar_regs: int = 64
    vector_regs: int = 16
    vector_length_bits: int = 128
    # -- memory hierarchy ---------------------------------------------------------
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, assoc=4, hit_latency=1))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, assoc=4, hit_latency=3))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=512 * 1024, assoc=8, hit_latency=12))
    memory_latency: int = 120
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=64))
    stlb: TLBConfig = field(default_factory=lambda: TLBConfig(
        entries=1024, hit_latency=8))
    page_walk_latency: int = 60
    # -- prefetching ------------------------------------------------------------
    prefetch_enable: bool = True
    prefetch_degree: int = 2
    prefetch_table_entries: int = 64
    # -- clock --------------------------------------------------------------------
    frequency_ghz: float = 2.0
