"""Parameterized in-order superscalar timing model (paper §V-C).

Models DARCO's host core: decoupled front-end (gshare + BTB, instruction
queue) and back-end (in-order issue with scoreboarding, simple/complex/FP/
vector units, limited memory ports), two-level caches and TLBs with a
stride data prefetcher.

The model is dependence-driven: each retired host instruction is fed in
program order and its fetch/issue/complete cycles are computed from the
scoreboard, structural resources and memory hierarchy — the standard
trace-driven formulation for in-order pipelines (no per-cycle loop, exact
for in-order issue).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.timing.branch import BTB, Gshare
from repro.timing.cache import MemoryHierarchy
from repro.timing.config import TimingConfig

#: register-id namespaces for the scoreboard
FP_BASE = 64
VEC_BASE = 96
NUM_SCOREBOARD_REGS = 112


@dataclass
class TimingStats:
    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    mispredicts: int = 0
    loads: int = 0
    stores: int = 0
    stall_cycles: Dict[str, int] = field(default_factory=dict)
    #: Instructions issued per execution-unit class (telemetry's
    #: per-unit occupancy view).
    by_class: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class InOrderCore:
    """Feed instructions in program order via :meth:`feed`."""

    def __init__(self, config: Optional[TimingConfig] = None):
        self.config = config if config is not None else TimingConfig()
        cfg = self.config
        self.mem = MemoryHierarchy(cfg)
        self.gshare = Gshare(cfg.gshare_entries, cfg.gshare_history_bits)
        self.btb = BTB(cfg.btb_entries)
        self.reg_ready = [0] * NUM_SCOREBOARD_REGS
        # Front-end state.
        self._fetch_cycle = 0
        self._fetched_in_cycle = 0
        self._last_fetch_line = -1
        # Back-end state.
        self._last_issue = 0
        self._issued_in_cycle = 0
        self._units = {
            klass: [0] * count
            for klass, (count, _lat, _pipe) in cfg.units.items()}
        self._read_ports = [0] * cfg.mem_read_ports
        self._write_ports = [0] * cfg.mem_write_ports
        self._iq = deque()
        self.stats = TimingStats()
        self._stall = {"raw": 0, "unit": 0, "memport": 0, "iq": 0,
                       "frontend": 0}
        self._last_done = 0

    # ------------------------------------------------------------------

    def feed(self, pc: int, klass: str, dst: Optional[int], srcs,
             mem_addr: Optional[int] = None, branch=None,
             latency_override: Optional[int] = None) -> int:
        """Process one instruction; returns its completion cycle.

        ``klass`` is an execution-unit class ('simple', 'complex', 'fp',
        'fp_div', 'vector', 'load', 'store', 'branch'); ``branch`` is a
        ``(taken, target_pc)`` pair for control transfers.
        """
        cfg = self.config
        stats = self.stats
        stats.instructions += 1
        stats.by_class[klass] = stats.by_class.get(klass, 0) + 1

        # -- fetch -------------------------------------------------------
        if self._fetched_in_cycle >= cfg.fetch_width:
            self._fetch_cycle += 1
            self._fetched_in_cycle = 0
        line = pc >> 6
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            fetch_lat = self.mem.fetch_latency(pc)
            if fetch_lat > cfg.l1i.hit_latency:
                self._fetch_cycle += fetch_lat - cfg.l1i.hit_latency
                self._fetched_in_cycle = 0
                self._stall["frontend"] += fetch_lat - cfg.l1i.hit_latency
        # IQ backpressure: can't fetch further than iq_size unissued ops.
        if len(self._iq) >= cfg.iq_size:
            blocker = self._iq.popleft()
            if blocker > self._fetch_cycle:
                self._stall["iq"] += blocker - self._fetch_cycle
                self._fetch_cycle = blocker
                self._fetched_in_cycle = 0
        self._fetched_in_cycle += 1
        iq_enter = self._fetch_cycle + cfg.decode_depth

        # -- issue constraints --------------------------------------------
        ready = iq_enter
        raw_bound = 0
        for src in srcs:
            if src is not None:
                raw_bound = max(raw_bound, self.reg_ready[src])
        unit_klass = klass
        if klass == "load" or klass == "store":
            unit_klass = None
        elif klass == "branch":
            unit_klass = "simple"
        unit_bound = 0
        unit_list = None
        unit_index = 0
        if unit_klass is not None:
            unit_list = self._units[unit_klass]
            unit_index = min(range(len(unit_list)),
                             key=unit_list.__getitem__)
            unit_bound = unit_list[unit_index]
        port_bound = 0
        port_list = None
        port_index = 0
        if klass == "load":
            port_list = self._read_ports
        elif klass == "store":
            port_list = self._write_ports
        if port_list is not None:
            port_index = min(range(len(port_list)),
                             key=port_list.__getitem__)
            port_bound = port_list[port_index]

        issue = max(ready, raw_bound, unit_bound, port_bound,
                    self._last_issue)
        if issue == self._last_issue and \
                self._issued_in_cycle >= cfg.issue_width:
            issue += 1
        # Stall attribution (binding constraint).
        if raw_bound >= issue and raw_bound > ready:
            self._stall["raw"] += raw_bound - ready
        elif unit_bound >= issue and unit_bound > ready:
            self._stall["unit"] += unit_bound - ready
        elif port_bound >= issue and port_bound > ready:
            self._stall["memport"] += port_bound - ready
        if issue > self._last_issue:
            self._issued_in_cycle = 1
            self._last_issue = issue
        else:
            self._issued_in_cycle += 1
        self._iq.append(issue)

        # -- execution latency ----------------------------------------------
        if latency_override is not None:
            latency = latency_override
        elif klass == "load":
            stats.loads += 1
            latency = self.mem.data_latency(pc, mem_addr or 0)
        elif klass == "store":
            stats.stores += 1
            self.mem.data_latency(pc, mem_addr or 0)
            latency = 1  # store buffer hides the rest
        elif klass == "branch":
            latency = 1
        else:
            _count, latency, pipelined = self.config.units[klass]
            occupancy = 1 if pipelined else latency
            unit_list[unit_index] = issue + occupancy
        if klass == "load" or klass == "store":
            port_list[port_index] = issue + 1
        elif klass == "branch":
            unit_list[unit_index] = issue + 1

        done = issue + latency
        if dst is not None:
            self.reg_ready[dst] = done

        # -- branches ---------------------------------------------------------
        if branch is not None:
            taken, target = branch
            stats.branches += 1
            direction_ok = self.gshare.update(pc, taken)
            target_ok = True
            if taken:
                predicted = self.btb.lookup(pc)
                target_ok = predicted == target
                self.btb.update(pc, target)
            if not direction_ok or not target_ok:
                stats.mispredicts += 1
                redirect = done + cfg.mispredict_penalty
                if redirect > self._fetch_cycle:
                    self._fetch_cycle = redirect
                    self._fetched_in_cycle = 0

        if done > self._last_done:
            self._last_done = done
        stats.cycles = self._last_done
        return done

    # ------------------------------------------------------------------
    # Aggregate feed entry points.
    #
    # ``feed_unit`` and ``feed_synthetic_batch`` are hoisted-locals
    # mirrors of :meth:`feed`: one Python call per *batch* instead of
    # one per instruction, with the classification/mapping work read
    # from precomputed tables and every piece of core state lifted into
    # locals for the duration of the loop.  They perform exactly the
    # same arithmetic and the same stateful updates (scoreboard, IQ,
    # caches, predictors, stall attribution) in the same order, so the
    # resulting reports are bit-identical to the per-instruction path —
    # the differential suite in ``tests/test_timing_annotation.py``
    # holds all three to identity.  Any semantic change to ``feed``
    # must be replicated here (and vice versa).
    # ------------------------------------------------------------------

    def feed_unit(self, ann, records) -> None:
        """Feed one unit execution's trace records through the unit's
        resolved annotation (:class:`~repro.timing.annotate.UnitAnnotation`).

        ``records`` is the executed ``(index, info)`` stream in program
        order; ``ann.recs[index]`` carries everything static about the
        instruction, ``info`` only the per-execution dynamics (memory
        address, branch direction).
        """
        cfg = self.config
        stats = self.stats
        recs = ann.recs
        # -- hoisted configuration ------------------------------------
        fetch_width = cfg.fetch_width
        decode_depth = cfg.decode_depth
        iq_size = cfg.iq_size
        issue_width = cfg.issue_width
        mispredict_penalty = cfg.mispredict_penalty
        l1i_hit = cfg.l1i.hit_latency
        # -- hoisted resources ----------------------------------------
        reg_ready = self.reg_ready
        fetch_latency = self.mem.fetch_latency
        data_latency = self.mem.data_latency
        gshare_update = self.gshare.update
        btb_lookup = self.btb.lookup
        btb_update = self.btb.update
        iq = self._iq
        iq_append = iq.append
        iq_popleft = iq.popleft
        read_ports = self._read_ports
        write_ports = self._write_ports
        n_read = len(read_ports)
        n_write = len(write_ports)
        class_names = ann.class_names
        kcounts = [0] * len(class_names)
        # -- mutable scalars as locals --------------------------------
        stall = self._stall
        st_raw = stall["raw"]
        st_unit = stall["unit"]
        st_mem = stall["memport"]
        st_iq = stall["iq"]
        st_front = stall["frontend"]
        fetch_cycle = self._fetch_cycle
        fetched = self._fetched_in_cycle
        last_line = self._last_fetch_line
        last_issue = self._last_issue
        issued_in_cycle = self._issued_in_cycle
        last_done = self._last_done
        fed = 0
        n_branches = 0
        n_mispredicts = 0
        n_loads = 0
        n_stores = 0
        try:
            for index, info in records:
                pc, line, kind, ki, dst, srcs, ulist, ext = recs[index]
                fed += 1
                kcounts[ki] += 1

                # -- fetch --------------------------------------------
                if fetched >= fetch_width:
                    fetch_cycle += 1
                    fetched = 0
                if line != last_line:
                    last_line = line
                    fetch_lat = fetch_latency(pc)
                    if fetch_lat > l1i_hit:
                        fetch_cycle += fetch_lat - l1i_hit
                        fetched = 0
                        st_front += fetch_lat - l1i_hit
                if len(iq) >= iq_size:
                    blocker = iq_popleft()
                    if blocker > fetch_cycle:
                        st_iq += blocker - fetch_cycle
                        fetch_cycle = blocker
                        fetched = 0
                fetched += 1
                ready = fetch_cycle + decode_depth

                raw_bound = 0
                if srcs is not None:
                    for src in srcs:
                        r = reg_ready[src]
                        if r > raw_bound:
                            raw_bound = r

                # -- issue / latency, specialized per kind ------------
                # Exec/branch records never bind a memory port and
                # loads/stores never bind a unit scoreboard, so each
                # arm carries only the comparisons that can fire (a
                # zero bound can never exceed ``ready``); the shared
                # arithmetic is ``feed``'s, line for line.
                if kind == 0:                # exec class
                    latency, occupancy, n_units = ext
                    unit_index = 0
                    if n_units == 1:
                        unit_bound = ulist[0]
                    elif n_units == 2:
                        u0 = ulist[0]
                        u1 = ulist[1]
                        if u0 <= u1:
                            unit_bound = u0
                        else:
                            unit_bound = u1
                            unit_index = 1
                    else:
                        unit_index = min(range(n_units),
                                         key=ulist.__getitem__)
                        unit_bound = ulist[unit_index]
                    issue = ready
                    if raw_bound > issue:
                        issue = raw_bound
                    if unit_bound > issue:
                        issue = unit_bound
                    if last_issue > issue:
                        issue = last_issue
                    if issue == last_issue \
                            and issued_in_cycle >= issue_width:
                        issue += 1
                    if raw_bound >= issue and raw_bound > ready:
                        st_raw += raw_bound - ready
                    elif unit_bound >= issue and unit_bound > ready:
                        st_unit += unit_bound - ready
                    if issue > last_issue:
                        issued_in_cycle = 1
                        last_issue = issue
                    else:
                        issued_in_cycle += 1
                    iq_append(issue)
                    ulist[unit_index] = issue + occupancy
                    done = issue + latency
                elif kind == 3:              # branch class
                    n_units = len(ulist)
                    unit_index = 0
                    if n_units == 1:
                        unit_bound = ulist[0]
                    elif n_units == 2:
                        u0 = ulist[0]
                        u1 = ulist[1]
                        if u0 <= u1:
                            unit_bound = u0
                        else:
                            unit_bound = u1
                            unit_index = 1
                    else:
                        unit_index = min(range(n_units),
                                         key=ulist.__getitem__)
                        unit_bound = ulist[unit_index]
                    issue = ready
                    if raw_bound > issue:
                        issue = raw_bound
                    if unit_bound > issue:
                        issue = unit_bound
                    if last_issue > issue:
                        issue = last_issue
                    if issue == last_issue \
                            and issued_in_cycle >= issue_width:
                        issue += 1
                    if raw_bound >= issue and raw_bound > ready:
                        st_raw += raw_bound - ready
                    elif unit_bound >= issue and unit_bound > ready:
                        st_unit += unit_bound - ready
                    if issue > last_issue:
                        issued_in_cycle = 1
                        last_issue = issue
                    else:
                        issued_in_cycle += 1
                    iq_append(issue)
                    ulist[unit_index] = issue + 1
                    done = issue + 1
                    n_branches += 1
                    taken = info["taken"] if info is not None else False
                    direction_ok = gshare_update(pc, taken)
                    target_ok = True
                    if taken:
                        target_ok = btb_lookup(pc) == ext
                        btb_update(pc, ext)
                    if not direction_ok or not target_ok:
                        n_mispredicts += 1
                        redirect = done + mispredict_penalty
                        if redirect > fetch_cycle:
                            fetch_cycle = redirect
                            fetched = 0
                else:                        # load / store
                    if kind == 1:
                        port_list = read_ports
                        n_ports = n_read
                    else:
                        port_list = write_ports
                        n_ports = n_write
                    port_index = 0
                    if n_ports == 1:
                        port_bound = port_list[0]
                    else:
                        port_index = min(range(n_ports),
                                         key=port_list.__getitem__)
                        port_bound = port_list[port_index]
                    issue = ready
                    if raw_bound > issue:
                        issue = raw_bound
                    if port_bound > issue:
                        issue = port_bound
                    if last_issue > issue:
                        issue = last_issue
                    if issue == last_issue \
                            and issued_in_cycle >= issue_width:
                        issue += 1
                    if raw_bound >= issue and raw_bound > ready:
                        st_raw += raw_bound - ready
                    elif port_bound >= issue and port_bound > ready:
                        st_mem += port_bound - ready
                    if issue > last_issue:
                        issued_in_cycle = 1
                        last_issue = issue
                    else:
                        issued_in_cycle += 1
                    iq_append(issue)
                    addr = info["mem_addr"] if info is not None else None
                    if kind == 1:
                        n_loads += 1
                        done = issue + data_latency(pc, addr or 0)
                    else:
                        n_stores += 1
                        data_latency(pc, addr or 0)
                        done = issue + 1
                    port_list[port_index] = issue + 1
                if dst is not None:
                    reg_ready[dst] = done
                if done > last_done:
                    last_done = done
        finally:
            self._fetch_cycle = fetch_cycle
            self._fetched_in_cycle = fetched
            self._last_fetch_line = last_line
            self._last_issue = last_issue
            self._issued_in_cycle = issued_in_cycle
            self._last_done = last_done
            stall["raw"] = st_raw
            stall["unit"] = st_unit
            stall["memport"] = st_mem
            stall["iq"] = st_iq
            stall["frontend"] = st_front
            by_class = stats.by_class
            for ki, count in enumerate(kcounts):
                if count:
                    name = class_names[ki]
                    by_class[name] = by_class.get(name, 0) + count
            stats.instructions += fed
            stats.branches += n_branches
            stats.mispredicts += n_mispredicts
            stats.loads += n_loads
            stats.stores += n_stores
            stats.cycles = last_done

    def feed_synthetic_batch(self, n: int, slots, pc_base: int,
                             addr: int) -> int:
        """Feed ``n`` instructions of a precomputed synthetic slot
        cycle (the TOL overhead mix) in one call; returns the updated
        rolling data address.

        ``slots`` is the steady-state schedule table: entry ``i % len``
        is ``(kind, dst, klass)`` with the class mapping and destination
        pattern precomputed once (see ``TimingSession._tol_slots``);
        every mix instruction reads ``(dst, 22)``, and register 22 is
        never written by the mix, so its readiness is loop-invariant.
        Per-class counts are closed-form over the slot cycle and merged
        after the loop.  Exact mirror of feeding the mix one
        instruction at a time through :meth:`feed`.
        """
        cfg = self.config
        stats = self.stats
        n_slots = len(slots)
        fetch_width = cfg.fetch_width
        decode_depth = cfg.decode_depth
        iq_size = cfg.iq_size
        issue_width = cfg.issue_width
        mispredict_penalty = cfg.mispredict_penalty
        l1i_hit = cfg.l1i.hit_latency
        s_count, s_latency, s_pipelined = cfg.units["simple"]
        s_occupancy = 1 if s_pipelined else s_latency
        reg_ready = self.reg_ready
        fetch_latency = self.mem.fetch_latency
        data_latency = self.mem.data_latency
        gshare_update = self.gshare.update
        btb_lookup = self.btb.lookup
        btb_update = self.btb.update
        iq = self._iq
        iq_append = iq.append
        iq_popleft = iq.popleft
        simple_units = self._units["simple"]
        n_simple = len(simple_units)
        read_ports = self._read_ports
        write_ports = self._write_ports
        n_read = len(read_ports)
        n_write = len(write_ports)
        # Register 22 is read by every mix instruction but written by
        # none of them (destinations cycle over 20/21): loop-invariant.
        r22 = reg_ready[22]
        stall = self._stall
        st_raw = stall["raw"]
        st_unit = stall["unit"]
        st_mem = stall["memport"]
        st_iq = stall["iq"]
        st_front = stall["frontend"]
        fetch_cycle = self._fetch_cycle
        fetched = self._fetched_in_cycle
        last_line = self._last_fetch_line
        last_issue = self._last_issue
        issued_in_cycle = self._issued_in_cycle
        last_done = self._last_done
        fed = 0
        n_branches = 0
        n_mispredicts = 0
        n_loads = 0
        n_stores = 0
        try:
            for i in range(n):
                kind, dst, _klass = slots[i % n_slots]
                pc = pc_base + (i & 4095) * 4
                line = pc >> 6
                fed += 1

                if fetched >= fetch_width:
                    fetch_cycle += 1
                    fetched = 0
                if line != last_line:
                    last_line = line
                    fetch_lat = fetch_latency(pc)
                    if fetch_lat > l1i_hit:
                        fetch_cycle += fetch_lat - l1i_hit
                        fetched = 0
                        st_front += fetch_lat - l1i_hit
                if len(iq) >= iq_size:
                    blocker = iq_popleft()
                    if blocker > fetch_cycle:
                        st_iq += blocker - fetch_cycle
                        fetch_cycle = blocker
                        fetched = 0
                fetched += 1
                ready = fetch_cycle + decode_depth

                raw_bound = reg_ready[dst]
                if r22 > raw_bound:
                    raw_bound = r22
                unit_bound = 0
                port_bound = 0
                unit_index = 0
                port_index = 0
                port_list = None
                if kind == 0 or kind == 3:   # simple exec or branch
                    if n_simple == 1:
                        unit_bound = simple_units[0]
                    elif n_simple == 2:
                        u0 = simple_units[0]
                        u1 = simple_units[1]
                        if u0 <= u1:
                            unit_bound = u0
                        else:
                            unit_bound = u1
                            unit_index = 1
                    else:
                        unit_index = min(range(n_simple),
                                         key=simple_units.__getitem__)
                        unit_bound = simple_units[unit_index]
                else:                        # load / store
                    if kind == 1:
                        port_list = read_ports
                        n_ports = n_read
                    else:
                        port_list = write_ports
                        n_ports = n_write
                    if n_ports == 1:
                        port_bound = port_list[0]
                    else:
                        port_index = min(range(n_ports),
                                         key=port_list.__getitem__)
                        port_bound = port_list[port_index]

                issue = ready
                if raw_bound > issue:
                    issue = raw_bound
                if unit_bound > issue:
                    issue = unit_bound
                if port_bound > issue:
                    issue = port_bound
                if last_issue > issue:
                    issue = last_issue
                if issue == last_issue and issued_in_cycle >= issue_width:
                    issue += 1
                if raw_bound >= issue and raw_bound > ready:
                    st_raw += raw_bound - ready
                elif unit_bound >= issue and unit_bound > ready:
                    st_unit += unit_bound - ready
                elif port_bound >= issue and port_bound > ready:
                    st_mem += port_bound - ready
                if issue > last_issue:
                    issued_in_cycle = 1
                    last_issue = issue
                else:
                    issued_in_cycle += 1
                iq_append(issue)

                if kind == 0:                # simple
                    simple_units[unit_index] = issue + s_occupancy
                    done = issue + s_latency
                elif kind == 1:              # load
                    n_loads += 1
                    addr = 0xE000_0000 + ((addr + 64) & 0x1FFF)
                    done = issue + data_latency(pc, addr)
                    port_list[port_index] = issue + 1
                elif kind == 2:              # store
                    n_stores += 1
                    addr = 0xE000_0000 + ((addr + 64) & 0x1FFF)
                    data_latency(pc, addr)
                    port_list[port_index] = issue + 1
                    done = issue + 1
                else:                        # branch (always taken, +64)
                    simple_units[unit_index] = issue + 1
                    done = issue + 1
                    n_branches += 1
                    target = pc + 64
                    direction_ok = gshare_update(pc, True)
                    target_ok = btb_lookup(pc) == target
                    btb_update(pc, target)
                    if not direction_ok or not target_ok:
                        n_mispredicts += 1
                        redirect = done + mispredict_penalty
                        if redirect > fetch_cycle:
                            fetch_cycle = redirect
                            fetched = 0
                reg_ready[dst] = done
                if done > last_done:
                    last_done = done
        finally:
            self._fetch_cycle = fetch_cycle
            self._fetched_in_cycle = fetched
            self._last_fetch_line = last_line
            self._last_issue = last_issue
            self._issued_in_cycle = issued_in_cycle
            self._last_done = last_done
            stall["raw"] = st_raw
            stall["unit"] = st_unit
            stall["memport"] = st_mem
            stall["iq"] = st_iq
            stall["frontend"] = st_front
            by_class = stats.by_class
            for i, (_kind, _dst, klass) in enumerate(slots):
                # Closed-form count of slot i over ``fed`` iterations.
                count = (fed + n_slots - 1 - i) // n_slots
                if count:
                    by_class[klass] = by_class.get(klass, 0) + count
            stats.instructions += fed
            stats.branches += n_branches
            stats.mispredicts += n_mispredicts
            stats.loads += n_loads
            stats.stores += n_stores
            stats.cycles = last_done
        return addr

    # ------------------------------------------------------------------

    def finalize(self) -> TimingStats:
        self.stats.cycles = self._last_done
        self.stats.stall_cycles = dict(self._stall)
        return self.stats

    def report(self) -> Dict[str, object]:
        stats = self.finalize()
        return {
            "instructions": stats.instructions,
            "cycles": stats.cycles,
            "ipc": round(stats.ipc, 4),
            "branches": stats.branches,
            "mispredict_rate": round(
                stats.mispredicts / stats.branches, 4)
            if stats.branches else 0.0,
            "l1d_miss_rate": round(self.mem.l1d.miss_rate(), 4),
            "l2_miss_rate": round(self.mem.l2.miss_rate(), 4),
            "l1i_miss_rate": round(self.mem.l1i.miss_rate(), 4),
            "dtlb_misses": self.mem.dtlb.misses,
            "prefetches_issued": (
                self.mem.prefetcher.issued if self.mem.prefetcher else 0),
            "prefetch_hits": self.mem.l1d.prefetch_hits,
            "stalls": dict(self._stall),
        }
