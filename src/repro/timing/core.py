"""Parameterized in-order superscalar timing model (paper §V-C).

Models DARCO's host core: decoupled front-end (gshare + BTB, instruction
queue) and back-end (in-order issue with scoreboarding, simple/complex/FP/
vector units, limited memory ports), two-level caches and TLBs with a
stride data prefetcher.

The model is dependence-driven: each retired host instruction is fed in
program order and its fetch/issue/complete cycles are computed from the
scoreboard, structural resources and memory hierarchy — the standard
trace-driven formulation for in-order pipelines (no per-cycle loop, exact
for in-order issue).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.timing.branch import BTB, Gshare
from repro.timing.cache import MemoryHierarchy
from repro.timing.config import TimingConfig

#: register-id namespaces for the scoreboard
FP_BASE = 64
VEC_BASE = 96
NUM_SCOREBOARD_REGS = 112


@dataclass
class TimingStats:
    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    mispredicts: int = 0
    loads: int = 0
    stores: int = 0
    stall_cycles: Dict[str, int] = field(default_factory=dict)
    #: Instructions issued per execution-unit class (telemetry's
    #: per-unit occupancy view).
    by_class: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


class InOrderCore:
    """Feed instructions in program order via :meth:`feed`."""

    def __init__(self, config: Optional[TimingConfig] = None):
        self.config = config if config is not None else TimingConfig()
        cfg = self.config
        self.mem = MemoryHierarchy(cfg)
        self.gshare = Gshare(cfg.gshare_entries, cfg.gshare_history_bits)
        self.btb = BTB(cfg.btb_entries)
        self.reg_ready = [0] * NUM_SCOREBOARD_REGS
        # Front-end state.
        self._fetch_cycle = 0
        self._fetched_in_cycle = 0
        self._last_fetch_line = -1
        # Back-end state.
        self._last_issue = 0
        self._issued_in_cycle = 0
        self._units = {
            klass: [0] * count
            for klass, (count, _lat, _pipe) in cfg.units.items()}
        self._read_ports = [0] * cfg.mem_read_ports
        self._write_ports = [0] * cfg.mem_write_ports
        self._iq = deque()
        self.stats = TimingStats()
        self._stall = {"raw": 0, "unit": 0, "memport": 0, "iq": 0,
                       "frontend": 0}
        self._last_done = 0

    # ------------------------------------------------------------------

    def feed(self, pc: int, klass: str, dst: Optional[int], srcs,
             mem_addr: Optional[int] = None, branch=None,
             latency_override: Optional[int] = None) -> int:
        """Process one instruction; returns its completion cycle.

        ``klass`` is an execution-unit class ('simple', 'complex', 'fp',
        'fp_div', 'vector', 'load', 'store', 'branch'); ``branch`` is a
        ``(taken, target_pc)`` pair for control transfers.
        """
        cfg = self.config
        stats = self.stats
        stats.instructions += 1
        stats.by_class[klass] = stats.by_class.get(klass, 0) + 1

        # -- fetch -------------------------------------------------------
        if self._fetched_in_cycle >= cfg.fetch_width:
            self._fetch_cycle += 1
            self._fetched_in_cycle = 0
        line = pc >> 6
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            fetch_lat = self.mem.fetch_latency(pc)
            if fetch_lat > cfg.l1i.hit_latency:
                self._fetch_cycle += fetch_lat - cfg.l1i.hit_latency
                self._fetched_in_cycle = 0
                self._stall["frontend"] += fetch_lat - cfg.l1i.hit_latency
        # IQ backpressure: can't fetch further than iq_size unissued ops.
        if len(self._iq) >= cfg.iq_size:
            blocker = self._iq.popleft()
            if blocker > self._fetch_cycle:
                self._stall["iq"] += blocker - self._fetch_cycle
                self._fetch_cycle = blocker
                self._fetched_in_cycle = 0
        self._fetched_in_cycle += 1
        iq_enter = self._fetch_cycle + cfg.decode_depth

        # -- issue constraints --------------------------------------------
        ready = iq_enter
        raw_bound = 0
        for src in srcs:
            if src is not None:
                raw_bound = max(raw_bound, self.reg_ready[src])
        unit_klass = klass
        if klass == "load" or klass == "store":
            unit_klass = None
        elif klass == "branch":
            unit_klass = "simple"
        unit_bound = 0
        unit_list = None
        unit_index = 0
        if unit_klass is not None:
            unit_list = self._units[unit_klass]
            unit_index = min(range(len(unit_list)),
                             key=unit_list.__getitem__)
            unit_bound = unit_list[unit_index]
        port_bound = 0
        port_list = None
        port_index = 0
        if klass == "load":
            port_list = self._read_ports
        elif klass == "store":
            port_list = self._write_ports
        if port_list is not None:
            port_index = min(range(len(port_list)),
                             key=port_list.__getitem__)
            port_bound = port_list[port_index]

        issue = max(ready, raw_bound, unit_bound, port_bound,
                    self._last_issue)
        if issue == self._last_issue and \
                self._issued_in_cycle >= cfg.issue_width:
            issue += 1
        # Stall attribution (binding constraint).
        if raw_bound >= issue and raw_bound > ready:
            self._stall["raw"] += raw_bound - ready
        elif unit_bound >= issue and unit_bound > ready:
            self._stall["unit"] += unit_bound - ready
        elif port_bound >= issue and port_bound > ready:
            self._stall["memport"] += port_bound - ready
        if issue > self._last_issue:
            self._issued_in_cycle = 1
            self._last_issue = issue
        else:
            self._issued_in_cycle += 1
        self._iq.append(issue)

        # -- execution latency ----------------------------------------------
        if latency_override is not None:
            latency = latency_override
        elif klass == "load":
            stats.loads += 1
            latency = self.mem.data_latency(pc, mem_addr or 0)
        elif klass == "store":
            stats.stores += 1
            self.mem.data_latency(pc, mem_addr or 0)
            latency = 1  # store buffer hides the rest
        elif klass == "branch":
            latency = 1
        else:
            _count, latency, pipelined = self.config.units[klass]
            occupancy = 1 if pipelined else latency
            unit_list[unit_index] = issue + occupancy
        if klass == "load" or klass == "store":
            port_list[port_index] = issue + 1
        elif klass == "branch":
            unit_list[unit_index] = issue + 1

        done = issue + latency
        if dst is not None:
            self.reg_ready[dst] = done

        # -- branches ---------------------------------------------------------
        if branch is not None:
            taken, target = branch
            stats.branches += 1
            direction_ok = self.gshare.update(pc, taken)
            target_ok = True
            if taken:
                predicted = self.btb.lookup(pc)
                target_ok = predicted == target
                self.btb.update(pc, target)
            if not direction_ok or not target_ok:
                stats.mispredicts += 1
                redirect = done + cfg.mispredict_penalty
                if redirect > self._fetch_cycle:
                    self._fetch_cycle = redirect
                    self._fetched_in_cycle = 0

        if done > self._last_done:
            self._last_done = done
        stats.cycles = self._last_done
        return done

    # ------------------------------------------------------------------

    def finalize(self) -> TimingStats:
        self.stats.cycles = self._last_done
        self.stats.stall_cycles = dict(self._stall)
        return self.stats

    def report(self) -> Dict[str, object]:
        stats = self.finalize()
        return {
            "instructions": stats.instructions,
            "cycles": stats.cycles,
            "ipc": round(stats.ipc, 4),
            "branches": stats.branches,
            "mispredict_rate": round(
                stats.mispredicts / stats.branches, 4)
            if stats.branches else 0.0,
            "l1d_miss_rate": round(self.mem.l1d.miss_rate(), 4),
            "l2_miss_rate": round(self.mem.l2.miss_rate(), 4),
            "l1i_miss_rate": round(self.mem.l1i.miss_rate(), 4),
            "dtlb_misses": self.mem.dtlb.misses,
            "prefetches_issued": (
                self.mem.prefetcher.issued if self.mem.prefetcher else 0),
            "prefetch_hits": self.mem.l1d.prefetch_hits,
            "stalls": dict(self._stall),
        }
