"""Convenience runners coupling the co-designed system with the timing
simulator (the timing simulator is optional and does not affect
functionality — paper §V, "the use of the timing and power simulators is
optional")."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.guest.program import GuestProgram
from repro.guest.syscalls import GuestOS
from repro.system.controller import Controller, RunResult
from repro.telemetry.collectors import register_timing_collector
from repro.timing.config import TimingConfig
from repro.timing.core import InOrderCore
from repro.timing.trace import TimingSession
from repro.tol.config import TolConfig


def run_with_timing(program: GuestProgram,
                    tol_config: Optional[TolConfig] = None,
                    timing_config: Optional[TimingConfig] = None,
                    include_tol_overhead: bool = True,
                    os: Optional[GuestOS] = None,
                    validate: bool = True,
                    sample_filter=None,
                    annotate: Optional[bool] = None,
                    ) -> Tuple[RunResult, Controller, InOrderCore]:
    """Run a program with detailed timing simulation attached.

    Application host instructions stream from the host emulator; TOL
    overhead charges are (optionally) fed as synthetic instruction batches
    so the timing results reflect the whole dynamic host stream.

    ``annotate`` selects the cycle-annotated delivery path (default: on
    unless ``sample_filter`` is given); results are bit-identical either
    way, only simulator wall-clock changes.
    """
    controller = Controller(program, config=tol_config, os=os,
                            validate=validate)
    core = InOrderCore(timing_config)
    session = TimingSession(core, sample_filter=sample_filter,
                            annotate=annotate)
    tol = controller.codesigned.tol
    register_timing_collector(tol.telemetry, core, session=session)
    session.install(tol)
    if include_tol_overhead:
        def on_charge(category, insns):
            session.feed_tol_overhead(insns)
        tol.overhead.on_charge = on_charge
    result = controller.run()
    core.finalize()
    return result, controller, core
