"""Set-associative caches, two-level TLB and the stride prefetcher."""

from __future__ import annotations

from repro.timing.config import CacheConfig, TLBConfig


class Cache:
    """Set-associative LRU cache (tag-only: timing, not contents)."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.name = name
        self.line_bits = config.line_bytes.bit_length() - 1
        n_sets = config.size_bytes // (config.line_bytes * config.assoc)
        if n_sets <= 0:
            raise ValueError(f"{name}: degenerate geometry")
        self.n_sets = n_sets
        self.assoc = config.assoc
        self.hit_latency = config.hit_latency
        # Each set: list of tags in LRU order (front = MRU).
        self.sets = [[] for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0
        self._prefetched = set()

    def _locate(self, addr: int):
        line = addr >> self.line_bits
        return line % self.n_sets, line

    def access(self, addr: int) -> bool:
        """Access; returns hit?; fills on miss (LRU replace)."""
        index, tag = self._locate(addr)
        ways = self.sets[index]
        if tag in ways:
            self.hits += 1
            if tag in self._prefetched:
                self.prefetch_hits += 1
                self._prefetched.discard(tag)
            ways.remove(tag)
            ways.insert(0, tag)
            return True
        self.misses += 1
        self._fill(index, tag)
        return False

    def _fill(self, index: int, tag: int) -> None:
        ways = self.sets[index]
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            evicted = ways.pop()
            self._prefetched.discard(evicted)

    def prefetch(self, addr: int) -> None:
        """Install a line without counting an access."""
        index, tag = self._locate(addr)
        if tag in self.sets[index]:
            return
        self._fill(index, tag)
        self._prefetched.add(tag)
        self.prefetch_fills += 1

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Set-associative TLB over 4KB pages."""

    PAGE_BITS = 12

    def __init__(self, config: TLBConfig, name: str = "tlb"):
        self.name = name
        n_sets = max(1, config.entries // config.assoc)
        self.n_sets = n_sets
        self.assoc = config.assoc
        self.hit_latency = config.hit_latency
        self.sets = [[] for _ in range(n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        page = addr >> self.PAGE_BITS
        index = page % self.n_sets
        ways = self.sets[index]
        if page in ways:
            self.hits += 1
            ways.remove(page)
            ways.insert(0, page)
            return True
        self.misses += 1
        ways.insert(0, page)
        if len(ways) > self.assoc:
            ways.pop()
        return False


class StridePrefetcher:
    """Per-PC stride detector issuing prefetches into the data caches."""

    def __init__(self, entries: int = 64, degree: int = 2):
        self.entries = entries
        self.degree = degree
        #: pc -> (last_addr, stride, confidence)
        self.table = {}
        self.issued = 0

    def observe(self, pc: int, addr: int, l1d: Cache, l2: Cache) -> None:
        entry = self.table.get(pc)
        if entry is None:
            if len(self.table) >= self.entries:
                self.table.pop(next(iter(self.table)))
            self.table[pc] = (addr, 0, 0)
            return
        last_addr, stride, confidence = entry
        new_stride = addr - last_addr
        if new_stride == stride and stride != 0:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
        self.table[pc] = (addr, new_stride, confidence)
        if confidence >= 2 and new_stride != 0:
            for i in range(1, self.degree + 1):
                target = addr + new_stride * i
                l2.prefetch(target)
                l1d.prefetch(target)
                self.issued += 1


class MemoryHierarchy:
    """L1I/L1D + shared L2 + two-level TLB + stride prefetcher."""

    def __init__(self, config):
        self.config = config
        self.l1i = Cache(config.l1i, "L1I")
        self.l1d = Cache(config.l1d, "L1D")
        self.l2 = Cache(config.l2, "L2")
        self.dtlb = TLB(config.dtlb, "DTLB")
        self.stlb = TLB(config.stlb, "STLB")
        self.prefetcher = (
            StridePrefetcher(config.prefetch_table_entries,
                             config.prefetch_degree)
            if config.prefetch_enable else None)

    def fetch_latency(self, pc: int) -> int:
        if self.l1i.access(pc):
            return self.config.l1i.hit_latency
        if self.l2.access(pc):
            return self.config.l2.hit_latency
        return self.config.memory_latency

    def data_latency(self, pc: int, addr: int) -> int:
        """Latency of a data access at ``addr`` issued by instruction
        ``pc`` (TLB + cache hierarchy + prefetch training)."""
        latency = 0
        if not self.dtlb.access(addr):
            if self.stlb.access(addr):
                latency += self.config.stlb.hit_latency
            else:
                latency += self.config.page_walk_latency
        if self.l1d.access(addr):
            latency += self.config.l1d.hit_latency
        elif self.l2.access(addr):
            latency += self.config.l2.hit_latency
            if self.prefetcher is not None:
                self.prefetcher.observe(pc, addr, self.l1d, self.l2)
        else:
            latency += self.config.memory_latency
            if self.prefetcher is not None:
                self.prefetcher.observe(pc, addr, self.l1d, self.l2)
        return latency
