"""Static Single Assignment conversion for superblock regions.

Superblocks are single-entry straight-line regions (branches have been
converted to asserts), so SSA construction is pure renaming — no phi
functions.  The transformation removes anti and output dependences and
"significantly reduces the complexity of subsequent optimizations" (paper
§V-B3).

Guest architectural reads that happen before any write refer to *entry*
values: they stay as ``GReg``/``Flag``/... operands, which the code
generator reads straight from the home host registers (DARCO's direct
register mapping).  All architectural writes become fresh temps; the final
value of each architectural location is written back by an epilogue ``mov``
sequence returned separately (the caller places it before the region
terminator / commit point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.tol.ir import (
    FTmp, Flag, GFReg, GReg, GVReg, IRInstr, Tmp, TmpAllocator, VTmp, is_arch,
)


@dataclass
class SSAResult:
    #: The renamed straight-line body.
    ops: List[IRInstr]
    #: Epilogue writeback moves (``mov arch <- temp``), one per
    #: architectural location redefined in the region.
    writebacks: List[IRInstr]
    #: arch operand -> final value operand (after the region body).
    exit_values: Dict[object, object]


def _writeback_op(arch) -> str:
    if isinstance(arch, (GReg, Flag)):
        return "mov"
    if isinstance(arch, GFReg):
        return "fmov"
    if isinstance(arch, GVReg):
        return "vmov"
    raise TypeError(f"not an architectural operand: {arch!r}")


def _fresh_for(arch, alloc: TmpAllocator):
    if isinstance(arch, (GReg, Flag, Tmp)):
        return alloc.tmp()
    if isinstance(arch, (GFReg, FTmp)):
        return alloc.ftmp()
    if isinstance(arch, (GVReg, VTmp)):
        return alloc.vtmp()
    raise TypeError(f"cannot rename {arch!r}")


def to_ssa(ops: List[IRInstr], alloc: TmpAllocator) -> SSAResult:
    """Rename a straight-line region into SSA form.

    ``ops`` must not contain the region terminator (exit/loop-back); the
    caller assembles ``result.ops + result.writebacks + [terminator]``.
    Control ops inside the region (asserts, the unroll guard) are allowed:
    they only read temps, and rollback semantics make architectural state
    irrelevant at those points.
    """
    cur: Dict[object, object] = {}
    tmp_map: Dict[object, object] = {}
    out: List[IRInstr] = []

    def rename_src(src):
        if is_arch(src):
            return cur.get(src, src)
        return tmp_map.get(src, src)

    for instr in ops:
        new_srcs = tuple(rename_src(s) for s in instr.srcs)
        dst = instr.dst
        if dst is not None:
            fresh = _fresh_for(dst, alloc)
            if is_arch(dst):
                cur[dst] = fresh
            else:
                # Temps are renamed too: loop unrolling duplicates the
                # body, so incoming temps may have multiple defs.
                tmp_map[dst] = fresh
            dst = fresh
        changed = (new_srcs != instr.srcs) or (dst is not instr.dst)
        out.append(
            instr.with_changes(dst=dst, srcs=new_srcs) if changed else instr)
    writebacks = [
        IRInstr(op=_writeback_op(arch), dst=arch, srcs=(value,))
        for arch, value in cur.items()
    ]
    return SSAResult(ops=out, writebacks=writebacks, exit_values=dict(cur))
