"""IR-less direct translation: the third gear above superblocks.

When a superblock stays hot past ``direct_promote_threshold`` entries,
its host instruction sequence is compiled *once* into a single generated
Python function (the same source-generation technique as
``ir_eval.compile_ops`` and the host emulator's fast segments, extended
to whole units): straight-line runs collapse into bulk statements over
the host register files, and the per-instruction dispatch loop
disappears entirely.  Control flow becomes a flat ``while``-dispatcher
over branch-leader arms, and a unit whose hot exit chains back to
itself loops *inside* the generated function without returning to the
driver.

The contract is the same one ``interp_fastpath``/``host_fastpath``
already obey, extended to every op class: **only simulator wall-clock
changes**.  Every simulated quantity — committed/wasted host
instructions, per-mode retirement, alias-table contents and serial
search charges, IBTC hit/miss counts, undo-log rollback effects, trace
records under a timing sink, pause boundaries — is produced exactly as
the interpretive path produces it.  The hot path keeps its accounting
in locals (region rebase counter, per-mode retirement deltas) and every
path out of the function funnels through one sync block that writes
them back, so nothing outside the function can ever observe a stale
counter.  ``tests/test_fastpath.py`` holds the two paths to
bit-identity.

Anything the generator cannot prove it can replicate (unknown op,
branch into a non-branch target, missing metadata, serial alias search
without the host fast path whose flush sites it mirrors) makes
``compile_direct`` return ``None`` and the unit simply stays on the
interpretive path.

Failure paths stay precise: speculation asserts, alias conflicts and
page faults raise module-level exceptions that the generated epilogue
turns into the same rollback (+ undo replay) the host emulator performs,
so the resilience layer's recover mode and quarantine ladder see
identical events.  A quarantined entry PC is never direct-promoted and
cache invalidation strips the generated program.
"""

from __future__ import annotations

import re
import struct

from repro import costs
from repro.guest.memory import PageFault
from repro.host.emulator import (
    _FAST_NS, _FAST_STMTS, _TRACE_BATCH_CAP, HostEmulationError,
    TOL_AREA_BASE, _stmt_for,
)


class DirectAssertFail(Exception):
    """Speculation assert failed inside a direct-tier program."""


class DirectSpecFail(Exception):
    """Alias-table conflict/overflow inside a direct-tier program."""


class _Bail(Exception):
    """Unit not compilable to the direct tier (stay on the slow path)."""


#: Hard cap on unit size (generated source grows linearly with it).
_MAX_INSTRS = 10_000

_BRANCH_OPS = ("beqz", "bnez", "j")
#: Ops that terminate an arm (control never falls through them).
_TERMINATORS = frozenset({"j", "exit", "exit_ind", "ibtc"})
#: Handler-table memory/spec ops: the slow path flushes pending
#: ``_extra_insns`` after each of these (and, with host_fastpath on,
#: after nothing else) — the generated code mirrors those flush sites
#: exactly when serial alias search is enabled.
_SERIAL_FLUSH_OPS = frozenset({
    "ldx32", "stx32", "ldf", "stf", "vld", "vst",
    "sld32", "sldf", "st32chk", "stfchk",
})
_STORE_OPS = frozenset({"st32", "stx32", "stf", "vst",
                        "st32chk", "stfchk"})
_SPEC_OPS = frozenset({"sld32", "sldf", "st32chk", "stfchk"})
_MEM_OPS = _STORE_OPS | frozenset({"ld32", "ldx32", "ldf", "vld",
                                   "sld32", "sldf"})

#: Identity-stable emulator state, baked as keyword-argument defaults
#: (evaluated once at ``def`` time, loaded at local speed — no per-call
#: rebinding).  Everything here is never rebound for the emulator's
#: lifetime: the register-file lists (``_rollback`` restores in place),
#: the undo log, the alias table and its entries list
#: (``AliasTable.clear`` clears in place), both memories (snapshot
#: restore installs pages in place) and the IBTC.
_BAKED = (
    ("I", "EMU.iregs"),
    ("F", "EMU.fregs"),
    ("V", "EMU.vregs"),
    ("UNDO", "EMU._undo"),
    ("AT", "EMU.alias_table"),
    ("ATE", "EMU.alias_table.entries"),
    ("ATRL", "EMU.alias_table.record_load"),
    ("MR", "EMU.memory.read_u32"),
    ("MW", "EMU.memory.write_u32"),
    ("MRF", "EMU.memory.read_f64"),
    ("MWF", "EMU.memory.write_f64"),
    ("MRV", "EMU.memory.read_vec"),
    ("MWV", "EMU.memory.write_vec"),
    ("TMR", "EMU.tol_memory.read_u32"),
    ("TMW", "EMU.tol_memory.write_u32"),
    ("TMRF", "EMU.tol_memory.read_f64"),
    ("TMWF", "EMU.tol_memory.write_f64"),
    ("TMRV", "EMU.tol_memory.read_vec"),
    ("TMWV", "EMU.tol_memory.write_vec"),
    ("IBTCL", "EMU.ibtc.lookup"),
    # Guest-memory internals for the inlined u32 access path: the page
    # dict is only ever mutated in place (``install_page``, demand-zero
    # fills, the snapshot restorer) and the dirty set is only ever
    # ``add``-ed/``clear``-ed, so both survive baking.
    ("GP", "EMU.memory._pages"),
    ("DIRTYA", "EMU.memory.dirty.add"),
)
_BAKED_NAMES = frozenset(name for name, _ in _BAKED)

#: Possibly-volatile state, re-read per call in the prologue (the
#: per-mode dicts are rebound by snapshot restore, ``pause_retired_at``
#: changes between runs, the hooks are wiring-dependent).
_PER_CALL = (
    ("U", "_U"),
    ("ULOG", "EMU.unit_log"),
    ("GBM", "EMU.guest_retired_by_mode"),
    ("HBM", "EMU.host_committed_by_mode"),
    ("GBMG", "GBM.get"),
    ("HBMG", "HBM.get"),
    ("PAUSE", "EMU.pause_retired_at"),
    ("PH", "EMU.profile_hook"),
    ("FLUSH", "EMU._flush_direct_trace"),
)

_BINDING_DEPS = {"ATE": ("AT",), "ATRL": ("AT",),
                 "GBMG": ("GBM",), "HBMG": ("HBM",)}

_TOL_LIT = f"{TOL_AREA_BASE:#x}"

#: Pre-parsed u32 codec for the inlined guest-memory access path
#: (:class:`struct.Struct` bound methods skip the format-string parse
#: that ``struct.unpack_from``/``pack_into`` pay per call).
_U32_STRUCT = struct.Struct("<I")

#: ``u32``/``s32`` helper calls inlined to the equivalent masking
#: expression when the operand is a plain register read or literal
#: (function-call overhead dominates these one-liners).
_U32_RE = re.compile(r"\bu32\((I\[\d+\]|-?\d+)\)")
_S32_RE = re.compile(r"\bs32\((I\[\d+\]|-?\d+)\)")


#: Whole-RHS ``int(<comparison>)`` (the cmp*/fcmp*/carry-flag
#: templates): the ``int`` call only canonicalizes a bool, which a
#: conditional expression does without the call.  Guarded to
#: comparisons so truncating ``int()`` uses would never match.
_INT_RE = re.compile(r"^(.+? = )int\((.+)\)$")
_CMP_TOKENS = ("==", "!=", "<", ">")


def _inline_helpers(stmt):
    stmt = _U32_RE.sub(lambda m: f"({m.group(1)} & 4294967295)", stmt)
    stmt = _S32_RE.sub(
        lambda m: f"((({m.group(1)} & 4294967295) ^ 2147483648)"
                  " - 2147483648)", stmt)
    m = _INT_RE.match(stmt)
    if m:
        inner = m.group(2)
        if (inner.count("(") == inner.count(")")
                and any(tok in inner for tok in _CMP_TOKENS)):
            stmt = f"{m.group(1)}1 if {inner} else 0"
    return stmt


def _writer_file(op):
    """Register file ('I'/'F'/'V') written by ``op``, or None."""
    if op in ("li", "ld32", "ldx32", "sld32"):
        return "I"
    if op in ("lif", "ldf", "sldf"):
        return "F"
    if op == "vld":
        return "V"
    template = _FAST_STMTS.get(op)
    if template:
        return template[0]
    return None


class _DirectCompiler:
    """Generates one ``_direct(EMU, executed, fuel)`` function source.

    The function returns ``(kind, a, b, executed, unit)``:
    0 = chain to unit ``a``; 1 = TOL exit (``a`` next_pc, ``b``
    exit_index or None for a pause); 2 = IBTC miss; 3 = page fault
    (``a`` restart pc, ``b`` fault addr); 4 = assert fail; 5 = spec
    fail (``a`` restart pc).  ``unit`` is the member the function was
    in when it returned — for a single-unit program that is the entry
    unit, but a *cluster* program (several mutually-chained hot units
    compiled together) follows chain links between its members without
    returning to the driver, so the driver must be told where control
    ended up.

    Accounting scheme: ``executed`` is the only per-op counter on the
    hot path.  The region counter is the rebased difference
    ``executed - _rb`` (``_rb`` resets at each commit/rollback), and
    commits accumulate into local deltas (``_ug``/``_uh``/``_gbm``/
    ``_hbm``/``_hc``/``GRT``) that :meth:`_emit_sync` writes back to
    the emulator and unit on every path out of the function.
    """

    def __init__(self, units, emu, traced):
        self.units = units
        self.unit = units[0]
        self.uidx = 0
        self.cluster = len(units) > 1
        assert not (traced and self.cluster)
        self.emu = emu
        self.traced = traced
        self.serial = bool(emu.alias_serial_search)
        self.lines = []
        self.needs = set()
        self.ns_extra = {}
        self.pending = 0
        self.has_chkpt = False
        ops = {ins.op for u in units for ins in u.instrs}
        # Known before any sync block is emitted: untraced units with a
        # chainable exit may loop/transfer inside the function (the
        # link is only resolved at run time, so any exit qualifies; in
        # a cluster IBTC hits on members transfer internally too).
        chain_ops = {"exit", "ibtc"} if self.cluster else {"exit"}
        self.has_selfloop = not traced and bool(ops & chain_ops)
        self.has_mem = bool(ops & _MEM_OPS)
        self.has_store = bool(ops & _STORE_OPS)
        self.has_spec = bool(ops & _SPEC_OPS)
        self.has_assert = bool(ops & {"assert_z", "assert_nz"})

    # -- emission helpers ----------------------------------------------------

    def w(self, depth, text):
        self.lines.append("    " * depth + text)

    def need(self, *names):
        for name in names:
            self.needs.add(name)
            for dep in _BINDING_DEPS.get(name, ()):
                self.needs.add(dep)

    def _flush(self, d, extra=0):
        """Charge pending pure ops (+``extra`` for the barrier op)."""
        n = self.pending + extra
        self.pending = 0
        if n:
            self.w(d, f"executed += {n}")

    def _record(self, d, idx, info="None"):
        if self.traced:
            self.w(d, f"TRB.append(({idx}, {info}))")

    def _trace_flush(self, d):
        if self.traced:
            self.need("FLUSH", "U")
            self.w(d, "FLUSH(U, TRB)")

    def _trace_cap_flush(self, d):
        """Capped flush at back-edge sites: the record buffer drains at
        unit boundaries (pause/exit/fault), so intra-unit flushes are
        only needed to bound memory on long-running self-loops."""
        if self.traced:
            self.need("FLUSH", "U")
            self.w(d, f"if len(TRB) > {_TRACE_BATCH_CAP}:")
            self.w(d + 1, "FLUSH(U, TRB)")

    def _serial_flush(self, d):
        if self.serial:
            self.w(d, "if EMU._extra_insns:")
            self.w(d + 1, "executed += EMU._extra_insns")
            self.w(d + 1, "EMU._extra_insns = 0")

    def _emit_sync(self, d):
        """Write the localized accounting back to the emulator and
        unit.  Every path out of the generated function (returns and
        exception handlers) funnels through this block, so no caller
        can observe a stale counter."""
        self.need("U", "GBMG", "HBMG")
        mode = self.unit.mode
        self.w(d, "EMU._region_insns = executed - _rb")
        self.w(d, "EMU.guest_retired_total = GRT")
        self.w(d, "EMU.host_insns_committed += _hc")
        self.w(d, "U.guest_insns_retired += _ug")
        self.w(d, "U.host_insns_committed += _uh")
        if self.has_selfloop:
            self.w(d, "if _de:")
            self.w(d + 1, "EMU.direct_entries += _de")
        # The per-mode dict keys must only spring into existence when a
        # commit actually happened (the slow path creates them at the
        # first commit; mode_distribution iterates the keys).  The
        # per-mode deltas need no accumulators of their own: commits
        # are the only thing that advance ``GRT`` past its entry value
        # ``_g0`` (guest delta) and every commit adds the same ``_r``
        # to the committed-host delta ``_hc`` as to the per-mode split
        # (all members share one mode), so both fall out of existing
        # locals.
        self.w(d, "if GRT != _g0:")
        self.w(d + 1, f"GBM[{mode!r}] = GBMG({mode!r}, 0) + (GRT - _g0)")
        self.w(d + 1, f"HBM[{mode!r}] = HBMG({mode!r}, 0) + _hc")

    # -- structure -----------------------------------------------------------

    def build(self):
        if self.serial and not self.emu.fastpath:
            # The serial-search charge flushes at the slow path's
            # handler-table sites; with host_fastpath off those sites
            # include pure ops we compile away.  Keep that combination
            # on the interpretive path.
            raise _Bail
        self.unit_leaders = []
        for unit in self.units:
            instrs = unit.instrs
            size = len(instrs)
            if size == 0 or size > _MAX_INSTRS:
                raise _Bail
            targets = set()
            for ins in instrs:
                if ins.target is not None:
                    if ins.op not in _BRANCH_OPS:
                        raise _Bail
                    if not 0 <= ins.target < size:
                        raise _Bail
                    targets.add(ins.target)
            self.unit_leaders.append(sorted({0} | targets))
        self._analyze_clobbers()
        try:
            self._gen_body()
        except KeyError:
            raise _Bail from None
        return self._assemble()

    def _analyze_clobbers(self):
        # Clobbers are unioned over the whole cluster: one save/restore
        # shape regardless of which member's checkpoint is active.
        # Restoring a register no member wrote since the checkpoint
        # rewrites its checkpointed (= current) value — bit-identical.
        iw, fw, vw = set(), set(), set()
        for unit in self.units:
            for ins in unit.instrs:
                file = _writer_file(ins.op)
                if file == "I":
                    iw.add(ins.d)
                elif file == "F":
                    fw.add(ins.d)
                elif file == "V":
                    vw.add(ins.d)
        saves = ([f"I[{k}]" for k in sorted(iw)]
                 + [f"F[{k}]" for k in sorted(fw)]
                 + [f"V[{k}]" for k in sorted(vw)])
        if saves:
            if iw:
                self.need("I")
            if fw:
                self.need("F")
            if vw:
                self.need("V")
            self.save_expr = "(" + ", ".join(saves) + ",)"
        else:
            self.save_expr = "()"
        self.restores = [f"{ref} = _ck[{i}]" for i, ref in enumerate(saves)]

    def _gen_body(self):
        self.body = []
        lines_backup = self.lines
        self.lines = self.body
        base = 3
        for j, unit in enumerate(self.units):
            self.unit = unit
            self.uidx = j
            if self.cluster:
                keyword = "if" if j == 0 else "elif"
                self.w(3, f"{keyword} _un == {j}:")
                base = 4
            instrs = unit.instrs
            size = len(instrs)
            leaders = self.unit_leaders[j]
            for n, leader in enumerate(leaders):
                keyword = "if" if n == 0 else "elif"
                self.w(base, f"{keyword} _ip == {leader}:")
                nxt = leaders[n + 1] if n + 1 < len(leaders) else size
                self._gen_arm(base + 1, leader, nxt, size)
            badmsg = (f"direct: bad dispatch target in unit {unit.uid} "
                      f"(entry {unit.entry_pc:#x})")
            self.w(base, "else:")
            self.w(base + 1, f"raise _HEE({badmsg!r})")
        self.unit = self.units[0]
        self.uidx = 0
        self.lines = lines_backup

    def _gen_arm(self, d, start, nxt, size):
        idx = start
        terminated = False
        while idx < nxt:
            ins = self.unit.instrs[idx]
            self._emit_op(d, idx, ins)
            idx += 1
            if ins.op in _TERMINATORS:
                terminated = True
                break  # anything up to the next leader is unreachable
        if terminated:
            assert self.pending == 0
            return
        if nxt < size:
            # Fall through into the next leader's arm (forward edge:
            # no capped trace flush needed — only back-edges can grow
            # the record buffer unboundedly).
            self._flush(d)
            self.w(d, f"_ip = {nxt}")
            self.w(d, "continue")
        else:
            self._flush(d)
            msg = (f"fell off the end of unit {self.unit.uid} "
                   f"(entry {self.unit.entry_pc:#x})")
            self.w(d, f"raise _HEE({msg!r})")

    # -- per-op emission -----------------------------------------------------

    def _emit_op(self, d, idx, ins):
        op = ins.op
        if op == "chkpt":
            self._emit_chkpt(d, idx, ins)
        elif op == "commit":
            self._flush(d, 1)
            self._emit_commit(d, ins.meta["guest_insns"])
            self._record(d, idx)
        elif op in ("assert_nz", "assert_z"):
            self.need("I")
            self._flush(d, 1)
            cmp = "==" if op == "assert_nz" else "!="
            self.w(d, f"if I[{ins.a}] {cmp} 0:")
            self.w(d + 1, "raise _FA")
            self._record(d, idx)
        elif op in ("beqz", "bnez"):
            self._emit_branch(d, idx, ins)
        elif op == "j":
            self._flush(d, 1)
            self._record(d, idx, "{'taken': True}")
            self._trace_cap_flush(d)
            self.w(d, f"_ip = {ins.target}")
            self.w(d, "continue")
        elif op in ("ld32", "ldx32", "ldf", "vld"):
            self._emit_load(d, idx, ins)
        elif op in ("st32", "stx32", "stf", "vst"):
            self._emit_store(d, idx, ins)
        elif op in ("sld32", "sldf"):
            self._emit_spec_load(d, idx, ins)
        elif op in ("st32chk", "stfchk"):
            self._emit_chk_store(d, idx, ins)
        elif op == "exit":
            self._emit_exit(d, idx, ins)
        elif op == "exit_ind":
            self._emit_exit_ind(d, idx, ins)
        elif op == "ibtc":
            self._emit_ibtc(d, idx, ins)
        else:
            stmt = _stmt_for(ins)
            if stmt is False:
                raise _Bail
            if stmt is not None:
                stmt = _inline_helpers(stmt)
                lhs, sep, rhs = stmt.partition(" = ")
                if sep and lhs == rhs:
                    # Identity mov (register-allocation epilogue): a
                    # runtime no-op — still costed via ``pending``.
                    stmt = None
            if stmt is not None:
                for name in ("I", "F", "V"):
                    if name + "[" in stmt:
                        self.need(name)
                self.w(d, stmt)
            self.pending += 1
            self._record(d, idx)

    def _emit_chkpt(self, d, idx, ins):
        self.has_chkpt = True
        self.need("PAUSE")
        gpc = ins.meta["guest_pc"]
        self._flush(d, 1)
        self.w(d, "if PAUSE is not None and GRT >= PAUSE:")
        self._emit_sync(d + 1)
        self._trace_flush(d + 1)
        self.w(d + 1, f"return (1, {gpc}, None, executed, U)")
        self.w(d, f"_ck = {self.save_expr}")
        self.w(d, f"_ckpc = {gpc}")
        if self.has_store:
            # No-store units never append to the undo log, and the log
            # is provably empty at every region boundary — the clear is
            # only emitted when the unit can dirty it.
            self.need("UNDO")
            self.w(d, "del UNDO[:]")
        self._record(d, idx)

    def _emit_commit(self, d, guest_insns):
        """The inlined ``_commit_region`` body, on local deltas (the
        sync block writes them back; the undo/alias clears are skipped
        for units that provably never populate them)."""
        if self.has_store:
            self.need("UNDO")
            self.w(d, "del UNDO[:]")
        if self.has_spec:
            self.need("ATE")
            self.w(d, "del ATE[:]")
        self.w(d, "_ck = None")
        self.w(d, "_r = executed - _rb")
        self.w(d, "_rb = executed")
        self.w(d, f"_ug += {guest_insns}")
        self.w(d, f"GRT += {guest_insns}")
        self.w(d, "_uh += _r")
        self.w(d, "_hc += _r")

    def _emit_branch(self, d, idx, ins):
        self.need("I")
        self._flush(d, 1)
        cmp = "==" if ins.op == "beqz" else "!="
        if self.traced:
            self.w(d, f"_tk = I[{ins.a}] {cmp} 0")
            self._record(d, idx, "{'taken': _tk}")
            self.w(d, "if _tk:")
        else:
            self.w(d, f"if I[{ins.a}] {cmp} 0:")
        self._trace_cap_flush(d + 1)
        self.w(d + 1, f"_ip = {ins.target}")
        self.w(d + 1, "continue")

    def _addr_expr(self, ins):
        if ins.op == "ldx32":
            return f"(I[{ins.a}] + I[{ins.b}]) & 0xFFFFFFFF"
        if ins.op == "stx32":
            return f"(I[{ins.a}] + I[{ins.c}]) & 0xFFFFFFFF"
        if ins.imm:
            return f"(I[{ins.a}] + {ins.imm}) & 0xFFFFFFFF"
        return f"I[{ins.a}] & 0xFFFFFFFF"

    _LOAD_ACCESS = {
        "ld32": ("I", "MR", "TMR"),
        "ldx32": ("I", "MR", "TMR"),
        "sld32": ("I", "MR", "TMR", 4),
        "ldf": ("F", "MRF", "TMRF"),
        "sldf": ("F", "MRF", "TMRF", 8),
        "vld": ("V", "MRV", "TMRV"),
    }
    _STORE_ACCESS = {
        "st32": ("'u32'", "MR", "MW", "TMW", "I[{b}]"),
        "stx32": ("'u32'", "MR", "MW", "TMW", "I[{b}]"),
        "st32chk": ("'u32'", "MR", "MW", "TMW", "I[{b}]", 4),
        "stf": ("'f64'", "MRF", "MWF", "TMWF", "F[{b}]"),
        "stfchk": ("'f64'", "MRF", "MWF", "TMWF", "F[{b}]", 8),
        "vst": ("'vec'", "MRV", "MWV", "TMWV", "V[{b}]"),
    }

    def _emit_u32_read(self, d, dest):
        """Inline of ``PagedMemory.read_u32`` for a guest-area address
        already in ``_a``: page-dict probe + pre-parsed Struct unpack.
        Missing pages and page-crossing reads fall back to the bound
        method (which raises the page fault / stitches the bytes
        exactly as before)."""
        self.need("GP", "MR")
        self.w(d, "_pg = GP.get(_a >> 12)")
        self.w(d, "_o = _a & 4095")
        self.w(d, "if _pg is not None and _o < 4093:")
        self.w(d + 1, f"{dest} = _SUI(_pg, _o)[0]")
        self.w(d, "else:")
        self.w(d + 1, f"{dest} = MR(_a)")

    def _emit_load(self, d, idx, ins):
        file, gread, tread = self._LOAD_ACCESS[ins.op]
        self.need("I", file, gread, tread)
        self._flush(d, 1)
        self.w(d, f"_a = {self._addr_expr(ins)}")
        self.w(d, f"if _a < {_TOL_LIT}:")
        if gread == "MR":
            self._emit_u32_read(d + 1, f"{file}[{ins.d}]")
        else:
            self.w(d + 1, f"{file}[{ins.d}] = {gread}(_a)")
        self.w(d, "else:")
        self.w(d + 1, f"{file}[{ins.d}] = {tread}(_a)")
        if ins.op in _SERIAL_FLUSH_OPS:
            self._serial_flush(d)
        self._record(d, idx, "{'mem_addr': _a}")

    def _emit_store_body(self, d, ins):
        """The guarded undo-log + write sequence shared by plain and
        checking stores (TOL-area stores bypass the undo log, exactly
        like ``_write_u32`` and friends)."""
        kind, gread, gwrite, twrite, val = self._STORE_ACCESS[ins.op][:5]
        self.need("I", "UNDO", gread, gwrite, twrite)
        value = val.format(b=ins.b)
        if value[0] in "FV":
            self.need(value[0])
        self.w(d, f"if _a < {_TOL_LIT}:")
        if gwrite == "MW":
            # Inline of ``write_u32`` (+ the undo-log read): same
            # in-page fast path as :meth:`_emit_u32_read`; the fallback
            # keeps the read-before-append fault ordering.
            self.need("GP", "DIRTYA")
            self.w(d + 1, "_pg = GP.get(_a >> 12)")
            self.w(d + 1, "_o = _a & 4095")
            self.w(d + 1, "if _pg is not None and _o < 4093:")
            self.w(d + 2, f"UNDO.append(({kind}, _a, _SUI(_pg, _o)[0]))")
            self.w(d + 2, f"_SPI(_pg, _o, {value} & 0xFFFFFFFF)")
            self.w(d + 2, "DIRTYA(_a >> 12)")
            self.w(d + 1, "else:")
            self.w(d + 2, f"UNDO.append(({kind}, _a, {gread}(_a)))")
            self.w(d + 2, f"{gwrite}(_a, {value})")
        else:
            self.w(d + 1, f"UNDO.append(({kind}, _a, {gread}(_a)))")
            self.w(d + 1, f"{gwrite}(_a, {value})")
        self.w(d, "else:")
        self.w(d + 1, f"{twrite}(_a, {value})")

    def _emit_store(self, d, idx, ins):
        self._flush(d, 1)
        self.w(d, f"_a = {self._addr_expr(ins)}")
        self._emit_store_body(d, ins)
        if ins.op in _SERIAL_FLUSH_OPS:
            self._serial_flush(d)
        self._record(d, idx, "{'mem_addr': _a}")

    def _emit_spec_load(self, d, idx, ins):
        file, gread, tread, size = self._LOAD_ACCESS[ins.op]
        self.need("I", file, gread, tread, "ATRL")
        seq = ins.meta["seq"]
        self._flush(d, 1)
        self.w(d, f"_a = {self._addr_expr(ins)}")
        self.w(d, f"if _a < {_TOL_LIT}:")
        if gread == "MR":
            self._emit_u32_read(d + 1, "_v")
        else:
            self.w(d + 1, f"_v = {gread}(_a)")
        self.w(d, "else:")
        self.w(d + 1, f"_v = {tread}(_a)")
        self.w(d, f"if not ATRL(_a, {size}, {seq}):")
        self.w(d + 1, "raise _FS")
        self.w(d, f"{file}[{ins.d}] = _v")
        self._serial_flush(d)
        self._record(d, idx, "{'mem_addr': _a}")

    def _emit_chk_store(self, d, idx, ins):
        self.need("AT")
        size = self._STORE_ACCESS[ins.op][5]
        seq = ins.meta["seq"]
        self._flush(d, 1)
        self.w(d, f"_a = {self._addr_expr(ins)}")
        if self.serial:
            self.need("ATE")
            self.w(d, "_c = len(ATE)")
            self.w(d, "EMU._extra_insns += _c")
            self.w(d, "EMU.alias_search_insns += _c")
        # Instance-attribute lookup on AT, so the fault injector's
        # alias_false_negative wrap stays effective in direct code.
        self.w(d, f"if AT.store_conflicts(_a, {size}, {seq}):")
        self.w(d + 1, "raise _FS")
        self._emit_store_body(d, ins)
        self._serial_flush(d)
        self._record(d, idx, "{'mem_addr': _a}")

    def _emit_profile(self, d, target_expr, want_interrupt):
        """BBM inline-profiling sequence at a profiled exit."""
        self.need("PH", "U")
        cost = self.emu.profile_inline_cost
        if cost:
            self.w(d, f"executed += {cost}")
        if want_interrupt:
            self.w(d, f"_int = PH(U, {target_expr}) "
                      "if PH is not None else False")
        else:
            self.w(d, "if PH is not None:")
            self.w(d + 1, f"PH(U, {target_expr})")

    def _emit_transition(self, d, k):
        """Internal chain transfer to cluster member ``k``: the
        per-entry bookkeeping the driver would do, plus flushing the
        unit-scoped accounting deltas into the unit being left."""
        self.need("U", "ULOG")
        self.w(d, "U.guest_insns_retired += _ug")
        self.w(d, "U.host_insns_committed += _uh")
        self.w(d, "_ug = _uh = 0")
        self.w(d, f"U = _CU{k}")
        self.w(d, "U.exec_count += 1")
        self.w(d, "_de += 1")
        self.w(d, "if ULOG is not None:")
        self.w(d + 1, "ULOG.append(U)")
        self.w(d, f"_un = {k}")
        self.w(d, "_ip = 0")
        self.w(d, "continue")

    def _emit_exit(self, d, idx, ins):
        meta = ins.meta
        npc = meta["next_pc"]
        prof = bool(meta.get("profile"))
        mname = f"_META{self.uidx}_{idx}"
        self.ns_extra[mname] = meta
        self._flush(d, 1)
        if prof:
            self._emit_profile(d, str(npc), want_interrupt=True)
        self._emit_commit(d, meta["guest_insns"])
        self._record(d, idx, "{'taken': True}")
        # The link is patched/unlinked at run time: read it through the
        # unit's live meta dict, never bake it.  An identity test
        # against a baked member therefore has exactly the driver's
        # staleness semantics — invalidating a member unlinks every
        # chain to it, so the test simply stops matching.
        self.w(d, f"_lnk = {mname}.get('link')")
        guard_tail = " and not _int" if prof else ""
        if self.cluster:
            self.w(d, f"if _lnk is not None{guard_tail}:")
            for k in range(len(self.units)):
                keyword = "if" if k == 0 else "elif"
                self.w(d + 1, f"{keyword} _lnk is _CU{k}:")
                self._emit_transition(d + 2, k)
            self._emit_sync(d + 1)
            self.w(d + 1, "return (0, _lnk, None, executed, U)")
        else:
            if self.has_selfloop:
                # Self-chain: a unit whose exit links back to itself
                # loops without returning to the driver (the hot-loop
                # case).  The per-entry bookkeeping the driver would do
                # happens here.
                self.need("U", "ULOG")
                self.w(d, f"if _lnk is U{guard_tail}:")
                self.w(d + 1, "U.exec_count += 1")
                self.w(d + 1, "_de += 1")
                self.w(d + 1, "if ULOG is not None:")
                self.w(d + 2, "ULOG.append(U)")
                self.w(d + 1, "_ip = 0")
                self.w(d + 1, "continue")
            self.w(d, f"if _lnk is not None{guard_tail}:")
            self._emit_sync(d + 1)
            self._trace_flush(d + 1)
            self.w(d + 1, "return (0, _lnk, None, executed, U)")
        self._emit_sync(d)
        self._trace_flush(d)
        self.w(d, f"return (1, {npc}, {idx}, executed, U)")

    def _emit_exit_ind(self, d, idx, ins):
        meta = ins.meta
        prof = bool(meta.get("profile"))
        self.need("I")
        self._flush(d, 1)
        self.w(d, f"_pc = I[{ins.a}] & 0xFFFFFFFF")
        if prof:
            self._emit_profile(d, "_pc", want_interrupt=False)
        self._emit_commit(d, meta["guest_insns"])
        self._record(d, idx, "{'taken': True}")
        self._emit_sync(d)
        self._trace_flush(d)
        self.w(d, f"return (1, _pc, {idx}, executed, U)")

    def _emit_ibtc(self, d, idx, ins):
        meta = ins.meta
        prof = bool(meta.get("profile"))
        self.need("I", "IBTCL")
        self._flush(d, 1)
        self.w(d, f"_pc = I[{ins.a}] & 0xFFFFFFFF")
        if prof:
            self._emit_profile(d, "_pc", want_interrupt=True)
        inline = costs.IBTC_HIT_INLINE
        if inline:
            self.w(d, f"executed += {inline}")
        self._emit_commit(d, meta["guest_insns"])
        self._record(d, idx, "{'taken': True}")
        if prof:
            self.w(d, "if _int:")
            self._emit_sync(d + 1)
            self._trace_flush(d + 1)
            self.w(d + 1, f"return (1, _pc, {idx}, executed, U)")
        # The IBTC lookup (a pure table probe; its hit/miss counters
        # are independent of the synced accounting) happens before the
        # sync so a cluster-member hit can transfer internally.
        self.w(d, "_t = IBTCL(_pc)")
        self.w(d, "if _t is not None:")
        if self.cluster:
            for k in range(len(self.units)):
                keyword = "if" if k == 0 else "elif"
                self.w(d + 1, f"{keyword} _t is _CU{k}:")
                self._emit_transition(d + 2, k)
        self._emit_sync(d + 1)
        self._trace_flush(d + 1)
        self.w(d + 1, "return (0, _t, None, executed, U)")
        self._emit_sync(d)
        self._trace_flush(d)
        self.w(d, f"return (2, _pc, {idx}, executed, U)")

    # -- rollback + final assembly -------------------------------------------

    def _emit_rollback(self, d):
        """The inlined ``_rollback`` body: undo replay, alias/undo
        clear, clobbered-register restore, wasted-work accounting."""
        self._trace_flush(d)
        if not self.has_chkpt:
            self._emit_sync(d)
            self.w(d, "raise _HEE('rollback without active checkpoint')")
            return False
        self.need("U")
        self.w(d, "if _ck is None:")
        self._emit_sync(d + 1)
        self.w(d + 1,
               "raise _HEE('rollback without active checkpoint')")
        if self.has_store:
            self.need("UNDO", "MW", "MWF", "MWV")
            self.w(d, "for _k, _ra, _ro in reversed(UNDO):")
            self.w(d + 1, "if _k == 'u32':")
            self.w(d + 2, "MW(_ra, _ro)")
            self.w(d + 1, "elif _k == 'f64':")
            self.w(d + 2, "MWF(_ra, _ro)")
            self.w(d + 1, "else:")
            self.w(d + 2, "MWV(_ra, _ro)")
            self.w(d, "del UNDO[:]")
        if self.has_spec:
            self.need("ATE")
            self.w(d, "del ATE[:]")
        for line in self.restores:
            self.w(d, line)
        self.w(d, "_r = executed - _rb")
        self.w(d, "_rb = executed")
        self.w(d, "U.host_insns_wasted += _r")
        self.w(d, "EMU.host_insns_wasted += _r")
        self._emit_sync(d)
        return True

    def _gen_handlers(self):
        """Generate the exception handlers (into their own buffer, so
        the binding needs they add are known before the prologue is
        emitted)."""
        handlers = []
        lines_backup = self.lines
        self.lines = handlers
        if self.has_mem:
            self.w(1, "except _PF as _fault:")
            if self._emit_rollback(2):
                self.w(2, "return (3, _ckpc, _fault.addr, executed, U)")
        if self.has_assert:
            self.w(1, "except _FA:")
            if self._emit_rollback(2):
                self.need("U")
                self.w(2, "U.assert_failures += 1")
                self.w(2, "return (4, _ckpc, None, executed, U)")
        if self.has_spec:
            self.w(1, "except _FS:")
            if self._emit_rollback(2):
                self.need("U")
                self.w(2, "U.spec_failures += 1")
                self.w(2, "return (5, _ckpc, None, executed, U)")
        self.w(1, "except BaseException:")
        self._emit_sync(2)
        self._trace_flush(2)
        self.w(2, "raise")
        self.lines = lines_backup
        return handlers

    def _assemble(self):
        unit = self.unit
        handlers = self._gen_handlers()
        params = ["EMU", "executed", "fuel"]
        for name, _ in _BAKED:
            if name in self.needs:
                params.append(f"{name}=_BK_{name}")
        out = []
        self.lines = out
        self.w(0, f"def _direct({', '.join(params)}):")
        for name, expr in _PER_CALL:
            if name in self.needs:
                self.w(1, f"{name} = {expr}")
        self.w(1, "_rb = executed - EMU._region_insns")
        self.w(1, "_g0 = GRT = EMU.guest_retired_total")
        self.w(1, "_hc = _ug = _uh = 0")
        if self.has_selfloop:
            self.w(1, "_de = 0")
        self.w(1, "_ck = None")
        self.w(1, "_ckpc = 0")
        if self.cluster:
            self.w(1, "_un = 0")
        self.w(1, "_ip = 0")
        if self.traced:
            self.w(1, "TRB = []")
        self.w(1, "try:")
        self.w(2, "while True:")
        self.w(3, "if executed >= fuel:")
        fuelmsg = (f"fuel exhausted in unit {unit.uid} "
                   f"(entry {unit.entry_pc:#x}): likely a "
                   f"translation bug (infinite loop)")
        self.w(4, f"raise _HEE({fuelmsg!r})")
        out.extend(self.body)
        out.extend(handlers)
        return "\n".join(out) + "\n"


def compile_direct(unit, emu, traced=False, cluster=None):
    """Compile ``unit`` to a direct-tier program, or return ``None``
    when the unit is not eligible (the unit then stays on the
    interpretive path — bailing is always safe).

    ``cluster`` may name further same-mode units the entry unit chains
    into: the whole group compiles into one function that follows
    links between members internally (the driver round-trip — call
    prologue, return-tuple unpack, re-dispatch — disappears for the
    hot-loop transitions that dominate small-unit workloads)."""
    units = [unit]
    if cluster:
        units += [u for u in cluster if u is not unit]
    compiler = _DirectCompiler(units, emu, traced)
    try:
        src = compiler.build()
    except _Bail:
        return None
    ns = dict(_FAST_NS)
    ns["_U"] = unit
    ns["_FA"] = DirectAssertFail
    ns["_FS"] = DirectSpecFail
    ns["_PF"] = PageFault
    ns["_HEE"] = HostEmulationError
    ns["_SUI"] = _U32_STRUCT.unpack_from
    ns["_SPI"] = _U32_STRUCT.pack_into
    for k, member in enumerate(units):
        ns[f"_CU{k}"] = member
    bake_env = {"EMU": emu}
    for name, expr in _BAKED:
        if name in compiler.needs:
            ns[f"_BK_{name}"] = eval(expr, bake_env)  # noqa: S307
    ns.update(compiler.ns_extra)
    tag = f"+{len(units) - 1}" if len(units) > 1 else ""
    exec(compile(
        src, f"<direct:{unit.mode}@{unit.entry_pc:#x}{tag}>", "exec"), ns)
    return ns["_direct"]
