"""TOL invariant sanitizer (``TolConfig.sanitize``).

A divergence caught at a validation boundary tells you *that* the
co-designed state went wrong, hundreds of thousands of instructions
after the dispatch structure that corrupted it.  The sanitizer moves the
detection to the corrupting step: it wraps the mutation points of the
structures the TOL trusts blindly — the code cache, the chain links, the
IBTC, the quarantine ladder, the host's checkpoint/undo machinery — and
re-verifies their invariants after every mutation.

Invariant families
------------------
``cache_links``      every chained ``exit`` points at a unit currently
                     in the cache, the target's entry PC equals the
                     exit's static continuation (``meta["next_pc"]``),
                     and the reverse ``_incoming`` index matches the
                     forward links exactly (no dangling, no stale).
``cache_accounting`` ``size_insns`` equals the summed size of the
                     distinct cached units.
``ibtc_targets``     every IBTC mapping ``pc -> unit`` has ``unit``
                     still in the cache and ``unit.entry_pc == pc``.
``quarantine``       the per-PC ladder is monotone: an entry's level
                     never decreases and never exceeds
                     ``interpret_only``.
``undo_log``         the host's checkpoint/undo log is balanced: empty
                     when a new checkpoint is taken, fully drained after
                     a rollback or commit, and never covering the
                     TOL-private memory area.

A violation records a ``sanitizer_violation`` incident (so recover-mode
runs degrade gracefully and the fuzzer's triage sees a signature) and,
in strict mode, raises :class:`SanitizerError` at the mutation site —
the stack trace names the corrupting call, not the eventual symptom.

The pass costs nothing when off: :class:`~repro.tol.tol.Tol` only
constructs a sanitizer when ``config.sanitize`` is true, and every hook
is an instance-level wrapper on that one TOL's collaborators.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

KIND_SANITIZER = "sanitizer_violation"


class SanitizerError(Exception):
    """An invariant of the TOL's dispatch structures does not hold."""


class TolSanitizer:
    """Wraps one TOL's mutation points with invariant re-verification."""

    def __init__(self, tol):
        self.tol = tol
        self.checks_run = 0
        self.violations = 0
        #: shadow of the quarantine ladder for the monotonicity check.
        self._shadow_levels: Dict[int, int] = {}
        self._attach()

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    def _attach(self) -> None:
        cache = self.tol.cache
        for name in ("insert", "invalidate", "invalidate_pc", "flush",
                     "chain"):
            self._wrap_cache_op(cache, name)
        self._wrap_escalate(self.tol.quarantine)
        self._wrap_host(self.tol.host)

    def _wrap_cache_op(self, cache, name: str) -> None:
        orig = getattr(cache, name)

        def checked(*args, **kwargs):
            result = orig(*args, **kwargs)
            self.check_cache(site=name)
            return result

        setattr(cache, name, checked)

    def _wrap_escalate(self, quarantine) -> None:
        orig = quarantine.escalate

        def checked(pc, floor=0):
            before = self._shadow_levels.get(pc, quarantine.level(pc))
            new = orig(pc, floor)
            if new < before or new < floor or not (0 <= new <= 3):
                self._fail("quarantine", {
                    "pc": pc, "before": before, "floor": floor,
                    "after": new,
                }, site="escalate")
            self._shadow_levels[pc] = max(before, new)
            self.checks_run += 1
            return new

        quarantine.escalate = checked

    def _wrap_host(self, host) -> None:
        orig_take = host._take_checkpoint
        orig_rollback = host._rollback
        orig_commit = host._commit_region

        def checked_take(guest_pc):
            if host._undo:
                self._fail("undo_log", {
                    "pending_entries": len(host._undo),
                    "guest_pc": guest_pc,
                }, site="take_checkpoint")
            return orig_take(guest_pc)

        def checked_rollback(unit):
            self._check_undo_entries(host, unit)
            restart = orig_rollback(unit)
            if host._undo or host._checkpoint is not None \
                    or host._region_insns:
                self._fail("undo_log", {
                    "undo_entries": len(host._undo),
                    "checkpoint_live": host._checkpoint is not None,
                    "region_insns": host._region_insns,
                }, site="rollback")
            self.checks_run += 1
            return restart

        def checked_commit(unit, guest_insns):
            orig_commit(unit, guest_insns)
            if host._undo or host._checkpoint is not None:
                self._fail("undo_log", {
                    "undo_entries": len(host._undo),
                    "checkpoint_live": host._checkpoint is not None,
                }, site="commit")
            self.checks_run += 1

        host._take_checkpoint = checked_take
        host._rollback = checked_rollback
        host._commit_region = checked_commit

    def _check_undo_entries(self, host, unit) -> None:
        from repro.tol.regalloc import TOL_AREA_BASE
        for kind, addr, _old in host._undo:
            if addr >= TOL_AREA_BASE:
                self._fail("undo_log", {
                    "entry_kind": kind, "addr": addr,
                    "unit_pc": getattr(unit, "entry_pc", None),
                }, site="rollback")

    # ------------------------------------------------------------------
    # The cache / chain / IBTC invariant walk.
    # ------------------------------------------------------------------

    def check_cache(self, site: str = "explicit") -> None:
        """Re-verify cache link integrity, accounting and IBTC targets.

        O(units x instructions): the fuzzer's candidates cache a handful
        of units, so running this after every mutation is cheap."""
        self.checks_run += 1
        cache = self.tol.cache
        units = {}
        for unit in cache._units.values():
            units[unit.uid] = unit
        size = sum(u.size() for u in units.values())
        if size != cache.size_insns:
            self._fail("cache_accounting", {
                "size_insns": cache.size_insns, "actual": size,
                "units": len(units),
            }, site=site)

        forward = set()
        for unit in units.values():
            for idx, instr in enumerate(unit.instrs):
                if instr.op != "exit":
                    continue
                link = instr.meta.get("link")
                if link is None:
                    continue
                if link.uid not in units:
                    self._fail("cache_links", {
                        "from_pc": unit.entry_pc, "exit_index": idx,
                        "target_uid": link.uid,
                        "target_pc": link.entry_pc,
                        "problem": "link target not in cache",
                    }, site=site)
                next_pc = instr.meta.get("next_pc")
                if next_pc is not None and link.entry_pc != next_pc:
                    self._fail("cache_links", {
                        "from_pc": unit.entry_pc, "exit_index": idx,
                        "expected_pc": next_pc,
                        "target_pc": link.entry_pc,
                        "problem": "chain target mismatch",
                    }, site=site)
                back = cache._incoming.get(link.uid, [])
                if not any(u is unit and i == idx for (u, i) in back):
                    self._fail("cache_links", {
                        "from_pc": unit.entry_pc, "exit_index": idx,
                        "target_pc": link.entry_pc,
                        "problem": "forward link missing from "
                                   "incoming index",
                    }, site=site)
                forward.add((unit.uid, idx))

        for uid, entries in cache._incoming.items():
            for (linker, idx) in entries:
                if (linker.uid, idx) in forward:
                    continue
                # A registered incoming edge must still be backed by the
                # linker's forward pointer.  The linker itself may have
                # left the cache (the TOL chains ``event.unit`` even
                # when promotion just replaced it — a zombie linker with
                # a consistent link is legal and harmless); only a
                # *mismatched* forward pointer is corruption.
                link = linker.instrs[idx].meta.get("link")
                if link is not None and link.uid == uid:
                    continue
                self._fail("cache_links", {
                    "target_uid": uid,
                    "linker_pc": linker.entry_pc, "exit_index": idx,
                    "problem": "stale incoming edge",
                }, site=site)

        ibtc = self.tol.host.ibtc
        for pc, unit in ibtc._map.items():
            if unit.uid not in units:
                self._fail("ibtc_targets", {
                    "pc": pc, "target_uid": unit.uid,
                    "problem": "IBTC entry references removed unit",
                }, site=site)
            elif unit.entry_pc != pc:
                self._fail("ibtc_targets", {
                    "pc": pc, "target_pc": unit.entry_pc,
                    "problem": "IBTC target entry PC mismatch",
                }, site=site)

    # ------------------------------------------------------------------
    # Violation reporting.
    # ------------------------------------------------------------------

    def _fail(self, check: str, detail: Dict[str, Any],
              site: str) -> None:
        self.violations += 1
        tol = self.tol
        suspects = tuple(
            pc for pc in (detail.get("from_pc"), detail.get("pc"),
                          detail.get("linker_pc"))
            if isinstance(pc, int))
        tol.incidents.record(
            KIND_SANITIZER, tol.guest_icount,
            detail={"check": check, "site": site, **detail},
            suspects=suspects,
            actions=(f"check={check} site={site}",))
        tol.telemetry.instant("sanitizer_violation", "resilience",
                              icount=tol.guest_icount, check=check)
        if tol.config.recovery_mode == "strict":
            raise SanitizerError(
                f"{check} invariant violated at {site}: {detail}")


def attach_sanitizer(tol) -> Optional[TolSanitizer]:
    """Construct and attach a sanitizer when the config asks for one."""
    if not tol.config.sanitize:
        return None
    return TolSanitizer(tol)
