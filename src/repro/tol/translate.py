"""Translation orchestration: basic blocks (BBM) and superblocks (SBM/SBX).

Runs the full pipeline — decode, (SSA), optimization passes, DDG + list
scheduling, linear-scan allocation, code generation — and reports the
host-instruction cost of the translation work performed (charged to the
paper's "BB Translator" / "SB Translator" overhead categories).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import costs
from repro.guest.memory import PagedMemory
from repro.host.isa import CodeUnit, UNIT_MODE_BBM, UNIT_MODE_SBM, \
    UNIT_MODE_SBX
from repro.tol.codegen import CodeGenerator
from repro.tol.config import TolConfig
from repro.tol.decoder import Frontend
from repro.tol.ir import IRInstr, TmpAllocator, is_arch
from repro.tol.opt.passes import run_pipeline
from repro.tol.profile import Profiler
from repro.tol.regalloc import allocate
from repro.tol.scheduler import list_schedule
from repro.tol.ssa import to_ssa
from repro.tol.superblock import (
    Region, assemble_loop, assemble_region, build_region, decode_bb,
)


@dataclass
class Translation:
    """A finished translation: one or two units plus the work cost."""

    #: (unit, code-cache variant) pairs; unrolled loops produce two.
    units: List[Tuple[CodeUnit, str]]
    #: Host-instruction cost of performing the translation.
    cost: int
    speculated_pairs: int = 0


class Translator:
    def __init__(self, frontend: Frontend, config: TolConfig):
        self.frontend = frontend
        self.config = config
        self.codegen = CodeGenerator(ibtc_enabled=config.ibtc_enable)
        self._next_uid = 0
        #: when not None, per-stage IR is captured here for the debug
        #: toolchain: entry_pc -> {stage name -> list of IR ops}.
        self.capture = None
        #: when not None, invoked as ``ir_hook(ops, entry_pc, mode,
        #: unrolled=...)`` on the post-optimization IR of every
        #: translation; must return the (possibly replaced) op list.
        #: Fault-injection entry point.
        self.ir_hook = None
        #: telemetry hub (set by the owning TOL): the optimization
        #: pipeline is traced as "optimize" spans in full mode.
        self.telemetry = None
        # Cumulative statistics.
        self.bb_translations = 0
        self.sb_translations = 0
        self.sbx_translations = 0
        self.loops_unrolled = 0
        self.speculated_pairs = 0

    def _uid(self) -> int:
        self._next_uid += 1
        return self._next_uid

    def _optimize(self, ops, passes, entry_pc, mode):
        """Run an optimization pipeline, traced as an "optimize" span."""
        if self.telemetry is not None:
            with self.telemetry.span("optimize", "translate",
                                     pc=entry_pc, mode=mode,
                                     ops_in=len(ops)):
                return run_pipeline(ops, passes)
        return run_pipeline(ops, passes)

    # ------------------------------------------------------------------
    # BBM.
    # ------------------------------------------------------------------

    def translate_bb(self, memory: PagedMemory,
                     pc: int) -> Optional[Translation]:
        """Translate the basic block at ``pc`` (paper §V-B2)."""
        alloc = TmpAllocator()
        bb = decode_bb(self.frontend, memory, pc, alloc,
                       self.config.max_bb_insns)
        if not bb.decoded:
            return None
        ops: List[IRInstr] = []
        for d in bb.decoded:
            ops.extend(d.ops)
        count = bb.guest_insn_count
        if bb.terminator is not None:
            control = ops[-1]
            attrs = dict(control.attrs)
            attrs["guest_insns"] = count
            ops[-1] = control.with_changes(attrs=attrs)
        else:
            ops.append(IRInstr(op="exit", attrs={
                "next_pc": bb.next_pc, "guest_insns": count}))
        ops, pass_stats = self._optimize(ops, self.config.bbm_passes,
                                         pc, UNIT_MODE_BBM)
        if self.ir_hook is not None:
            ops = self.ir_hook(ops, pc, UNIT_MODE_BBM, unrolled=False)
        allocation = allocate(ops)
        unit = self.codegen.generate(
            uid=self._uid(), mode=UNIT_MODE_BBM, entry_pc=pc,
            ops=allocation.ops, allocation=allocation,
            guest_insn_count=count)
        for index in _dispatch_indices(unit):
            unit.instrs[index].meta["profile"] = True
        cost = (costs.BB_TRANSLATE_FIXED
                + costs.BB_TRANSLATE_PER_GUEST_INSN * count
                + costs.BB_TRANSLATE_PER_IR_OP
                * sum(s.ops_in for s in pass_stats))
        self.bb_translations += 1
        return Translation(units=[(unit, "plain")], cost=cost)

    # ------------------------------------------------------------------
    # SBM / SBX.
    # ------------------------------------------------------------------

    def translate_superblock(self, memory: PagedMemory, pc: int,
                             profiler: Profiler,
                             demote: bool = False) -> Optional[Translation]:
        """Create a superblock at ``pc``.

        ``demote=True`` recreates after excessive speculation failures:
        side exits instead of asserts, no memory speculation, no unrolling.
        """
        alloc = TmpAllocator()
        region = build_region(self.frontend, memory, pc, profiler,
                              self.config, alloc)
        if region is None:
            return None
        if region.is_loop:
            return self._translate_loop(region, alloc, demote)
        if demote:
            return self._translate_sbx(region, alloc)
        return self._translate_sbm(region, alloc)

    def _translate_sbm(self, region: Region,
                       alloc: TmpAllocator) -> Translation:
        assembled = assemble_region(region, mode="SBM")
        unit, cost, spec = self._ssa_pipeline(
            assembled.body, assembled.terminator, alloc,
            entry_pc=region.entry_pc, mode=UNIT_MODE_SBM,
            guest_insns=assembled.guest_insn_count,
            guest_bbs=assembled.guest_bb_count,
            allow_spec=self.config.mem_speculation)
        self.sb_translations += 1
        self.speculated_pairs += spec
        return Translation(units=[(unit, "plain")], cost=cost,
                           speculated_pairs=spec)

    def _translate_sbx(self, region: Region,
                       alloc: TmpAllocator) -> Translation:
        assembled = assemble_region(region, mode="SBX")
        ops = assembled.body + [assembled.terminator]
        ops, pass_stats = self._optimize(ops, self.config.bbm_passes,
                                         region.entry_pc, UNIT_MODE_SBX)
        if self.ir_hook is not None:
            ops = self.ir_hook(ops, region.entry_pc, UNIT_MODE_SBX,
                               unrolled=False)
        allocation = allocate(ops)
        unit = self.codegen.generate(
            uid=self._uid(), mode=UNIT_MODE_SBX,
            entry_pc=region.entry_pc, ops=allocation.ops,
            allocation=allocation,
            guest_insn_count=assembled.guest_insn_count,
            guest_bb_count=assembled.guest_bb_count)
        cost = self._sb_cost(assembled.guest_insn_count, pass_stats,
                             scheduled_ops=0)
        self.sbx_translations += 1
        return Translation(units=[(unit, "plain")], cost=cost)

    def _translate_loop(self, region: Region, alloc: TmpAllocator,
                        demote: bool) -> Translation:
        allow_spec = self.config.mem_speculation and not demote
        assembled = assemble_loop(region, unroll=1)
        plain_unit, cost, spec = self._ssa_pipeline(
            assembled.body, assembled.terminator, alloc,
            entry_pc=region.entry_pc, mode=UNIT_MODE_SBM,
            guest_insns=assembled.guest_insn_count, guest_bbs=1,
            allow_spec=allow_spec)
        units = [(plain_unit, "plain")]
        total_cost = cost
        total_spec = spec
        can_unroll = (
            self.config.unroll_enable and not demote
            and region.counted_reg is not None
            and region.bbs[0].guest_insn_count <= self.config.unroll_max_body
            and self.config.unroll_factor > 1)
        if can_unroll:
            unrolled = assemble_loop(
                region, unroll=self.config.unroll_factor, guard_alloc=alloc)
            unrolled_unit, ucost, uspec = self._ssa_pipeline(
                unrolled.body, unrolled.terminator, alloc,
                entry_pc=region.entry_pc, mode=UNIT_MODE_SBM,
                guest_insns=unrolled.guest_insn_count, guest_bbs=1,
                allow_spec=allow_spec, unrolled_variant=True)
            units.append((unrolled_unit, "unrolled"))
            total_cost += ucost
            total_spec += uspec
            self.loops_unrolled += 1
        self.sb_translations += 1
        self.speculated_pairs += total_spec
        return Translation(units=units, cost=total_cost,
                           speculated_pairs=total_spec)

    # ------------------------------------------------------------------

    def _ssa_pipeline(self, body, terminator, alloc, entry_pc, mode,
                      guest_insns, guest_bbs, allow_spec,
                      unrolled_variant=False):
        """SSA -> passes -> schedule -> allocate -> codegen."""
        ssa = to_ssa(body + [terminator], alloc)
        renamed_term = ssa.ops[-1]
        full = ssa.ops[:-1] + ssa.writebacks + [renamed_term]
        stages = None
        if self.capture is not None:
            stages = self.capture.setdefault(entry_pc, {})
            stages["decoded"] = list(body) + [terminator]
            stages["ssa"] = list(full)
        full, pass_stats = self._optimize(full, self.config.sbm_passes,
                                          entry_pc, mode)
        if self.ir_hook is not None:
            full = self.ir_hook(full, entry_pc, mode,
                                unrolled=unrolled_variant)
        if stages is not None:
            stages["optimized"] = list(full)
        prefix, writebacks, term = _split_tail(full)
        schedule = list_schedule(prefix, allow_mem_speculation=allow_spec)
        final_ops = schedule.ops + writebacks + [term]
        if stages is not None:
            stages["scheduled"] = list(final_ops)
        allocation = allocate(final_ops)
        unit = self.codegen.generate(
            uid=self._uid(), mode=mode, entry_pc=entry_pc,
            ops=allocation.ops, allocation=allocation,
            guest_insn_count=guest_insns, guest_bb_count=guest_bbs,
            unrolled=unrolled_variant)
        cost = self._sb_cost(guest_insns, pass_stats,
                             scheduled_ops=len(prefix))
        return unit, cost, schedule.speculated_pairs

    @staticmethod
    def _sb_cost(guest_insns, pass_stats, scheduled_ops) -> int:
        return (costs.SB_TRANSLATE_FIXED
                + costs.SB_TRANSLATE_PER_GUEST_INSN * guest_insns
                + costs.SB_TRANSLATE_PER_IR_OP_PASS
                * sum(s.ops_in for s in pass_stats)
                + costs.SB_SCHEDULE_PER_IR_OP * scheduled_ops)


def _split_tail(ops):
    """Split optimized ops into (schedulable prefix, writebacks,
    terminator)."""
    term = ops[-1]
    i = len(ops) - 1
    while i > 0:
        prev = ops[i - 1]
        if (prev.op in ("mov", "fmov", "vmov") and prev.dst is not None
                and is_arch(prev.dst)):
            i -= 1
        else:
            break
    return ops[:i], ops[i:-1], term


def _dispatch_indices(unit: CodeUnit):
    """Indices of instructions that transfer control back toward the TOL
    (exit/exit_ind/ibtc) — where BBM inline profiling hooks attach."""
    return [i for i, h in enumerate(unit.instrs)
            if h.op in ("exit", "exit_ind", "ibtc")]
