"""TOL intermediate representation.

The decoder frontend translates guest instructions to this RISC-like IR; all
optimizations operate on it; the code generator lowers it to host code.  This
is the layer that makes DARCO's frontend pluggable: adding a new guest ISA
only requires a new decoder to this IR (paper §V-D, "Support for multiple
ISA").

Operands
--------
- :class:`GReg`/:class:`GFReg`/:class:`GVReg`/:class:`Flag` — guest
  architectural state (directly mapped onto host home registers);
- :class:`Tmp`/:class:`FTmp`/:class:`VTmp` — virtual registers;
- :class:`Const` — integer or float literal.

Control ops carry guest PCs in ``attrs``; ``br_true``/``br_false`` are the
only terminators the decoder emits for conditional branches — the superblock
builder rewrites them into asserts or side exits.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.guest.isa import FLAG_NAMES, FPR_NAMES, GPR_NAMES, VR_NAMES


@dataclass(frozen=True, slots=True)
class GReg:
    index: int

    def __repr__(self):
        return GPR_NAMES[self.index]


@dataclass(frozen=True, slots=True)
class GFReg:
    index: int

    def __repr__(self):
        return FPR_NAMES[self.index]


@dataclass(frozen=True, slots=True)
class GVReg:
    index: int

    def __repr__(self):
        return VR_NAMES[self.index]


@dataclass(frozen=True, slots=True)
class Flag:
    index: int

    def __repr__(self):
        return FLAG_NAMES[self.index]


@dataclass(frozen=True, slots=True)
class Tmp:
    index: int

    def __repr__(self):
        return f"t{self.index}"


@dataclass(frozen=True, slots=True)
class FTmp:
    index: int

    def __repr__(self):
        return f"ft{self.index}"


@dataclass(frozen=True, slots=True)
class VTmp:
    index: int

    def __repr__(self):
        return f"vt{self.index}"


@dataclass(frozen=True, slots=True)
class Const:
    value: object  # int for integer ops, float for FP ops

    def __repr__(self):
        if isinstance(self.value, int):
            return f"#{self.value:#x}"
        return f"#{self.value}"


ZF, SF, CF, OF = Flag(0), Flag(1), Flag(2), Flag(3)


class IROp:
    """Opcode groups (integer ops have 32-bit wrapping semantics)."""

    INT = frozenset({
        "mov", "add", "sub", "mul", "div", "rem", "and", "or", "xor",
        "shl", "shr", "sar", "not", "neg",
        "cmpeq", "cmpne", "cmplts", "cmpltu", "cmples", "cmpleu",
        "addcf", "addof", "subcf", "subof", "mulof",
    })
    FP = frozenset({
        "fmov", "fadd", "fsub", "fmul", "fdiv", "fneg", "fabs", "fsqrt",
        "ffloor", "fsin", "fcos", "i2f", "f2i", "fcmpeq", "fcmplt", "fcmpun",
    })
    VEC = frozenset({"vmov", "vadd", "vsub", "vmul", "vsplat"})
    LOAD = frozenset({"ld32", "ldf", "ldv"})
    STORE = frozenset({"st32", "stf", "stv"})
    CONTROL = frozenset({
        "br_true", "br_false",     # conditional guest branch (decoder output)
        "jmp",                     # unconditional, attrs["target_pc"]
        "jmp_ind",                 # indirect, srcs[0] holds guest pc
        "assert_true", "assert_false",          # superblock speculation
        "side_exit_true", "side_exit_false",    # multi-exit superblocks
        "guard_exit_false",        # loop-unroll runtime trip-count guard
        "exit", "exit_ind",        # leave the region
    })
    ALL = INT | FP | VEC | LOAD | STORE | CONTROL

    #: Ops with side effects beyond their destination (never dead-code
    #: eliminated).
    SIDE_EFFECTS = STORE | CONTROL


_COUNTER = [0]


@dataclass(frozen=True, slots=True)
class IRInstr:
    """One IR operation.

    ``imm`` is the memory displacement for loads/stores (address operand is
    ``srcs[0]``); other integer immediates appear as :class:`Const` sources.
    ``attrs`` holds control metadata (target PCs, speculation marks).
    """

    op: str
    dst: Optional[object] = None
    srcs: Tuple[object, ...] = ()
    imm: int = 0
    attrs: Dict[str, object] = field(default_factory=dict, compare=False)
    guest_pc: Optional[int] = None

    def with_changes(self, **kw) -> "IRInstr":
        return replace(self, **kw)

    @property
    def is_load(self) -> bool:
        return self.op in IROp.LOAD

    @property
    def is_store(self) -> bool:
        return self.op in IROp.STORE

    @property
    def is_control(self) -> bool:
        return self.op in IROp.CONTROL

    @property
    def has_side_effects(self) -> bool:
        return self.op in IROp.SIDE_EFFECTS

    def __repr__(self):
        parts = [self.op]
        if self.dst is not None:
            parts.append(f"{self.dst!r} <-")
        parts.extend(repr(s) for s in self.srcs)
        if self.imm:
            parts.append(f"+{self.imm:#x}")
        if self.attrs:
            interesting = {
                k: (f"{v:#x}" if isinstance(v, int) else v)
                for k, v in self.attrs.items()
                if k in ("target_pc", "taken_pc", "fall_pc", "next_pc")}
            if interesting:
                parts.append(str(interesting))
        return " ".join(parts)


def is_arch(operand) -> bool:
    """True for guest architectural state operands."""
    return isinstance(operand, (GReg, GFReg, GVReg, Flag))


def is_tmp(operand) -> bool:
    return isinstance(operand, (Tmp, FTmp, VTmp))


class TmpAllocator:
    """Fresh virtual register factory (per translation region)."""

    def __init__(self):
        self._next = 0

    def tmp(self) -> Tmp:
        self._next += 1
        return Tmp(self._next)

    def ftmp(self) -> FTmp:
        self._next += 1
        return FTmp(self._next)

    def vtmp(self) -> VTmp:
        self._next += 1
        return VTmp(self._next)
