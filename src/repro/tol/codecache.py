"""Code cache.

Stores translated units keyed by guest entry PC (with an ``unrolled``
variant dimension for loop superblocks).  Handles:

- promotion invalidation — creating a superblock frees the BBM translation
  of its first basic block (paper §V-B3);
- chain bookkeeping — incoming links are tracked so invalidation can unlink
  units that jump directly to the victim;
- a flush-on-full capacity policy (capacity measured in host instructions).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.host.isa import CodeUnit

PLAIN = "plain"
UNROLLED = "unrolled"


class CodeCache:
    def __init__(self, capacity_insns: int = 4_000_000):
        self.capacity_insns = capacity_insns
        self._units: Dict[Tuple[int, str], CodeUnit] = {}
        self._incoming: Dict[int, List[Tuple[CodeUnit, int]]] = {}
        self.size_insns = 0
        self.flushes = 0
        self.insertions = 0
        self.invalidations = 0
        self.hits = 0
        self.misses = 0
        #: Units dropped by capacity flushes (the cache's only eviction
        #: mechanism), as opposed to targeted invalidations.
        self.evictions = 0
        #: Units larger than the whole cache, refused outright (the TOL
        #: still executes them from the translator's hand-back; they are
        #: simply never cached).
        self.oversize_rejections = 0
        #: Direct-tier programs dropped from removed units (demotion
        #: events of the direct tier — coverage-map signal).
        self.direct_strips = 0
        #: Called with each unit removed from the cache (invalidate,
        #: invalidate_pc and flush), so dependent dispatch structures —
        #: the IBTC above all — can drop their references instead of
        #: dangling into freed code.
        self.on_remove: Optional[Callable[[CodeUnit], None]] = None

    def __len__(self) -> int:
        return len(self._units)

    def units(self):
        return self._units.values()

    # -- lookup ----------------------------------------------------------------

    def lookup(self, pc: int, variant: Optional[str] = None
               ) -> Optional[CodeUnit]:
        """Find a translation for ``pc``; unrolled variants win by default."""
        if variant is not None:
            unit = self._units.get((pc, variant))
        else:
            unit = self._units.get((pc, UNROLLED))
            if unit is None:
                unit = self._units.get((pc, PLAIN))
        if unit is None:
            self.misses += 1
        else:
            self.hits += 1
        return unit

    # -- insertion / invalidation ------------------------------------------------

    def insert(self, unit: CodeUnit, variant: str = PLAIN) -> bool:
        """Insert a unit; returns True if the cache flushed to make room.

        The unit it replaces (same PC and variant) is invalidated *before*
        the capacity check, so retranslating a large unit in place never
        triggers a spurious full-cache flush.  A unit that could never fit
        (larger than the whole cache) is rejected instead of being inserted
        with ``size_insns > capacity_insns``.
        """
        key = (unit.entry_pc, variant)
        old = self._units.get(key)
        if old is not None:
            self.invalidate(old)
        if unit.size() > self.capacity_insns:
            self.oversize_rejections += 1
            return False
        flushed = False
        if self.size_insns + unit.size() > self.capacity_insns:
            self.flush()
            flushed = True
        self._units[key] = unit
        self.size_insns += unit.size()
        self.insertions += 1
        return flushed

    def _strip_direct(self, unit: CodeUnit) -> None:
        """Drop a removed unit's direct-tier programs.  A removed unit
        can still be referenced (it may be mid-execution), but its entry
        PC may have been quarantined — if a fresh translation ever
        re-promotes, it must recompile against its own instructions."""
        if unit.__dict__.pop("_directprog", None) is not None:
            self.direct_strips += 1
        unit.__dict__.pop("_directprog_traced", None)

    def invalidate(self, unit: CodeUnit) -> None:
        """Remove a unit, unlinking chains in both directions."""
        keys = [k for k, u in self._units.items() if u is unit]
        for key in keys:
            del self._units[key]
            self.size_insns -= unit.size()
        self._unlink(unit)
        self._strip_direct(unit)
        self.invalidations += 1
        if self.on_remove is not None:
            self.on_remove(unit)

    def invalidate_pc(self, pc: int) -> List[CodeUnit]:
        """Remove every variant cached for ``pc`` (quarantine path)."""
        victims = []
        for (upc, variant), unit in list(self._units.items()):
            if upc == pc and unit not in victims:
                victims.append(unit)
        for unit in victims:
            self.invalidate(unit)
        return victims

    def _unlink(self, unit: CodeUnit) -> None:
        """Sever every chain touching ``unit``: incoming links from other
        units, and the unit's own outgoing links (deregistered from their
        targets so a removed unit leaves no bookkeeping behind)."""
        for (linker, exit_idx) in self._incoming.pop(unit.uid, []):
            exit_instr = linker.instrs[exit_idx]
            if exit_instr.meta.get("link") is unit:
                exit_instr.meta["link"] = None
        for instr in unit.instrs:
            if instr.op != "exit":
                continue
            target = instr.meta.get("link")
            if target is None:
                continue
            instr.meta["link"] = None
            back = self._incoming.get(target.uid)
            if back:
                self._incoming[target.uid] = [
                    (u, i) for (u, i) in back if u is not unit]

    def flush(self) -> None:
        removed = []
        seen = set()
        for unit in self._units.values():
            if id(unit) not in seen:
                seen.add(id(unit))
                removed.append(unit)
        self._units.clear()
        self._incoming.clear()
        self.size_insns = 0
        self.flushes += 1
        self.evictions += len(removed)
        # Clear outgoing links on everything removed — a flushed unit may
        # still be mid-execution in the host emulator, and a stale link
        # must not re-enter freed code — and let dependents (IBTC) drop
        # their references.
        for unit in removed:
            for instr in unit.instrs:
                if instr.op == "exit" and instr.meta.get("link") is not None:
                    instr.meta["link"] = None
            self._strip_direct(unit)
            if self.on_remove is not None:
                self.on_remove(unit)

    # -- chaining -----------------------------------------------------------------

    def chain(self, from_unit: CodeUnit, exit_index: int,
              to_unit: CodeUnit) -> None:
        """Patch an exit instruction to jump directly to ``to_unit``."""
        exit_instr = from_unit.instrs[exit_index]
        if exit_instr.op != "exit":
            raise ValueError(f"not a chainable exit: {exit_instr!r}")
        exit_instr.meta["link"] = to_unit
        self._incoming.setdefault(to_unit.uid, []).append(
            (from_unit, exit_index))
