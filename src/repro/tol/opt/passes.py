"""TOL optimization passes.

Each pass is a pure function ``(ops) -> (new_ops, PassStats)`` over a
straight-line IR list.  The optimizer pipeline (paper §V-B3): a forward pass
applying constant folding, constant propagation and copy propagation; common
subexpression elimination with memory versioning (which subsumes redundant
load elimination and store-to-load forwarding); and a backward dead-code
elimination pass whose liveness rules implement the lazy-flag optimization
(intermediate flag values that are overwritten unconsumed simply die).

The pass framework is the paper's "plug-and-play" point: passes are selected
by name in :class:`repro.tol.config.TolConfig` and new ones register with
:func:`register_pass`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.tol.ir import (
    Const, FTmp, Flag, GFReg, GReg, GVReg, IRInstr, IROp, Tmp, VTmp, is_arch,
)
from repro.tol.ir_eval import _EVAL as _PURE_EVAL


@dataclass
class PassStats:
    name: str
    ops_in: int = 0
    ops_out: int = 0
    changed: int = 0

    @property
    def removed(self) -> int:
        return self.ops_in - self.ops_out


PassFn = Callable[[List[IRInstr]], Tuple[List[IRInstr], PassStats]]

_REGISTRY: Dict[str, PassFn] = {}


def register_pass(name: str):
    """Register an optimization pass under ``name`` (plug-and-play hook)."""
    def wrap(fn: PassFn) -> PassFn:
        _REGISTRY[name] = fn
        return fn
    return wrap


def get_pass(name: str) -> PassFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown optimization pass {name!r}; "
            f"available: {sorted(_REGISTRY)}") from None


def available_passes() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def run_pipeline(ops: List[IRInstr], names) -> Tuple[List[IRInstr], list]:
    """Run the named passes in order; returns (ops, [PassStats...])."""
    stats = []
    for name in names:
        ops, st = get_pass(name)(ops)
        stats.append(st)
    return ops, stats


# ---------------------------------------------------------------------------
# Constant folding.
# ---------------------------------------------------------------------------

#: Pure ops foldable when all sources are constants.  fsin/fcos are folded
#: through the architectural recipe so results stay bit-identical.
_FOLDABLE = (IROp.INT | IROp.FP) - {"mov", "fmov"}


@register_pass("constfold")
def const_fold(ops: List[IRInstr]):
    stats = PassStats("constfold", ops_in=len(ops))
    out = []
    for instr in ops:
        if (instr.op in _FOLDABLE
                and instr.srcs
                and all(isinstance(s, Const) for s in instr.srcs)):
            fn = _PURE_EVAL[instr.op]
            value = fn(*[s.value for s in instr.srcs])
            move = "fmov" if isinstance(instr.dst, (FTmp, GFReg)) else "mov"
            out.append(instr.with_changes(
                op=move, srcs=(Const(value),), imm=0))
            stats.changed += 1
        else:
            out.append(instr)
    stats.ops_out = len(out)
    return out, stats


# ---------------------------------------------------------------------------
# Constant + copy propagation (one forward pass).
# ---------------------------------------------------------------------------


@register_pass("constprop")
def const_copy_prop(ops: List[IRInstr]):
    """Propagate constants and copies through temps.

    Safe on SSA regions and on non-SSA basic blocks: copies of
    *architectural* sources are only propagated while the source has not
    been redefined.
    """
    stats = PassStats("constprop", ops_in=len(ops))
    env: Dict[object, object] = {}
    arch_version: Dict[object, int] = {}
    copy_version: Dict[object, int] = {}

    def resolve(operand):
        seen = 0
        while operand in env and seen < 8:
            replacement = env[operand]
            if is_arch(replacement):
                if copy_version.get(operand) != \
                        arch_version.get(replacement, 0):
                    break
            operand = replacement
            seen += 1
        return operand

    out = []
    for instr in ops:
        new_srcs = tuple(resolve(s) for s in instr.srcs)
        if new_srcs != instr.srcs:
            instr = instr.with_changes(srcs=new_srcs)
            stats.changed += 1
        dst = instr.dst
        if dst is not None:
            env.pop(dst, None)
            if is_arch(dst):
                arch_version[dst] = arch_version.get(dst, 0) + 1
                # invalidate copies *of* this arch location
            if instr.op in ("mov", "fmov", "vmov") and len(instr.srcs) == 1:
                src = instr.srcs[0]
                if isinstance(src, Const) or is_arch(src) or isinstance(
                        src, (Tmp, FTmp, VTmp)):
                    if isinstance(dst, (Tmp, FTmp, VTmp)):
                        env[dst] = src
                        if is_arch(src):
                            copy_version[dst] = arch_version.get(src, 0)
        out.append(instr)
    stats.ops_out = len(out)
    return out, stats


# ---------------------------------------------------------------------------
# CSE with memory versioning (subsumes RLE and store forwarding).
# ---------------------------------------------------------------------------

_CSEABLE = (IROp.INT | IROp.FP | IROp.VEC) - {"mov", "fmov", "vmov"}
_LOAD_SIZE = {"ld32": 4, "ldf": 8, "ldv": 16,
              "st32": 4, "stf": 8, "stv": 16}
_STORE_TO_LOAD = {"st32": "ld32", "stf": "ldf", "stv": "ldv"}


@register_pass("cse")
def cse_rle_forwarding(ops: List[IRInstr]):
    """Common subexpression elimination; loads participate under a memory
    version that bumps at every store, giving redundant-load elimination;
    exact-match store-to-load forwarding is applied on top.

    Every operand in an expression key — and every remembered result or
    forwarded store value — carries its definition-count version, so a
    redefined register never matches (or substitutes for) a stale value.
    Like constprop, the pass is safe on non-SSA regions.
    """
    stats = PassStats("cse", ops_in=len(ops))
    version: Dict[object, int] = {}

    def vkey(operand):
        return (operand, version.get(operand, 0))

    def valid(entry) -> bool:
        operand, at_version = entry
        return version.get(operand, 0) == at_version

    exprs: Dict[tuple, tuple] = {}      # key -> (result, version-at-def)
    mem_version = 0
    last_store: Dict[tuple, tuple] = {}  # key -> (value, version-at-store)
    out = []
    for instr in ops:
        replaced = False
        if instr.is_store:
            mem_version += 1
            last_store.clear()
            key = (_STORE_TO_LOAD[instr.op], vkey(instr.srcs[0]), instr.imm)
            last_store[key] = vkey(instr.srcs[1])
        elif instr.is_load:
            fwd_key = (instr.op, vkey(instr.srcs[0]), instr.imm)
            fwd = last_store.get(fwd_key)
            if fwd is not None and valid(fwd):
                move = {"ld32": "mov", "ldf": "fmov", "ldv": "vmov"}[instr.op]
                out.append(instr.with_changes(
                    op=move, srcs=(fwd[0],), imm=0))
                stats.changed += 1
                replaced = True
            else:
                key = (instr.op, vkey(instr.srcs[0]), instr.imm, mem_version)
                prior = exprs.get(key)
                if prior is not None and valid(prior):
                    move = {"ld32": "mov", "ldf": "fmov",
                            "ldv": "vmov"}[instr.op]
                    out.append(instr.with_changes(
                        op=move, srcs=(prior[0],), imm=0))
                    stats.changed += 1
                    replaced = True
                else:
                    exprs[key] = (instr.dst, version.get(instr.dst, 0) + 1)
        elif (instr.op in _CSEABLE and instr.dst is not None
              and isinstance(instr.dst, (Tmp, FTmp, VTmp))):
            key = (instr.op, tuple(vkey(s) for s in instr.srcs), instr.imm)
            prior = exprs.get(key)
            if prior is not None and valid(prior):
                move = ("fmov" if isinstance(instr.dst, FTmp) else
                        "vmov" if isinstance(instr.dst, VTmp) else "mov")
                out.append(instr.with_changes(op=move, srcs=(prior[0],),
                                              imm=0))
                stats.changed += 1
                replaced = True
            else:
                exprs[key] = (instr.dst, version.get(instr.dst, 0) + 1)
        if not replaced:
            out.append(instr)
        if instr.dst is not None:
            version[instr.dst] = version.get(instr.dst, 0) + 1
    stats.ops_out = len(out)
    return out, stats


# ---------------------------------------------------------------------------
# Dead code elimination (backward liveness).
# ---------------------------------------------------------------------------

_ALL_ARCH = (
    [GReg(i) for i in range(8)] + [Flag(i) for i in range(4)]
    + [GFReg(i) for i in range(8)] + [GVReg(i) for i in range(8)]
)

#: Control ops after which guest architectural state must be fully
#: materialized (they *commit*).  Asserts are absent on purpose: an assert
#: failure rolls back to the checkpoint, so no state needs to be live there.
_COMMITTING_EXITS = frozenset({
    "side_exit_true", "side_exit_false", "guard_exit_false",
    "exit", "exit_ind", "br_true", "br_false", "jmp", "jmp_ind",
})


@register_pass("dce")
def dead_code_elim(ops: List[IRInstr]):
    """Remove pure ops whose destination is never consumed.

    Architectural state is live at region exit, so final writebacks survive;
    intermediate (overwritten) architectural defs die if unconsumed — this
    is exactly DARCO's lazy condition-flag materialization.  Dead loads are
    removed too (legal for a co-designed DBT; a removed load at worst
    removes a spurious page fault).
    """
    stats = PassStats("dce", ops_in=len(ops))
    live = set(_ALL_ARCH)
    kept_rev = []
    for instr in reversed(ops):
        if instr.op in _COMMITTING_EXITS:
            live.update(_ALL_ARCH)
        needed = (
            instr.has_side_effects
            or instr.dst is None
            or instr.dst in live
        )
        if needed:
            if instr.dst is not None:
                live.discard(instr.dst)
            live.update(
                s for s in instr.srcs if not isinstance(s, Const))
            kept_rev.append(instr)
    out = list(reversed(kept_rev))
    stats.ops_out = len(out)
    stats.changed = stats.ops_in - stats.ops_out
    return out, stats


#: The standard pipelines (paper §V-B2/B3).
BBM_PIPELINE = ("constfold", "constprop", "dce")
SBM_PIPELINE = ("constfold", "constprop", "cse", "constprop", "dce")
