"""Optimization passes (plug-and-play registry)."""

from repro.tol.opt.passes import (
    BBM_PIPELINE, SBM_PIPELINE, PassStats, available_passes, get_pass,
    register_pass, run_pipeline,
)

__all__ = [
    "BBM_PIPELINE", "SBM_PIPELINE", "PassStats", "available_passes",
    "get_pass", "register_pass", "run_pipeline",
]
