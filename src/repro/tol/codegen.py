"""Code generator: allocated IR -> host code units.

Lowers the optimized, scheduled and register-allocated IR of a translation
region into host instructions, inserting the co-designed scaffolding:

- a ``chkpt`` at the unit entry (and implicit re-checkpoint at loop heads);
- ``commit``/``exit`` instructions carrying retired-guest-instruction counts;
- exit stubs for conditional exits (chain-patchable by the TOL);
- IBTC dispatch for indirect exits;
- software expansion of ``fsin``/``fcos`` from the architectural recipes —
  the same straight-line IEEE operations the reference emulator evaluates,
  so results are bit-identical (and Physicsbench-style code pays the
  emulation cost the paper reports).
"""

from __future__ import annotations

from typing import Dict, List

from repro.guest.semantics import TRIG_RECIPES
from repro.host.isa import CodeUnit, HostInstr
from repro.tol.ir import Const, FTmp, IRInstr, Tmp, VTmp, is_arch
from repro.tol.regalloc import (
    AllocationResult, FP_CONST_SCRATCH, FP_RECIPE_POOL, INT_CONST_SCRATCH,
    home_of,
)

_FP_CONST_SCRATCH2 = 12

#: IR op -> host op for straightforward three-address lowering.
_DIRECT = {
    "mov": "mov", "add": "add32", "sub": "sub32", "mul": "mul32",
    "div": "div32s", "rem": "rem32s", "and": "and32", "or": "or32",
    "xor": "xor32", "shl": "shl32", "shr": "shr32", "sar": "sar32",
    "not": "not32", "neg": "neg32",
    "cmpeq": "cmpeq", "cmpne": "cmpne", "cmplts": "cmplt32s",
    "cmpltu": "cmplt32u", "cmples": "cmple32s", "cmpleu": "cmple32u",
    "addcf": "addcf32", "addof": "addof32", "subcf": "subcf32",
    "subof": "subof32", "mulof": "mulof32",
    "fmov": "fmov", "fadd": "fadd", "fsub": "fsub", "fmul": "fmul",
    "fdiv": "fdiv", "fneg": "fneg", "fabs": "fabs", "fsqrt": "fsqrt",
    "ffloor": "ffloor", "i2f": "i2f", "f2i": "f2i",
    "fcmpeq": "fcmpeq", "fcmplt": "fcmplt", "fcmpun": "fcmpun",
    "vmov": "vmov", "vadd": "vadd32", "vsub": "vsub32", "vmul": "vmul32",
    "vsplat": "vsplat",
}

#: Integer ops with an immediate host form when the *second* source is
#: constant (plus commutative ops usable with the first).
_IMM_FORM = {
    "add": "addi32", "and": "andi32", "or": "ori32", "xor": "xori32",
    "shl": "shli32", "shr": "shri32", "sar": "sari32",
    "cmpeq": "cmpeqi", "cmpne": "cmpnei",
}
_COMMUTATIVE = {"add", "and", "or", "xor", "cmpeq", "cmpne", "mul"}

_FP_OPS = frozenset({
    "fmov", "fadd", "fsub", "fmul", "fdiv", "fneg", "fabs", "fsqrt",
    "ffloor", "fsin", "fcos", "fcmpeq", "fcmplt", "fcmpun", "f2i",
})

def _fp_src_positions(op: str, nsrcs: int) -> frozenset:
    """Which source positions of an IR op are FP registers."""
    if op == "i2f" or op == "vsplat":
        return frozenset()
    if op in _FP_OPS:
        return frozenset(range(nsrcs))
    return frozenset()


_LOADS = {"ld32": "ld32", "ldf": "ldf", "ldv": "vld",
          "sld32": "sld32", "sldf": "sldf"}
_STORES = {"st32": "st32", "stf": "stf", "stv": "vst",
           "st32chk": "st32chk", "stfchk": "stfchk"}


class CodegenError(Exception):
    """The IR reaching codegen violated an invariant (a TOL bug)."""


class _Builder:
    def __init__(self):
        self.instrs: List[HostInstr] = []
        self._stubs: List[tuple] = []   # (branch index, stub payload)

    def emit(self, op, **kw) -> int:
        self.instrs.append(HostInstr(op=op, **kw))
        return len(self.instrs) - 1

    def emit_branch_to_stub(self, op, a, stub_exit: HostInstr) -> None:
        idx = self.emit(op, a=a, target=None)
        self._stubs.append((idx, stub_exit))

    def finalize(self) -> List[HostInstr]:
        for branch_idx, stub in self._stubs:
            self.instrs[branch_idx].target = len(self.instrs)
            self.instrs.append(stub)
        self._stubs.clear()
        return self.instrs


class CodeGenerator:
    """Lowers one region's IR into a :class:`CodeUnit`."""

    def __init__(self, ibtc_enabled: bool = True):
        self.ibtc_enabled = ibtc_enabled

    def generate(self, uid: int, mode: str, entry_pc: int,
                 ops: List[IRInstr], allocation: AllocationResult,
                 guest_insn_count: int, guest_bb_count: int = 1,
                 unrolled: bool = False) -> CodeUnit:
        builder = _Builder()
        assignment = allocation.assignment
        builder.emit("chkpt", meta={"guest_pc": entry_pc})
        committed = [0]  # guest insns already committed in this region

        for instr in ops:
            self._lower(builder, instr, assignment, entry_pc, committed)

        instrs = builder.finalize()
        exit_indices = tuple(
            i for i, h in enumerate(instrs) if h.op == "exit")
        unit = CodeUnit(
            uid=uid, mode=mode, entry_pc=entry_pc, instrs=instrs,
            guest_insn_count=guest_insn_count,
            guest_bb_count=guest_bb_count,
            exit_indices=exit_indices, unrolled=unrolled,
        )
        # Static cycle annotation: computed once per unit at translate
        # time, consumed by the timing layer's batched fast path.
        # (Function-level import: repro.timing pulls in the run helpers,
        # which import the system controller and hence this package.)
        from repro.timing.annotate import build_static_profile
        unit._timing_profile = build_static_profile(unit)
        return unit

    # ------------------------------------------------------------------

    def _reg(self, operand, assignment) -> int:
        if is_arch(operand):
            return home_of(operand)
        if isinstance(operand, (Tmp, FTmp, VTmp)):
            try:
                return assignment[operand]
            except KeyError:
                raise CodegenError(f"unallocated temp {operand!r}") from None
        raise CodegenError(f"not a register operand: {operand!r}")

    def _int_src(self, builder, operand, assignment,
                 scratch=INT_CONST_SCRATCH) -> int:
        if isinstance(operand, Const):
            builder.emit("li", d=scratch, imm=operand.value & 0xFFFFFFFF)
            return scratch
        return self._reg(operand, assignment)

    def _fp_src(self, builder, operand, assignment,
                scratch=FP_CONST_SCRATCH) -> int:
        if isinstance(operand, Const):
            builder.emit("lif", d=scratch, imm=float(operand.value))
            return scratch
        return self._reg(operand, assignment)

    # ------------------------------------------------------------------

    def _lower(self, builder, instr, assignment, entry_pc, committed):
        op = instr.op
        if op in ("fsin", "fcos"):
            self._lower_trig(builder, instr, assignment)
            return
        if op in _LOADS:
            self._lower_load(builder, instr, assignment)
            return
        if op in _STORES:
            self._lower_store(builder, instr, assignment)
            return
        if instr.is_control:
            self._lower_control(builder, instr, assignment, entry_pc,
                                committed)
            return
        if op in ("mov", "fmov", "vmov") and isinstance(
                instr.srcs[0], Const):
            dst = self._reg(instr.dst, assignment)
            if op == "fmov":
                builder.emit("lif", d=dst, imm=float(instr.srcs[0].value))
            elif op == "mov":
                builder.emit(
                    "li", d=dst, imm=instr.srcs[0].value & 0xFFFFFFFF)
            else:
                raise CodegenError("vector constants are not encodable")
            return
        host_op = _DIRECT.get(op)
        if host_op is None:
            raise CodegenError(f"no lowering for IR op {op!r}")
        self._lower_direct(builder, instr, assignment, host_op)

    def _lower_direct(self, builder, instr, assignment, host_op):
        op = instr.op
        srcs = list(instr.srcs)
        dst = self._reg(instr.dst, assignment)
        # Immediate forms / commutativity for integer ops.
        if op in _IMM_FORM or op in _COMMUTATIVE or op == "sub":
            if (op in _COMMUTATIVE and len(srcs) == 2
                    and isinstance(srcs[0], Const)
                    and not isinstance(srcs[1], Const)):
                srcs = [srcs[1], srcs[0]]
            if (len(srcs) == 2 and isinstance(srcs[1], Const)
                    and not isinstance(srcs[0], Const)):
                imm = srcs[1].value & 0xFFFFFFFF
                if op == "sub":
                    builder.emit(
                        "addi32", d=dst,
                        a=self._reg(srcs[0], assignment), imm=-imm,
                        guest_pc=instr.guest_pc)
                    return
                if op in _IMM_FORM:
                    builder.emit(
                        _IMM_FORM[op], d=dst,
                        a=self._reg(srcs[0], assignment), imm=imm,
                        guest_pc=instr.guest_pc)
                    return
        # General form: materialize remaining constants in scratch regs.
        fp_src_positions = _fp_src_positions(op, len(srcs))
        regs = []
        int_scratches = (INT_CONST_SCRATCH, 14)
        fp_scratches = (FP_CONST_SCRATCH, _FP_CONST_SCRATCH2)
        for i, src in enumerate(srcs):
            if isinstance(src, Const):
                if i in fp_src_positions:
                    regs.append(self._fp_src(
                        builder, src, assignment, fp_scratches[i % 2]))
                else:
                    regs.append(self._int_src(
                        builder, src, assignment, int_scratches[i % 2]))
            else:
                regs.append(self._reg(src, assignment))
        kwargs = {"d": dst}
        if regs:
            kwargs["a"] = regs[0]
        if len(regs) > 1:
            kwargs["b"] = regs[1]
        builder.emit(host_op, guest_pc=instr.guest_pc, **kwargs)

    def _lower_load(self, builder, instr, assignment):
        host_op = _LOADS[instr.op]
        addr = self._int_src(builder, instr.srcs[0], assignment)
        meta = {}
        if instr.op in ("sld32", "sldf"):
            meta["seq"] = instr.attrs["seq"]
        builder.emit(host_op, d=self._reg(instr.dst, assignment),
                     a=addr, imm=instr.imm, guest_pc=instr.guest_pc,
                     meta=meta)

    def _lower_store(self, builder, instr, assignment):
        host_op = _STORES[instr.op]
        addr_op, value_op = instr.srcs
        addr = self._int_src(builder, addr_op, assignment)
        if isinstance(value_op, Const):
            if instr.op in ("stf", "stfchk"):
                value = self._fp_src(builder, value_op, assignment)
            else:
                value = self._int_src(builder, value_op, assignment,
                                      scratch=14)
        else:
            value = self._reg(value_op, assignment)
        meta = {}
        if instr.op in ("st32chk", "stfchk"):
            meta["seq"] = instr.attrs["seq"]
        builder.emit(host_op, a=addr, b=value, imm=instr.imm,
                     guest_pc=instr.guest_pc, meta=meta)

    def _lower_trig(self, builder, instr, assignment):
        recipe = TRIG_RECIPES["sin" if instr.op == "fsin" else "cos"]
        dst = self._reg(instr.dst, assignment)
        src_op = instr.srcs[0]
        if isinstance(src_op, Const):
            builder.emit("lif", d=dst, imm=float(src_op.value))
            src = dst
        else:
            src = self._reg(src_op, assignment)
        # Linear-scan the recipe slots over the reserved FP recipe pool.
        last_use: Dict[str, int] = {}
        for i, step in enumerate(recipe):
            for name in step[2:] if step[0] != "const" else ():
                if isinstance(name, str):
                    last_use[name] = i
        pool = list(FP_RECIPE_POOL)
        slot_reg: Dict[str, int] = {"x": src}
        recipe_host = {"mul": "fmul", "add": "fadd", "sub": "fsub"}

        def read_slots(names, step_idx):
            regs = []
            for name in names:
                if name not in slot_reg:
                    raise CodegenError(
                        f"recipe slot {name!r} read before definition")
                regs.append(slot_reg[name])
            # Free slots whose last use is this step (after reading all).
            for name in set(names):
                if (last_use.get(name, -1) <= step_idx and name != "x"
                        and slot_reg[name] in FP_RECIPE_POOL):
                    pool.append(slot_reg[name])
                    del slot_reg[name]
            return regs

        for i, step in enumerate(recipe):
            kind, out = step[0], step[1]
            if kind == "const":
                reg = self._recipe_alloc(pool, out, slot_reg)
                builder.emit("lif", d=reg, imm=step[2],
                             guest_pc=instr.guest_pc)
            elif kind == "floor":
                (a,) = read_slots(step[2:], i)
                reg = self._recipe_alloc(pool, out, slot_reg)
                builder.emit("ffloor", d=reg, a=a, guest_pc=instr.guest_pc)
            else:
                a, b = read_slots(step[2:], i)
                reg = self._recipe_alloc(pool, out, slot_reg)
                builder.emit(recipe_host[kind], d=reg, a=a, b=b,
                             guest_pc=instr.guest_pc)
        builder.emit("fmov", d=dst, a=slot_reg["res"],
                     guest_pc=instr.guest_pc)

    @staticmethod
    def _recipe_alloc(pool, name, slot_reg):
        if not pool:
            raise CodegenError(
                "trig recipe exceeded the reserved FP register pool")
        reg = pool.pop()
        slot_reg[name] = reg
        return reg

    # ------------------------------------------------------------------

    def _lower_control(self, builder, instr, assignment, entry_pc,
                       committed):
        op = instr.op
        attrs = instr.attrs

        def cond_reg():
            return self._int_src(builder, instr.srcs[0], assignment)

        def exit_stub(next_pc, extra=None):
            meta = {"next_pc": next_pc,
                    "guest_insns": attrs.get("guest_insns", 0)}
            if extra:
                meta.update(extra)
            return HostInstr("exit", guest_pc=instr.guest_pc, meta=meta)

        if op == "assert_true":
            builder.emit("assert_nz", a=cond_reg(), guest_pc=instr.guest_pc)
        elif op == "assert_false":
            builder.emit("assert_z", a=cond_reg(), guest_pc=instr.guest_pc)
        elif op == "side_exit_true":
            builder.emit_branch_to_stub(
                "bnez", cond_reg(), exit_stub(attrs["target_pc"]))
        elif op == "side_exit_false":
            builder.emit_branch_to_stub(
                "beqz", cond_reg(), exit_stub(attrs["target_pc"]))
        elif op == "guard_exit_false":
            builder.emit_branch_to_stub(
                "beqz", cond_reg(),
                exit_stub(attrs["target_pc"],
                          extra={"prefer_variant": "plain",
                                 "guest_insns": 0}))
        elif op in ("br_true", "br_false"):
            if attrs.get("loop_back"):
                builder.emit(
                    "commit", meta={"guest_insns": attrs["guest_insns"]},
                    guest_pc=instr.guest_pc)
                branch = "bnez" if op == "br_true" else "beqz"
                builder.emit(branch, a=cond_reg(), target=0,
                             guest_pc=instr.guest_pc)
                builder.emit("exit", guest_pc=instr.guest_pc,
                             meta={"next_pc": attrs["fall_pc"],
                                   "guest_insns": 0})
            else:
                branch = "bnez" if op == "br_true" else "beqz"
                builder.emit_branch_to_stub(
                    branch, cond_reg(), exit_stub(attrs["taken_pc"]))
                builder.emit("exit", guest_pc=instr.guest_pc,
                             meta={"next_pc": attrs["fall_pc"],
                                   "guest_insns": attrs.get(
                                       "guest_insns", 0)})
        elif op == "jmp":
            if attrs.get("loop_back"):
                builder.emit(
                    "commit", meta={"guest_insns": attrs["guest_insns"]},
                    guest_pc=instr.guest_pc)
                builder.emit("j", target=0, guest_pc=instr.guest_pc)
            else:
                builder.emit("exit", guest_pc=instr.guest_pc,
                             meta={"next_pc": attrs["target_pc"],
                                   "guest_insns": attrs.get(
                                       "guest_insns", 0)})
        elif op in ("jmp_ind", "exit_ind"):
            target = self._reg(instr.srcs[0], assignment)
            meta = {"guest_insns": attrs.get("guest_insns", 0)}
            if self.ibtc_enabled:
                builder.emit("ibtc", a=target, meta=meta,
                             guest_pc=instr.guest_pc)
            else:
                builder.emit("exit_ind", a=target, meta=meta,
                             guest_pc=instr.guest_pc)
        elif op == "exit":
            builder.emit("exit", guest_pc=instr.guest_pc,
                         meta={"next_pc": attrs["next_pc"],
                               "guest_insns": attrs.get("guest_insns", 0)})
        else:
            raise CodegenError(f"unhandled control op {op!r}")
