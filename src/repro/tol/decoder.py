"""Guest-ISA frontend: decodes guest instructions into IR.

Per the paper (§V-D), the frontend is the only guest-specific piece of the
TOL: everything from SSA to code generation is ISA independent.  The frontend
protocol is :class:`Frontend`; :class:`GisaFrontend` is the x86-like guest's
implementation.  Flag side effects become explicit IR defs so the optimizer
can eliminate dead flag computations ("DARCO writes to the flag registers
only if the written value is really going to be consumed").

Memory-effect ordering invariant: within one guest instruction's IR, all
memory accesses precede all architectural (register/flag) writes, so that a
page fault mid-instruction leaves architectural state untouched and the
instruction can simply be re-executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.guest.encoding import decode_instr
from repro.guest.isa import (
    FReg, GuestInstr, Imm, Mem, Reg, VReg, s32,
)
from repro.guest.memory import PagedMemory
from repro.tol.ir import (
    CF, Const, Flag, GFReg, GReg, GVReg, IRInstr, OF, SF, TmpAllocator, ZF,
)

_SCALE_LOG = {1: 0, 2: 1, 4: 2, 8: 3}


@dataclass
class DecodedInstr:
    """One guest instruction plus its IR expansion."""

    guest: GuestInstr
    ops: List[IRInstr] = field(default_factory=list)

    @property
    def interpreter_only(self) -> bool:
        return self.guest.spec.interpreter_only

    @property
    def is_branch(self) -> bool:
        return self.guest.is_branch


class Frontend:
    """Protocol for guest-ISA frontends (duck-typed)."""

    name = "abstract"

    def decode(self, memory: PagedMemory, pc: int,
               alloc: TmpAllocator) -> DecodedInstr:
        raise NotImplementedError

    def decode_compiled(self, memory: PagedMemory, pc: int):
        """Decode at ``pc`` and closure-compile the IR expansion (cached).

        Returns ``(decoded, fn)`` where ``fn`` is the compiled closure from
        :func:`repro.tol.ir_eval.compile_ops`, or ``None`` when the op list
        is empty or uncompilable (callers fall back to ``eval_ops``).  The
        cache is keyed by decode address, mirroring the decode cache: guest
        code is immutable for the simulated programs, so entries never need
        invalidation.  Works for any subclass that implements ``decode``.
        """
        cache = self.__dict__.setdefault("_compiled_cache", {})
        entry = cache.get(pc)
        if entry is None:
            from repro.tol.ir_eval import compile_ops
            decoded = self.decode(memory, pc)
            fn = compile_ops(decoded.ops) if decoded.ops else None
            entry = (decoded, fn)
            cache[pc] = entry
        return entry


class _Emitter:
    """Helper accumulating IR for one guest instruction."""

    def __init__(self, instr: GuestInstr, alloc: TmpAllocator):
        self.instr = instr
        self.alloc = alloc
        self.ops: List[IRInstr] = []
        self._deferred: List[IRInstr] = []  # arch writes, emitted last

    def emit(self, op, dst=None, srcs=(), imm=0, **attrs):
        instr = IRInstr(op=op, dst=dst, srcs=tuple(srcs), imm=imm,
                        attrs=dict(attrs), guest_pc=self.instr.addr)
        self.ops.append(instr)
        return dst

    def defer_arch_write(self, op, dst, srcs=(), imm=0):
        """Queue an architectural write to be emitted after memory effects."""
        self._deferred.append(IRInstr(
            op=op, dst=dst, srcs=tuple(srcs), imm=imm,
            guest_pc=self.instr.addr))

    def flush_deferred(self):
        self.ops.extend(self._deferred)
        self._deferred.clear()

    # -- operand helpers ----------------------------------------------------

    def addr_parts(self, mem: Mem):
        """Return (addr_operand, disp) computing base+index*scale."""
        base = GReg(Reg(mem.base).index) if mem.base is not None else None
        index = GReg(Reg(mem.index).index) if mem.index is not None else None
        disp = mem.disp
        if index is not None:
            scaled = index
            if mem.scale != 1:
                scaled = self.alloc.tmp()
                self.emit("shl", scaled, (index, Const(_SCALE_LOG[mem.scale])))
            if base is not None:
                addr = self.alloc.tmp()
                self.emit("add", addr, (base, scaled))
            else:
                addr = scaled
            return addr, disp
        if base is not None:
            return base, disp
        return Const(0), disp

    def read_int(self, operand):
        """Read an integer operand; memory operands emit a load."""
        if isinstance(operand, Reg):
            return GReg(operand.index)
        if isinstance(operand, Imm):
            return Const(operand.u32)
        if isinstance(operand, Mem):
            addr, disp = self.addr_parts(operand)
            dst = self.alloc.tmp()
            self.emit("ld32", dst, (addr,), imm=disp)
            return dst
        raise ValueError(f"bad integer operand {operand!r}")

    def write_int(self, operand, value):
        """Write an integer result; register writes are deferred."""
        if isinstance(operand, Reg):
            self.defer_arch_write("mov", GReg(operand.index), (value,))
        elif isinstance(operand, Mem):
            addr, disp = self.addr_parts(operand)
            self.emit("st32", None, (addr, value), imm=disp)
        else:
            raise ValueError(f"bad destination operand {operand!r}")

    # -- flag emission --------------------------------------------------------

    def flags_zs(self, result):
        zf = self.alloc.tmp()
        self.emit("cmpeq", zf, (result, Const(0)))
        self.defer_arch_write("mov", ZF, (zf,))
        sf = self.alloc.tmp()
        self.emit("shr", sf, (result, Const(31)))
        self.defer_arch_write("mov", SF, (sf,))

    def flags_add(self, a, b):
        cf = self.alloc.tmp()
        self.emit("addcf", cf, (a, b))
        self.defer_arch_write("mov", CF, (cf,))
        of = self.alloc.tmp()
        self.emit("addof", of, (a, b))
        self.defer_arch_write("mov", OF, (of,))

    def flags_sub(self, a, b):
        cf = self.alloc.tmp()
        self.emit("subcf", cf, (a, b))
        self.defer_arch_write("mov", CF, (cf,))
        of = self.alloc.tmp()
        self.emit("subof", of, (a, b))
        self.defer_arch_write("mov", OF, (of,))

    def flags_clear_cf_of(self):
        self.defer_arch_write("mov", CF, (Const(0),))
        self.defer_arch_write("mov", OF, (Const(0),))


class GisaFrontend(Frontend):
    """Decoder frontend for the x86-like guest ISA."""

    name = "gisa"

    def __init__(self):
        self._alloc_for_cache = TmpAllocator()
        self._cache: Dict[int, DecodedInstr] = {}

    def decode(self, memory: PagedMemory, pc: int,
               alloc: Optional[TmpAllocator] = None) -> DecodedInstr:
        """Decode the guest instruction at ``pc`` into IR.

        With ``alloc=None`` results are cached (interpreter use); with an
        explicit allocator, fresh region-unique temps are produced
        (translation use).
        """
        if alloc is None:
            cached = self._cache.get(pc)
            if cached is None:
                cached = self._decode(memory, pc, self._alloc_for_cache)
                self._cache[pc] = cached
            return cached
        return self._decode(memory, pc, alloc)

    def _decode(self, memory, pc, alloc) -> DecodedInstr:
        guest = decode_instr(memory.read_u8, pc)
        emitter = _Emitter(guest, alloc)
        handler = _IR_HANDLERS.get(guest.mnemonic)
        if handler is None:
            if not guest.spec.interpreter_only:
                raise ValueError(f"no IR handler for {guest.mnemonic}")
            return DecodedInstr(guest, [])
        handler(emitter, guest)
        emitter.flush_deferred()
        return DecodedInstr(guest, emitter.ops)


# ---------------------------------------------------------------------------
# Per-mnemonic IR emission.
# ---------------------------------------------------------------------------

_IR_HANDLERS = {}


def _ir(*mnemonics):
    def wrap(fn):
        for m in mnemonics:
            _IR_HANDLERS[m] = fn
        return fn
    return wrap


@_ir("NOP")
def _d_nop(e, g):
    pass


@_ir("MOV")
def _d_mov(e, g):
    dst, src = g.operands
    e.write_int(dst, e.read_int(src))


@_ir("LEA")
def _d_lea(e, g):
    dst, mem = g.operands
    addr, disp = e.addr_parts(mem)
    if disp:
        t = e.alloc.tmp()
        e.emit("add", t, (addr, Const(disp & 0xFFFFFFFF)))
        addr = t
    e.defer_arch_write("mov", GReg(dst.index), (addr,))


@_ir("XCHG")
def _d_xchg(e, g):
    a, b = g.operands
    t = e.alloc.tmp()
    e.emit("mov", t, (GReg(a.index),))
    e.defer_arch_write("mov", GReg(a.index), (GReg(b.index),))
    e.defer_arch_write("mov", GReg(b.index), (t,))


@_ir("PUSH")
def _d_push(e, g):
    value = e.read_int(g.operands[0])
    esp = GReg(4)
    new_sp = e.alloc.tmp()
    e.emit("sub", new_sp, (esp, Const(4)))
    e.emit("st32", None, (new_sp, value))
    e.defer_arch_write("mov", esp, (new_sp,))


@_ir("POP")
def _d_pop(e, g):
    reg = g.operands[0]
    esp = GReg(4)
    value = e.alloc.tmp()
    e.emit("ld32", value, (esp,))
    if reg.index == 4:  # POP ESP loads the value, no increment visible
        e.defer_arch_write("mov", esp, (value,))
        return
    new_sp = e.alloc.tmp()
    e.emit("add", new_sp, (esp, Const(4)))
    e.defer_arch_write("mov", GReg(reg.index), (value,))
    e.defer_arch_write("mov", esp, (new_sp,))


def _alu_binary(e, g, ir_op, flags):
    dst, src = g.operands
    a = e.read_int(dst)
    b = e.read_int(src)
    res = e.alloc.tmp()
    e.emit(ir_op, res, (a, b))
    e.flags_zs(res)
    if flags == "add":
        e.flags_add(a, b)
    elif flags == "sub":
        e.flags_sub(a, b)
    else:
        e.flags_clear_cf_of()
    e.write_int(dst, res)


@_ir("ADD")
def _d_add(e, g):
    _alu_binary(e, g, "add", "add")


@_ir("SUB")
def _d_sub(e, g):
    _alu_binary(e, g, "sub", "sub")


@_ir("AND")
def _d_and(e, g):
    _alu_binary(e, g, "and", "logic")


@_ir("OR")
def _d_or(e, g):
    _alu_binary(e, g, "or", "logic")


@_ir("XOR")
def _d_xor(e, g):
    _alu_binary(e, g, "xor", "logic")


@_ir("CMP")
def _d_cmp(e, g):
    dst, src = g.operands
    a = e.read_int(dst)
    b = e.read_int(src)
    res = e.alloc.tmp()
    e.emit("sub", res, (a, b))
    e.flags_zs(res)
    e.flags_sub(a, b)


@_ir("TEST")
def _d_test(e, g):
    a = e.read_int(g.operands[0])
    b = e.read_int(g.operands[1])
    res = e.alloc.tmp()
    e.emit("and", res, (a, b))
    e.flags_zs(res)
    e.flags_clear_cf_of()


@_ir("INC")
def _d_inc(e, g):
    dst = g.operands[0]
    a = e.read_int(dst)
    res = e.alloc.tmp()
    e.emit("add", res, (a, Const(1)))
    e.flags_zs(res)
    of = e.alloc.tmp()
    e.emit("cmpeq", of, (res, Const(0x80000000)))
    e.defer_arch_write("mov", OF, (of,))
    e.write_int(dst, res)


@_ir("DEC")
def _d_dec(e, g):
    dst = g.operands[0]
    a = e.read_int(dst)
    res = e.alloc.tmp()
    e.emit("sub", res, (a, Const(1)))
    e.flags_zs(res)
    of = e.alloc.tmp()
    e.emit("cmpeq", of, (a, Const(0x80000000)))
    e.defer_arch_write("mov", OF, (of,))
    e.write_int(dst, res)


@_ir("NEG")
def _d_neg(e, g):
    reg = g.operands[0]
    a = GReg(reg.index)
    res = e.alloc.tmp()
    e.emit("neg", res, (a,))
    e.flags_zs(res)
    cf = e.alloc.tmp()
    e.emit("cmpne", cf, (a, Const(0)))
    e.defer_arch_write("mov", CF, (cf,))
    of = e.alloc.tmp()
    e.emit("cmpeq", of, (a, Const(0x80000000)))
    e.defer_arch_write("mov", OF, (of,))
    e.defer_arch_write("mov", a, (res,))


@_ir("NOT")
def _d_not(e, g):
    reg = g.operands[0]
    a = GReg(reg.index)
    res = e.alloc.tmp()
    e.emit("not", res, (a,))
    e.defer_arch_write("mov", a, (res,))


@_ir("SHL", "SHR", "SAR")
def _d_shift(e, g):
    reg, imm = g.operands
    count = imm.u32 & 31
    if count == 0:
        return  # result and flags architecturally unchanged
    a = GReg(reg.index)
    ir_op = {"SHL": "shl", "SHR": "shr", "SAR": "sar"}[g.mnemonic]
    res = e.alloc.tmp()
    e.emit(ir_op, res, (a, Const(count)))
    e.flags_zs(res)
    # CF = last bit shifted out; OF defined 0 by the ISA.
    cf = e.alloc.tmp()
    if g.mnemonic == "SHL":
        t = e.alloc.tmp()
        e.emit("shr", t, (a, Const(32 - count)))
        e.emit("and", cf, (t, Const(1)))
    else:
        shifted = e.alloc.tmp()
        shift_op = "shr" if g.mnemonic == "SHR" else "sar"
        e.emit(shift_op, shifted, (a, Const(count - 1)))
        e.emit("and", cf, (shifted, Const(1)))
    e.defer_arch_write("mov", CF, (cf,))
    e.defer_arch_write("mov", OF, (Const(0),))
    e.defer_arch_write("mov", a, (res,))


@_ir("IMUL")
def _d_imul(e, g):
    dst, src = g.operands
    a = GReg(dst.index)
    b = e.read_int(src)
    res = e.alloc.tmp()
    e.emit("mul", res, (a, b))
    e.flags_zs(res)
    ovf = e.alloc.tmp()
    e.emit("mulof", ovf, (a, b))
    e.defer_arch_write("mov", CF, (ovf,))
    e.defer_arch_write("mov", OF, (ovf,))
    e.defer_arch_write("mov", a, (res,))


@_ir("IDIV")
def _d_idiv(e, g):
    divisor = e.read_int(g.operands[0])
    eax, edx = GReg(0), GReg(2)
    quotient = e.alloc.tmp()
    e.emit("div", quotient, (eax, divisor))
    remainder = e.alloc.tmp()
    e.emit("rem", remainder, (eax, divisor))
    e.flags_zs(quotient)
    e.flags_clear_cf_of()
    e.defer_arch_write("mov", eax, (quotient,))
    e.defer_arch_write("mov", edx, (remainder,))


# -- control flow -------------------------------------------------------------


@_ir("JMP")
def _d_jmp(e, g):
    e.emit("jmp", target_pc=g.operands[0].u32)


@_ir("JMPI")
def _d_jmpi(e, g):
    target = e.read_int(g.operands[0])
    e.emit("jmp_ind", srcs=(target,))


@_ir("CALL", "CALLI")
def _d_call(e, g):
    target = e.read_int(g.operands[0])
    esp = GReg(4)
    new_sp = e.alloc.tmp()
    e.emit("sub", new_sp, (esp, Const(4)))
    e.emit("st32", None, (new_sp, Const(g.next_addr)))
    e.defer_arch_write("mov", esp, (new_sp,))
    e.flush_deferred()
    if g.mnemonic == "CALL":
        e.emit("jmp", target_pc=g.operands[0].u32)
    else:
        e.emit("jmp_ind", srcs=(target,))


@_ir("RET")
def _d_ret(e, g):
    esp = GReg(4)
    target = e.alloc.tmp()
    e.emit("ld32", target, (esp,))
    new_sp = e.alloc.tmp()
    e.emit("add", new_sp, (esp, Const(4)))
    e.defer_arch_write("mov", esp, (new_sp,))
    e.flush_deferred()
    e.emit("jmp_ind", srcs=(target,))


#: Condition-code lowering: (flag expression builder).  Returns (cond
#: operand, branch op) where branch op is "br_true" or "br_false".
def _cond_operand(e, cc):
    if cc == "E":
        return ZF, "br_true"
    if cc == "NE":
        return ZF, "br_false"
    if cc in ("L", "GE"):
        t = e.alloc.tmp()
        e.emit("xor", t, (SF, OF))
        return t, "br_true" if cc == "L" else "br_false"
    if cc in ("LE", "G"):
        t = e.alloc.tmp()
        e.emit("xor", t, (SF, OF))
        t2 = e.alloc.tmp()
        e.emit("or", t2, (t, ZF))
        return t2, "br_true" if cc == "LE" else "br_false"
    if cc == "B":
        return CF, "br_true"
    if cc == "AE":
        return CF, "br_false"
    if cc in ("BE", "A"):
        t = e.alloc.tmp()
        e.emit("or", t, (CF, ZF))
        return t, "br_true" if cc == "BE" else "br_false"
    if cc == "S":
        return SF, "br_true"
    if cc == "NS":
        return SF, "br_false"
    raise ValueError(f"unknown condition code {cc}")


def _d_jcc(e, g):
    cc = g.mnemonic[1:]
    cond, br_op = _cond_operand(e, cc)
    e.emit(br_op, srcs=(cond,),
           taken_pc=g.operands[0].u32, fall_pc=g.next_addr)


for _cc in ("E", "NE", "L", "LE", "G", "GE", "B", "BE", "A", "AE", "S", "NS"):
    _IR_HANDLERS[f"J{_cc}"] = _d_jcc


# -- floating point -----------------------------------------------------------


@_ir("FLD")
def _d_fld(e, g):
    freg, mem = g.operands
    addr, disp = e.addr_parts(mem)
    t = e.alloc.ftmp()
    e.emit("ldf", t, (addr,), imm=disp)
    e.defer_arch_write("fmov", GFReg(freg.index), (t,))


@_ir("FST")
def _d_fst(e, g):
    mem, freg = g.operands
    addr, disp = e.addr_parts(mem)
    e.emit("stf", None, (addr, GFReg(freg.index)), imm=disp)


@_ir("FMOV")
def _d_fmov(e, g):
    dst, src = g.operands
    e.defer_arch_write("fmov", GFReg(dst.index), (GFReg(src.index),))


@_ir("FADD", "FSUB", "FMUL", "FDIV")
def _d_fbin(e, g):
    dst, src = g.operands
    ir_op = {"FADD": "fadd", "FSUB": "fsub",
             "FMUL": "fmul", "FDIV": "fdiv"}[g.mnemonic]
    res = e.alloc.ftmp()
    e.emit(ir_op, res, (GFReg(dst.index), GFReg(src.index)))
    e.defer_arch_write("fmov", GFReg(dst.index), (res,))


@_ir("FCMP")
def _d_fcmp(e, g):
    a, b = (GFReg(op.index) for op in g.operands)
    eq = e.alloc.tmp()
    e.emit("fcmpeq", eq, (a, b))
    lt = e.alloc.tmp()
    e.emit("fcmplt", lt, (a, b))
    un = e.alloc.tmp()
    e.emit("fcmpun", un, (a, b))
    zf = e.alloc.tmp()
    e.emit("or", zf, (eq, un))
    cf = e.alloc.tmp()
    e.emit("or", cf, (lt, un))
    e.defer_arch_write("mov", ZF, (zf,))
    e.defer_arch_write("mov", CF, (cf,))
    e.defer_arch_write("mov", SF, (Const(0),))
    e.defer_arch_write("mov", OF, (Const(0),))


@_ir("FSIN", "FCOS", "FSQRT", "FABS", "FNEG")
def _d_funary(e, g):
    freg = GFReg(g.operands[0].index)
    ir_op = {"FSIN": "fsin", "FCOS": "fcos", "FSQRT": "fsqrt",
             "FABS": "fabs", "FNEG": "fneg"}[g.mnemonic]
    res = e.alloc.ftmp()
    e.emit(ir_op, res, (freg,))
    e.defer_arch_write("fmov", freg, (res,))


@_ir("FLDI")
def _d_fldi(e, g):
    freg, imm = g.operands
    e.defer_arch_write(
        "fmov", GFReg(freg.index), (Const(float(s32(imm.u32))),))


@_ir("CVTIF")
def _d_cvtif(e, g):
    freg, reg = g.operands
    res = e.alloc.ftmp()
    e.emit("i2f", res, (GReg(reg.index),))
    e.defer_arch_write("fmov", GFReg(freg.index), (res,))


@_ir("CVTFI")
def _d_cvtfi(e, g):
    reg, freg = g.operands
    res = e.alloc.tmp()
    e.emit("f2i", res, (GFReg(freg.index),))
    e.defer_arch_write("mov", GReg(reg.index), (res,))


# -- vector --------------------------------------------------------------------


@_ir("VLD")
def _d_vld(e, g):
    vreg, mem = g.operands
    addr, disp = e.addr_parts(mem)
    t = e.alloc.vtmp()
    e.emit("ldv", t, (addr,), imm=disp)
    e.defer_arch_write("vmov", GVReg(vreg.index), (t,))


@_ir("VST")
def _d_vst(e, g):
    mem, vreg = g.operands
    addr, disp = e.addr_parts(mem)
    e.emit("stv", None, (addr, GVReg(vreg.index)), imm=disp)


@_ir("VADD", "VSUB", "VMUL")
def _d_vbin(e, g):
    dst, src = g.operands
    ir_op = {"VADD": "vadd", "VSUB": "vsub", "VMUL": "vmul"}[g.mnemonic]
    res = e.alloc.vtmp()
    e.emit(ir_op, res, (GVReg(dst.index), GVReg(src.index)))
    e.defer_arch_write("vmov", GVReg(dst.index), (res,))


@_ir("VSPLAT")
def _d_vsplat(e, g):
    vreg, reg = g.operands
    res = e.alloc.vtmp()
    e.emit("vsplat", res, (GReg(reg.index),))
    e.defer_arch_write("vmov", GVReg(vreg.index), (res,))


@_ir("VMOV")
def _d_vmov(e, g):
    dst, src = g.operands
    e.defer_arch_write("vmov", GVReg(dst.index), (GVReg(src.index),))
