"""The Translation Optimization Layer main loop (paper §V-B, Fig. 3).

Dispatch: look up the code cache; execute translated code when present;
otherwise interpret, profile, and promote hot code IM -> BBM -> SBM.
Handles chaining, IBTC fills, speculation failures (rollback + one
interpreted basic block for forward progress, demotion to multi-exit
superblocks past the failure limit) and surfaces synchronization events
(data requests, system calls, end of application) to the controller.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import costs
from repro.guest.memory import PagedMemory, PageFault
from repro.guest.state import GuestState
from repro.host.emulator import (
    EXIT_ASSERT, EXIT_PAGE_FAULT, EXIT_SPEC, EXIT_TOL, HostEmulator,
)
from repro.host.isa import CodeUnit, UNIT_MODE_BBM
from repro.tol.codecache import CodeCache
from repro.tol.config import TolConfig
from repro.tol.direct import compile_direct
from repro.tol.decoder import Frontend, GisaFrontend
from repro.tol.interp import END, Interpreter, OK, SYSCALL
from repro.tol.overhead import OverheadAccount
from repro.tol.profile import Profiler
from repro.tol.translate import Translator
from repro.telemetry import Telemetry
from repro.telemetry.collectors import register_tol_collectors
from repro.resilience.incidents import IncidentLog
from repro.resilience.quarantine import (
    LEVEL_BBM_ONLY, LEVEL_INTERPRET_ONLY, LEVEL_NAMES, LEVEL_NO_ASSERTS,
    TranslationQuarantine,
)

EVENT_SYSCALL = "syscall"
EVENT_END = "end"
EVENT_DATA_REQUEST = "data_request"
EVENT_PAUSE = "pause"


@dataclass
class TolEvent:
    """A synchronization event surfaced to the controller (paper §V-A)."""

    kind: str
    fault_addr: Optional[int] = None


@dataclass
class TolStats:
    assert_failures: int = 0
    spec_failures: int = 0
    demotions: int = 0
    chains_made: int = 0
    ibtc_fills: int = 0
    im_guest_insns: int = 0
    sb_blacklisted: int = 0
    watchdog_fires: int = 0
    direct_promotions: int = 0
    # -- TOL-path coverage counters (fuzzer coverage map; cheap dict
    # increments, deterministic across runs) ---------------------------
    #: Unit-exit arm taken, keyed ``<mode>:<arm>`` (arm one of
    #: page_fault / assert / spec / ibtc_miss / ibtc_fill / chain /
    #: chained_exit / exit / promote_req).
    exit_arms: Dict[str, int] = field(default_factory=dict)
    #: Translation shapes, keyed ``bb`` or ``sb:<units>u:<insn bucket>``.
    sb_shapes: Dict[str, int] = field(default_factory=dict)
    #: Direct-tier promotion outcomes, keyed promoted / promoted_cluster
    #: / rejected_bbm / rejected_quarantined / rejected_cap /
    #: rejected_uncompilable.
    direct_tier: Dict[str, int] = field(default_factory=dict)

    def bump(self, table: str, key: str) -> None:
        d = getattr(self, table)
        d[key] = d.get(key, 0) + 1


class Tol:
    """One co-designed component's software layer."""

    def __init__(self, state: GuestState, memory: PagedMemory,
                 config: Optional[TolConfig] = None,
                 frontend: Optional[Frontend] = None):
        self.state = state
        self.memory = memory
        self.config = config if config is not None else TolConfig()
        self.frontend = frontend if frontend is not None else GisaFrontend()
        self.host = HostEmulator(
            memory,
            alias_table_size=self.config.alias_table_size,
            ibtc_size=self.config.ibtc_size,
            fastpath=self.config.host_fastpath)
        self.host.profile_hook = self._profile_hook
        self.host.alias_serial_search = self.config.alias_serial_search
        # Direct (IR-less) tier: the host consults the hook once per
        # unit that crosses the entry threshold — including units only
        # ever entered through chains/IBTC hops, which TOL dispatch
        # never sees.
        self.host.direct_enable = self.config.direct_enable
        self.host.direct_promote_threshold = \
            self.config.direct_promote_threshold
        self.host.direct_promote_hook = self._direct_promote_unit
        if self.config.profiling_hw_assist:
            self.host.profile_inline_cost = 0
        self.interp = Interpreter(self.frontend, state, memory,
                                  fastpath=self.config.interp_fastpath)
        self.profiler = Profiler()
        self.cache = CodeCache(capacity_insns=self.config.code_cache_capacity)
        self.translator = Translator(self.frontend, self.config)
        self.overhead = OverheadAccount()
        self.stats = TolStats()
        #: Observability hub: metrics registry (scraped by pull-style
        #: collectors at snapshot boundaries) plus, in ``full`` mode, the
        #: span tracer.  Shared with the controller, the timing session
        #: and the sweep harness.
        self.telemetry = Telemetry(self.config.telemetry,
                                   self.config.telemetry_max_trace_events)
        register_tol_collectors(self.telemetry, self)
        self.translator.telemetry = self.telemetry
        #: Total guest instructions retired by the co-designed component.
        self.guest_icount = 0
        #: Host instructions spent executing cold code through the
        #: hardware guest decoder (dual-decoder mode; application stream).
        self._hw_decode_insns = 0.0
        #: Translation work deferred to a dedicated core (background
        #: translation mode; not part of the main core's stream).
        self.background_translation_insns = 0
        self._promote_request: Optional[int] = None
        self._sb_blacklist = set()
        #: ``(pc, variant)`` hint from the last unit exit: an unrolled
        #: loop's trip-count guard exits to its own entry pc requesting
        #: the plain body, and dispatch must honor that or it would hand
        #: back the unrolled unit forever (no chaining to shortcut it).
        self._exit_variant_hint: Optional[tuple] = None
        # -- resilience machinery ---------------------------------------
        #: Per-entry-PC escalation ladder for implicated translations.
        self.quarantine = TranslationQuarantine()
        #: Structured log of recovery events (shared with the controller).
        self.incidents = IncidentLog()
        # Keep the IBTC consistent with every cache removal (eviction,
        # flush, quarantine) instead of relying on call-site discipline.
        self.cache.on_remove = self.host.ibtc.invalidate_unit
        #: Recent units *entered* by the host (chained/IBTC hops included)
        #: — divergence implication and runaway diagnostics read this.
        self._dispatch_window = deque(
            maxlen=max(1, self.config.dispatch_window_size))
        self.host.unit_log = self._dispatch_window
        #: Consecutive event-free dispatches with zero guest retirement.
        self._stall_dispatches = 0
        #: fault-injection hook: called as ``install_hook(unit, variant)``
        #: after every code-cache installation.
        self.install_hook = None
        #: debug hook: called as ``probe(tol, unit_or_None)`` after every
        #: dispatch step (unit execution or interpreted basic block).
        #: Prefer :meth:`add_probe`/:meth:`remove_probe`, which fan out to
        #: any number of observers and detach cleanly; direct assignment
        #: still works for single exclusive owners (divergence repro).
        self.probe = None
        self._probes: List = []
        #: when set, dispatch pauses once guest_icount reaches this value
        #: (sampling methodology support).
        self.pause_at_icount: Optional[int] = None
        #: Invariant-checker pass (``tol/sanitize.py``): wraps the code
        #: cache, quarantine ladder and host checkpoint machinery so a
        #: corrupted dispatch structure fires at the corrupting step.
        #: None unless ``config.sanitize`` — zero cost when off.
        self.sanitizer = None
        if self.config.sanitize:
            from repro.tol.sanitize import TolSanitizer
            self.sanitizer = TolSanitizer(self)
        self.overhead.charge("others", costs.TOL_INIT)

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self) -> TolEvent:
        """Execute until a synchronization event occurs."""
        with self.telemetry.span("dispatch", "tol",
                                 icount=self.guest_icount):
            return self._run_dispatch_loop()

    def _run_dispatch_loop(self) -> TolEvent:
        watchdog = self.config.watchdog_enable
        limit = self.config.watchdog_stall_limit
        while True:
            before = self.guest_icount
            try:
                event = self._dispatch_once()
            except PageFault as fault:
                self.overhead.charge("others", costs.TOL_STATS_EVENT)
                self._stall_dispatches = 0
                return TolEvent(EVENT_DATA_REQUEST, fault_addr=fault.addr)
            if event is not None:
                self._stall_dispatches = 0
                return event
            # Forward-progress watchdog: a dispatch that produced neither
            # an event nor guest retirement is a stall; enough of them in
            # a row is a livelock (the PR-2 bug class), and the spinning
            # translation gets quarantined.
            if self.guest_icount != before:
                self._stall_dispatches = 0
            elif watchdog:
                self._stall_dispatches += 1
                if self._stall_dispatches >= limit:
                    self._watchdog_fire()

    def _dispatch_once(self) -> Optional[TolEvent]:
        if (self.pause_at_icount is not None
                and self.guest_icount >= self.pause_at_icount):
            return TolEvent(EVENT_PAUSE)
        pc = self.state.eip
        self.overhead.charge("others", costs.TOL_MAINLOOP)
        if (len(self.quarantine)
                and self.quarantine.level(pc) >= LEVEL_INTERPRET_ONLY):
            # Fully quarantined entry: the interpreter is the trusted
            # executor of last resort.
            event = self._interpret_bb()
            if self.probe is not None:
                self.probe(self, None)
            return event
        self.overhead.charge("cc_lookup", costs.CC_LOOKUP)
        hint, self._exit_variant_hint = self._exit_variant_hint, None
        if hint is not None and hint[0] == pc:
            unit = self.cache.lookup(pc, hint[1]) or self.cache.lookup(pc)
        else:
            unit = self.cache.lookup(pc)
        if unit is None:
            if (self.profiler.interpreted_count(pc)
                    >= self.config.bbm_threshold):
                unit = self._translate_bb(pc)
            if unit is None:
                event = self._interpret_bb()
                if self.probe is not None:
                    self.probe(self, None)
                return event
        if (unit.mode == UNIT_MODE_BBM
                and unit.exec_count >= self.config.sbm_threshold
                and self._may_promote(pc)):
            promoted = self._promote(pc)
            if promoted is not None:
                unit = promoted
        event = self._execute_unit(unit)
        if self.probe is not None:
            self.probe(self, unit)
        return event

    # ------------------------------------------------------------------
    # Interpretation (IM).
    # ------------------------------------------------------------------

    def _interpret_bb(self) -> Optional[TolEvent]:
        """Interpret one basic block (or up to a synchronization point)."""
        entry_pc = self.state.eip
        self.profiler.record_interpretation(entry_pc)
        dual = self.config.dual_decoder
        if not dual:
            self.overhead.charge("interpreter", costs.INTERP_PROFILE_BB)
        while True:
            result = self.interp.step()
            if result.status == SYSCALL:
                return TolEvent(EVENT_SYSCALL)
            if result.status == END:
                return TolEvent(EVENT_END)
            if result.completed:
                # Chunked string ops yield mid-instruction (completed is
                # False); the instruction retires only once.
                self.guest_icount += 1
                self.stats.im_guest_insns += 1
            if dual:
                # Denver-style: the hardware guest decoder executes cold
                # code at near-native cost in the application stream.
                if result.completed:
                    self._hw_decode_insns += self.config.dual_decode_cost
            else:
                self.overhead.charge(
                    "interpreter",
                    costs.INTERP_DISPATCH
                    + costs.INTERP_PER_IR_OP * result.ir_ops)
            if result.ended_bb:
                return None

    # ------------------------------------------------------------------
    # Translation and promotion.
    # ------------------------------------------------------------------

    def _translate_bb(self, pc: int) -> Optional[CodeUnit]:
        with self.telemetry.span("translate_bb", "translate",
                                 icount=self.guest_icount, pc=pc):
            translation = self.translator.translate_bb(self.memory, pc)
        if translation is None:
            return None
        self._charge_translation("bb_translator", translation.cost)
        self._observe_translation(translation)
        unit, variant = translation.units[0]
        self._install(unit, variant)
        return unit

    def _may_promote(self, pc: int) -> bool:
        """Superblock formation allowed for this entry PC?"""
        return (pc not in self._sb_blacklist
                and self.quarantine.level(pc) < LEVEL_BBM_ONLY)

    def _promote(self, pc: int) -> Optional[CodeUnit]:
        """Promote a hot BBM block to a superblock (SBM)."""
        with self.telemetry.span("translate_sb", "translate",
                                 icount=self.guest_icount, pc=pc):
            translation = self.translator.translate_superblock(
                self.memory, pc, self.profiler,
                demote=self.quarantine.level(pc) >= LEVEL_NO_ASSERTS)
        if translation is None:
            self._sb_blacklist.add(pc)
            self.stats.sb_blacklisted += 1
            return None
        self._charge_translation("sb_translator", translation.cost)
        self._observe_translation(translation, superblock=True)
        first_unit = None
        for unit, variant in translation.units:
            self._install(unit, variant)
            if first_unit is None:
                first_unit = unit
        return self.cache.lookup(pc)

    def _direct_promote_unit(self, unit: CodeUnit) -> None:
        """Direct-tier promotion policy (host callback, consulted once
        per unit past the entry threshold).  Always stamps
        ``unit._directprog`` so rejection is remembered.  BBM units stay
        on the IR path (their profiled exits drive SBM promotion), any
        quarantine rung blocks the tier, and per-PC re-promotions are
        capped so invalidation churn cannot thrash the compiler."""
        pc = unit.entry_pc
        if unit.mode == UNIT_MODE_BBM:
            self.stats.bump("direct_tier", "rejected_bbm")
            unit._directprog = None
            return
        if self.quarantine.level(pc) > 0:
            self.stats.bump("direct_tier", "rejected_quarantined")
            unit._directprog = None
            return
        if (self.profiler.direct_promotions[pc]
                >= self.config.direct_max_repromotions):
            self.stats.bump("direct_tier", "rejected_cap")
            unit._directprog = None
            return
        members = self._direct_cluster_members(unit)
        prog = compile_direct(unit, self.host, cluster=members)
        clustered = prog is not None and len(members) > 1
        if prog is None and len(members) > 1:
            # A member may be individually ineligible (oversize, odd
            # op); the entry unit alone can still make the tier.
            prog = compile_direct(unit, self.host)
        unit._directprog = prog
        if prog is None:
            self.stats.bump("direct_tier", "rejected_uncompilable")
            return
        self.stats.bump("direct_tier",
                        "promoted_cluster" if clustered else "promoted")
        # Compile the traced variant eagerly: a timing session may
        # attach its sink after the unit was promoted.
        unit._directprog_traced = compile_direct(unit, self.host,
                                                 traced=True)
        self.profiler.record_direct_promotion(pc)
        self.stats.direct_promotions += 1

    def _direct_cluster_members(self, unit: CodeUnit) -> List[CodeUnit]:
        """The unit plus the same-mode units its chain links reach
        (breadth-first over exit links, capped by
        ``direct_cluster_max``).  Hot loops spanning a few units — a
        body ping-ponging between two superblocks is the common case —
        then execute entirely inside one generated function.  Links
        are only followed, never created: a unit with no chains yet
        compiles alone, exactly as before."""
        members = [unit]
        limit = self.config.direct_cluster_max
        if limit <= 1:
            return members
        seen = {unit.uid}
        frontier = [unit]
        while frontier and len(members) < limit:
            for ins in frontier.pop(0).instrs:
                if ins.op != "exit":
                    continue
                link = ins.meta.get("link")
                if (link is None or link.uid in seen
                        or link.mode != unit.mode
                        or self.quarantine.level(link.entry_pc) > 0):
                    continue
                seen.add(link.uid)
                members.append(link)
                frontier.append(link)
                if len(members) >= limit:
                    break
        return members

    def _demote(self, pc: int) -> None:
        """Recreate a failing superblock without asserts/speculation."""
        with self.telemetry.span("translate_sb", "translate",
                                 icount=self.guest_icount, pc=pc,
                                 demote=True):
            translation = self.translator.translate_superblock(
                self.memory, pc, self.profiler, demote=True)
        if translation is None:
            # Could not rebuild (e.g. stale profile): drop the failing unit
            # so execution falls back to BBM/IM.
            unit = self.cache.lookup(pc)
            if unit is not None:
                self.cache.invalidate(unit)
            self._sb_blacklist.add(pc)
            return
        self._charge_translation("sb_translator", translation.cost)
        self._observe_translation(translation, superblock=True)
        # Remove a stale unrolled variant: the demoted translation replaces
        # only the keys it provides.
        old_unrolled = self.cache.lookup(pc, "unrolled")
        if old_unrolled is not None and all(
                v != "unrolled" for _, v in translation.units):
            self.cache.invalidate(old_unrolled)
        for unit, variant in translation.units:
            self._install(unit, variant)
        self.stats.demotions += 1
        self._sb_blacklist.add(pc)  # do not re-promote to assert mode

    def _observe_translation(self, translation, superblock: bool = False
                             ) -> None:
        """Cold-path histogram observations: translation work cost, and
        superblock sizes.  Per-translation, so deterministic across runs
        and safely outside the dispatch hot loop."""
        if superblock:
            insns = max(u.guest_insn_count for u, _ in translation.units)
            # Bucket by powers of two so the coverage key space stays
            # small and a *new shape class* (not a new exact size) is
            # what counts as fresh coverage.
            self.stats.bump("sb_shapes",
                            f"sb:{len(translation.units)}u:"
                            f"{1 << (insns - 1).bit_length()}")
        else:
            self.stats.bump("sb_shapes", "bb")
        if not self.telemetry.counters_on:
            return
        reg = self.telemetry.registry
        reg.histogram("tol.translation.cost").observe(translation.cost)
        if superblock:
            reg.histogram("tol.superblock.insns").observe(
                max(u.guest_insn_count for u, _ in translation.units))

    def _charge_translation(self, category: str, cost: int) -> None:
        """Charge translation work to the main stream, or to the
        dedicated translation core in background mode (paper SIII, "when
        and where to translate")."""
        if self.config.background_translation:
            self.background_translation_insns += cost
        else:
            self.overhead.charge(category, cost)

    def _install(self, unit: CodeUnit, variant: str) -> None:
        # The cache's on_remove hook keeps the IBTC consistent across the
        # replace-same-key and flush-on-full paths.
        self.cache.insert(unit, variant)
        if self.install_hook is not None:
            self.install_hook(unit, variant)

    # ------------------------------------------------------------------
    # Execution of translated code.
    # ------------------------------------------------------------------

    def _execute_unit(self, unit: CodeUnit) -> Optional[TolEvent]:
        self.overhead.charge("prologue", costs.PROLOGUE)
        self._promote_request = None
        before = self.host.guest_retired_total
        if self.pause_at_icount is not None:
            remaining = self.pause_at_icount - self.guest_icount
            self.host.pause_retired_at = before + max(0, remaining)
        else:
            self.host.pause_retired_at = None
        event = self.host.execute(unit, self.state)
        self.guest_icount += self.host.guest_retired_total - before
        self.overhead.charge("prologue", costs.EPILOGUE)

        if event.kind == EXIT_PAGE_FAULT:
            self.stats.bump("exit_arms", f"{unit.mode}:page_fault")
            self.overhead.charge("others", costs.TOL_STATS_EVENT)
            return TolEvent(EVENT_DATA_REQUEST, fault_addr=event.fault_addr)

        if event.kind in (EXIT_ASSERT, EXIT_SPEC):
            if event.kind == EXIT_ASSERT:
                self.stats.assert_failures += 1
                self.stats.bump("exit_arms", f"{unit.mode}:assert")
            else:
                self.stats.spec_failures += 1
                self.stats.bump("exit_arms", f"{unit.mode}:spec")
            failing = event.unit
            if (failing.assert_failures + failing.spec_failures
                    > self.config.assert_fail_limit):
                # A rollback storm is a resilience event: the unit's
                # speculation is not holding.  Record it and pin the entry
                # at the no-asserts rung so the ladder has a floor even if
                # the demoted unit is later evicted.
                self.incidents.record(
                    "rollback_storm", self.guest_icount,
                    detail={"pc": failing.entry_pc, "mode": failing.mode,
                            "assert_failures": failing.assert_failures,
                            "spec_failures": failing.spec_failures},
                    suspects=(failing.entry_pc,),
                    actions=(f"pc={failing.entry_pc:#x} demote",))
                self.telemetry.instant(
                    "rollback_storm", "resilience",
                    icount=self.guest_icount, pc=failing.entry_pc)
                self.quarantine.escalate(failing.entry_pc,
                                         floor=LEVEL_NO_ASSERTS)
                self._demote(failing.entry_pc)
            # Forward progress through the interpreter (paper §V-B1).
            return self._interpret_bb()

        # EXIT_TOL: handle promotion requests and linking.
        if self._promote_request is not None:
            pc = self._promote_request
            self._promote_request = None
            self.stats.bump("exit_arms", f"{unit.mode}:promote_req")
            if self._may_promote(pc):
                promoted_unit = self.cache.lookup(pc)
                if (promoted_unit is not None
                        and promoted_unit.mode == UNIT_MODE_BBM):
                    self._promote(pc)
        if event.exit_index is not None:
            variant = (event.unit.instrs[event.exit_index]
                       .meta.get("prefer_variant"))
            if variant is not None:
                self._exit_variant_hint = (event.next_pc, variant)
        if event.ibtc_miss:
            self.stats.bump("exit_arms", f"{unit.mode}:ibtc_miss")
            if self.config.ibtc_enable:
                target = self.cache.lookup(event.next_pc)
                if target is not None:
                    self.host.ibtc.insert(event.next_pc, target)
                    self.overhead.charge("chaining", costs.IBTC_FILL)
                    self.stats.ibtc_fills += 1
                    self.stats.bump("exit_arms", f"{unit.mode}:ibtc_fill")
        elif self.config.chaining_enable and event.exit_index is not None:
            self.stats.bump("exit_arms", f"{unit.mode}:exit")
            self._try_chain(event)
        else:
            self.stats.bump("exit_arms", f"{unit.mode}:exit")
        return None

    def _try_chain(self, event) -> None:
        exit_instr = event.unit.instrs[event.exit_index]
        if exit_instr.op != "exit" or exit_instr.meta.get("link") is not None:
            return
        self.overhead.charge("chaining", costs.CHAIN_ATTEMPT)
        variant = exit_instr.meta.get("prefer_variant")
        # A variant-preferring exit (an unrolled loop's trip-count guard)
        # must stay unchained until its preferred variant is cached:
        # falling back to the default lookup hands back the *unrolled*
        # unit — possibly this very unit — and the host follows chain
        # links inside one dispatch, so a self-linked zero-retirement
        # guard exit spins until fuel exhaustion (the dispatch-level
        # stall watchdog never runs mid-execute).  Happens whenever a
        # capacity flush evicts the plain variant (DESIGN.md §12).
        target = self.cache.lookup(event.next_pc, variant)
        if target is None:
            return
        if (target is event.unit
                and exit_instr.meta.get("guest_insns", 0) == 0):
            return  # a zero-progress self-link is a livelock by definition
        self.cache.chain(event.unit, event.exit_index, target)
        self.stats.chains_made += 1
        self.stats.bump("exit_arms",
                        f"{event.unit.mode}:chain_made")

    # ------------------------------------------------------------------
    # Resilience: quarantine, implication, watchdog.
    # ------------------------------------------------------------------

    def quarantine_pc(self, pc: int, floor: int = 0) -> List[str]:
        """Escalate ``pc`` one rung on the quarantine ladder, drop its
        cached translations (chains and IBTC references are unlinked by
        the cache) and return human-readable action strings."""
        level = self.quarantine.escalate(pc, floor)
        removed = self.cache.invalidate_pc(pc)
        if (self._exit_variant_hint is not None
                and self._exit_variant_hint[0] == pc):
            self._exit_variant_hint = None
        if level >= LEVEL_BBM_ONLY:
            self._sb_blacklist.add(pc)
        actions = [f"pc={pc:#x} level={LEVEL_NAMES[level]}"]
        if removed:
            actions.append(
                f"pc={pc:#x} invalidated={len(removed)} unit(s)")
        return actions

    def implicated_pcs(self) -> List[int]:
        """Unique entry PCs of recently entered units, oldest first.

        The host appends every unit *entered* — including chain-follow
        and IBTC hops that TOL dispatch never sees — so a divergence can
        implicate translations that only ran as chain targets."""
        seen: List[int] = []
        for unit in self._dispatch_window:
            if unit.entry_pc not in seen:
                seen.append(unit.entry_pc)
        return seen

    def recent_dispatches(self, n: int = 8) -> List[str]:
        """Last ``n`` units entered, as ``MODE@pc`` strings (diagnostics)."""
        return [f"{u.mode}@{u.entry_pc:#x}"
                for u in list(self._dispatch_window)[-n:]]

    def clear_dispatch_window(self) -> None:
        """Forget the implication window (called after a validation pass:
        units entered before a clean checkpoint are exonerated)."""
        self._dispatch_window.clear()

    def _watchdog_fire(self) -> None:
        pc = self.state.eip
        actions = self.quarantine_pc(pc)
        self.stats.watchdog_fires += 1
        self.telemetry.instant("watchdog_fire", "resilience",
                               icount=self.guest_icount, pc=pc)
        self.incidents.record(
            "livelock", self.guest_icount,
            detail={"pc": pc,
                    "stalled_dispatches": self._stall_dispatches,
                    "recent": self.recent_dispatches()},
            suspects=(pc,), actions=tuple(actions))
        self._stall_dispatches = 0

    # ------------------------------------------------------------------
    # Hooks and controller interface.
    # ------------------------------------------------------------------

    def add_probe(self, fn) -> None:
        """Register a dispatch probe.  Any number of probes can coexist;
        they fan out in registration order.  (The old idiom of each
        tracer wrapping ``tol.probe`` leaked its predecessor forever —
        probes registered here detach cleanly via :meth:`remove_probe`.)
        """
        self._probes.append(fn)
        self._rebuild_probe()

    def remove_probe(self, fn) -> None:
        """Detach a probe registered with :meth:`add_probe` (no-op when
        absent, so double-detach is safe)."""
        if fn in self._probes:
            self._probes.remove(fn)
        self._rebuild_probe()

    def _rebuild_probe(self) -> None:
        if not self._probes:
            self.probe = None
        elif len(self._probes) == 1:
            self.probe = self._probes[0]
        else:
            probes = tuple(self._probes)

            def fanout(tol, unit):
                for probe in probes:
                    probe(tol, unit)

            self.probe = fanout

    def _profile_hook(self, unit: CodeUnit, next_pc: int) -> bool:
        """BBM inline instrumentation: record the edge; request promotion
        when the execution counter crosses the SBM threshold."""
        self.profiler.record_edge(unit.entry_pc, next_pc)
        if (unit.exec_count >= self.config.sbm_threshold
                and self._may_promote(unit.entry_pc)):
            self._promote_request = unit.entry_pc
            return True
        return False

    def set_thresholds(self, bbm: int, sbm: int) -> None:
        """Adjust promotion thresholds at run time (threshold-downscaled
        warm-up, paper §VI-E)."""
        self.config.bbm_threshold = bbm
        self.config.sbm_threshold = sbm

    def complete_syscall(self) -> None:
        """Account for a syscall the x86 component executed on our behalf
        (the controller has already copied the resulting state)."""
        self.guest_icount += 1
        self.interp.icount += 1

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def mode_distribution(self) -> Dict[str, int]:
        """Dynamic guest instructions retired per execution mode
        (paper Fig. 4)."""
        retired = dict(self.host.guest_retired_by_mode)
        out = {
            "IM": self.stats.im_guest_insns,
            "BBM": retired.get("BBM", 0),
            # Demoted superblocks are still superblock-mode execution.
            "SBM": retired.get("SBM", 0) + retired.get("SBX", 0),
        }
        return out

    def emulation_cost_sbm(self) -> float:
        """Host instructions per guest instruction in SBM (paper Fig. 5)."""
        guest = (self.host.guest_retired_by_mode.get("SBM", 0)
                 + self.host.guest_retired_by_mode.get("SBX", 0))
        host = (self.host.host_committed_by_mode.get("SBM", 0)
                + self.host.host_committed_by_mode.get("SBX", 0))
        return host / guest if guest else 0.0

    @property
    def app_host_insns(self) -> int:
        """Host instructions executed as application code (code cache,
        plus the hardware guest decoder stream in dual-decoder mode)."""
        return self.host.host_insns_total + int(self._hw_decode_insns)

    @property
    def tol_overhead_insns(self) -> int:
        return self.overhead.total

    def overhead_fraction(self) -> float:
        """TOL overhead share of the dynamic host stream (paper Fig. 6)."""
        total = self.app_host_insns + self.tol_overhead_insns
        return self.tol_overhead_insns / total if total else 0.0
