"""TOL overhead accounting.

DARCO's TOL is compiled to the host ISA, so all its work appears as host
instructions; Figures 6 and 7 of the paper break the dynamic host
instruction stream into application instructions vs seven TOL overhead
categories.  Our TOL charges calibrated host-instruction costs
(:mod:`repro.costs`) into the same seven buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: The paper's seven overhead categories (Fig. 7, bottom-up).
CATEGORIES = (
    "interpreter",
    "bb_translator",
    "sb_translator",
    "prologue",
    "chaining",
    "cc_lookup",
    "others",
)


@dataclass
class OverheadAccount:
    """Host-instruction counters per overhead category."""

    counters: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in CATEGORIES})
    #: optional callback ``(category, host_insns)`` — the timing simulator
    #: hooks this to model TOL execution in the pipeline.
    on_charge: object = None

    def charge(self, category: str, host_insns: int) -> None:
        self.counters[category] += int(host_insns)
        if self.on_charge is not None:
            self.on_charge(category, int(host_insns))

    @property
    def total(self) -> int:
        return sum(self.counters.values())

    def breakdown(self) -> Dict[str, float]:
        """Fractions per category (of total TOL overhead).

        The telemetry registry mirrors these counters as the
        ``tol.overhead.*`` instruments; Fig. 7 can equivalently be
        regenerated from a :class:`repro.telemetry.TelemetrySnapshot`
        via :func:`repro.telemetry.overhead_breakdown_from_snapshot`,
        and the test suite holds the two computations to equality.
        """
        total = self.total
        if total == 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: self.counters[c] / total for c in CATEGORIES}

    def merged(self, other: "OverheadAccount") -> "OverheadAccount":
        merged = OverheadAccount()
        for c in CATEGORIES:
            merged.counters[c] = self.counters[c] + other.counters[c]
        return merged
