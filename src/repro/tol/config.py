"""TOL configuration.

Centralizes every threshold, limit and feature toggle so design-space
studies (the paper's purpose for DARCO) are plain parameter sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Mapping, Tuple


@dataclass
class TolConfig:
    # -- promotion thresholds (paper §V-B: 3-stage IM/BBM/SBM) --------------
    #: Interpreted executions of a basic block before BBM translation.
    bbm_threshold: int = 10
    #: BBM executions of a block before superblock creation.
    sbm_threshold: int = 60

    # -- superblock formation -------------------------------------------------
    #: Minimum edge bias to keep extending a superblock.
    bias_threshold: float = 0.7
    #: Minimum cumulative reaching probability.
    min_cum_prob: float = 0.4
    #: Maximum guest instructions in a superblock.
    max_sb_insns: int = 200
    #: Maximum basic blocks in a superblock.
    max_sb_bbs: int = 16
    #: Maximum guest instructions decoded into one basic block.
    max_bb_insns: int = 64
    #: Assert failures tolerated before a superblock is recreated without
    #: asserts (single-entry multiple-exit).
    assert_fail_limit: int = 8

    # -- loop unrolling --------------------------------------------------------
    unroll_enable: bool = True
    unroll_factor: int = 4
    #: Maximum body size (guest insns) eligible for unrolling.
    unroll_max_body: int = 24

    # -- speculation -----------------------------------------------------------
    #: Allow reordering may-alias memory pairs with hardware checks.
    mem_speculation: bool = True
    alias_table_size: int = 32

    # -- dispatch machinery ------------------------------------------------------
    chaining_enable: bool = True
    ibtc_enable: bool = True
    ibtc_size: int = 256
    #: Code cache capacity in host instructions (flush-on-full policy).
    code_cache_capacity: int = 4_000_000

    # -- optimization pipelines -----------------------------------------------
    bbm_passes: Tuple[str, ...] = ("constfold", "constprop", "dce")
    sbm_passes: Tuple[str, ...] = (
        "constfold", "constprop", "cse", "constprop", "dce")

    # -- design-choice mechanisms (paper SIII) --------------------------------
    #: Nvidia-Denver-style dual decoder: cold code executes through a
    #: hardware guest-ISA decoder at ~native cost instead of software
    #: interpretation, eliminating the startup delay at the price of extra
    #: hardware (paper SIII, "Startup Delay").
    dual_decoder: bool = False
    #: Host instructions per guest instruction through the hardware guest
    #: decoder (slightly above 1: no dynamic optimization applied).
    dual_decode_cost: float = 1.3
    #: Serial alias-table search: checking stores pay per-entry search
    #: cost instead of a parallel CAM lookup (paper SIII, "Speculative
    #: Execution": parallel search costs power/size, serial costs latency).
    alias_serial_search: bool = False
    #: Hardware-assisted profiling: BBM inline counter updates become free
    #: (paper SIII, "Profiling": "what hardware support can accelerate
    #: profiling").
    profiling_hw_assist: bool = False
    #: Defer translation work to a dedicated core: translation costs do
    #: not steal cycles from the application stream (paper SIII, "When and
    #: where to translate/optimize").
    background_translation: bool = False

    # -- simulator fast paths ---------------------------------------------------
    #: Closure-compile guest IR expansions per decode address so the IM
    #: interpreter executes one specialized closure per instruction instead
    #: of re-walking the op list (simulator wall-clock only; simulated
    #: costs and results are identical either way).
    interp_fastpath: bool = True
    #: Closure-compile straight-line register-op runs of translated code
    #: units (same contract: wall-clock only; under a timing trace the
    #: per-instruction records are delivered after each segment).
    host_fastpath: bool = True

    # -- direct (IR-less) translation tier ------------------------------------
    #: Compile units that stay hot past ``direct_promote_threshold``
    #: entries straight to generated Python (no per-instruction host
    #: emulation).  Same contract again: wall-clock only — every
    #: simulated quantity is bit-identical with the tier off.
    direct_enable: bool = True
    #: Unit entries (dispatches + chain/IBTC hops) before direct
    #: promotion; only non-BBM units at quarantine level 0 qualify.
    direct_promote_threshold: int = 200
    #: Times one entry PC may be direct-promoted across invalidations
    #: (quarantine/eviction churn guard).
    direct_max_repromotions: int = 8
    #: Units per direct-tier program: promotion follows existing chain
    #: links breadth-first and compiles up to this many same-mode units
    #: into one function, so a hot loop spanning a few superblocks runs
    #: without driver round-trips.  1 disables clustering.
    direct_cluster_max: int = 4

    # -- resilience ---------------------------------------------------------------
    #: What to do when validation against the authoritative x86 component
    #: fails (or synchronization is lost): ``strict`` raises on the first
    #: divergence (the seed behaviour, right for debugging the simulator
    #: itself); ``recover`` resyncs the co-designed state from the
    #: authoritative state, quarantines the implicated translations and
    #: continues (the default for sweeps and fault campaigns).
    recovery_mode: str = "strict"
    #: Controller event budget per run (pause/data-request/syscall events
    #: from the co-designed component before the run is declared runaway).
    event_budget: int = 10_000_000
    #: Forward-progress watchdog: detect dispatch loops that retire zero
    #: guest instructions (the PR-2 livelock class) and quarantine the
    #: spinning translation.
    watchdog_enable: bool = True
    #: Consecutive event-free, retirement-free dispatches before the
    #: watchdog fires.
    watchdog_stall_limit: int = 100
    #: Recent-dispatch window (host units entered, including chained and
    #: IBTC hops) kept for divergence implication and runaway diagnostics.
    dispatch_window_size: int = 64
    #: Invariant-checker pass (``tol/sanitize.py``): verify code-cache
    #: link integrity after every mutation, chain/IBTC target
    #: consistency, quarantine-ladder monotonicity and undo-log balance
    #: at rollback, so a corrupted dispatch structure fires a
    #: ``sanitizer_violation`` incident *at the corrupting step* instead
    #: of surfacing as an eventual state divergence.  Off by default
    #: (zero cost when off: nothing is wrapped); the fuzzer runs it hot.
    sanitize: bool = False

    # -- telemetry ----------------------------------------------------------------
    #: Observability mode: ``off`` (no snapshots, no tracing),
    #: ``counters`` (deterministic metrics snapshots scraped from
    #: component-native counters at run boundaries — guaranteed <5% KIPS
    #: overhead vs ``off`` by ``benchmarks/bench_fastpath.py``), or
    #: ``full`` (``counters`` plus the span tracer, exportable to
    #: Chrome trace-event JSON for Perfetto).
    telemetry: str = "counters"
    #: Hard cap on buffered trace events in ``full`` mode.
    telemetry_max_trace_events: int = 200_000

    # -- validation ---------------------------------------------------------------
    #: Compare emulated vs authoritative state every N synchronization
    #: events (1 = every syscall; 0 disables periodic comparison — the
    #: end-of-application comparison always runs).
    validate_every: int = 1
    #: Validation epoch in guest instructions: skip a due validation when
    #: fewer than this many guest instructions retired since the previous
    #: one (0 = validate on every due sync event, the seed behaviour).
    #: Amortizes validation cost in syscall-dense phases without weakening
    #: the authoritative-emulator contract — the end-of-application
    #: comparison always runs.
    validate_min_icount_gap: int = 0

    def with_overrides(self, overrides: Mapping[str, object]
                       ) -> "TolConfig":
        """A copy with ``overrides`` applied, coercing string values to
        each field's type (the ``--set key=value`` path of the CLI and
        the JSON config dict of the serve protocol share this parser).

        Raises :class:`ValueError` for an unknown field name.
        """
        valid = {f.name for f in fields(TolConfig)}
        coerced = {}
        for key, value in overrides.items():
            if key not in valid:
                raise ValueError(
                    f"unknown TolConfig field {key!r}; valid: "
                    f"{', '.join(sorted(valid))}")
            current = getattr(self, key)
            if not isinstance(value, str):
                # Native JSON value (serve protocol): adopt, but keep
                # tuple-typed fields tuples.
                coerced[key] = tuple(value) if isinstance(current, tuple) \
                    and isinstance(value, (list, tuple)) else value
            elif isinstance(current, bool):
                coerced[key] = value.lower() in ("1", "true", "yes", "on")
            elif isinstance(current, int):
                coerced[key] = int(value, 0)
            elif isinstance(current, float):
                coerced[key] = float(value)
            elif isinstance(current, tuple):
                coerced[key] = tuple(v for v in value.split(",") if v)
            else:
                coerced[key] = value
        return replace(self, **coerced)

    def scaled_thresholds(self, factor: float) -> "TolConfig":
        """A copy with promotion thresholds downscaled (warm-up
        methodology, paper §VI-E)."""
        return replace(
            self,
            bbm_threshold=max(1, int(self.bbm_threshold / factor)),
            sbm_threshold=max(1, int(self.sbm_threshold / factor)),
        )
