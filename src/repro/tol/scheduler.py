"""List instruction scheduler.

Conventional list scheduling over the DDG (paper §V-B3): ready ops are
picked by critical-path priority.  May-alias store→load edges are ignored
when memory speculation is enabled; pairs that actually end up reordered are
converted to speculative loads / checking stores, carrying their original
program position as the alias-table sequence number.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List

from repro.tol.ddg import DDG, build_ddg
from repro.tol.ir import IRInstr

_SPEC_LOAD = {"ld32": "sld32", "ldf": "sldf"}
_CHK_STORE = {"st32": "st32chk", "stf": "stfchk"}


@dataclass
class ScheduleResult:
    ops: List[IRInstr]
    #: number of load/store pairs converted to speculative form.
    speculated_pairs: int = 0
    reordered: bool = False


def list_schedule(ops: List[IRInstr],
                  allow_mem_speculation: bool = True) -> ScheduleResult:
    """Schedule a straight-line SSA body; returns reordered ops."""
    if len(ops) <= 1:
        return ScheduleResult(ops=list(ops))
    ddg = build_ddg(ops)
    soft = []
    for (s, l) in ddg.soft_edges:
        # Only pairs with speculative forms may be reordered (vector memory
        # ops have no spec variant, so their edges harden).
        speculatable = (allow_mem_speculation
                        and ops[l].op in _SPEC_LOAD
                        and ops[s].op in _CHK_STORE)
        if speculatable:
            soft.append((s, l))
        else:
            ddg.add_edge(s, l, 1)

    n = ddg.n
    remaining = list(ddg.preds_count)
    # Max-heap by priority, tie-broken by original index for determinism.
    ready = [(-ddg.priority[i], i) for i in range(n) if remaining[i] == 0]
    heapq.heapify(ready)
    order: List[int] = []
    position = [0] * n
    while ready:
        _, i = heapq.heappop(ready)
        position[i] = len(order)
        order.append(i)
        for (j, _lat) in ddg.succs[i]:
            remaining[j] -= 1
            if remaining[j] == 0:
                heapq.heappush(ready, (-ddg.priority[j], j))
    if len(order) != n:
        raise RuntimeError("DDG contains a cycle; scheduling impossible")

    # Convert reordered may-alias pairs to speculative form.
    spec_loads = set()
    chk_stores = set()
    for (store_idx, load_idx) in soft:
        if position[load_idx] < position[store_idx]:
            spec_loads.add(load_idx)
            chk_stores.add(store_idx)

    scheduled: List[IRInstr] = []
    for i in order:
        instr = ops[i]
        if i in spec_loads and instr.op in _SPEC_LOAD:
            attrs = dict(instr.attrs)
            attrs["seq"] = i
            instr = instr.with_changes(op=_SPEC_LOAD[instr.op], attrs=attrs)
        elif i in chk_stores and instr.op in _CHK_STORE:
            attrs = dict(instr.attrs)
            attrs["seq"] = i
            instr = instr.with_changes(op=_CHK_STORE[instr.op], attrs=attrs)
        scheduled.append(instr)

    return ScheduleResult(
        ops=scheduled,
        speculated_pairs=len(spec_loads),
        reordered=order != list(range(n)),
    )
