"""TOL interpreter (IM).

Interprets guest instructions one at a time by evaluating their IR expansion
(:mod:`repro.tol.ir_eval`), so the decoder frontend is exercised from the
first instruction.  Guarantees forward progress and acts as the safety net
for instructions excluded from translations (complex string operations) and
after speculation failures (paper §V-B1).

System calls and program end are *signalled*, not executed: only the x86
component interacts with the operating system.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.guest.isa import u32
from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.tol.decoder import DecodedInstr, Frontend
from repro.tol.ir_eval import FALLTHROUGH, eval_ops

OK = "ok"
SYSCALL = "syscall"
END = "end"


@dataclass
class StepResult:
    status: str
    #: IR operations evaluated (drives the interpretation cost model).
    ir_ops: int = 0
    #: True when the executed instruction ended a basic block.
    ended_bb: bool = False


class Interpreter:
    """Decode-to-IR interpreter over the emulated guest state."""

    def __init__(self, frontend: Frontend, state: GuestState,
                 memory: PagedMemory):
        self.frontend = frontend
        self.state = state
        self.memory = memory
        self.icount = 0
        self.ir_ops_evaluated = 0

    def current(self) -> DecodedInstr:
        """Decode (cached) the instruction at EIP; may raise PageFault."""
        return self.frontend.decode(self.memory, self.state.eip)

    def step(self) -> StepResult:
        """Interpret one guest instruction.

        Returns a signal instead of executing for SYSCALL (the controller
        synchronizes and lets the x86 component run it) and HLT.  Page
        faults propagate with architectural state untouched, so the
        instruction is simply retried once the page arrives.
        """
        decoded = self.current()
        mnemonic = decoded.guest.mnemonic
        if mnemonic == "SYSCALL":
            return StepResult(SYSCALL)
        if mnemonic == "HLT":
            return StepResult(END)
        if decoded.interpreter_only:
            elements = self._exec_string_op(decoded)
            self.state.eip = decoded.guest.next_addr
            self.icount += 1
            return StepResult(OK, ir_ops=elements * 3,
                              ended_bb=decoded.is_branch)
        outcome, target = eval_ops(decoded.ops, self.state, self.memory)
        if outcome == FALLTHROUGH:
            self.state.eip = decoded.guest.next_addr
        else:
            self.state.eip = u32(target)
        self.icount += 1
        self.ir_ops_evaluated += len(decoded.ops)
        return StepResult(OK, ir_ops=len(decoded.ops),
                          ended_bb=decoded.is_branch)

    def advance_past_syscall(self) -> None:
        """Move EIP past a SYSCALL after the controller has run it."""
        decoded = self.current()
        self.state.eip = decoded.guest.next_addr
        self.icount += 1

    # -- interpreter-native complex instructions -----------------------------

    def _exec_string_op(self, decoded: DecodedInstr) -> int:
        """Execute a REP string op; returns the number of elements moved.

        Per-element register updates make the operation restartable at any
        page fault, mirroring x86 semantics.
        """
        state, memory = self.state, self.memory
        mnemonic = decoded.guest.mnemonic
        elements = 0
        if mnemonic == "REP_MOVSD":
            while state.get("ECX") != 0:
                value = memory.read_u32(state.get("ESI"))
                memory.write_u32(state.get("EDI"), value)
                state.set("ESI", u32(state.get("ESI") + 4))
                state.set("EDI", u32(state.get("EDI") + 4))
                state.set("ECX", u32(state.get("ECX") - 1))
                elements += 1
        elif mnemonic == "REP_STOSD":
            while state.get("ECX") != 0:
                memory.write_u32(state.get("EDI"), state.get("EAX"))
                state.set("EDI", u32(state.get("EDI") + 4))
                state.set("ECX", u32(state.get("ECX") - 1))
                elements += 1
        else:
            raise ValueError(f"unexpected interpreter-only {mnemonic}")
        return elements
