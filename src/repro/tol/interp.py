"""TOL interpreter (IM).

Interprets guest instructions one at a time by evaluating their IR expansion
(:mod:`repro.tol.ir_eval`), so the decoder frontend is exercised from the
first instruction.  Guarantees forward progress and acts as the safety net
for instructions excluded from translations (complex string operations) and
after speculation failures (paper §V-B1).

The hot loop uses a closure-compiled fast path: the IR expansion of each
decode address is compiled once (:func:`repro.tol.ir_eval.compile_ops`) and
cached, so steady-state interpretation executes one specialized Python
closure per guest instruction instead of re-walking the op list.  IR-op
accounting (``ir_ops_evaluated``, per-step ``ir_ops``) is identical on both
paths — the fast path changes simulator wall-clock speed, never simulated
cost.

System calls and program end are *signalled*, not executed: only the x86
component interacts with the operating system.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.guest.isa import GPR_NAMES, u32
from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.tol.decoder import DecodedInstr, Frontend
from repro.tol.ir_eval import FALLTHROUGH, eval_ops

OK = "ok"
SYSCALL = "syscall"
END = "end"

_EAX = GPR_NAMES.index("EAX")
_ECX = GPR_NAMES.index("ECX")
_ESI = GPR_NAMES.index("ESI")
_EDI = GPR_NAMES.index("EDI")

#: Step-kind codes for the per-address fast cache.
_K_NORMAL = 0
_K_SYSCALL = 1
_K_END = 2
_K_STRING = 3


@dataclass
class StepResult:
    status: str
    #: IR operations evaluated (drives the interpretation cost model).
    ir_ops: int = 0
    #: True when the executed instruction ended a basic block.
    ended_bb: bool = False
    #: False when a chunked string operation yielded before finishing its
    #: element count; EIP still points at the instruction and the next
    #: step resumes it (per-element restartability).
    completed: bool = True


class Interpreter:
    """Decode-to-IR interpreter over the emulated guest state."""

    #: Elements a REP string op executes per step before yielding control
    #: (bounds the work of one step against corrupted counts, e.g. an ECX
    #: of 0xFFFFFFFF, while per-element register updates keep the op
    #: restartable).
    string_chunk_elements = 65536

    def __init__(self, frontend: Frontend, state: GuestState,
                 memory: PagedMemory, fastpath: bool = True):
        self.frontend = frontend
        self.state = state
        self.memory = memory
        self.fastpath = fastpath
        self.icount = 0
        self.ir_ops_evaluated = 0
        #: decode address -> (kind, decoded, closure_or_None, StepResult).
        self._fastcache = {}

    def current(self) -> DecodedInstr:
        """Decode (cached) the instruction at EIP; may raise PageFault."""
        return self.frontend.decode(self.memory, self.state.eip)

    def step(self) -> StepResult:
        """Interpret one guest instruction.

        Returns a signal instead of executing for SYSCALL (the controller
        synchronizes and lets the x86 component run it) and HLT.  Page
        faults propagate with architectural state untouched, so the
        instruction is simply retried once the page arrives.
        """
        state = self.state
        entry = self._fastcache.get(state.eip)
        if entry is None:
            entry = self._fill_cache(state.eip)
        kind, decoded, fn, result = entry
        if kind == _K_NORMAL:
            if fn is not None:
                outcome, target = fn(state, self.memory)
            else:
                outcome, target = eval_ops(decoded.ops, state, self.memory)
            if outcome == FALLTHROUGH:
                state.eip = decoded.guest.next_addr
            else:
                state.eip = u32(target)
            self.icount += 1
            self.ir_ops_evaluated += result.ir_ops
            return result
        if kind == _K_STRING:
            return self._step_string(decoded)
        return result  # SYSCALL / END signal (no state change)

    def _fill_cache(self, pc: int):
        """Decode + classify + closure-compile the instruction at ``pc``."""
        if self.fastpath:
            decoded, fn = self.frontend.decode_compiled(self.memory, pc)
        else:
            decoded = self.current()
            fn = None
        mnemonic = decoded.guest.mnemonic
        if mnemonic == "SYSCALL":
            entry = (_K_SYSCALL, decoded, None, StepResult(SYSCALL))
        elif mnemonic == "HLT":
            entry = (_K_END, decoded, None, StepResult(END))
        elif decoded.interpreter_only:
            entry = (_K_STRING, decoded, None, None)
        else:
            # The OK StepResult is immutable per decode address, so one
            # instance is reused across steps.
            entry = (_K_NORMAL, decoded, fn,
                     StepResult(OK, ir_ops=len(decoded.ops),
                                ended_bb=decoded.is_branch))
        self._fastcache[pc] = entry
        return entry

    def _step_string(self, decoded: DecodedInstr) -> StepResult:
        elements, done = self._exec_string_op(decoded)
        self.ir_ops_evaluated += elements * 3
        if done:
            self.state.eip = decoded.guest.next_addr
            self.icount += 1
        return StepResult(OK, ir_ops=elements * 3,
                          ended_bb=decoded.is_branch and done,
                          completed=done)

    def advance_past_syscall(self) -> int:
        """Move EIP past a SYSCALL after the controller has run it.

        Returns the IR ops accounted for the step (the SYSCALL expansion is
        empty, so normally 0) and keeps ``ir_ops_evaluated`` consistent
        with the per-step sums.
        """
        decoded = self.current()
        self.state.eip = decoded.guest.next_addr
        self.icount += 1
        ir_ops = len(decoded.ops)
        self.ir_ops_evaluated += ir_ops
        return ir_ops

    # -- interpreter-native complex instructions -----------------------------

    def _exec_string_op(self, decoded: DecodedInstr):
        """Execute up to one chunk of a REP string op.

        Returns ``(elements, done)``: the number of elements moved this
        chunk and whether the operation ran to completion (ECX == 0).
        Per-element register updates make the operation restartable at any
        page fault or chunk boundary, mirroring x86 semantics.
        """
        state, memory = self.state, self.memory
        mnemonic = decoded.guest.mnemonic
        gpr = state.gpr
        budget = self.string_chunk_elements
        elements = 0
        if mnemonic == "REP_MOVSD":
            while gpr[_ECX] != 0 and elements < budget:
                value = memory.read_u32(gpr[_ESI])
                memory.write_u32(gpr[_EDI], value)
                gpr[_ESI] = (gpr[_ESI] + 4) & 0xFFFFFFFF
                gpr[_EDI] = (gpr[_EDI] + 4) & 0xFFFFFFFF
                gpr[_ECX] = (gpr[_ECX] - 1) & 0xFFFFFFFF
                elements += 1
        elif mnemonic == "REP_STOSD":
            while gpr[_ECX] != 0 and elements < budget:
                memory.write_u32(gpr[_EDI], gpr[_EAX])
                gpr[_EDI] = (gpr[_EDI] + 4) & 0xFFFFFFFF
                gpr[_ECX] = (gpr[_ECX] - 1) & 0xFFFFFFFF
                elements += 1
        else:
            raise ValueError(f"unexpected interpreter-only {mnemonic}")
        return elements, gpr[_ECX] == 0
