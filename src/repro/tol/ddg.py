"""Data Dependence Graph construction with memory disambiguation.

Built over the (SSA) body of a superblock before instruction scheduling
(paper §V-B3).  True dependences come from SSA def-use chains; memory
dependences are classified by a syntactic disambiguator:

- ``no``   — provably disjoint accesses (same symbolic base, disjoint
  displacement ranges, or distinct constant addresses);
- ``must`` — provably overlapping;
- ``may``  — unknown.

``may``-alias store→load edges are *soft*: the scheduler may hoist the load
above the store, in which case the pair is converted to speculative memory
operations checked by the hardware alias table.  Anti (load→store) and
output (store→store) dependences are always hard — stores are never hoisted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.tol.ir import Const, IRInstr

_ACCESS_SIZE = {"ld32": 4, "sld32": 4, "st32": 4,
                "ldf": 8, "sldf": 8, "stf": 8,
                "ldv": 16, "stv": 16}

#: Latency estimates used for scheduling priority (host cycles).
OP_LATENCY = {
    "mul": 3, "mulof": 3, "div": 12, "rem": 12,
    "ld32": 3, "ldf": 3, "ldv": 4,
    "fadd": 4, "fsub": 4, "fmul": 4, "fdiv": 12, "fsqrt": 12,
    "fsin": 40, "fcos": 40, "ffloor": 4, "i2f": 4, "f2i": 4,
    "fcmpeq": 4, "fcmplt": 4, "fcmpun": 4,
    "vadd": 2, "vsub": 2, "vmul": 4,
}


def op_latency(instr: IRInstr) -> int:
    return OP_LATENCY.get(instr.op, 1)


def mem_access(instr: IRInstr) -> Optional[Tuple[object, int, int]]:
    """(base operand, displacement, size) for loads/stores, else None."""
    size = _ACCESS_SIZE.get(instr.op)
    if size is None:
        return None
    return instr.srcs[0], instr.imm, size


def alias_relation(a: IRInstr, b: IRInstr) -> str:
    """Classify two memory accesses: 'no' / 'must' / 'may'."""
    acc_a, acc_b = mem_access(a), mem_access(b)
    if acc_a is None or acc_b is None:
        raise ValueError("alias_relation needs two memory ops")
    base_a, disp_a, size_a = acc_a
    base_b, disp_b, size_b = acc_b
    if isinstance(base_a, Const) and isinstance(base_b, Const):
        lo_a, lo_b = base_a.value + disp_a, base_b.value + disp_b
        return _interval_relation(lo_a, size_a, lo_b, size_b)
    if base_a == base_b:
        return _interval_relation(disp_a, size_a, disp_b, size_b)
    return "may"


def _interval_relation(lo_a, size_a, lo_b, size_b) -> str:
    if lo_a + size_a <= lo_b or lo_b + size_b <= lo_a:
        return "no"
    return "must"


@dataclass
class DDG:
    """Dependence graph over op indices 0..n-1."""

    n: int
    #: hard edges: succs[i] = {(j, latency), ...}; j must not start before
    #: i finishes.
    succs: List[Set[Tuple[int, int]]] = field(default_factory=list)
    preds_count: List[int] = field(default_factory=list)
    #: soft (speculatable) store->load edges: (store_idx, load_idx).
    soft_edges: List[Tuple[int, int]] = field(default_factory=list)
    #: critical-path priority per node.
    priority: List[int] = field(default_factory=list)

    def add_edge(self, src: int, dst: int, latency: int) -> None:
        if (dst, latency) not in self.succs[src]:
            self.succs[src].add((dst, latency))
            self.preds_count[dst] += 1


def build_ddg(ops: List[IRInstr]) -> DDG:
    """Build the dependence graph for a straight-line SSA body."""
    n = len(ops)
    ddg = DDG(n=n, succs=[set() for _ in range(n)], preds_count=[0] * n)

    # True dependences: single-def temps (SSA).
    def_site: Dict[object, int] = {}
    for i, instr in enumerate(ops):
        for src in instr.srcs:
            producer = def_site.get(src)
            if producer is not None:
                ddg.add_edge(producer, i, op_latency(ops[producer]))
        if instr.dst is not None:
            # Output dependence on rare re-defs (non-SSA callers).
            prior = def_site.get(instr.dst)
            if prior is not None:
                ddg.add_edge(prior, i, 1)
            def_site[instr.dst] = i

    # The unroll guard is a *committing* exit: stores must not drift above
    # it, or a triggered guard would commit speculative memory state.
    for i, instr in enumerate(ops):
        if instr.op == "guard_exit_false":
            for j in range(i + 1, n):
                if ops[j].is_store:
                    ddg.add_edge(i, j, 1)

    # Memory dependences.
    mem_ops = [i for i, instr in enumerate(ops)
               if instr.is_load or instr.is_store]
    for a_pos, i in enumerate(mem_ops):
        a = ops[i]
        for j in mem_ops[a_pos + 1:]:
            b = ops[j]
            if a.is_load and b.is_load:
                continue
            relation = alias_relation(a, b)
            if relation == "no":
                continue
            if a.is_store and b.is_load and relation == "may":
                ddg.soft_edges.append((i, j))
            else:
                ddg.add_edge(i, j, 1)

    ddg.priority = _critical_path(ops, ddg)
    return ddg


def _critical_path(ops: List[IRInstr], ddg: DDG) -> List[int]:
    priority = [op_latency(instr) for instr in ops]
    for i in range(ddg.n - 1, -1, -1):
        lat = op_latency(ops[i])
        best = 0
        for (j, _edge_lat) in ddg.succs[i]:
            if priority[j] > best:
                best = priority[j]
        priority[i] = lat + best
    return priority
