"""The Translation Optimization Layer (TOL)."""

from repro.tol.config import TolConfig
from repro.tol.decoder import DecodedInstr, Frontend, GisaFrontend
from repro.tol.tol import (
    EVENT_DATA_REQUEST, EVENT_END, EVENT_SYSCALL, Tol, TolEvent,
)

__all__ = [
    "TolConfig", "DecodedInstr", "Frontend", "GisaFrontend",
    "EVENT_DATA_REQUEST", "EVENT_END", "EVENT_SYSCALL", "Tol", "TolEvent",
]
