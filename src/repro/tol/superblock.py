"""Superblock region selection and IR assembly (paper §V-B3).

A superblock starts at a hot basic block and follows the biased direction of
branches (edge profile gathered in BBM).  Region growth stops at: indirect
branches / calls / returns, unbiased branches, cumulative-probability
decay, size limits, revisited blocks, interpreter-only instructions, and
unavailable code pages.

Assembly modes:

- ``SBM`` (assert mode): interior branches become asserts — single-entry
  single-exit, maximally reorderable;
- ``SBX`` (exit mode, after repeated assert failures): interior branches
  become side exits — single-entry multiple-exit, conservatively optimized;
- loop superblocks: a single-block loop keeps its back-edge inside the unit;
  counted loops additionally get an unrolled variant guarded by a runtime
  trip-count check that falls back to the plain variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.guest.memory import PagedMemory, PageFault
from repro.tol.config import TolConfig
from repro.tol.decoder import DecodedInstr, Frontend
from repro.tol.ir import Const, GReg, IRInstr, TmpAllocator
from repro.tol.profile import Profiler

#: Terminators that end a superblock (paper condition 1).
_REGION_ENDERS = frozenset({"JMPI", "CALLI", "RET", "CALL"})


@dataclass
class RegionBB:
    """One basic block of a region."""

    entry_pc: int
    decoded: List[DecodedInstr]
    #: None when the block ends by running into an interpreter-only
    #: instruction or the size limit (fall-through exit).
    terminator: Optional[DecodedInstr]
    #: Address execution continues at if the region ends after this block.
    next_pc: int
    #: For interior conditional branches: was the taken direction followed?
    followed_taken: Optional[bool] = None

    @property
    def guest_insn_count(self) -> int:
        return len(self.decoded)


@dataclass
class Region:
    bbs: List[RegionBB]
    #: single-basic-block loop (terminator branches back to entry).
    is_loop: bool = False
    #: register counted down by the loop (DEC reg / JNE pattern), if any.
    counted_reg: Optional[int] = None

    @property
    def guest_insn_count(self) -> int:
        return sum(bb.guest_insn_count for bb in self.bbs)

    @property
    def entry_pc(self) -> int:
        return self.bbs[0].entry_pc


def decode_bb(frontend: Frontend, memory: PagedMemory, pc: int,
              alloc: TmpAllocator, max_insns: int) -> RegionBB:
    """Decode one basic block starting at ``pc``.

    Stops after a branch (inclusive) or before an interpreter-only
    instruction / a missing code page / the size limit (exclusive).
    """
    decoded: List[DecodedInstr] = []
    cur = pc
    while len(decoded) < max_insns:
        try:
            instr = frontend.decode(memory, cur, alloc)
        except PageFault:
            break
        if instr.interpreter_only:
            break
        decoded.append(instr)
        cur = instr.guest.next_addr
        if instr.is_branch:
            return RegionBB(entry_pc=pc, decoded=decoded,
                            terminator=instr, next_pc=cur)
    return RegionBB(entry_pc=pc, decoded=decoded, terminator=None,
                    next_pc=cur)


def detect_counted_loop(bb: RegionBB) -> Optional[int]:
    """Detect the ``DEC reg ... JNE head`` counted-loop idiom.

    Returns the countdown register index if the block's remaining trip
    count equals that register's value at block entry: the DEC must be the
    last flag writer before the JNE, and the register must not be modified
    anywhere else in the block.
    """
    term = bb.terminator
    if term is None or term.guest.mnemonic != "JNE":
        return None
    body = bb.decoded[:-1]
    dec_index = None
    for i, d in enumerate(body):
        if d.guest.spec.writes_flags:
            dec_index = i if d.guest.mnemonic == "DEC" else None
    if dec_index is None:
        return None
    dec = body[dec_index]
    operand = dec.guest.operands[0]
    if not hasattr(operand, "index") or not hasattr(operand, "name"):
        return None  # DEC on a memory operand
    reg = operand.index
    for i, d in enumerate(body):
        if i == dec_index:
            continue
        if _writes_gpr(d, reg):
            return None
    return reg


def _writes_gpr(decoded: DecodedInstr, reg_index: int) -> bool:
    for op in decoded.ops:
        if isinstance(op.dst, GReg) and op.dst.index == reg_index:
            return True
    return False


def build_region(frontend: Frontend, memory: PagedMemory, start_pc: int,
                 profiler: Profiler, config: TolConfig,
                 alloc: TmpAllocator) -> Optional[Region]:
    """Select a superblock region starting at ``start_pc``."""
    bbs: List[RegionBB] = []
    visited = {start_pc}
    cum_prob = 1.0
    total = 0
    pc = start_pc
    while True:
        bb = decode_bb(frontend, memory, pc, alloc, config.max_bb_insns)
        if not bb.decoded:
            break
        bbs.append(bb)
        total += bb.guest_insn_count
        term = bb.terminator
        if term is None:
            break  # fall-through exit (interpreter-only / size / page)
        mnemonic = term.guest.mnemonic
        if mnemonic in _REGION_ENDERS:
            break
        if mnemonic == "JMP":
            next_pc = term.guest.operands[0].u32
            followed_taken = True
        else:  # conditional branch: consult the edge profile
            successor, bias = profiler.biased_successor(bb.entry_pc)
            if successor is None or bias < config.bias_threshold:
                break
            cum_prob *= bias
            if cum_prob < config.min_cum_prob:
                break
            next_pc = successor
            followed_taken = successor == term.guest.operands[0].u32
            if not followed_taken and successor != term.guest.next_addr:
                break  # profile points somewhere unreachable; stale data
        if next_pc == start_pc and len(bbs) == 1 and mnemonic != "JMP" \
                and followed_taken:
            bb.followed_taken = True
            counted = detect_counted_loop(bb)
            return Region(bbs=bbs, is_loop=True, counted_reg=counted)
        if next_pc in visited:
            break
        if total >= config.max_sb_insns or len(bbs) >= config.max_sb_bbs:
            break
        bb.followed_taken = followed_taken
        bb.next_pc = next_pc
        visited.add(next_pc)
        pc = next_pc
    if not bbs or not bbs[0].decoded:
        return None
    return Region(bbs=bbs)


# ---------------------------------------------------------------------------
# IR assembly.
# ---------------------------------------------------------------------------


def _assert_for(br: IRInstr, followed_taken: bool) -> IRInstr:
    """Convert a conditional branch into the assert that speculation on
    ``followed_taken`` requires."""
    want_true = (br.op == "br_true") == followed_taken
    return br.with_changes(
        op="assert_true" if want_true else "assert_false", attrs={})


def _side_exit_for(br: IRInstr, followed_taken: bool,
                   guest_insns: int) -> IRInstr:
    """Convert a conditional branch into a side exit taken when the
    non-followed direction wins."""
    target = br.attrs["fall_pc"] if followed_taken else br.attrs["taken_pc"]
    exit_on_true = (br.op == "br_true") != followed_taken
    return br.with_changes(
        op="side_exit_true" if exit_on_true else "side_exit_false",
        attrs={"target_pc": target, "guest_insns": guest_insns})


def _with_guest_insns(instr: IRInstr, count: int) -> IRInstr:
    attrs = dict(instr.attrs)
    attrs["guest_insns"] = count
    return instr.with_changes(attrs=attrs)


@dataclass
class AssembledRegion:
    """Straight-line IR for a region, ready for the optimizer."""

    body: List[IRInstr]
    #: Final control op (already carrying guest_insns); None for loop
    #: regions where the caller appends the back-edge.
    terminator: Optional[IRInstr]
    guest_insn_count: int
    guest_bb_count: int


def assemble_region(region: Region, mode: str,
                    end_pc_hint: Optional[int] = None) -> AssembledRegion:
    """Flatten a (non-loop) region into straight-line IR.

    ``mode`` is "SBM" (asserts) or "SBX" (side exits).
    """
    body: List[IRInstr] = []
    count = 0
    last = len(region.bbs) - 1
    terminator: Optional[IRInstr] = None
    for i, bb in enumerate(region.bbs):
        for d in bb.decoded[:-1] if bb.terminator is not None \
                else bb.decoded:
            body.extend(d.ops)
            count += 1
        term = bb.terminator
        if term is None:
            if i != last:
                raise ValueError("fall-through block must end the region")
            terminator = IRInstr(op="exit", attrs={
                "next_pc": bb.next_pc, "guest_insns": count})
            break
        # The terminator's IR: condition/effect ops, then the control op.
        body.extend(term.ops[:-1])
        count += 1
        control = term.ops[-1]
        if i == last:
            terminator = _with_guest_insns(control, count)
        else:
            if control.op in ("br_true", "br_false"):
                if mode == "SBM":
                    body.append(_assert_for(control, bb.followed_taken))
                else:
                    body.append(_side_exit_for(
                        control, bb.followed_taken, count))
            elif control.op == "jmp":
                pass  # unconditional: falls through to the next block
            else:
                raise ValueError(
                    f"unexpected interior terminator {control.op!r}")
    return AssembledRegion(
        body=body, terminator=terminator, guest_insn_count=count,
        guest_bb_count=len(region.bbs))


def assemble_loop(region: Region, unroll: int = 1,
                  guard_alloc: Optional[TmpAllocator] = None
                  ) -> AssembledRegion:
    """Flatten a single-block loop region.

    ``unroll=1`` produces the plain variant: body + conditional back-edge.
    ``unroll>1`` produces the unrolled variant: a runtime trip-count guard,
    ``unroll`` copies of the body with interior back-edges removed, and an
    unconditional back-edge (legal because the guard proves at least
    ``unroll+1`` iterations remain).
    """
    bb = region.bbs[0]
    term = bb.terminator
    control = term.ops[-1]
    per_iter = bb.guest_insn_count
    body: List[IRInstr] = []

    if unroll == 1:
        for d in bb.decoded[:-1]:
            body.extend(d.ops)
        body.extend(term.ops[:-1])
        attrs = dict(control.attrs)
        attrs["loop_back"] = True
        attrs["guest_insns"] = per_iter
        # Back-edge goes to the unit head; fall-through leaves the loop.
        if attrs.get("taken_pc") == bb.entry_pc:
            pass
        else:  # loop continues on fall-through: flip the branch sense
            flipped = "br_false" if control.op == "br_true" else "br_true"
            attrs["fall_pc"] = attrs["taken_pc"]
            control = control.with_changes(op=flipped)
        terminator = control.with_changes(attrs=attrs)
        return AssembledRegion(
            body=body, terminator=terminator,
            guest_insn_count=per_iter, guest_bb_count=1)

    if region.counted_reg is None:
        raise ValueError("unrolled variant requires a counted loop")
    alloc = guard_alloc if guard_alloc is not None else TmpAllocator()
    cond = alloc.tmp()
    body.append(IRInstr(op="cmpltu", dst=cond,
                        srcs=(Const(unroll), GReg(region.counted_reg))))
    body.append(IRInstr(op="guard_exit_false", srcs=(cond,),
                        attrs={"target_pc": bb.entry_pc, "guest_insns": 0}))
    for _copy in range(unroll):
        for d in bb.decoded[:-1]:
            body.extend(d.ops)
        body.extend(term.ops[:-1])
    terminator = IRInstr(op="jmp", attrs={
        "target_pc": bb.entry_pc, "loop_back": True,
        "guest_insns": per_iter * unroll})
    return AssembledRegion(
        body=body, terminator=terminator,
        guest_insn_count=per_iter * unroll, guest_bb_count=1)
