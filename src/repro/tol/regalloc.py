"""Linear Scan register allocation (paper §V-B3).

Maps IR temps onto the host scratch register files.  Guest architectural
operands are pre-colored to their home registers (direct register mapping).

Two refinements beyond the textbook algorithm:

- **Home coalescing**: a temp whose value is written back to an
  architectural location H at region end is allocated directly to H's home
  register when provably safe (no entry-read of H after the temp's
  definition), turning the writeback into a removable self-move.  This is
  what keeps DARCO's emulation cost low.
- **Spilling** to the TOL-private data area (host addresses above
  ``TOL_AREA_BASE``), using reserved scratch registers for reload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.host.isa import (
    FIRST_SCRATCH_FREG, FIRST_SCRATCH_IREG, FIRST_SCRATCH_VREG,
    GUEST_FLAG_HOME, GUEST_FPR_HOME, GUEST_GPR_HOME, GUEST_VR_HOME,
    NUM_FREGS, NUM_IREGS,
)
from repro.tol.ir import (
    Const, FTmp, Flag, GFReg, GReg, GVReg, IRInstr, Tmp, VTmp, is_arch,
)

#: Host addresses at/above this are the TOL-private data area (spill slots),
#: invisible to the guest.
TOL_AREA_BASE = 0xF000_0000

# Reserved scratch registers (never given to the allocator).
INT_SPILL_SCRATCH = (13, 14)
INT_CONST_SCRATCH = 15
FP_SPILL_SCRATCH = (9, 10)
FP_CONST_SCRATCH = 11
#: f12..f15 plus f11 are reused by the trig-recipe expansion in codegen.
FP_RECIPE_POOL = (11, 12, 13, 14, 15)
VEC_SPILL_SCRATCH = (14, 15)

_INT_POOL = tuple(range(FIRST_SCRATCH_IREG, NUM_IREGS))
_FP_POOL = tuple(range(FIRST_SCRATCH_FREG, NUM_FREGS))
_VEC_POOL = tuple(range(FIRST_SCRATCH_VREG, 14))


def home_of(arch) -> int:
    """Host home register index of an architectural operand."""
    if isinstance(arch, GReg):
        return GUEST_GPR_HOME[arch.index]
    if isinstance(arch, Flag):
        return GUEST_FLAG_HOME[arch.index]
    if isinstance(arch, GFReg):
        return GUEST_FPR_HOME[arch.index]
    if isinstance(arch, GVReg):
        return GUEST_VR_HOME[arch.index]
    raise TypeError(f"not architectural: {arch!r}")


def _class_of(tmp) -> str:
    if isinstance(tmp, Tmp):
        return "int"
    if isinstance(tmp, FTmp):
        return "fp"
    if isinstance(tmp, VTmp):
        return "vec"
    raise TypeError(f"not a temp: {tmp!r}")


_ARCH_CLASS = {GReg: "int", Flag: "int", GFReg: "fp", GVReg: "vec"}


@dataclass
class AllocationResult:
    ops: List[IRInstr]
    #: temp -> host register index (same-class file implied).
    assignment: Dict[object, int]
    spilled: int = 0
    spill_slots_used: int = 0


@dataclass
class _Interval:
    tmp: object
    start: int
    end: int
    klass: str
    hint: Optional[int] = None


def allocate(ops: List[IRInstr]) -> AllocationResult:
    """Allocate temps in ``ops`` (a full region: body + writebacks +
    terminator); returns rewritten ops plus the assignment map."""
    intervals = _build_intervals(ops)
    hints = _home_hints(ops, intervals)
    assignment, spilled = _linear_scan(intervals, hints)
    if spilled:
        ops = _rewrite_spills(ops, assignment, spilled)
    return AllocationResult(
        ops=ops,
        assignment=assignment,
        spilled=len(spilled),
        spill_slots_used=len(spilled),
    )


def _build_intervals(ops) -> List[_Interval]:
    start: Dict[object, int] = {}
    end: Dict[object, int] = {}
    for i, instr in enumerate(ops):
        for src in instr.srcs:
            if isinstance(src, (Tmp, FTmp, VTmp)):
                end[src] = i
                start.setdefault(src, i)  # live-in temps (defensive)
        dst = instr.dst
        if isinstance(dst, (Tmp, FTmp, VTmp)):
            start.setdefault(dst, i)
            end.setdefault(dst, i)
    intervals = [
        _Interval(tmp=t, start=s, end=end[t], klass=_class_of(t))
        for t, s in start.items()
    ]
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals


#: Mid-region committing exits: guest state must be architecturally exact
#: when they trigger, so no home register may be written before them.
_MID_REGION_EXITS = frozenset(
    {"guard_exit_false", "side_exit_true", "side_exit_false"})


def _home_hints(ops, intervals) -> Dict[object, int]:
    """Temp -> home register hints from writeback moves, when safe."""
    last_entry_read: Dict[int, int] = {}  # (class, home) -> last read idx
    last_mid_exit = -1
    for i, instr in enumerate(ops):
        if instr.op in _MID_REGION_EXITS:
            last_mid_exit = i
        for src in instr.srcs:
            if is_arch(src):
                key = (_ARCH_CLASS[type(src)], home_of(src))
                last_entry_read[key] = i

    by_tmp = {iv.tmp: iv for iv in intervals}
    hints: Dict[object, int] = {}
    hinted_homes = set()
    for instr in ops:
        if (instr.op in ("mov", "fmov", "vmov") and instr.dst is not None
                and is_arch(instr.dst) and len(instr.srcs) == 1
                and isinstance(instr.srcs[0], (Tmp, FTmp, VTmp))):
            tmp = instr.srcs[0]
            interval = by_tmp.get(tmp)
            if interval is None or tmp in hints:
                continue
            klass = _ARCH_CLASS[type(instr.dst)]
            if klass != interval.klass:
                continue
            home = home_of(instr.dst)
            key = (klass, home)
            if (klass, home) in hinted_homes:
                continue
            # Entry reads of H strictly after the temp's definition would
            # observe the temp's value; a read in the defining instruction
            # itself is safe (host handlers read sources before writing).
            if last_entry_read.get(key, -1) > interval.start:
                continue
            if interval.start <= last_mid_exit:
                continue  # home write could precede a committing exit
            hints[tmp] = home
            hinted_homes.add((klass, home))
    return hints


def _linear_scan(intervals, hints) -> Tuple[Dict[object, int], List]:
    pools = {"int": list(_INT_POOL), "fp": list(_FP_POOL),
             "vec": list(_VEC_POOL)}
    # Home registers claimed by hints are tracked separately: a hinted home
    # is busy for its temp's entire interval.
    active: List[_Interval] = []
    assignment: Dict[object, int] = {}
    spilled: List[object] = []
    home_busy: Dict[Tuple[str, int], int] = {}  # (class, home) -> busy until

    for interval in intervals:
        # Expire finished intervals.
        still = []
        for act in active:
            if act.end < interval.start:
                reg = assignment.get(act.tmp)
                if reg is not None and act.tmp not in hints:
                    pools[act.klass].append(reg)
            else:
                still.append(act)
        active = still

        hint = hints.get(interval.tmp)
        if hint is not None:
            busy_until = home_busy.get((interval.klass, hint), -1)
            if busy_until < interval.start:
                assignment[interval.tmp] = hint
                home_busy[(interval.klass, hint)] = interval.end
                active.append(interval)
                continue
        pool = pools[interval.klass]
        if pool:
            assignment[interval.tmp] = pool.pop()
            active.append(interval)
        else:
            # Spill the active interval of this class ending last.
            candidates = [a for a in active
                          if a.klass == interval.klass
                          and a.tmp not in hints]
            victim = max(candidates, key=lambda a: a.end, default=None)
            if victim is not None and victim.end > interval.end:
                assignment[interval.tmp] = assignment.pop(victim.tmp)
                spilled.append(victim.tmp)
                active.remove(victim)
                active.append(interval)
            else:
                spilled.append(interval.tmp)
    return assignment, spilled


_SPILL_STORE = {"int": "st32", "fp": "stf", "vec": "stv"}
_SPILL_LOAD = {"int": "ld32", "fp": "ldf", "vec": "ldv"}


def _rewrite_spills(ops, assignment, spilled) -> List[IRInstr]:
    """Insert reload/store code for spilled temps.

    Each spilled temp gets a 16-byte slot in the TOL data area; uses reload
    through reserved scratch registers (pre-assigned fresh temps).
    """
    slots = {t: TOL_AREA_BASE + 16 * i for i, t in enumerate(spilled)}
    spill_set = set(spilled)
    scratch_seq = [0]

    def fresh_scratch(klass, position):
        # Alternate between the two reserved scratch regs per class.
        scratch_seq[0] += 1
        idx = position % 2
        if klass == "int":
            tmp = Tmp(-scratch_seq[0])
            assignment[tmp] = INT_SPILL_SCRATCH[idx]
        elif klass == "fp":
            tmp = FTmp(-scratch_seq[0])
            assignment[tmp] = FP_SPILL_SCRATCH[idx]
        else:
            tmp = VTmp(-scratch_seq[0])
            assignment[tmp] = VEC_SPILL_SCRATCH[idx]
        return tmp

    out: List[IRInstr] = []
    for instr in ops:
        new_srcs = list(instr.srcs)
        for pos, src in enumerate(instr.srcs):
            if src in spill_set:
                klass = _class_of(src)
                scratch = fresh_scratch(klass, pos)
                out.append(IRInstr(
                    op=_SPILL_LOAD[klass], dst=scratch,
                    srcs=(Const(slots[src]),)))
                new_srcs[pos] = scratch
        dst = instr.dst
        store_after = None
        if dst in spill_set:
            klass = _class_of(dst)
            scratch = fresh_scratch(klass, 0)
            store_after = IRInstr(
                op=_SPILL_STORE[klass], dst=None,
                srcs=(Const(slots[dst]), scratch))
            dst = scratch
        out.append(instr.with_changes(dst=dst, srcs=tuple(new_srcs)))
        if store_after is not None:
            out.append(store_after)
    return out
