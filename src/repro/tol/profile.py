"""Execution profiling.

IM profiles basic-block execution frequencies with software repetition
counters; BBM-translated code carries inline instrumentation that maintains
execution and edge counters (paper §V-B2).  The superblock builder consumes
the edge counters to follow biased branch directions.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Optional, Tuple


class Profiler:
    """Repetition and edge counters keyed by basic-block entry PC."""

    def __init__(self):
        self.bb_counts: Counter = Counter()
        #: edge_counts[bb_entry_pc][successor_pc] = executions
        self.edge_counts: Dict[int, Counter] = defaultdict(Counter)
        #: direct-tier promotions per entry PC (caps re-promotion churn
        #: after invalidations).
        self.direct_promotions: Counter = Counter()

    # -- IM profiling --------------------------------------------------------

    def record_interpretation(self, bb_entry_pc: int) -> int:
        """Count one interpreted execution; returns the new count."""
        self.bb_counts[bb_entry_pc] += 1
        return self.bb_counts[bb_entry_pc]

    def interpreted_count(self, bb_entry_pc: int) -> int:
        return self.bb_counts[bb_entry_pc]

    # -- BBM inline profiling ---------------------------------------------------

    def record_edge(self, bb_entry_pc: int, successor_pc: int) -> None:
        self.edge_counts[bb_entry_pc][successor_pc] += 1

    def biased_successor(
            self, bb_entry_pc: int) -> Tuple[Optional[int], float]:
        """(most likely successor, bias) or (None, 0.0) if unprofiled."""
        edges = self.edge_counts.get(bb_entry_pc)
        if not edges:
            return None, 0.0
        successor, hits = edges.most_common(1)[0]
        return successor, hits / sum(edges.values())

    # -- direct-tier promotion tracking -----------------------------------------

    def record_direct_promotion(self, entry_pc: int) -> int:
        """Count one direct-tier promotion; returns the new count."""
        self.direct_promotions[entry_pc] += 1
        return self.direct_promotions[entry_pc]

    def reset(self) -> None:
        self.bb_counts.clear()
        self.edge_counts.clear()
        self.direct_promotions.clear()
