"""IR evaluator.

Three users:

1. The TOL interpreter (IM) executes guest instructions by evaluating their
   IR expansion directly against the emulated guest state — so the decoder
   frontend is exercised (and validated against the authoritative emulator)
   from the very first interpreted instruction.
2. Differential tests evaluate a region's IR before and after an
   optimization pass to prove the pass semantics-preserving.
3. The debug toolchain replays a region at the IR level to pinpoint the
   stage at which a translation bug appeared (paper §V-D, debug toolchain).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.guest import semantics as sem
from repro.guest.isa import s32, u32
from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.tol.ir import (
    Const, FTmp, Flag, GFReg, GReg, GVReg, IRInstr, Tmp, VTmp,
)


class IRAssertFailure(Exception):
    """An assert_true/assert_false condition failed during IR evaluation."""

    def __init__(self, instr: IRInstr):
        super().__init__(f"assert failed: {instr!r}")
        self.instr = instr


class IREvalError(Exception):
    """Malformed IR reached the evaluator."""


#: Control outcomes returned by :func:`eval_ops`.
FALLTHROUGH = "fallthrough"
JUMP = "jump"          # (JUMP, target_pc)
EXIT = "exit"          # (EXIT, next_pc)


def eval_ops(ops: List[IRInstr], state: GuestState, memory: PagedMemory,
             env: Optional[Dict] = None) -> Tuple[str, Optional[int]]:
    """Evaluate a straight-line IR sequence against guest state.

    Returns a (outcome, pc) pair; ``pc`` is None for FALLTHROUGH.  ``env``
    holds temp values (a fresh one is created if not given).  Page faults
    propagate to the caller.
    """
    if env is None:
        env = {}

    def read(operand):
        if isinstance(operand, Tmp):
            return env[operand]
        if isinstance(operand, GReg):
            return state.gpr[operand.index]
        if isinstance(operand, Flag):
            return state.flags[operand.index]
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, FTmp):
            return env[operand]
        if isinstance(operand, GFReg):
            return state.fpr[operand.index]
        if isinstance(operand, VTmp):
            return env[operand]
        if isinstance(operand, GVReg):
            return state.vr[operand.index]
        raise IREvalError(f"unreadable operand {operand!r}")

    def write(operand, value):
        if isinstance(operand, (Tmp, FTmp, VTmp)):
            env[operand] = value
        elif isinstance(operand, GReg):
            state.gpr[operand.index] = u32(value)
        elif isinstance(operand, Flag):
            state.flags[operand.index] = 1 if value else 0
        elif isinstance(operand, GFReg):
            state.fpr[operand.index] = float(value)
        elif isinstance(operand, GVReg):
            state.vr[operand.index] = [u32(v) for v in value]
        else:
            raise IREvalError(f"unwritable operand {operand!r}")

    for instr in ops:
        op = instr.op
        fn = _EVAL.get(op)
        if fn is not None:
            srcs = [read(s) for s in instr.srcs]
            write(instr.dst, fn(*srcs))
            continue
        if op == "ld32":
            write(instr.dst,
                  memory.read_u32(u32(read(instr.srcs[0]) + instr.imm)))
        elif op == "st32":
            memory.write_u32(u32(read(instr.srcs[0]) + instr.imm),
                             u32(read(instr.srcs[1])))
        elif op == "ldf":
            write(instr.dst,
                  memory.read_f64(u32(read(instr.srcs[0]) + instr.imm)))
        elif op == "stf":
            memory.write_f64(u32(read(instr.srcs[0]) + instr.imm),
                             float(read(instr.srcs[1])))
        elif op == "ldv":
            write(instr.dst,
                  memory.read_vec(u32(read(instr.srcs[0]) + instr.imm)))
        elif op == "stv":
            memory.write_vec(u32(read(instr.srcs[0]) + instr.imm),
                             read(instr.srcs[1]))
        elif op in ("br_true", "br_false"):
            cond = read(instr.srcs[0])
            taken = bool(cond) if op == "br_true" else not cond
            return (JUMP, instr.attrs["taken_pc"] if taken
                    else instr.attrs["fall_pc"])
        elif op == "jmp":
            return (JUMP, instr.attrs["target_pc"])
        elif op == "jmp_ind":
            return (JUMP, u32(read(instr.srcs[0])))
        elif op == "assert_true":
            if not read(instr.srcs[0]):
                raise IRAssertFailure(instr)
        elif op == "assert_false":
            if read(instr.srcs[0]):
                raise IRAssertFailure(instr)
        elif op in ("side_exit_true", "side_exit_false", "guard_exit_false"):
            cond = read(instr.srcs[0])
            trigger = bool(cond) if op == "side_exit_true" else not cond
            if trigger:
                return (EXIT, instr.attrs["target_pc"])
        elif op == "exit":
            return (EXIT, instr.attrs["next_pc"])
        elif op == "exit_ind":
            return (EXIT, u32(read(instr.srcs[0])))
        else:
            raise IREvalError(f"unhandled IR op {op!r}")
    return (FALLTHROUGH, None)


# -- pure value ops ----------------------------------------------------------

_M32 = 0xFFFFFFFF

_EVAL = {
    "mov": lambda a: a,
    "add": lambda a, b: (a + b) & _M32,
    "sub": lambda a, b: (a - b) & _M32,
    "mul": lambda a, b: (s32(a) * s32(b)) & _M32,
    "div": lambda a, b: sem.idiv32(a, b)[0],
    "rem": lambda a, b: sem.idiv32(a, b)[1],
    "and": lambda a, b: (a & b) & _M32,
    "or": lambda a, b: (a | b) & _M32,
    "xor": lambda a, b: (a ^ b) & _M32,
    "shl": lambda a, b: (a << (b & 31)) & _M32,
    "shr": lambda a, b: u32(a) >> (b & 31),
    "sar": lambda a, b: u32(s32(a) >> (b & 31)),
    "not": lambda a: (~a) & _M32,
    "neg": lambda a: (-a) & _M32,
    "cmpeq": lambda a, b: int(u32(a) == u32(b)),
    "cmpne": lambda a, b: int(u32(a) != u32(b)),
    "cmplts": lambda a, b: int(s32(a) < s32(b)),
    "cmpltu": lambda a, b: int(u32(a) < u32(b)),
    "cmples": lambda a, b: int(s32(a) <= s32(b)),
    "cmpleu": lambda a, b: int(u32(a) <= u32(b)),
    "addcf": lambda a, b: int(((a + b) & _M32) < u32(a)),
    "addof": lambda a, b: ((~(a ^ b)) & (a ^ ((a + b) & _M32))) >> 31 & 1,
    "subcf": lambda a, b: int(u32(a) < u32(b)),
    "subof": lambda a, b: ((a ^ b) & (a ^ ((a - b) & _M32))) >> 31 & 1,
    "mulof": lambda a, b: int(s32(a) * s32(b) != s32(u32(s32(a) * s32(b)))),
    "fmov": lambda a: float(a),
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": sem.fdiv64,
    "fneg": lambda a: -a,
    "fabs": lambda a: abs(a),
    "fsqrt": sem.gisa_sqrt,
    "ffloor": lambda a: float(math.floor(a)),
    "fsin": sem.gisa_sin,
    "fcos": sem.gisa_cos,
    "i2f": lambda a: float(s32(a)),
    "f2i": sem.ftrunc32,
    "fcmpeq": lambda a, b: int(a == b),
    "fcmplt": lambda a, b: int(a < b),
    "fcmpun": lambda a, b: int(a != a or b != b),
    "vmov": lambda a: list(a),
    "vadd": lambda a, b: [(x + y) & _M32 for x, y in zip(a, b)],
    "vsub": lambda a, b: [(x - y) & _M32 for x, y in zip(a, b)],
    "vmul": lambda a, b: [(s32(x) * s32(y)) & _M32 for x, y in zip(a, b)],
    "vsplat": lambda a: [u32(a)] * 4,
}
