"""IR evaluator.

Three users:

1. The TOL interpreter (IM) executes guest instructions by evaluating their
   IR expansion directly against the emulated guest state — so the decoder
   frontend is exercised (and validated against the authoritative emulator)
   from the very first interpreted instruction.
2. Differential tests evaluate a region's IR before and after an
   optimization pass to prove the pass semantics-preserving.
3. The debug toolchain replays a region at the IR level to pinpoint the
   stage at which a translation bug appeared (paper §V-D, debug toolchain).

Two execution strategies share one contract:

- :func:`eval_ops` walks the op list interpretively (reference semantics);
- :func:`compile_ops` translates an op list once into a single Python
  closure (specialized on opcodes and operands, temps resolved to locals)
  that the interpreter caches per decode address.  The closure returns the
  same ``(outcome, pc)`` pairs as :func:`eval_ops` and preserves the
  memory-before-architectural-write ordering, so page faults mid-closure
  leave architectural state untouched exactly like the interpretive path.
  Ops the compiler does not know are reported by returning ``None`` and the
  caller falls back to :func:`eval_ops`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.guest import semantics as sem
from repro.guest.isa import s32, u32
from repro.guest.memory import PagedMemory
from repro.guest.state import GuestState
from repro.tol.ir import (
    Const, FTmp, Flag, GFReg, GReg, GVReg, IRInstr, Tmp, VTmp,
)


class IRAssertFailure(Exception):
    """An assert_true/assert_false condition failed during IR evaluation."""

    def __init__(self, instr: IRInstr):
        super().__init__(f"assert failed: {instr!r}")
        self.instr = instr


class IREvalError(Exception):
    """Malformed IR reached the evaluator."""


#: Control outcomes returned by :func:`eval_ops`.
FALLTHROUGH = "fallthrough"
JUMP = "jump"          # (JUMP, target_pc)
EXIT = "exit"          # (EXIT, next_pc)


def eval_ops(ops: List[IRInstr], state: GuestState, memory: PagedMemory,
             env: Optional[Dict] = None) -> Tuple[str, Optional[int]]:
    """Evaluate a straight-line IR sequence against guest state.

    Returns a (outcome, pc) pair; ``pc`` is None for FALLTHROUGH.  ``env``
    holds temp values (a fresh one is created if not given).  Page faults
    propagate to the caller.
    """
    if env is None:
        env = {}

    def read(operand):
        if isinstance(operand, Tmp):
            return env[operand]
        if isinstance(operand, GReg):
            return state.gpr[operand.index]
        if isinstance(operand, Flag):
            return state.flags[operand.index]
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, FTmp):
            return env[operand]
        if isinstance(operand, GFReg):
            return state.fpr[operand.index]
        if isinstance(operand, VTmp):
            return env[operand]
        if isinstance(operand, GVReg):
            return state.vr[operand.index]
        raise IREvalError(f"unreadable operand {operand!r}")

    def write(operand, value):
        if isinstance(operand, (Tmp, FTmp, VTmp)):
            env[operand] = value
        elif isinstance(operand, GReg):
            state.gpr[operand.index] = u32(value)
        elif isinstance(operand, Flag):
            state.flags[operand.index] = 1 if value else 0
        elif isinstance(operand, GFReg):
            state.fpr[operand.index] = float(value)
        elif isinstance(operand, GVReg):
            state.vr[operand.index] = [u32(v) for v in value]
        else:
            raise IREvalError(f"unwritable operand {operand!r}")

    for instr in ops:
        op = instr.op
        fn = _EVAL.get(op)
        if fn is not None:
            srcs = [read(s) for s in instr.srcs]
            write(instr.dst, fn(*srcs))
            continue
        if op == "ld32":
            write(instr.dst,
                  memory.read_u32(u32(read(instr.srcs[0]) + instr.imm)))
        elif op == "st32":
            memory.write_u32(u32(read(instr.srcs[0]) + instr.imm),
                             u32(read(instr.srcs[1])))
        elif op == "ldf":
            write(instr.dst,
                  memory.read_f64(u32(read(instr.srcs[0]) + instr.imm)))
        elif op == "stf":
            memory.write_f64(u32(read(instr.srcs[0]) + instr.imm),
                             float(read(instr.srcs[1])))
        elif op == "ldv":
            write(instr.dst,
                  memory.read_vec(u32(read(instr.srcs[0]) + instr.imm)))
        elif op == "stv":
            memory.write_vec(u32(read(instr.srcs[0]) + instr.imm),
                             read(instr.srcs[1]))
        elif op in ("br_true", "br_false"):
            cond = read(instr.srcs[0])
            taken = bool(cond) if op == "br_true" else not cond
            return (JUMP, instr.attrs["taken_pc"] if taken
                    else instr.attrs["fall_pc"])
        elif op == "jmp":
            return (JUMP, instr.attrs["target_pc"])
        elif op == "jmp_ind":
            return (JUMP, u32(read(instr.srcs[0])))
        elif op == "assert_true":
            if not read(instr.srcs[0]):
                raise IRAssertFailure(instr)
        elif op == "assert_false":
            if read(instr.srcs[0]):
                raise IRAssertFailure(instr)
        elif op in ("side_exit_true", "side_exit_false", "guard_exit_false"):
            cond = read(instr.srcs[0])
            trigger = bool(cond) if op == "side_exit_true" else not cond
            if trigger:
                return (EXIT, instr.attrs["target_pc"])
        elif op == "exit":
            return (EXIT, instr.attrs["next_pc"])
        elif op == "exit_ind":
            return (EXIT, u32(read(instr.srcs[0])))
        else:
            raise IREvalError(f"unhandled IR op {op!r}")
    return (FALLTHROUGH, None)


# -- pure value ops ----------------------------------------------------------

_M32 = 0xFFFFFFFF

_EVAL = {
    "mov": lambda a: a,
    "add": lambda a, b: (a + b) & _M32,
    "sub": lambda a, b: (a - b) & _M32,
    "mul": lambda a, b: (s32(a) * s32(b)) & _M32,
    "div": lambda a, b: sem.idiv32(a, b)[0],
    "rem": lambda a, b: sem.idiv32(a, b)[1],
    "and": lambda a, b: (a & b) & _M32,
    "or": lambda a, b: (a | b) & _M32,
    "xor": lambda a, b: (a ^ b) & _M32,
    "shl": lambda a, b: (a << (b & 31)) & _M32,
    "shr": lambda a, b: u32(a) >> (b & 31),
    "sar": lambda a, b: u32(s32(a) >> (b & 31)),
    "not": lambda a: (~a) & _M32,
    "neg": lambda a: (-a) & _M32,
    "cmpeq": lambda a, b: int(u32(a) == u32(b)),
    "cmpne": lambda a, b: int(u32(a) != u32(b)),
    "cmplts": lambda a, b: int(s32(a) < s32(b)),
    "cmpltu": lambda a, b: int(u32(a) < u32(b)),
    "cmples": lambda a, b: int(s32(a) <= s32(b)),
    "cmpleu": lambda a, b: int(u32(a) <= u32(b)),
    "addcf": lambda a, b: int(((a + b) & _M32) < u32(a)),
    "addof": lambda a, b: ((~(a ^ b)) & (a ^ ((a + b) & _M32))) >> 31 & 1,
    "subcf": lambda a, b: int(u32(a) < u32(b)),
    "subof": lambda a, b: ((a ^ b) & (a ^ ((a - b) & _M32))) >> 31 & 1,
    "mulof": lambda a, b: int(s32(a) * s32(b) != s32(u32(s32(a) * s32(b)))),
    "fmov": lambda a: float(a),
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": sem.fdiv64,
    "fneg": lambda a: -a,
    "fabs": lambda a: abs(a),
    "fsqrt": sem.gisa_sqrt,
    "ffloor": lambda a: float(math.floor(a)),
    "fsin": sem.gisa_sin,
    "fcos": sem.gisa_cos,
    "i2f": lambda a: float(s32(a)),
    "f2i": sem.ftrunc32,
    "fcmpeq": lambda a, b: int(a == b),
    "fcmplt": lambda a, b: int(a < b),
    "fcmpun": lambda a, b: int(a != a or b != b),
    "vmov": lambda a: list(a),
    "vadd": lambda a, b: [(x + y) & _M32 for x, y in zip(a, b)],
    "vsub": lambda a, b: [(x - y) & _M32 for x, y in zip(a, b)],
    "vmul": lambda a, b: [(s32(x) * s32(y)) & _M32 for x, y in zip(a, b)],
    "vsplat": lambda a: [u32(a)] * 4,
}


# ---------------------------------------------------------------------------
# Closure compilation (the hot-loop fast path).
#
# Each template must compute exactly what the corresponding _EVAL lambda (or
# eval_ops special case) computes; the differential tests in
# tests/test_fastpath.py hold the two paths to instruction-level equality.
# Source operand expressions are pure (a local, a list index or a literal),
# so templates may mention an operand more than once.
# ---------------------------------------------------------------------------


class _Unsupported(Exception):
    """Op list contains something compile_ops does not handle."""


#: Source templates for pure value ops ({a}, {b} are operand expressions).
_SRC = {
    "mov": "{a}",
    "add": "(({a}) + ({b})) & 0xFFFFFFFF",
    "sub": "(({a}) - ({b})) & 0xFFFFFFFF",
    "mul": "(s32({a}) * s32({b})) & 0xFFFFFFFF",
    "div": "idiv32({a}, {b})[0]",
    "rem": "idiv32({a}, {b})[1]",
    "and": "(({a}) & ({b})) & 0xFFFFFFFF",
    "or": "(({a}) | ({b})) & 0xFFFFFFFF",
    "xor": "(({a}) ^ ({b})) & 0xFFFFFFFF",
    "shl": "(({a}) << (({b}) & 31)) & 0xFFFFFFFF",
    "shr": "u32({a}) >> (({b}) & 31)",
    "sar": "u32(s32({a}) >> (({b}) & 31))",
    "not": "(~({a})) & 0xFFFFFFFF",
    "neg": "(-({a})) & 0xFFFFFFFF",
    "cmpeq": "int(u32({a}) == u32({b}))",
    "cmpne": "int(u32({a}) != u32({b}))",
    "cmplts": "int(s32({a}) < s32({b}))",
    "cmpltu": "int(u32({a}) < u32({b}))",
    "cmples": "int(s32({a}) <= s32({b}))",
    "cmpleu": "int(u32({a}) <= u32({b}))",
    "addcf": "int(((({a}) + ({b})) & 0xFFFFFFFF) < u32({a}))",
    "addof": "((~(({a}) ^ ({b}))) & (({a}) ^ ((({a}) + ({b}))"
             " & 0xFFFFFFFF))) >> 31 & 1",
    "subcf": "int(u32({a}) < u32({b}))",
    "subof": "((({a}) ^ ({b})) & (({a}) ^ ((({a}) - ({b}))"
             " & 0xFFFFFFFF))) >> 31 & 1",
    "mulof": "int(s32({a}) * s32({b})"
             " != s32(u32(s32({a}) * s32({b}))))",
    "fmov": "float({a})",
    "fadd": "({a}) + ({b})",
    "fsub": "({a}) - ({b})",
    "fmul": "({a}) * ({b})",
    "fdiv": "fdiv64({a}, {b})",
    "fneg": "-({a})",
    "fabs": "abs({a})",
    "fsqrt": "gisa_sqrt({a})",
    "ffloor": "float(_floor({a}))",
    "fsin": "gisa_sin({a})",
    "fcos": "gisa_cos({a})",
    "i2f": "float(s32({a}))",
    "f2i": "ftrunc32({a})",
    "fcmpeq": "int(({a}) == ({b}))",
    "fcmplt": "int(({a}) < ({b}))",
    "fcmpun": "int(({a}) != ({a}) or ({b}) != ({b}))",
    "vmov": "list({a})",
    "vadd": "[(_x + _y) & 0xFFFFFFFF for _x, _y in zip({a}, {b})]",
    "vsub": "[(_x - _y) & 0xFFFFFFFF for _x, _y in zip({a}, {b})]",
    "vmul": "[(s32(_x) * s32(_y)) & 0xFFFFFFFF for _x, _y in zip({a}, {b})]",
    "vsplat": "[u32({a})] * 4",
}

#: Shared exec namespace for compiled closures (copied per compilation).
_COMPILE_NS = {
    "u32": u32,
    "s32": s32,
    "idiv32": sem.idiv32,
    "fdiv64": sem.fdiv64,
    "gisa_sqrt": sem.gisa_sqrt,
    "gisa_sin": sem.gisa_sin,
    "gisa_cos": sem.gisa_cos,
    "ftrunc32": sem.ftrunc32,
    "_floor": math.floor,
    "IRAssertFailure": IRAssertFailure,
    "FALLTHROUGH": FALLTHROUGH,
    "JUMP": JUMP,
    "EXIT": EXIT,
}


def _operand_expr(operand):
    """Python expression reading ``operand`` (mirrors eval_ops.read)."""
    if isinstance(operand, Tmp):
        return f"t{operand.index}"
    if isinstance(operand, GReg):
        return f"gpr[{operand.index}]"
    if isinstance(operand, Flag):
        return f"flags[{operand.index}]"
    if isinstance(operand, Const):
        value = operand.value
        if isinstance(value, float) and not math.isfinite(value):
            raise _Unsupported("non-finite float constant")
        return repr(value)
    if isinstance(operand, FTmp):
        return f"ft{operand.index}"
    if isinstance(operand, GFReg):
        return f"fpr[{operand.index}]"
    if isinstance(operand, VTmp):
        return f"vt{operand.index}"
    if isinstance(operand, GVReg):
        return f"vr[{operand.index}]"
    raise _Unsupported(f"unreadable operand {operand!r}")


def _write_stmt(operand, expr):
    """Assignment statement writing ``expr`` (mirrors eval_ops.write)."""
    if isinstance(operand, (Tmp, FTmp, VTmp)):
        return f"{_operand_expr(operand)} = {expr}"
    if isinstance(operand, GReg):
        return f"gpr[{operand.index}] = ({expr}) & 0xFFFFFFFF"
    if isinstance(operand, Flag):
        return f"flags[{operand.index}] = 1 if ({expr}) else 0"
    if isinstance(operand, GFReg):
        return f"fpr[{operand.index}] = float({expr})"
    if isinstance(operand, GVReg):
        return (f"vr[{operand.index}] ="
                f" [_v & 0xFFFFFFFF for _v in ({expr})]")
    raise _Unsupported(f"unwritable operand {operand!r}")


def _addr_expr(instr):
    base = _operand_expr(instr.srcs[0])
    if instr.imm:
        return f"(({base}) + {instr.imm}) & 0xFFFFFFFF"
    return f"({base}) & 0xFFFFFFFF"


def _compile_stmts(ops):
    """Translate an IR op list into a list of Python statements."""
    stmts = []
    for k, instr in enumerate(ops):
        op = instr.op
        template = _SRC.get(op)
        if template is not None:
            exprs = [_operand_expr(s) for s in instr.srcs]
            if len(exprs) == 1:
                expr = template.format(a=exprs[0])
            elif len(exprs) == 2:
                expr = template.format(a=exprs[0], b=exprs[1])
            else:
                raise _Unsupported(f"bad arity for {op!r}")
            stmts.append(_write_stmt(instr.dst, expr))
        elif op == "ld32":
            stmts.append(_write_stmt(
                instr.dst, f"memory.read_u32({_addr_expr(instr)})"))
        elif op == "st32":
            value = _operand_expr(instr.srcs[1])
            stmts.append(f"memory.write_u32({_addr_expr(instr)},"
                         f" ({value}) & 0xFFFFFFFF)")
        elif op == "ldf":
            stmts.append(_write_stmt(
                instr.dst, f"memory.read_f64({_addr_expr(instr)})"))
        elif op == "stf":
            value = _operand_expr(instr.srcs[1])
            stmts.append(f"memory.write_f64({_addr_expr(instr)},"
                         f" float({value}))")
        elif op == "ldv":
            stmts.append(_write_stmt(
                instr.dst, f"memory.read_vec({_addr_expr(instr)})"))
        elif op == "stv":
            value = _operand_expr(instr.srcs[1])
            stmts.append(f"memory.write_vec({_addr_expr(instr)}, {value})")
        elif op in ("br_true", "br_false"):
            cond = _operand_expr(instr.srcs[0])
            taken = instr.attrs["taken_pc"]
            fall = instr.attrs["fall_pc"]
            if op == "br_true":
                stmts.append(f"return (JUMP, {taken} if ({cond})"
                             f" else {fall})")
            else:
                stmts.append(f"return (JUMP, {fall} if ({cond})"
                             f" else {taken})")
        elif op == "jmp":
            stmts.append(f"return (JUMP, {instr.attrs['target_pc']})")
        elif op == "jmp_ind":
            target = _operand_expr(instr.srcs[0])
            stmts.append(f"return (JUMP, ({target}) & 0xFFFFFFFF)")
        elif op == "assert_true":
            cond = _operand_expr(instr.srcs[0])
            stmts.append(f"if not ({cond}):"
                         f" raise IRAssertFailure(_OPS[{k}])")
        elif op == "assert_false":
            cond = _operand_expr(instr.srcs[0])
            stmts.append(f"if ({cond}): raise IRAssertFailure(_OPS[{k}])")
        elif op in ("side_exit_true", "side_exit_false", "guard_exit_false"):
            cond = _operand_expr(instr.srcs[0])
            target = instr.attrs["target_pc"]
            if op == "side_exit_true":
                stmts.append(f"if ({cond}): return (EXIT, {target})")
            else:
                stmts.append(f"if not ({cond}): return (EXIT, {target})")
        elif op == "exit":
            stmts.append(f"return (EXIT, {instr.attrs['next_pc']})")
        elif op == "exit_ind":
            target = _operand_expr(instr.srcs[0])
            stmts.append(f"return (EXIT, ({target}) & 0xFFFFFFFF)")
        else:
            raise _Unsupported(f"unhandled IR op {op!r}")
    stmts.append("return (FALLTHROUGH, None)")
    return stmts


def compile_ops(ops: List[IRInstr]):
    """Compile a straight-line IR sequence into one Python closure.

    Returns ``fn(state, memory) -> (outcome, pc)`` with semantics identical
    to :func:`eval_ops` called without an ``env``, or ``None`` when the
    sequence contains an op the compiler does not support (the caller falls
    back to :func:`eval_ops`).  Temps become function locals; guest state
    accesses become direct list indexing.
    """
    try:
        stmts = _compile_stmts(ops)
    except _Unsupported:
        return None
    body = "\n".join(f"    {s}" for s in stmts)
    prologue = []
    if "gpr[" in body:
        prologue.append("    gpr = state.gpr")
    if "flags[" in body:
        prologue.append("    flags = state.flags")
    if "fpr[" in body:
        prologue.append("    fpr = state.fpr")
    if "vr[" in body:
        prologue.append("    vr = state.vr")
    src = ("def _ir_compiled(state, memory):\n"
           + "\n".join(prologue + [body]))
    namespace = dict(_COMPILE_NS)
    namespace["_OPS"] = ops
    exec(compile(src, "<ir_fastpath>", "exec"), namespace)
    return namespace["_ir_compiled"]
