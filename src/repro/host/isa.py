"""Host ISA (HISA) definition.

HISA is the PowerPC-like RISC ISA implemented by the co-designed hardware.
It is designed *for* guest emulation, the way Transmeta's and Denver's host
ISAs were: flat register files large enough to home the guest state
permanently, no condition flags (explicit compare-to-register), and a set of
co-designed extensions the TOL relies on:

- ``assert_z``/``assert_nz``: speculation asserts (paper §V-B3);
- ``chkpt``/``commit``: architectural checkpoints for rollback;
- ``sld32``/``sldf`` + ``st32chk``/``stfchk``: speculative memory reordering
  with hardware alias detection;
- ``addcf32``/``addof32``/``subcf32``/``subof32``/``mulof32``: single-cycle
  guest condition-flag helpers;
- ``ibtc``: inline indirect-branch translation cache lookup;
- 32-bit ALU ops (``add32`` ...) that wrap like the guest's arithmetic.

Register conventions (see :data:`GUEST_GPR_HOME` etc.): the guest state is
directly and permanently mapped onto host registers, the paper's "maps guest
architectural registers directly on the host registers".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

NUM_IREGS = 64
NUM_FREGS = 32
NUM_VREGS = 16

#: Guest GPR i (EAX..EDI) lives in host integer register 1+i.
GUEST_GPR_HOME = tuple(range(1, 9))
#: Guest flags ZF,SF,CF,OF live in host integer registers 9..12.
GUEST_FLAG_HOME = tuple(range(9, 13))
#: Guest FPR i lives in host FP register 1+i.
GUEST_FPR_HOME = tuple(range(1, 9))
#: Guest VR i lives in host vector register 1+i.
GUEST_VR_HOME = tuple(range(1, 9))
#: First host integer register available to the register allocator.
FIRST_SCRATCH_IREG = 16
#: First host FP register available to the register allocator.
FIRST_SCRATCH_FREG = 16
#: First host vector register available to the register allocator.
FIRST_SCRATCH_VREG = 9


class HostOp:
    """Namespace of host opcode mnemonics, grouped by execution class."""

    # Integer ALU (32-bit wrapping semantics for guest emulation).
    INT_ALU = frozenset({
        "li", "mov", "add32", "addi32", "sub32", "and32", "andi32",
        "or32", "ori32", "xor32", "xori32", "shl32", "shli32", "shr32",
        "shri32", "sar32", "sari32", "not32", "neg32",
        "cmpeq", "cmpeqi", "cmpne", "cmpnei", "cmplt32s", "cmplt32u",
        "cmple32s", "cmple32u",
        "addcf32", "addof32", "subcf32", "subof32",
        "add64",  # address arithmetic beyond 32 bits (scaled index)
    })
    INT_MUL = frozenset({"mul32", "mulof32"})
    INT_DIV = frozenset({"div32s", "rem32s"})
    FP_ALU = frozenset({
        "fmov", "fadd", "fsub", "fmul", "fneg", "fabs", "ffloor",
        "fcmpeq", "fcmplt", "fcmpun", "lif", "i2f", "f2i",
    })
    FP_DIV = frozenset({"fdiv", "fsqrt"})
    VEC = frozenset({"vadd32", "vsub32", "vmul32", "vsplat", "vmov"})
    LOAD = frozenset({"ld32", "ldx32", "ldf", "vld", "sld32", "sldf"})
    STORE = frozenset({"st32", "stx32", "stf", "vst", "st32chk", "stfchk"})
    BRANCH = frozenset({"beqz", "bnez", "j"})
    ASSERT = frozenset({"assert_z", "assert_nz"})
    SPECIAL = frozenset({"chkpt", "commit", "exit", "exit_ind", "ibtc", "nop"})

    ALL = (INT_ALU | INT_MUL | INT_DIV | FP_ALU | FP_DIV | VEC | LOAD
           | STORE | BRANCH | ASSERT | SPECIAL)


#: Execution-unit class per op, consumed by the timing simulator.
def op_unit_class(op: str) -> str:
    if op in HostOp.INT_ALU:
        return "simple"
    if op in HostOp.INT_MUL or op in HostOp.INT_DIV:
        return "complex"
    if op in HostOp.FP_ALU:
        return "fp"
    if op in HostOp.FP_DIV:
        return "fp_div"
    if op in HostOp.VEC:
        return "vector"
    if op in HostOp.LOAD:
        return "load"
    if op in HostOp.STORE:
        return "store"
    if (op in HostOp.BRANCH or op in HostOp.ASSERT
            or op in ("exit", "exit_ind", "ibtc")):
        return "branch"
    return "simple"


@dataclass
class HostInstr:
    """One host instruction.

    Fields ``d``/``a``/``b``/``c`` are register indices whose file (integer,
    FP, vector) is implied by the opcode; ``imm`` is an integer or float
    immediate; ``target`` is an intra-unit instruction index for branches.
    ``guest_pc`` records the guest instruction this op emulates (debugging,
    attribution); ``meta`` carries op-specific data:

    - ``exit``:      ``meta["next_pc"]`` guest continuation,
                     ``meta["link"]`` chained unit (patched by the TOL),
                     ``meta["guest_insns"]`` guest insns completed at exit;
    - ``chkpt``:     ``meta["guest_pc"]`` precise restart point;
    - ``commit``:    ``meta["guest_insns"]`` guest insns being committed;
    - ``sld32/sldf/st32chk/stfchk``: ``meta["seq"]`` original program order.
    """

    op: str
    d: Optional[int] = None
    a: Optional[int] = None
    b: Optional[int] = None
    c: Optional[int] = None
    imm: object = None
    target: Optional[int] = None
    guest_pc: Optional[int] = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.op not in HostOp.ALL:
            raise ValueError(f"unknown host op {self.op!r}")

    def __repr__(self):
        parts = [self.op]
        for name in ("d", "a", "b", "c"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        if self.imm is not None:
            parts.append(f"imm={self.imm}")
        if self.target is not None:
            parts.append(f"->{self.target}")
        return "<" + " ".join(str(p) for p in parts) + ">"


UNIT_MODE_BBM = "BBM"
UNIT_MODE_SBM = "SBM"
#: Superblock recreated without asserts after repeated failures
#: (single-entry multiple-exit, conservatively optimized).
UNIT_MODE_SBX = "SBX"


@dataclass
class CodeUnit:
    """A translated region stored in the code cache."""

    uid: int
    mode: str
    entry_pc: int
    instrs: list
    guest_insn_count: int = 0
    #: guest basic blocks covered (superblocks span several).
    guest_bb_count: int = 1
    #: indices of exit instructions, for chaining patches.
    exit_indices: tuple = ()
    #: True for the unrolled variant of a loop superblock.
    unrolled: bool = False
    # -- dynamic statistics --
    exec_count: int = 0
    host_insns_committed: int = 0
    host_insns_wasted: int = 0
    guest_insns_retired: int = 0
    assert_failures: int = 0
    spec_failures: int = 0

    def size(self) -> int:
        return len(self.instrs)
