"""Host functional emulator.

Executes translated code units on the host register files, against the
co-designed component's emulated guest memory.  Implements the co-designed
hardware features the TOL depends on:

- checkpoint/rollback (``chkpt``/``commit``, store undo log);
- speculation asserts (``assert_z``/``assert_nz``);
- a finite hardware alias table detecting speculative memory-reordering
  failures (``sld32``/``sldf`` vs ``st32chk``/``stfchk``);
- an indirect-branch translation cache (``ibtc``);
- direct unit-to-unit chaining (patched ``exit`` links).

Control returns to the TOL through :class:`ExitEvent` objects.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import costs
from repro.guest import semantics as sem
from repro.guest.isa import s32, u32
from repro.guest.memory import PagedMemory, PageFault
from repro.guest.state import GuestState
from repro.host.isa import (
    CodeUnit, GUEST_FLAG_HOME, GUEST_FPR_HOME, GUEST_GPR_HOME, GUEST_VR_HOME,
    NUM_FREGS, NUM_IREGS, NUM_VREGS,
)

#: Host addresses at/above this are the TOL-private data area (spill slots
#: and TOL bookkeeping), invisible to the guest and exempt from
#: checkpointing and validation.
TOL_AREA_BASE = 0xF000_0000

#: Max buffered trace records before a mid-unit flush (bounds memory on
#: long-running loops; batch boundaries never change timing results).
_TRACE_BATCH_CAP = 8192

EXIT_TOL = "tol_exit"
EXIT_ASSERT = "assert_fail"
EXIT_SPEC = "spec_fail"
EXIT_PAGE_FAULT = "page_fault"


class HostEmulationError(Exception):
    """Internal inconsistency in translated code (a TOL bug, by definition)."""


@dataclass
class ExitEvent:
    """Why control returned from the code cache to the TOL."""

    kind: str
    #: Guest PC where execution continues (next pc, or precise restart point
    #: for failures).
    next_pc: int = 0
    #: Faulting guest address for page faults.
    fault_addr: Optional[int] = None
    #: The unit and exit-instruction index that produced a TOL exit
    #: (used by the TOL to patch chain links).
    unit: Optional[CodeUnit] = None
    exit_index: Optional[int] = None
    #: True when the exit came from an IBTC miss.
    ibtc_miss: bool = False
    #: Host instructions executed during this dispatch.
    host_insns: int = 0


@dataclass
class AliasTable:
    """Finite hardware table tracking speculatively-executed loads."""

    capacity: int = 32
    entries: List[tuple] = field(default_factory=list)  # (addr, size, seq)

    def record_load(self, addr: int, size: int, seq: int) -> bool:
        """Record a speculative load; False means overflow (must fail)."""
        if len(self.entries) >= self.capacity:
            return False
        self.entries.append((addr, size, seq))
        return True

    def store_conflicts(self, addr: int, size: int, seq: int) -> bool:
        """True if a younger speculative load overlaps this store."""
        lo, hi = addr, addr + size
        for (laddr, lsize, lseq) in self.entries:
            if lseq > seq and laddr < hi and lo < laddr + lsize:
                return True
        return False

    def clear(self) -> None:
        self.entries.clear()


class IBTC:
    """Indirect Branch Translation Cache: guest PC -> code unit."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._map: Dict[int, CodeUnit] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Optional[CodeUnit]:
        unit = self._map.get(pc)
        if unit is None:
            self.misses += 1
        else:
            self.hits += 1
        return unit

    def insert(self, pc: int, unit: CodeUnit) -> None:
        if pc not in self._map and len(self._map) >= self.capacity:
            # FIFO eviction: drop the oldest mapping.
            oldest = next(iter(self._map))
            del self._map[oldest]
        self._map[pc] = unit

    def invalidate_unit(self, unit: CodeUnit) -> None:
        stale = [pc for pc, u in self._map.items() if u is unit]
        for pc in stale:
            del self._map[pc]

    def flush(self) -> None:
        self._map.clear()


@dataclass
class _Checkpoint:
    iregs: list
    fregs: list
    vregs: list
    guest_pc: int


class HostEmulator:
    """Executes code units; owns the host register files and the
    co-designed hardware structures."""

    def __init__(self, memory: PagedMemory,
                 alias_table_size: int = 32,
                 ibtc_size: int = 256,
                 fuel_per_dispatch: int = 50_000_000,
                 fastpath: bool = True):
        self.memory = memory
        #: Closure-compile straight-line register-op runs per code unit.
        #: Stays active under a trace_sink: segment records are delivered
        #: to the sink after each segment executes (identical stream).
        self.fastpath = fastpath
        self.iregs: List[int] = [0] * NUM_IREGS
        self.fregs: List[float] = [0.0] * NUM_FREGS
        self.vregs: List[List[int]] = [[0, 0, 0, 0] for _ in range(NUM_VREGS)]
        self.alias_table = AliasTable(capacity=alias_table_size)
        #: serial alias-table search: checking stores pay one host
        #: instruction per occupied entry (vs a parallel CAM lookup).
        self.alias_serial_search = False
        self.alias_search_insns = 0
        #: host cost of the BBM inline profiling sequence (0 with
        #: hardware-assisted profiling).
        self.profile_inline_cost = costs.BBM_PROFILE_INLINE
        self._extra_insns = 0
        self.ibtc = IBTC(capacity=ibtc_size)
        self.fuel_per_dispatch = fuel_per_dispatch
        # Global counters.
        self.host_insns_total = 0
        self.host_insns_committed = 0
        self.host_insns_wasted = 0
        self.guest_retired_total = 0
        #: Closure-compiled straight-line segments executed, and the
        #: host instructions they covered (the remainder of
        #: ``host_insns_total`` went through the interpretive slow path).
        self.fast_segments = 0
        self.fast_segment_insns = 0
        #: when set, execution returns to the TOL at the next checkpoint
        #: boundary once this many guest instructions have retired
        #: (sampling support; bounds pause overshoot to one region).
        self.pause_retired_at: Optional[int] = None
        self.guest_retired_by_mode: Dict[str, int] = {}
        self.host_committed_by_mode: Dict[str, int] = {}
        #: Optional per-instruction trace callback for the timing simulator:
        #: ``trace_sink(unit, index, instr, info_dict)``.
        self.trace_sink: Optional[Callable] = None
        #: Optional bulk variant: ``trace_sink_batch(unit, records)`` with
        #: ``records`` a list of ``(index, info)`` pairs — the direct tier
        #: delivers its buffered records through this when set (must be
        #: record-for-record equivalent to looping ``trace_sink``).
        self.trace_sink_batch: Optional[Callable] = None
        #: When True (and a batch sink is attached), the interpretive and
        #: fast paths buffer ``(index, info)`` records and deliver them
        #: through ``trace_sink_batch`` at unit boundaries instead of one
        #: ``trace_sink`` call per instruction.  Record order is exactly
        #: the per-instruction stream; only the call granularity changes.
        self.trace_batching = False
        # -- direct (IR-less) tier ------------------------------------
        #: Execute units through generated direct-tier programs when
        #: attached (``unit._directprog``/``_directprog_traced``).
        self.direct_enable = False
        #: Entries needed before ``direct_promote_hook`` is consulted.
        self.direct_promote_threshold = 0
        #: Policy callback ``hook(unit)``; must set ``unit._directprog``
        #: (possibly to None) so it is consulted at most once per unit.
        self.direct_promote_hook: Optional[Callable] = None
        #: Unit entries executed via direct programs, and the host
        #: instructions they covered (simulator-strategy counters, like
        #: ``fast_segments``: never part of the simulated quantities).
        self.direct_entries = 0
        self.direct_insns = 0
        #: BBM inline profiling: called as ``profile_hook(unit, next_pc)``
        #: at instrumented dispatch points; returning True interrupts
        #: chaining and returns control to the TOL (promotion request).
        self.profile_hook: Optional[Callable] = None
        #: Optional bounded deque of every unit *entered* (including
        #: chain-follow and IBTC hops invisible to TOL dispatch); the
        #: resilience layer uses it to implicate translations after a
        #: divergence.
        self.unit_log: Optional[deque] = None
        self._pending_info = None
        # Checkpoint / undo state.
        self._checkpoint: Optional[_Checkpoint] = None
        self._undo: List[tuple] = []  # ("u32"/"f64"/"vec", addr, old value)
        self._region_insns = 0
        #: TOL-private data area (spill slots); not part of guest memory.
        self.tol_memory = PagedMemory(demand_zero=True)

    # ------------------------------------------------------------------
    # Guest state <-> host register transfer (prologue / epilogue).
    # ------------------------------------------------------------------

    def load_guest_state(self, state: GuestState) -> None:
        for i, home in enumerate(GUEST_GPR_HOME):
            self.iregs[home] = state.gpr[i]
        for i, home in enumerate(GUEST_FLAG_HOME):
            self.iregs[home] = state.flags[i]
        for i, home in enumerate(GUEST_FPR_HOME):
            self.fregs[home] = state.fpr[i]
        for i, home in enumerate(GUEST_VR_HOME):
            self.vregs[home] = list(state.vr[i])

    def store_guest_state(self, state: GuestState, eip: int) -> None:
        for i, home in enumerate(GUEST_GPR_HOME):
            state.gpr[i] = u32(self.iregs[home])
        for i, home in enumerate(GUEST_FLAG_HOME):
            state.flags[i] = 1 if self.iregs[home] else 0
        for i, home in enumerate(GUEST_FPR_HOME):
            state.fpr[i] = self.fregs[home]
        for i, home in enumerate(GUEST_VR_HOME):
            state.vr[i] = list(self.vregs[home])
        state.eip = eip

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------

    def _take_checkpoint(self, guest_pc: int) -> None:
        self._checkpoint = _Checkpoint(
            iregs=list(self.iregs),
            fregs=list(self.fregs),
            vregs=[list(v) for v in self.vregs],
            guest_pc=guest_pc,
        )
        self._undo.clear()

    def _commit_region(self, unit: CodeUnit, guest_insns: int) -> None:
        self._undo.clear()
        self.alias_table.clear()
        self._checkpoint = None
        unit.guest_insns_retired += guest_insns
        self.guest_retired_total += guest_insns
        unit.host_insns_committed += self._region_insns
        mode = unit.mode
        self.guest_retired_by_mode[mode] = (
            self.guest_retired_by_mode.get(mode, 0) + guest_insns)
        self.host_committed_by_mode[mode] = (
            self.host_committed_by_mode.get(mode, 0) + self._region_insns)
        self.host_insns_committed += self._region_insns
        self._region_insns = 0

    def _rollback(self, unit: CodeUnit) -> int:
        """Restore the last checkpoint; returns the precise guest restart PC."""
        cp = self._checkpoint
        if cp is None:
            raise HostEmulationError("rollback without active checkpoint")
        for kind, addr, old in reversed(self._undo):
            if kind == "u32":
                self.memory.write_u32(addr, old)
            elif kind == "f64":
                self.memory.write_f64(addr, old)
            else:
                self.memory.write_vec(addr, old)
        self._undo.clear()
        self.alias_table.clear()
        # In-place restore: the register-file *lists* are identity-stable
        # for the emulator's lifetime (direct-tier programs bake direct
        # references to them).
        self.iregs[:] = cp.iregs
        self.fregs[:] = cp.fregs
        self.vregs[:] = [list(v) for v in cp.vregs]
        unit.host_insns_wasted += self._region_insns
        self.host_insns_wasted += self._region_insns
        self._region_insns = 0
        restart = cp.guest_pc
        self._checkpoint = None
        return restart

    # -- memory access (guest memory vs TOL-private area) ----------------

    def _mem_for(self, addr: int) -> PagedMemory:
        return self.tol_memory if addr >= TOL_AREA_BASE else self.memory

    def _read_u32(self, addr: int) -> int:
        return self._mem_for(addr).read_u32(addr)

    def _read_f64(self, addr: int) -> float:
        return self._mem_for(addr).read_f64(addr)

    def _read_vec(self, addr: int):
        return self._mem_for(addr).read_vec(addr)

    # -- undo-logged memory writes (TOL area is exempt: spill slots are
    # always rewritten before use after a restart) -----------------------

    def _write_u32(self, addr: int, value: int) -> None:
        if addr >= TOL_AREA_BASE:
            self.tol_memory.write_u32(addr, value)
            return
        if self._checkpoint is not None:
            self._undo.append(("u32", addr, self.memory.read_u32(addr)))
        self.memory.write_u32(addr, value)

    def _write_f64(self, addr: int, value: float) -> None:
        if addr >= TOL_AREA_BASE:
            self.tol_memory.write_f64(addr, value)
            return
        if self._checkpoint is not None:
            self._undo.append(("f64", addr, self.memory.read_f64(addr)))
        self.memory.write_f64(addr, value)

    def _write_vec(self, addr: int, lanes) -> None:
        if addr >= TOL_AREA_BASE:
            self.tol_memory.write_vec(addr, lanes)
            return
        if self._checkpoint is not None:
            self._undo.append(("vec", addr, self.memory.read_vec(addr)))
        self.memory.write_vec(addr, lanes)

    # ------------------------------------------------------------------
    # Main dispatch loop.
    # ------------------------------------------------------------------

    def execute(self, unit: CodeUnit, state: GuestState) -> ExitEvent:
        """Run translated code starting at ``unit`` until control must
        return to the TOL.  Follows chain links and IBTC hits internally."""
        self.load_guest_state(state)
        event = self._run(unit)
        self.store_guest_state(state, event.next_pc)
        return event

    class _Fail(Exception):
        def __init__(self, kind):
            self.kind = kind

    def _run(self, unit: CodeUnit) -> ExitEvent:
        event = self._run_inner(unit)
        self.host_insns_total += event.host_insns
        return event

    def _run_inner(self, unit: CodeUnit) -> ExitEvent:
        executed = 0
        fuel = self.fuel_per_dispatch
        iregs, fregs, vregs = self.iregs, self.fregs, self.vregs
        # Compiled segments stay active while a trace sink is attached:
        # segment ops are pure register ops (total functions, no memory,
        # no control), so executing the whole segment and then delivering
        # its records produces the exact record stream the slow path
        # interleaves (every record is ``(unit, index, ins, None)``).
        use_fast = self.fastpath
        # Batched trace delivery: buffer ``(index, info)`` records and
        # hand whole runs to the batch sink at unit boundaries (and at a
        # cap, checked at branch sites, so loop-heavy units stay bounded).
        # ``tbuf`` is always empty at the top of the dispatch loop.
        tbuf = None
        sink_batch = self.trace_sink_batch
        if (self.trace_sink is not None and self.trace_batching
                and sink_batch is not None):
            tbuf = []
        unit_log = self.unit_log
        use_direct = self.direct_enable
        if use_direct:
            dkey = "_directprog" if self.trace_sink is None \
                else "_directprog_traced"
            dhook = self.direct_promote_hook
            dthresh = self.direct_promote_threshold
        while True:
            unit.exec_count += 1
            if unit_log is not None:
                unit_log.append(unit)
            if use_direct:
                udict = unit.__dict__
                dprog = udict.get(dkey)
                if (dprog is None and dhook is not None
                        and "_directprog" not in udict
                        and unit.exec_count >= dthresh):
                    dhook(unit)
                    dprog = udict.get(dkey)
                if dprog is not None:
                    self.direct_entries += 1
                    entered = executed
                    # ``unit`` rebinds to wherever the program ended up
                    # (cluster programs follow chains between members
                    # internally, so exits can come from any member).
                    kind, a, b, executed, unit = dprog(self, executed,
                                                       fuel)
                    self.direct_insns += executed - entered
                    if kind == 0:
                        unit = a  # chain / IBTC hit: continue in unit a
                        continue
                    if kind <= 2:
                        return ExitEvent(
                            kind=EXIT_TOL, next_pc=a, unit=unit,
                            exit_index=b, ibtc_miss=(kind == 2),
                            host_insns=executed)
                    if kind == 3:
                        return ExitEvent(
                            kind=EXIT_PAGE_FAULT, next_pc=a,
                            fault_addr=b, unit=unit, host_insns=executed)
                    return ExitEvent(
                        kind=EXIT_ASSERT if kind == 4 else EXIT_SPEC,
                        next_pc=a, unit=unit, host_insns=executed)
            instrs = unit.instrs
            prog = None
            if use_fast:
                prog = unit.__dict__.get("_fastprog")
                if prog is None:
                    prog = _compile_unit(unit)
                    unit._fastprog = prog
            index = 0
            size = len(instrs)
            try:
                while index < size:
                    if executed >= fuel:
                        raise HostEmulationError(
                            f"fuel exhausted in unit {unit.uid} "
                            f"(entry {unit.entry_pc:#x}): likely a "
                            f"translation bug (infinite loop)")
                    if prog is not None:
                        seg = prog[index]
                        if seg is not None:
                            length, fn, records, brecords = seg
                            executed += length
                            self._region_insns += length
                            self.fast_segments += 1
                            self.fast_segment_insns += length
                            fn(iregs, fregs, vregs)
                            if tbuf is not None:
                                tbuf.extend(brecords)
                            elif self.trace_sink is not None:
                                sink = self.trace_sink
                                for rec_index, rec_ins in records:
                                    sink(unit, rec_index, rec_ins, None)
                            index += length
                            continue
                    ins = instrs[index]
                    executed += 1
                    self._region_insns += 1
                    op = ins.op
                    # Inline the hottest integer ops; everything else goes
                    # through the handler table.
                    if op == "add32":
                        iregs[ins.d] = (iregs[ins.a] + iregs[ins.b]) \
                            & 0xFFFFFFFF
                    elif op == "addi32":
                        iregs[ins.d] = (iregs[ins.a] + ins.imm) & 0xFFFFFFFF
                    elif op == "mov":
                        iregs[ins.d] = iregs[ins.a]
                    elif op == "li":
                        iregs[ins.d] = ins.imm & 0xFFFFFFFFFFFFFFFF
                    elif op == "ld32":
                        addr = u32(iregs[ins.a] + ins.imm)
                        if self.trace_sink is not None:
                            self._pending_info = {"mem_addr": addr}
                        iregs[ins.d] = self._read_u32(addr)
                    elif op == "st32":
                        addr = u32(iregs[ins.a] + ins.imm)
                        if self.trace_sink is not None:
                            self._pending_info = {"mem_addr": addr}
                        self._write_u32(addr, iregs[ins.b])
                    elif op == "beqz":
                        taken = iregs[ins.a] == 0
                        if tbuf is not None:
                            tbuf.append((index, {"taken": taken}))
                            if len(tbuf) > _TRACE_BATCH_CAP:
                                sink_batch(unit, tbuf)
                                del tbuf[:]
                        elif self.trace_sink is not None:
                            self.trace_sink(
                                unit, index, ins, {"taken": taken})
                        if taken:
                            index = ins.target
                            continue
                        index += 1
                        continue
                    elif op == "bnez":
                        taken = iregs[ins.a] != 0
                        if tbuf is not None:
                            tbuf.append((index, {"taken": taken}))
                            if len(tbuf) > _TRACE_BATCH_CAP:
                                sink_batch(unit, tbuf)
                                del tbuf[:]
                        elif self.trace_sink is not None:
                            self.trace_sink(
                                unit, index, ins, {"taken": taken})
                        if taken:
                            index = ins.target
                            continue
                        index += 1
                        continue
                    elif op == "j":
                        if tbuf is not None:
                            tbuf.append((index, {"taken": True}))
                            if len(tbuf) > _TRACE_BATCH_CAP:
                                sink_batch(unit, tbuf)
                                del tbuf[:]
                        elif self.trace_sink is not None:
                            self.trace_sink(
                                unit, index, ins, {"taken": True})
                        index = ins.target
                        continue
                    elif op == "chkpt":
                        if (self.pause_retired_at is not None
                                and self.guest_retired_total
                                >= self.pause_retired_at):
                            # The previous region committed: returning at a
                            # checkpoint boundary is architecturally clean.
                            # (Never true at dispatch entry: the TOL pauses
                            # before dispatching in that case.)
                            if tbuf:
                                sink_batch(unit, tbuf)
                                del tbuf[:]
                            return ExitEvent(
                                kind=EXIT_TOL,
                                next_pc=ins.meta["guest_pc"],
                                unit=unit,
                                exit_index=None,
                                host_insns=executed,
                            )
                        self._take_checkpoint(ins.meta["guest_pc"])
                    elif op == "commit":
                        self._commit_region(unit, ins.meta["guest_insns"])
                    elif op == "assert_nz":
                        if iregs[ins.a] == 0:
                            raise self._Fail(EXIT_ASSERT)
                    elif op == "assert_z":
                        if iregs[ins.a] != 0:
                            raise self._Fail(EXIT_ASSERT)
                    elif op == "exit":
                        interrupt = False
                        if ins.meta.get("profile"):
                            executed += self.profile_inline_cost
                            self._region_insns += self.profile_inline_cost
                            if self.profile_hook is not None:
                                interrupt = self.profile_hook(
                                    unit, ins.meta["next_pc"])
                        self._commit_region(unit, ins.meta["guest_insns"])
                        if tbuf is not None:
                            tbuf.append((index, {"taken": True}))
                            sink_batch(unit, tbuf)
                            del tbuf[:]
                        elif self.trace_sink is not None:
                            self.trace_sink(
                                unit, index, ins, {"taken": True})
                        link = ins.meta.get("link")
                        if link is not None and not interrupt:
                            unit = link
                            break  # chained: continue in linked unit
                        return ExitEvent(
                            kind=EXIT_TOL,
                            next_pc=ins.meta["next_pc"],
                            unit=unit,
                            exit_index=index,
                            host_insns=executed,
                        )
                    elif op == "exit_ind":
                        next_pc = u32(iregs[ins.a])
                        if ins.meta.get("profile"):
                            executed += self.profile_inline_cost
                            self._region_insns += self.profile_inline_cost
                            if self.profile_hook is not None:
                                self.profile_hook(unit, next_pc)
                        self._commit_region(unit, ins.meta["guest_insns"])
                        if tbuf is not None:
                            tbuf.append((index, {"taken": True}))
                            sink_batch(unit, tbuf)
                            del tbuf[:]
                        elif self.trace_sink is not None:
                            self.trace_sink(
                                unit, index, ins, {"taken": True})
                        return ExitEvent(
                            kind=EXIT_TOL,
                            next_pc=next_pc,
                            unit=unit,
                            exit_index=index,
                            host_insns=executed,
                        )
                    elif op == "ibtc":
                        target_pc = u32(iregs[ins.a])
                        interrupt = False
                        if ins.meta.get("profile"):
                            executed += self.profile_inline_cost
                            self._region_insns += self.profile_inline_cost
                            if self.profile_hook is not None:
                                interrupt = self.profile_hook(
                                    unit, target_pc)
                        # The inline lookup sequence costs extra host insns.
                        executed += costs.IBTC_HIT_INLINE
                        self._region_insns += costs.IBTC_HIT_INLINE
                        self._commit_region(unit, ins.meta["guest_insns"])
                        if tbuf is not None:
                            tbuf.append((index, {"taken": True}))
                            sink_batch(unit, tbuf)
                            del tbuf[:]
                        elif self.trace_sink is not None:
                            self.trace_sink(
                                unit, index, ins, {"taken": True})
                        target = None if interrupt else self.ibtc.lookup(
                            target_pc)
                        if target is not None:
                            unit = target
                            break
                        return ExitEvent(
                            kind=EXIT_TOL,
                            next_pc=target_pc,
                            unit=unit,
                            exit_index=index,
                            ibtc_miss=not interrupt,
                            host_insns=executed,
                        )
                    else:
                        handler = _SLOW_HANDLERS.get(op)
                        if handler is None:
                            raise HostEmulationError(f"unhandled op {op!r}")
                        handler(self, unit, index, ins)
                        if self._extra_insns:
                            executed += self._extra_insns
                            self._region_insns += self._extra_insns
                            self._extra_insns = 0
                    if tbuf is not None:
                        tbuf.append((index, self._pending_info))
                        self._pending_info = None
                    elif self.trace_sink is not None:
                        self.trace_sink(unit, index, ins,
                                        self._pending_info)
                        self._pending_info = None
                    index += 1
                else:
                    raise HostEmulationError(
                        f"fell off the end of unit {unit.uid} "
                        f"(entry {unit.entry_pc:#x})")
            except PageFault as fault:
                restart = self._rollback(unit)
                # The faulting instruction delivered no record; drop its
                # staged info so it cannot attach to a later instruction.
                self._pending_info = None
                if tbuf:
                    sink_batch(unit, tbuf)
                    del tbuf[:]
                return ExitEvent(
                    kind=EXIT_PAGE_FAULT,
                    next_pc=restart,
                    fault_addr=fault.addr,
                    unit=unit,
                    host_insns=executed,
                )
            except self._Fail as failure:
                restart = self._rollback(unit)
                self._pending_info = None
                if tbuf:
                    sink_batch(unit, tbuf)
                    del tbuf[:]
                if failure.kind == EXIT_ASSERT:
                    unit.assert_failures += 1
                else:
                    unit.spec_failures += 1
                return ExitEvent(
                    kind=failure.kind,
                    next_pc=restart,
                    unit=unit,
                    host_insns=executed,
                )

    # ------------------------------------------------------------------
    # Tracing helpers (no-ops unless a sink is attached).
    # ------------------------------------------------------------------

    def _trace_mem(self, unit, index, ins, addr):
        if self.trace_sink is not None:
            self._pending_info = {"mem_addr": addr}

    def _flush_direct_trace(self, unit, records):
        """Deliver a direct-tier program's buffered ``(index, info)``
        records to the trace sink, in stream order, then clear the
        buffer.  Uses the batch sink when one is attached."""
        if not records:
            return
        batch = self.trace_sink_batch
        if batch is not None:
            batch(unit, records)
        else:
            sink = self.trace_sink
            instrs = unit.instrs
            for index, info in records:
                sink(unit, index, instrs[index], info)
        del records[:]

    def _trace_branch(self, unit, index, ins, taken):
        if self.trace_sink is not None:
            self._pending_info = {"taken": taken}


# ---------------------------------------------------------------------------
# Handlers for the less-hot opcodes.
# ---------------------------------------------------------------------------

_SLOW_HANDLERS = {}


def _op(*names):
    def wrap(fn):
        for name in names:
            _SLOW_HANDLERS[name] = fn
        return fn
    return wrap


_M32 = 0xFFFFFFFF


@_op("nop")
def _h_nop(emu, unit, index, ins):
    pass


@_op("sub32")
def _h_sub32(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] - emu.iregs[ins.b]) & _M32


@_op("mul32")
def _h_mul32(emu, unit, index, ins):
    emu.iregs[ins.d] = (s32(emu.iregs[ins.a]) * s32(emu.iregs[ins.b])) & _M32


@_op("div32s")
def _h_div32s(emu, unit, index, ins):
    quotient, _ = sem.idiv32(emu.iregs[ins.a], emu.iregs[ins.b])
    emu.iregs[ins.d] = quotient


@_op("rem32s")
def _h_rem32s(emu, unit, index, ins):
    _, remainder = sem.idiv32(emu.iregs[ins.a], emu.iregs[ins.b])
    emu.iregs[ins.d] = remainder


@_op("and32")
def _h_and32(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] & emu.iregs[ins.b]) & _M32


@_op("andi32")
def _h_andi32(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] & ins.imm) & _M32


@_op("or32")
def _h_or32(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] | emu.iregs[ins.b]) & _M32


@_op("ori32")
def _h_ori32(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] | ins.imm) & _M32


@_op("xor32")
def _h_xor32(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] ^ emu.iregs[ins.b]) & _M32


@_op("xori32")
def _h_xori32(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] ^ ins.imm) & _M32


@_op("shl32")
def _h_shl32(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] << (emu.iregs[ins.b] & 31)) & _M32


@_op("shli32")
def _h_shli32(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] << (ins.imm & 31)) & _M32


@_op("shr32")
def _h_shr32(emu, unit, index, ins):
    emu.iregs[ins.d] = (u32(emu.iregs[ins.a]) >> (emu.iregs[ins.b] & 31))


@_op("shri32")
def _h_shri32(emu, unit, index, ins):
    emu.iregs[ins.d] = (u32(emu.iregs[ins.a]) >> (ins.imm & 31))


@_op("sar32")
def _h_sar32(emu, unit, index, ins):
    emu.iregs[ins.d] = u32(s32(emu.iregs[ins.a]) >> (emu.iregs[ins.b] & 31))


@_op("sari32")
def _h_sari32(emu, unit, index, ins):
    emu.iregs[ins.d] = u32(s32(emu.iregs[ins.a]) >> (ins.imm & 31))


@_op("not32")
def _h_not32(emu, unit, index, ins):
    emu.iregs[ins.d] = (~emu.iregs[ins.a]) & _M32


@_op("neg32")
def _h_neg32(emu, unit, index, ins):
    emu.iregs[ins.d] = (-emu.iregs[ins.a]) & _M32


@_op("add64")
def _h_add64(emu, unit, index, ins):
    emu.iregs[ins.d] = (emu.iregs[ins.a] + emu.iregs[ins.b]) \
        & 0xFFFFFFFFFFFFFFFF


@_op("cmpeq")
def _h_cmpeq(emu, unit, index, ins):
    emu.iregs[ins.d] = int(u32(emu.iregs[ins.a]) == u32(emu.iregs[ins.b]))


@_op("cmpeqi")
def _h_cmpeqi(emu, unit, index, ins):
    emu.iregs[ins.d] = int(u32(emu.iregs[ins.a]) == u32(ins.imm))


@_op("cmpne")
def _h_cmpne(emu, unit, index, ins):
    emu.iregs[ins.d] = int(u32(emu.iregs[ins.a]) != u32(emu.iregs[ins.b]))


@_op("cmpnei")
def _h_cmpnei(emu, unit, index, ins):
    emu.iregs[ins.d] = int(u32(emu.iregs[ins.a]) != u32(ins.imm))


@_op("cmplt32s")
def _h_cmplt32s(emu, unit, index, ins):
    emu.iregs[ins.d] = int(s32(emu.iregs[ins.a]) < s32(emu.iregs[ins.b]))


@_op("cmplt32u")
def _h_cmplt32u(emu, unit, index, ins):
    emu.iregs[ins.d] = int(u32(emu.iregs[ins.a]) < u32(emu.iregs[ins.b]))


@_op("cmple32s")
def _h_cmple32s(emu, unit, index, ins):
    emu.iregs[ins.d] = int(s32(emu.iregs[ins.a]) <= s32(emu.iregs[ins.b]))


@_op("cmple32u")
def _h_cmple32u(emu, unit, index, ins):
    emu.iregs[ins.d] = int(u32(emu.iregs[ins.a]) <= u32(emu.iregs[ins.b]))


@_op("addcf32")
def _h_addcf32(emu, unit, index, ins):
    res = (emu.iregs[ins.a] + emu.iregs[ins.b]) & _M32
    emu.iregs[ins.d] = int(res < u32(emu.iregs[ins.a]))


@_op("addof32")
def _h_addof32(emu, unit, index, ins):
    a, b = emu.iregs[ins.a], emu.iregs[ins.b]
    res = (a + b) & _M32
    emu.iregs[ins.d] = ((~(a ^ b)) & (a ^ res)) >> 31 & 1


@_op("subcf32")
def _h_subcf32(emu, unit, index, ins):
    emu.iregs[ins.d] = int(u32(emu.iregs[ins.a]) < u32(emu.iregs[ins.b]))


@_op("subof32")
def _h_subof32(emu, unit, index, ins):
    a, b = emu.iregs[ins.a], emu.iregs[ins.b]
    res = (a - b) & _M32
    emu.iregs[ins.d] = ((a ^ b) & (a ^ res)) >> 31 & 1


@_op("mulof32")
def _h_mulof32(emu, unit, index, ins):
    full = s32(emu.iregs[ins.a]) * s32(emu.iregs[ins.b])
    emu.iregs[ins.d] = int(full != s32(u32(full)))


# -- floating point ----------------------------------------------------------


@_op("fmov")
def _h_fmov(emu, unit, index, ins):
    emu.fregs[ins.d] = emu.fregs[ins.a]


@_op("lif")
def _h_lif(emu, unit, index, ins):
    emu.fregs[ins.d] = float(ins.imm)


@_op("fadd")
def _h_fadd(emu, unit, index, ins):
    emu.fregs[ins.d] = emu.fregs[ins.a] + emu.fregs[ins.b]


@_op("fsub")
def _h_fsub(emu, unit, index, ins):
    emu.fregs[ins.d] = emu.fregs[ins.a] - emu.fregs[ins.b]


@_op("fmul")
def _h_fmul(emu, unit, index, ins):
    emu.fregs[ins.d] = emu.fregs[ins.a] * emu.fregs[ins.b]


@_op("fdiv")
def _h_fdiv(emu, unit, index, ins):
    emu.fregs[ins.d] = sem.fdiv64(emu.fregs[ins.a], emu.fregs[ins.b])


@_op("fneg")
def _h_fneg(emu, unit, index, ins):
    emu.fregs[ins.d] = -emu.fregs[ins.a]


@_op("fabs")
def _h_fabs(emu, unit, index, ins):
    emu.fregs[ins.d] = abs(emu.fregs[ins.a])


@_op("fsqrt")
def _h_fsqrt(emu, unit, index, ins):
    emu.fregs[ins.d] = sem.gisa_sqrt(emu.fregs[ins.a])


@_op("ffloor")
def _h_ffloor(emu, unit, index, ins):
    emu.fregs[ins.d] = float(math.floor(emu.fregs[ins.a]))


@_op("fcmpeq")
def _h_fcmpeq(emu, unit, index, ins):
    emu.iregs[ins.d] = int(emu.fregs[ins.a] == emu.fregs[ins.b])


@_op("fcmplt")
def _h_fcmplt(emu, unit, index, ins):
    emu.iregs[ins.d] = int(emu.fregs[ins.a] < emu.fregs[ins.b])


@_op("fcmpun")
def _h_fcmpun(emu, unit, index, ins):
    a, b = emu.fregs[ins.a], emu.fregs[ins.b]
    emu.iregs[ins.d] = int(a != a or b != b)


@_op("i2f")
def _h_i2f(emu, unit, index, ins):
    emu.fregs[ins.d] = float(s32(emu.iregs[ins.a]))


@_op("f2i")
def _h_f2i(emu, unit, index, ins):
    emu.iregs[ins.d] = sem.ftrunc32(emu.fregs[ins.a])


# -- vector -------------------------------------------------------------------


@_op("vmov")
def _h_vmov(emu, unit, index, ins):
    emu.vregs[ins.d] = list(emu.vregs[ins.a])


@_op("vadd32")
def _h_vadd32(emu, unit, index, ins):
    emu.vregs[ins.d] = [
        (x + y) & _M32
        for x, y in zip(emu.vregs[ins.a], emu.vregs[ins.b])]


@_op("vsub32")
def _h_vsub32(emu, unit, index, ins):
    emu.vregs[ins.d] = [
        (x - y) & _M32
        for x, y in zip(emu.vregs[ins.a], emu.vregs[ins.b])]


@_op("vmul32")
def _h_vmul32(emu, unit, index, ins):
    emu.vregs[ins.d] = [
        (s32(x) * s32(y)) & _M32
        for x, y in zip(emu.vregs[ins.a], emu.vregs[ins.b])]


@_op("vsplat")
def _h_vsplat(emu, unit, index, ins):
    emu.vregs[ins.d] = [u32(emu.iregs[ins.a])] * 4


# -- memory -------------------------------------------------------------------


@_op("ldx32")
def _h_ldx32(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + emu.iregs[ins.b])
    emu._trace_mem(unit, index, ins, addr)
    emu.iregs[ins.d] = emu._read_u32(addr)


@_op("stx32")
def _h_stx32(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + emu.iregs[ins.c])
    emu._trace_mem(unit, index, ins, addr)
    emu._write_u32(addr, emu.iregs[ins.b])


@_op("ldf")
def _h_ldf(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + ins.imm)
    emu._trace_mem(unit, index, ins, addr)
    emu.fregs[ins.d] = emu._read_f64(addr)


@_op("stf")
def _h_stf(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + ins.imm)
    emu._trace_mem(unit, index, ins, addr)
    emu._write_f64(addr, emu.fregs[ins.b])


@_op("vld")
def _h_vld(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + ins.imm)
    emu._trace_mem(unit, index, ins, addr)
    emu.vregs[ins.d] = emu._read_vec(addr)


@_op("vst")
def _h_vst(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + ins.imm)
    emu._trace_mem(unit, index, ins, addr)
    emu._write_vec(addr, emu.vregs[ins.b])


@_op("sld32")
def _h_sld32(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + ins.imm)
    emu._trace_mem(unit, index, ins, addr)
    value = emu._read_u32(addr)
    if not emu.alias_table.record_load(addr, 4, ins.meta["seq"]):
        raise emu._Fail(EXIT_SPEC)
    emu.iregs[ins.d] = value


@_op("sldf")
def _h_sldf(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + ins.imm)
    emu._trace_mem(unit, index, ins, addr)
    value = emu._read_f64(addr)
    if not emu.alias_table.record_load(addr, 8, ins.meta["seq"]):
        raise emu._Fail(EXIT_SPEC)
    emu.fregs[ins.d] = value


@_op("st32chk")
def _h_st32chk(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + ins.imm)
    emu._trace_mem(unit, index, ins, addr)
    if emu.alias_serial_search:
        cost = len(emu.alias_table.entries)
        emu._extra_insns += cost
        emu.alias_search_insns += cost
    if emu.alias_table.store_conflicts(addr, 4, ins.meta["seq"]):
        raise emu._Fail(EXIT_SPEC)
    emu._write_u32(addr, emu.iregs[ins.b])


@_op("stfchk")
def _h_stfchk(emu, unit, index, ins):
    addr = u32(emu.iregs[ins.a] + ins.imm)
    emu._trace_mem(unit, index, ins, addr)
    if emu.alias_serial_search:
        cost = len(emu.alias_table.entries)
        emu._extra_insns += cost
        emu.alias_search_insns += cost
    if emu.alias_table.store_conflicts(addr, 8, ins.meta["seq"]):
        raise emu._Fail(EXIT_SPEC)
    emu._write_f64(addr, emu.fregs[ins.b])


# ---------------------------------------------------------------------------
# Closure compilation of code units (threaded-code fast path).
#
# Straight-line runs of pure register ops are compiled once per unit into a
# single exec'd closure over (iregs, fregs, vregs), so steady-state replay
# of hot BBM/superblock code stops re-dispatching per host instruction.
# Memory ops, branches, checkpoints and the co-designed special ops stay on
# the interpretive path: they interact with undo logging, page faults,
# hooks and per-instruction accounting, and compiling them would change
# observable statistics on the failure paths.  Each statement must compute
# exactly what the corresponding inline case or _SLOW_HANDLERS entry
# computes (tests/test_fastpath.py holds the two paths to equality).
# ---------------------------------------------------------------------------

_FAST_NS = {
    "u32": u32,
    "s32": s32,
    "idiv32": sem.idiv32,
    "fdiv64": sem.fdiv64,
    "gisa_sqrt": sem.gisa_sqrt,
    "ftrunc32": sem.ftrunc32,
    "_floor": math.floor,
}

#: op -> statement template over I (iregs), F (fregs), V (vregs).
_FAST_STMTS = {
    "nop": None,
    "mov": "I[{d}] = I[{a}]",
    "add32": "I[{d}] = (I[{a}] + I[{b}]) & 0xFFFFFFFF",
    "addi32": "I[{d}] = (I[{a}] + {imm}) & 0xFFFFFFFF",
    "sub32": "I[{d}] = (I[{a}] - I[{b}]) & 0xFFFFFFFF",
    "mul32": "I[{d}] = (s32(I[{a}]) * s32(I[{b}])) & 0xFFFFFFFF",
    "div32s": "I[{d}] = idiv32(I[{a}], I[{b}])[0]",
    "rem32s": "I[{d}] = idiv32(I[{a}], I[{b}])[1]",
    "and32": "I[{d}] = (I[{a}] & I[{b}]) & 0xFFFFFFFF",
    "andi32": "I[{d}] = (I[{a}] & {imm}) & 0xFFFFFFFF",
    "or32": "I[{d}] = (I[{a}] | I[{b}]) & 0xFFFFFFFF",
    "ori32": "I[{d}] = (I[{a}] | {imm}) & 0xFFFFFFFF",
    "xor32": "I[{d}] = (I[{a}] ^ I[{b}]) & 0xFFFFFFFF",
    "xori32": "I[{d}] = (I[{a}] ^ {imm}) & 0xFFFFFFFF",
    "shl32": "I[{d}] = (I[{a}] << (I[{b}] & 31)) & 0xFFFFFFFF",
    "shli32": "I[{d}] = (I[{a}] << ({imm} & 31)) & 0xFFFFFFFF",
    "shr32": "I[{d}] = u32(I[{a}]) >> (I[{b}] & 31)",
    "shri32": "I[{d}] = u32(I[{a}]) >> ({imm} & 31)",
    "sar32": "I[{d}] = u32(s32(I[{a}]) >> (I[{b}] & 31))",
    "sari32": "I[{d}] = u32(s32(I[{a}]) >> ({imm} & 31))",
    "not32": "I[{d}] = (~I[{a}]) & 0xFFFFFFFF",
    "neg32": "I[{d}] = (-I[{a}]) & 0xFFFFFFFF",
    "add64": "I[{d}] = (I[{a}] + I[{b}]) & 0xFFFFFFFFFFFFFFFF",
    "cmpeq": "I[{d}] = int(u32(I[{a}]) == u32(I[{b}]))",
    "cmpeqi": "I[{d}] = int(u32(I[{a}]) == u32({imm}))",
    "cmpne": "I[{d}] = int(u32(I[{a}]) != u32(I[{b}]))",
    "cmpnei": "I[{d}] = int(u32(I[{a}]) != u32({imm}))",
    "cmplt32s": "I[{d}] = int(s32(I[{a}]) < s32(I[{b}]))",
    "cmplt32u": "I[{d}] = int(u32(I[{a}]) < u32(I[{b}]))",
    "cmple32s": "I[{d}] = int(s32(I[{a}]) <= s32(I[{b}]))",
    "cmple32u": "I[{d}] = int(u32(I[{a}]) <= u32(I[{b}]))",
    "addcf32": "I[{d}] = int(((I[{a}] + I[{b}]) & 0xFFFFFFFF)"
               " < u32(I[{a}]))",
    "addof32": "I[{d}] = ((~(I[{a}] ^ I[{b}])) & (I[{a}]"
               " ^ ((I[{a}] + I[{b}]) & 0xFFFFFFFF))) >> 31 & 1",
    "subcf32": "I[{d}] = int(u32(I[{a}]) < u32(I[{b}]))",
    "subof32": "I[{d}] = ((I[{a}] ^ I[{b}]) & (I[{a}]"
               " ^ ((I[{a}] - I[{b}]) & 0xFFFFFFFF))) >> 31 & 1",
    "mulof32": "I[{d}] = int(s32(I[{a}]) * s32(I[{b}])"
               " != s32(u32(s32(I[{a}]) * s32(I[{b}]))))",
    "fmov": "F[{d}] = F[{a}]",
    "fadd": "F[{d}] = F[{a}] + F[{b}]",
    "fsub": "F[{d}] = F[{a}] - F[{b}]",
    "fmul": "F[{d}] = F[{a}] * F[{b}]",
    "fdiv": "F[{d}] = fdiv64(F[{a}], F[{b}])",
    "fneg": "F[{d}] = -F[{a}]",
    "fabs": "F[{d}] = abs(F[{a}])",
    "fsqrt": "F[{d}] = gisa_sqrt(F[{a}])",
    "ffloor": "F[{d}] = float(_floor(F[{a}]))",
    "fcmpeq": "I[{d}] = int(F[{a}] == F[{b}])",
    "fcmplt": "I[{d}] = int(F[{a}] < F[{b}])",
    "fcmpun": "I[{d}] = int(F[{a}] != F[{a}] or F[{b}] != F[{b}])",
    "i2f": "F[{d}] = float(s32(I[{a}]))",
    "f2i": "I[{d}] = ftrunc32(F[{a}])",
    "vmov": "V[{d}] = list(V[{a}])",
    "vadd32": "V[{d}] = [(_x + _y) & 0xFFFFFFFF"
              " for _x, _y in zip(V[{a}], V[{b}])]",
    "vsub32": "V[{d}] = [(_x - _y) & 0xFFFFFFFF"
              " for _x, _y in zip(V[{a}], V[{b}])]",
    "vmul32": "V[{d}] = [(s32(_x) * s32(_y)) & 0xFFFFFFFF"
              " for _x, _y in zip(V[{a}], V[{b}])]",
    "vsplat": "V[{d}] = [I[{a}] & 0xFFFFFFFF] * 4",
}


def _fast_stmt(ins):
    """Statement for one fast op, or False when the op must stay slow."""
    template = _FAST_STMTS.get(ins.op)
    if template is None:
        # "nop" maps to None but is compilable (it only needs counting).
        return None if ins.op == "nop" else False
    imm = ins.imm
    if imm is not None and isinstance(imm, float) and not math.isfinite(imm):
        return False
    return template.format(d=ins.d, a=ins.a, b=ins.b, imm=repr(imm))


def _li_stmt(ins):
    if isinstance(ins.imm, float):
        return False
    return f"I[{ins.d}] = {ins.imm & 0xFFFFFFFFFFFFFFFF}"


def _lif_stmt(ins):
    value = float(ins.imm)
    if not math.isfinite(value):
        return False
    return f"F[{ins.d}] = {value!r}"


def _compile_segment(stmts):
    body = "\n".join(f"    {s}" for s in stmts if s is not None)
    if not body:
        body = "    pass"
    src = f"def _seg(I, F, V):\n{body}"
    namespace = dict(_FAST_NS)
    exec(compile(src, "<host_fastpath>", "exec"), namespace)
    return namespace["_seg"]


def _compile_unit(unit):
    """Build the unit's fast program: a list aligned to instruction
    indices where entry i is ``(length, closure, records)`` for a
    compiled straight-line segment starting at i, or None (interpretive
    path).  ``records`` holds the segment's ``(index, instr)`` pairs so a
    traced run can deliver the per-instruction records after the closure
    executes instead of re-entering the slow path.  Segments break at
    branch targets so control can always enter them."""
    instrs = unit.instrs
    size = len(instrs)
    targets = {ins.target for ins in instrs if ins.target is not None}
    prog = [None] * size
    i = 0
    while i < size:
        stmt = _stmt_for(instrs[i])
        if stmt is False:
            i += 1
            continue
        stmts = [stmt]
        j = i + 1
        while j < size and j not in targets:
            stmt = _stmt_for(instrs[j])
            if stmt is False:
                break
            stmts.append(stmt)
            j += 1
        records = tuple((k, instrs[k]) for k in range(i, j))
        # Batched form of the same records: segment ops never touch
        # memory or branch, so every info slot is statically None.
        brecords = tuple((k, None) for k in range(i, j))
        prog[i] = (j - i, _compile_segment(stmts), records, brecords)
        i = j
    return prog


def _stmt_for(ins):
    if ins.op == "li":
        return _li_stmt(ins)
    if ins.op == "lif":
        return _lif_stmt(ins)
    return _fast_stmt(ins)

