"""Host ISA (HISA) and functional emulator with co-designed extensions."""

from repro.host.emulator import (
    AliasTable, ExitEvent, HostEmulator, IBTC,
    EXIT_ASSERT, EXIT_PAGE_FAULT, EXIT_SPEC, EXIT_TOL,
)
from repro.host.isa import (
    CodeUnit, HostInstr, HostOp,
    UNIT_MODE_BBM, UNIT_MODE_SBM, UNIT_MODE_SBX,
)

__all__ = [
    "AliasTable", "ExitEvent", "HostEmulator", "IBTC",
    "EXIT_ASSERT", "EXIT_PAGE_FAULT", "EXIT_SPEC", "EXIT_TOL",
    "CodeUnit", "HostInstr", "HostOp",
    "UNIT_MODE_BBM", "UNIT_MODE_SBM", "UNIT_MODE_SBX",
]
